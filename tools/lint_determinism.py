#!/usr/bin/env python3
"""Determinism lint for mecsc.

Every figure and table in this repo must be reproducible bit-for-bit from a
seed (see src/util/rng.h). This lint rejects the source patterns that break
that guarantee:

  rng           Raw randomness outside src/util/rng.*: rand()/srand(),
                std::random_device, ad-hoc <random> engines, and
                std::*_distribution (whose streams differ across standard
                libraries even for equal seeds).
  unordered     std::unordered_map / std::unordered_set in library code.
                Their iteration order is unspecified and varies across
                libstdc++/libc++ and ASLR runs, so any result that flows
                through one is silently nondeterministic. Use std::map,
                std::set, sorted vectors, or index-keyed vectors.
  wall-clock    Wall-clock reads (…_clock::now, time(), gettimeofday,
                clock()) in algorithm code. Timing belongs in
                src/util/timer.h, and duration/timestamp fields of the
                observability layer belong in src/obs/ — those are the
                only places allowed to read the clock, and they must
                publish timing only under "wall_"-prefixed keys (see
                tools/strip_wallclock.py). Algorithm results must never
                depend on the clock.
  wall-key      Wall-clock values serialized under keys that lack the
                "wall_" prefix, which would slip past strip_wallclock.py
                and break the determinism diff. Flags (a) util::Timer
                reads (elapsed_ms()/elapsed_seconds()) on a line that also
                mentions a non-"wall_" string literal, and (b) JSON/trace
                serialization (["key"] = …, .f("key", …)) whose key has a
                duration suffix (_ms/_us/_ns/_seconds) without the prefix.
                Keys holding *simulated* time or analytic delays are
                deterministic; mark those lines with the allow() form
                below.

Suppressing a finding: append  // determinism-lint: allow(<rule>)  to the
line (e.g. when an unordered container provably never feeds an iteration
into results). Allowlisted files (the RNG itself, the timer) are exempt from
the relevant rule wholesale; an allowlist entry ending in "/" exempts the
whole directory (src/obs/ for the wall-clock rule).

Usage: lint_determinism.py [PATH...]   (default: src/)
Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

# rule -> (regex, message, files exempt from this rule)
RULES: dict[str, tuple[re.Pattern[str], str, tuple[str, ...]]] = {
    "rng": (
        re.compile(
            r"(?<![\w:])(?:s?rand|drand48|lrand48|random)\s*\("
            r"|std::random_device"
            r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
            r"|ranlux\w+|knuth_b)"
            r"|std::(?:uniform_int|uniform_real|normal|bernoulli|poisson"
            r"|exponential|geometric|binomial|discrete)_distribution"
        ),
        "raw randomness; draw through mecsc::util::Rng (src/util/rng.h)",
        ("src/util/rng.h", "src/util/rng.cpp"),
    ),
    "unordered": (
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container: iteration order is nondeterministic; "
        "use std::map/std::set/sorted vectors",
        (),
    ),
    "wall-clock": (
        re.compile(
            r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"
            r"|(?<![\w:])(?:system|steady|high_resolution)_clock::now\b"
            r"|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&\w+)\s*\)"
            r"|(?<![\w:])clock\s*\(\s*\)"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
        ),
        "wall-clock read in algorithm code; timing belongs in "
        "src/util/timer.h (or src/obs/ wall_* fields) and must not "
        "influence results",
        ("src/util/timer.h", "src/obs/"),
    ),
}

ALLOW_RE = re.compile(r"determinism-lint:\s*allow\(([\w, -]+)\)")

# The wall-key rule scans RAW lines (string literals are what it inspects,
# and strip_code blanks them).
WALL_KEY_EXEMPT = ("src/util/timer.h", "src/obs/")
TIMER_READ_RE = re.compile(r"\belapsed_(?:ms|seconds)\(\)")
STRING_LITERAL_RE = re.compile(r'"((?:\\.|[^"\\])*)"')
WALL_KEY_SERIALIZED_RE = re.compile(
    r'\[\s*"(?!wall_)[^"]*_(?:ms|us|ns|seconds)"\s*\]\s*='
    r'|\.f\(\s*"(?!wall_)[^"]*_(?:ms|us|ns|seconds)"'
)


def wall_key_findings(rel: str, raw_lines: list[str]) -> list[tuple[int, str]]:
    """Line numbers (1-based) violating the wall-key rule, with a reason."""
    if any(
        rel == e or (e.endswith("/") and rel.startswith(e))
        for e in WALL_KEY_EXEMPT
    ):
        return []
    out: list[tuple[int, str]] = []
    for lineno, line in enumerate(raw_lines, start=1):
        # wall_duration_record() namespaces its metric under wall_timers_ms,
        # so any key is fine there (the call may wrap onto the next line).
        if "wall_duration_record" in line or (
            lineno >= 2 and "wall_duration_record" in raw_lines[lineno - 2]
        ):
            continue
        if TIMER_READ_RE.search(line) and any(
            not m.group(1).startswith("wall_")
            for m in STRING_LITERAL_RE.finditer(line)
        ):
            out.append(
                (lineno, "util::Timer value keyed without a wall_ prefix")
            )
        elif WALL_KEY_SERIALIZED_RE.search(line):
            out.append(
                (
                    lineno,
                    "duration-suffixed key without a wall_ prefix; rename "
                    "to wall_<key> (or allow() if the value is simulated "
                    "time, not wall clock)",
                )
            )
    return out

STRING_OR_CHAR = re.compile(
    r'"(?:\\.|[^"\\])*"'  # string literal
    r"|'(?:\\.|[^'\\])*'"  # char literal
)


def strip_code(text: str) -> list[str]:
    """Returns the file's lines with comments and literals blanked out
    (structure and line numbers preserved), so rules match only real code.
    Suppression markers live in comments, so they are read separately."""
    # Blank string/char literal bodies first so "//" inside them is inert.
    text = STRING_OR_CHAR.sub(lambda m: '"' + " " * (len(m.group()) - 2) + '"', text)
    out: list[str] = []
    in_block = False
    for line in text.split("\n"):
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2 :]
            in_block = False
        # Strip block comments that open (and maybe close) on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        out.append(line)
    return out


def lint_file(path: Path, repo_root: Path) -> list[str]:
    resolved = path.resolve()
    if resolved.is_relative_to(repo_root):
        rel = resolved.relative_to(repo_root).as_posix()
    else:
        rel = resolved.as_posix()
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}: unreadable: {err}"]
    code_lines = strip_code(raw)
    raw_lines = raw.split("\n")
    findings = []
    for rule, (pattern, message, exempt) in RULES.items():
        # Entries ending in "/" exempt every file under that directory.
        if any(
            rel == e or (e.endswith("/") and rel.startswith(e)) for e in exempt
        ):
            continue
        for lineno, code in enumerate(code_lines, start=1):
            if not pattern.search(code):
                continue
            allow = ALLOW_RE.search(raw_lines[lineno - 1])
            if allow and rule in [a.strip() for a in allow.group(1).split(",")]:
                continue
            findings.append(
                f"{rel}:{lineno}: [{rule}] {message}\n"
                f"    {raw_lines[lineno - 1].strip()}"
            )
    for lineno, reason in wall_key_findings(rel, raw_lines):
        allow = ALLOW_RE.search(raw_lines[lineno - 1])
        if allow and "wall-key" in [a.strip() for a in allow.group(1).split(",")]:
            continue
        findings.append(
            f"{rel}:{lineno}: [wall-key] {reason}\n"
            f"    {raw_lines[lineno - 1].strip()}"
        )
    return findings


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    targets = [Path(a) for a in argv[1:]] or [repo_root / "src"]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(
                p for p in sorted(target.rglob("*")) if p.suffix in SOURCE_SUFFIXES
            )
        elif target.is_file():
            files.append(target)
        else:
            print(f"lint_determinism: no such path: {target}", file=sys.stderr)
            return 2

    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f, repo_root))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\nlint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
