// mecsc_serve — long-running solver daemon.
//
// Speaks newline-delimited JSON over a Unix-domain socket or loopback TCP
// (protocol reference: DESIGN.md "Serving" and src/svc/server.h):
//
//   mecsc_serve --unix-socket /tmp/mecsc.sock --threads 4
//   mecsc_serve --tcp-port 0 --cache-capacity 256 --queue-capacity 64
//
// With --tcp-port 0 the kernel picks an ephemeral port; the daemon prints
// "listening on tcp:127.0.0.1:<port>" to stderr and, with --port-file,
// writes the bare port number to a file so scripts can discover it without
// parsing logs. Runs until SIGTERM/SIGINT or a {"type": "shutdown"}
// request, then drains: every admitted request is answered before exit.
//
// Observability mirrors the mecsc CLI: --metrics-out/--profile-out/
// --manifest-out write their artifacts after the drain completes.
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/io.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_info.h"
#include "obs/trace.h"
#include "svc/server.h"
#include "util/json.h"
#include "util/log.h"

namespace {

using namespace mecsc;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      R"(mecsc_serve — solver service daemon (NDJSON over a socket)

usage:
  mecsc_serve (--unix-socket PATH | --tcp-port PORT)
              [--threads N]          worker pool size (default 4)
              [--queue-capacity N]   admitted-request queue (default 64)
              [--cache-capacity N]   resident solve results (default 128)
              [--default-deadline-ms MS]  applied when requests carry none
              [--parser arena|dom]   request parse path (default arena —
                                     the zero-DOM hot path; dom is the
                                     reference parser, byte-identical
                                     responses)
              [--port-file FILE]     write the bound TCP port (ephemeral
                                     binds resolve before the file appears)
              [--request-log FILE]   wide-event JSON-lines log: one record
                                     per request (request_id, phase times,
                                     cache outcome; obs/telemetry.h)
              [--request-log-max-mb MB]  rotate the request log to FILE.1
                                     when it would exceed MB (single-level
                                     rollover; 0 = never, the default)
              [--slow-request-ms MS] mirror requests slower than MS to
                                     stderr as they complete, and always
                                     keep their causal trace (tail sampling)
              [--trace-out FILE]     kept causal traces as Chrome
                                     trace-event JSON (load in Perfetto /
                                     chrome://tracing; obs/tracing.h)
              [--trace-sample-rate R]  head-sampling rate in [0, 1]: the
                                     fraction of traces kept regardless of
                                     outcome (errors and slow requests are
                                     always kept). Default 0
              [--flight-recorder N]  in-memory ring of the last N completed
                                     requests with span trees (default 256)
              [--flight-dump FILE]   where SIGQUIT dumps the flight
                                     recorder (default: stderr)
              [--admin-port PORT]    read-only loopback HTTP endpoint:
                                     GET /metrics (Prometheus text),
                                     GET /stats (JSON), GET /debug/flight
                                     (flight-recorder dump); 0 = ephemeral
              [--admin-port-file FILE]  write the bound admin port
              [--telemetry-window-ms MS]  sliding RED window (default 60000)
              [--log-level LEVEL] [--metrics-out FILE] [--profile-out FILE]
              [--manifest-out FILE]

--tcp-port 0 binds an ephemeral loopback port. Stop with SIGTERM/SIGINT or
a {"type": "shutdown"} request; either way the daemon answers everything it
admitted before exiting. SIGQUIT does not stop the daemon: it dumps the
flight recorder (last N requests + span trees) for incident debugging.
)";
  std::exit(error.empty() ? 0 : 2);
}

/// Tiny flag parser: --key value pairs (same shape as the mecsc CLI's).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      if (key == "--help" || key == "-h") usage();
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      if (i + 1 >= argc) usage("flag '" + key + "' needs a value");
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  double number_or(const std::string& key, double dflt) const {
    const auto v = get(key);
    return v ? std::stod(*v) : dflt;
  }

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Self-pipe bridging POSIX signals to the drain sequence: the handler
/// writes one byte (async-signal-safe), a watcher thread blocks on the
/// read end and calls request_shutdown(). main() closes the write end
/// after wait() so the watcher always exits.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int sig) {
  // One byte per signal, tagged so the watcher can tell "drain" (SIGTERM /
  // SIGINT) from "dump the flight recorder, keep serving" (SIGQUIT).
  const char byte = sig == SIGQUIT ? 2 : 1;
  // Result ignored deliberately: if the pipe is full, a wakeup is already
  // pending and the drain will run.
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    if (const auto level = args.get("--log-level")) {
      if (*level == "debug") {
        util::set_log_level(util::LogLevel::Debug);
      } else if (*level == "info") {
        util::set_log_level(util::LogLevel::Info);
      } else if (*level == "warn") {
        util::set_log_level(util::LogLevel::Warn);
      } else if (*level == "error") {
        util::set_log_level(util::LogLevel::Error);
      } else if (*level == "off") {
        util::set_log_level(util::LogLevel::Off);
      } else {
        usage("unknown log level '" + *level + "'");
      }
    }
    obs::install_log_bridge();
    obs::MetricsRegistry::global().reset();
    const auto metrics_out = args.get("--metrics-out");
    const auto profile_out = args.get("--profile-out");
    const auto manifest_out = args.get("--manifest-out");
    if (profile_out) obs::Profiler::global().enable();

    svc::ServerOptions options;
    options.unix_socket_path = args.get("--unix-socket").value_or("");
    if (const auto port = args.get("--tcp-port")) {
      options.tcp_port = static_cast<int>(std::stod(*port));
      if (options.tcp_port < 0 || options.tcp_port > 65535)
        usage("--tcp-port must be in [0, 65535]");
    }
    if (options.unix_socket_path.empty() && options.tcp_port < 0)
      usage("need --unix-socket PATH or --tcp-port PORT");
    if (!options.unix_socket_path.empty() && options.tcp_port >= 0)
      usage("--unix-socket and --tcp-port are mutually exclusive");
    options.threads = static_cast<std::size_t>(args.number_or("--threads", 4));
    options.queue_capacity =
        static_cast<std::size_t>(args.number_or("--queue-capacity", 64));
    options.cache_capacity =
        static_cast<std::size_t>(args.number_or("--cache-capacity", 128));
    options.default_deadline_ms = args.number_or("--default-deadline-ms", 0.0);
    if (const auto parser = args.get("--parser")) {
      if (*parser == "arena") {
        options.use_arena_parser = true;
      } else if (*parser == "dom") {
        options.use_arena_parser = false;
      } else {
        usage("--parser must be 'arena' or 'dom'");
      }
    }
    if (options.threads == 0) usage("--threads must be >= 1");
    if (options.queue_capacity == 0) usage("--queue-capacity must be >= 1");
    options.request_log_path = args.get("--request-log").value_or("");
    options.request_log_max_mb = args.number_or("--request-log-max-mb", 0.0);
    options.slow_request_ms = args.number_or("--slow-request-ms", -1.0);
    options.trace_out = args.get("--trace-out").value_or("");
    options.trace_sample_rate = args.number_or("--trace-sample-rate", 0.0);
    if (options.trace_sample_rate < 0.0 || options.trace_sample_rate > 1.0)
      usage("--trace-sample-rate must be in [0, 1]");
    options.flight_recorder_capacity =
        static_cast<std::size_t>(args.number_or("--flight-recorder", 256));
    if (const auto admin = args.get("--admin-port")) {
      options.admin_port = static_cast<int>(std::stod(*admin));
      if (options.admin_port < 0 || options.admin_port > 65535)
        usage("--admin-port must be in [0, 65535]");
    }
    options.telemetry_window_ms =
        args.number_or("--telemetry-window-ms", 60000.0);
    if (options.telemetry_window_ms <= 0.0)
      usage("--telemetry-window-ms must be > 0");
    if (args.get("--admin-port-file") && options.admin_port < 0)
      usage("--admin-port-file needs --admin-port");

    svc::SolverServer server(std::move(options));
    server.start();
    std::cerr << "listening on " << server.endpoint() << "\n";
    if (server.admin_port() >= 0)
      std::cerr << "admin endpoint on tcp:127.0.0.1:" << server.admin_port()
                << " (/metrics, /stats, /debug/flight)\n";
    if (const auto port_file = args.get("--port-file")) {
      core::write_text_file(*port_file,
                            std::to_string(server.port()) + "\n");
    }
    if (const auto admin_port_file = args.get("--admin-port-file")) {
      core::write_text_file(*admin_port_file,
                            std::to_string(server.admin_port()) + "\n");
    }

    if (pipe(g_signal_pipe) != 0) {
      std::cerr << "error: cannot create signal pipe: " << std::strerror(errno)
                << "\n";
      return 1;
    }
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGQUIT, on_signal);  // flight-recorder dump, not a stop
    std::signal(SIGPIPE, SIG_IGN);  // belt-and-braces next to MSG_NOSIGNAL
    const std::string flight_dump_path =
        args.get("--flight-dump").value_or("");
    std::thread signal_watcher([&server, &flight_dump_path] {
      char byte = 0;
      while (true) {
        const ssize_t n = read(g_signal_pipe[0], &byte, 1);
        if (n == 1 && byte == 2) {
          // SIGQUIT: dump the last N requests (wide events + span trees)
          // and keep serving — the incident-debugging snapshot.
          const std::string dump = server.flight_json().dump(2);
          if (flight_dump_path.empty()) {
            std::cerr << "flight recorder dump (SIGQUIT):\n" << dump << "\n";
          } else {
            try {
              core::write_text_file(flight_dump_path, dump + "\n");
              std::cerr << "wrote " << flight_dump_path << "\n";
            } catch (const std::exception& e) {
              std::cerr << "error: flight dump failed: " << e.what() << "\n";
            }
          }
          continue;
        }
        if (n == 1) {
          server.request_shutdown();
          return;
        }
        if (n == 0) return;               // write end closed: normal exit
        if (errno != EINTR) return;       // unexpected; don't spin
      }
    });

    server.wait();
    // Wake the watcher if the drain came from a shutdown request rather
    // than a signal.
    close(g_signal_pipe[1]);
    signal_watcher.join();
    close(g_signal_pipe[0]);

    const svc::ServerStats stats = server.stats();
    std::cerr << "drained: " << stats.requests_total << " requests ("
              << stats.responses_ok << " ok, " << stats.responses_error
              << " errors, " << stats.overloaded << " overloaded), "
              << stats.solves_executed << " solves, cache "
              << stats.cache.hits << " hits / " << stats.cache.misses
              << " misses / " << stats.cache.evictions << " evictions\n";

    if (metrics_out) {
      core::write_text_file(
          *metrics_out,
          obs::MetricsRegistry::global().snapshot().to_json().dump(2));
      std::cerr << "wrote " << *metrics_out << "\n";
    }
    if (profile_out) {
      core::write_text_file(*profile_out,
                            obs::Profiler::global().report().to_json().dump(2));
      obs::Profiler::global().disable();
      std::cerr << "wrote " << *profile_out << "\n";
    }
    std::optional<std::string> manifest_path = manifest_out;
    if (!manifest_path && metrics_out)
      manifest_path = *metrics_out + ".manifest.json";
    if (manifest_path) {
      obs::RunManifest manifest;
      manifest.tool = "mecsc_serve";
      manifest.command = "serve";
      for (const auto& [key, value] : args.all())
        manifest.config[key] = util::JsonValue(value);
      obs::write_manifest(*manifest_path, manifest);
      std::cerr << "wrote " << *manifest_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
