// mecsc_loadgen — closed-loop load generator for mecsc_serve.
//
//   mecsc_loadgen --connect tcp:127.0.0.1:7077 --requests 1000
//                 --connections 4 --algorithms lcf,appro,jo,offload
//
// Opens N connections, each driven by one thread that issues the next
// request as soon as the previous response arrives (closed loop — offered
// load adapts to service capacity instead of overrunning it). Requests
// cycle deterministically over algorithm × instance combinations, so
// repeated runs against a correct server produce the same result payloads;
// the tool verifies that invariant itself: every response is fully parsed
// (a malformed line is a hard failure) and every (algorithm, instance)
// combination must yield one unique result digest across all repetitions.
//
// Reports a latency table on stderr and, like the bench binaries, writes
// BENCH_svc.json (to $MECSC_BENCH_JSON_DIR when set). Deterministic record
// fields are the per-combination result digests and request counts; all
// timing goes under "wall_" keys. Exit status is non-zero on any protocol
// violation, error response, or digest mismatch.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/instance.h"
#include "core/io.h"
#include "obs/run_info.h"
#include "obs/tracing.h"
#include "svc/client.h"
#include "util/json.h"
#include "util/sync.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace mecsc;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      R"(mecsc_loadgen — closed-loop load generator for the solver service

usage:
  mecsc_loadgen --connect ENDPOINTS     unix:PATH | tcp:HOST:PORT, comma-
                                        separated: connections round-robin
                                        across the endpoints (point one
                                        entry at a mecsc_route front router
                                        — or several — for topology runs)
                [--requests N]          total requests (default 1000)
                [--connections N]       concurrent connections (default 4)
                [--algorithms CSV]      cycle over these (default
                                        lcf,appro,jo,offload)
                [--instances K]         distinct generated instances
                                        (default 2)
                [--size N]              instance network size (default 50)
                [--providers N]         providers per instance (default 40)
                [--payload-scale F]     multiply size and providers by F to
                                        stress request decode with large
                                        payloads (default 1)
                [--seed S]              instance generator seed (default 1)
                [--deadline-ms MS]      per-request deadline (default none)
                [--no-cache VAL]        VAL=1 sends "cache": false
                [--shutdown-after VAL]  VAL=1 sends a shutdown request once
                                        the run completes
                [--expect-cache-hits VAL]  VAL=1 fails unless the server
                                        reports cache hits > 0 (CI smoke)
                [--scrape-interval-ms MS]  poll the server's "metrics"
                                        request every MS during the run and
                                        record queue-depth / hit-ratio time
                                        series into BENCH_svc.json (wall_)
                [--max-retries N]       retries per request on "overloaded",
                                        honoring the server's
                                        wall_retry_after_ms backoff hint
                                        (default 50)
                [--trace-sample-rate R] head-sampling rate in [0, 1] for the
                                        traceparent each request carries:
                                        the sampled flag is set for this
                                        fraction of trace ids (default 0)
                [--bench-name NAME]     bench record name: writes
                                        BENCH_<NAME>.json (default svc;
                                        route topology runs use route)
                [--affinity-gate F]     fail unless the repeat-digest
                                        backend affinity (fraction of
                                        routed responses landing on their
                                        combo's first-seen route_backend)
                                        is >= F; needs a router upstream

Every request carries a request_id ("lg-<conn>-<n>") and a W3C traceparent
derived from it (one trace per request, client span as the root); the tool
verifies the server echoes the request_id verbatim on every ok response.
)";
  std::exit(error.empty() ? 0 : 2);
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      if (key == "--help" || key == "-h") usage();
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      if (i + 1 >= argc) usage("flag '" + key + "' needs a value");
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
  }

  double number_or(const std::string& key, double dflt) const {
    const auto v = get(key);
    return v ? std::stod(*v) : dflt;
  }

  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) usage("missing required flag '" + key + "'");
    return *v;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// One algorithm × instance cell of the deterministic request cycle.
struct Combo {
  std::string algorithm;
  std::size_t instance_index = 0;
  std::string label;  ///< "<algorithm>/inst<k>"
};

/// Shared verification state: first digest seen per combo + error log.
/// When responses carry "route_backend" (a mecsc_route upstream), also
/// tracks cache affinity: a digest-sharded router should land every
/// repeat of a combo on the combo's first-seen backend, so the match
/// fraction is the router's effective cache-affinity.
struct Verifier {
  mecsc::util::Mutex mutex;
  std::vector<std::string> combo_digest
      MECSC_GUARDED_BY(mutex);  ///< "" until first response
  std::vector<std::uint64_t> combo_count MECSC_GUARDED_BY(mutex);
  std::vector<std::string> failures MECSC_GUARDED_BY(mutex);
  std::vector<std::string> combo_backend
      MECSC_GUARDED_BY(mutex);  ///< first route_backend seen, "" direct
  std::uint64_t routed_total MECSC_GUARDED_BY(mutex) = 0;
  std::uint64_t routed_affine MECSC_GUARDED_BY(mutex) = 0;

  explicit Verifier(std::size_t combos)
      : combo_digest(combos), combo_count(combos), combo_backend(combos) {}

  void record(std::size_t combo, const std::string& digest,
              const std::string& backend) {
    const mecsc::util::MutexLock lock(mutex);
    ++combo_count[combo];
    if (combo_digest[combo].empty()) {
      combo_digest[combo] = digest;
    } else if (combo_digest[combo] != digest) {
      failures.push_back("combo " + std::to_string(combo) +
                         ": result digest " + digest +
                         " != first seen " + combo_digest[combo]);
    }
    if (!backend.empty()) {
      ++routed_total;
      if (combo_backend[combo].empty()) combo_backend[combo] = backend;
      if (combo_backend[combo] == backend) ++routed_affine;
    }
  }

  void fail(std::string why) {
    const mecsc::util::MutexLock lock(mutex);
    failures.push_back(std::move(why));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    const std::vector<std::string> endpoints =
        split_csv(args.require("--connect"));
    if (endpoints.empty()) usage("--connect must name at least one endpoint");
    const std::uint64_t total_requests =
        static_cast<std::uint64_t>(args.number_or("--requests", 1000));
    const std::size_t connections =
        static_cast<std::size_t>(args.number_or("--connections", 4));
    const std::vector<std::string> algorithms =
        split_csv(args.get_or("--algorithms", "lcf,appro,jo,offload"));
    const std::size_t instance_count =
        static_cast<std::size_t>(args.number_or("--instances", 2));
    const double payload_scale = args.number_or("--payload-scale", 1.0);
    const double deadline_ms = args.number_or("--deadline-ms", -1.0);
    const bool use_cache = args.get_or("--no-cache", "0") != "1";
    const bool shutdown_after = args.get_or("--shutdown-after", "0") == "1";
    const bool expect_cache_hits =
        args.get_or("--expect-cache-hits", "0") == "1";
    const double scrape_interval_ms =
        args.number_or("--scrape-interval-ms", -1.0);
    const std::uint64_t max_retries =
        static_cast<std::uint64_t>(args.number_or("--max-retries", 50));
    const double trace_sample_rate =
        args.number_or("--trace-sample-rate", 0.0);
    if (trace_sample_rate < 0.0 || trace_sample_rate > 1.0)
      usage("--trace-sample-rate must be in [0, 1]");
    const std::string bench_name = args.get_or("--bench-name", "svc");
    const double affinity_gate = args.number_or("--affinity-gate", -1.0);
    if (affinity_gate > 1.0) usage("--affinity-gate must be in [0, 1]");
    if (connections == 0) usage("--connections must be >= 1");
    if (algorithms.empty()) usage("--algorithms must name at least one");
    if (instance_count == 0) usage("--instances must be >= 1");
    if (payload_scale <= 0.0) usage("--payload-scale must be > 0");

    // Deterministically generated instances: same flags, same documents,
    // same digests — the served-response determinism check leans on this.
    std::vector<util::JsonValue> instances;
    instances.reserve(instance_count);
    for (std::size_t k = 0; k < instance_count; ++k) {
      util::Rng rng(
          static_cast<std::uint64_t>(args.number_or("--seed", 1)) + 977 * k);
      core::InstanceParams params;
      params.network_size = static_cast<std::size_t>(
          args.number_or("--size", 50) * payload_scale);
      params.provider_count = static_cast<std::size_t>(
          args.number_or("--providers", 40) * payload_scale);
      instances.push_back(
          core::instance_to_json(core::generate_instance(params, rng)));
    }
    // Canonical request-payload size of each instance document: the bytes
    // the server parses and decodes per request, the numerator of the
    // decoded-MB/s throughput below.
    std::vector<std::size_t> instance_bytes;
    instance_bytes.reserve(instance_count);
    for (const util::JsonValue& inst : instances)
      instance_bytes.push_back(inst.dump().size());

    std::vector<Combo> combos;
    for (const std::string& algorithm : algorithms) {
      for (std::size_t k = 0; k < instance_count; ++k) {
        Combo c;
        c.algorithm = algorithm;
        c.instance_index = k;
        c.label = algorithm + "/inst" + std::to_string(k);
        combos.push_back(std::move(c));
      }
    }

    Verifier verifier(combos.size());
    std::atomic<std::uint64_t> next_request{0};
    std::atomic<std::uint64_t> ok_responses{0};
    std::atomic<std::uint64_t> cached_responses{0};
    std::atomic<std::uint64_t> decoded_bytes{0};
    std::atomic<std::uint64_t> overload_retries{0};
    std::vector<std::vector<double>> latencies_ms(connections);

    auto worker = [&](std::size_t conn_index) {
      try {
        svc::SvcClient client = svc::SvcClient::connect(
            endpoints[conn_index % endpoints.size()]);
        while (true) {
          const std::uint64_t i = next_request.fetch_add(1);
          if (i >= total_requests) return;
          const std::size_t combo_index = i % combos.size();
          const Combo& combo = combos[combo_index];
          // Wide-event correlation id: unique per attempt sequence, echoed
          // by the server on every parsed response (verified below).
          const std::string request_id =
              "lg-" + std::to_string(conn_index) + "-" + std::to_string(i);
          // Causal-trace context, derived deterministically from the
          // request id (same flags → same trace ids run to run). The
          // sampled flag head-samples client-side; the server tail-keeps
          // slow/error requests regardless.
          obs::TraceContext tctx =
              obs::TraceContext::derive(request_id, false);
          tctx.sampled =
              obs::trace_head_sample(tctx.trace_id, trace_sample_rate);
          const std::string traceparent = tctx.to_traceparent();
          util::Timer latency;
          svc::SvcResponse response = client.solve(
              instances[combo.instance_index], combo.algorithm,
              /*id=*/i, /*one_minus_xi=*/0.3, use_cache, deadline_ms,
              request_id, traceparent);
          // "overloaded" is back-pressure, not a failure: honor the
          // server's wall_retry_after_ms hint (bounded, with a floor so a
          // missing hint from an old server still backs off) and retry.
          std::uint64_t attempts = 0;
          while (!response.ok && response.error_code == "overloaded" &&
                 attempts < max_retries) {
            ++attempts;
            overload_retries.fetch_add(1);
            const double backoff_ms =
                response.retry_after_ms > 0.0
                    ? std::min(response.retry_after_ms, 1000.0)
                    : 10.0;
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
            response = client.solve(
                instances[combo.instance_index], combo.algorithm,
                /*id=*/i, /*one_minus_xi=*/0.3, use_cache, deadline_ms,
                request_id, traceparent);
          }
          latencies_ms[conn_index].push_back(latency.elapsed_ms());
          if (!response.ok) {
            verifier.fail("request " + std::to_string(i) + " (" + combo.label +
                          "): " + response.error_code + ": " +
                          response.error_message);
            continue;
          }
          if (response.request_id != request_id) {
            verifier.fail("request " + std::to_string(i) +
                          ": request_id echo mismatch: sent " + request_id +
                          ", got \"" + response.request_id + "\"");
            continue;
          }
          // The solve payload must be present and byte-stable per combo.
          if (!response.body.contains("result")) {
            verifier.fail("request " + std::to_string(i) +
                          ": ok response without a result");
            continue;
          }
          ok_responses.fetch_add(1);
          decoded_bytes.fetch_add(instance_bytes[combo.instance_index]);
          if (response.body.at("cached").as_bool()) cached_responses.fetch_add(1);
          verifier.record(combo_index,
                          obs::fnv1a64_hex(response.body.at("result").dump()),
                          response.body.contains("route_backend")
                              ? response.body.at("route_backend").as_string()
                              : std::string());
        }
      } catch (const std::exception& e) {
        verifier.fail("connection " + std::to_string(conn_index) + ": " +
                      e.what());
      }
    };

    util::Timer run_timer;
    // Optional telemetry scraper: one extra connection polling the
    // "metrics" request while the workers run, building a queue-depth /
    // hit-ratio time series. Pure observer — any scrape failure is
    // swallowed, never a run failure. The samples vector is touched only
    // by the scraper thread and read after its join.
    std::atomic<bool> scraping{scrape_interval_ms > 0.0};
    util::JsonArray scrape_samples;
    std::thread scraper;
    if (scraping.load()) {
      scraper = std::thread([&] {
        try {
          svc::SvcClient scrape_client = svc::SvcClient::connect(endpoints[0]);
          while (scraping.load()) {
            const svc::SvcResponse m = scrape_client.metrics();
            if (m.ok && m.body.contains("telemetry")) {
              const util::JsonValue& gauges =
                  m.body.at("telemetry").at("wall_gauges");
              util::JsonObject sample;
              sample["wall_t_ms"] = util::JsonValue(run_timer.elapsed_ms());
              sample["wall_queue_depth"] = gauges.at("queue_depth");
              sample["wall_hit_ratio"] = gauges.at("cache_hit_ratio");
              scrape_samples.push_back(util::JsonValue(std::move(sample)));
            }
            std::this_thread::sleep_for(std::chrono::duration<double,
                std::milli>(scrape_interval_ms));
          }
        } catch (const std::exception&) {
          // Lost scraper connection: the run proceeds without the series.
        }
      });
    }
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c)
      threads.emplace_back(worker, c);
    for (std::thread& t : threads) t.join();
    scraping.store(false);
    if (scraper.joinable()) scraper.join();
    const double run_ms = run_timer.elapsed_ms();

    // One control connection for final server-side counters (and the
    // optional shutdown).
    struct ResultCacheNumbers {
      double hits = 0, misses = 0, coalesced = 0, evictions = 0;
      double solves = 0;
    } server_numbers;
    bool have_server_numbers = false;
    try {
      svc::SvcClient control = svc::SvcClient::connect(endpoints[0]);
      const svc::SvcResponse stats = control.server_stats();
      // A mecsc_route upstream answers "stats" with router counters and no
      // "cache" section — the cache rows just drop from the report.
      if (stats.ok && stats.body.contains("cache")) {
        const util::JsonValue& cache = stats.body.at("cache");
        server_numbers.hits = cache.number_at("hits");
        server_numbers.misses = cache.number_at("misses");
        server_numbers.coalesced = cache.number_at("coalesced");
        server_numbers.evictions = cache.number_at("evictions");
        server_numbers.solves =
            stats.body.at("server").number_at("solves_executed");
        have_server_numbers = true;
      }
      if (shutdown_after) control.shutdown();
    } catch (const std::exception& e) {
      verifier.fail(std::string("control connection: ") + e.what());
    }
    if (expect_cache_hits &&
        (!have_server_numbers || server_numbers.hits <= 0.0)) {
      verifier.fail("--expect-cache-hits: server reported no cache hits");
    }

    std::vector<double> all_latencies;
    for (const auto& per_conn : latencies_ms)
      all_latencies.insert(all_latencies.end(), per_conn.begin(),
                           per_conn.end());
    const util::Summary latency = util::summarize(all_latencies);

    // Planned payload bytes are a pure function of the flags (the instance
    // documents are seed-deterministic), so the per-request average stays
    // on the deterministic side of the bench record; the achieved decode
    // throughput is wall-clock and carries the wall_ prefix.
    std::uint64_t planned_bytes = 0;
    for (std::uint64_t i = 0; i < total_requests; ++i)
      planned_bytes += instance_bytes[combos[i % combos.size()].instance_index];
    const double payload_bytes_per_request =
        total_requests == 0 ? 0.0
                            : static_cast<double>(planned_bytes) /
                                  static_cast<double>(total_requests);
    const double decoded_mb_per_s =
        run_ms <= 0.0
            ? 0.0
            : static_cast<double>(decoded_bytes.load()) / (run_ms * 1e3);

    // Routed-affinity view (when a mecsc_route upstream tagged responses
    // with route_backend): fraction of routed responses that landed on
    // their combo's first-seen backend. Read under a short lock so the
    // gate below and the report agree on one snapshot.
    std::uint64_t routed_total = 0;
    double affinity = -1.0;
    {
      const mecsc::util::MutexLock lock(verifier.mutex);
      routed_total = verifier.routed_total;
      if (routed_total > 0)
        affinity = static_cast<double>(verifier.routed_affine) /
                   static_cast<double>(routed_total);
    }
    if (affinity_gate >= 0.0) {
      if (routed_total == 0) {
        verifier.fail(
            "--affinity-gate: no response carried route_backend (endpoint "
            "is not a mecsc_route router?)");
      } else if (affinity < affinity_gate) {
        verifier.fail("--affinity-gate: backend affinity " +
                      std::to_string(affinity) + " < " +
                      std::to_string(affinity_gate));
      }
    }

    util::Table t({"metric", "value"});
    t.add_row({std::string("requests"),
               static_cast<long long>(all_latencies.size())});
    t.add_row({std::string("connections"),
               static_cast<long long>(connections)});
    t.add_row({std::string("ok responses"),
               static_cast<long long>(ok_responses.load())});
    t.add_row({std::string("cached responses"),
               static_cast<long long>(cached_responses.load())});
    t.add_row({std::string("overload retries"),
               static_cast<long long>(overload_retries.load())});
    if (scrape_interval_ms > 0.0)
      t.add_row({std::string("telemetry scrapes"),
                 static_cast<long long>(scrape_samples.size())});
    if (routed_total > 0)
      t.add_row({std::string("backend affinity"), affinity});
    t.add_row({std::string("throughput (req/s)"),
               all_latencies.empty() ? 0.0
                                     : 1e3 * static_cast<double>(
                                                 all_latencies.size()) /
                                           run_ms});
    t.add_row({std::string("payload bytes/request"),
               payload_bytes_per_request});
    t.add_row({std::string("decoded MB/s"), decoded_mb_per_s});
    t.add_row({std::string("latency p50 (ms)"), latency.p50});
    t.add_row({std::string("latency p95 (ms)"), latency.p95});
    t.add_row({std::string("latency p99 (ms)"), latency.p99});
    t.add_row({std::string("latency max (ms)"), latency.max});
    if (have_server_numbers) {
      t.add_row({std::string("server cache hits"), server_numbers.hits});
      t.add_row({std::string("server cache misses"), server_numbers.misses});
      t.add_row({std::string("server coalesced"), server_numbers.coalesced});
      t.add_row({std::string("server solves"), server_numbers.solves});
    }
    std::cerr << t.to_string();

    // BENCH record: digests and counts are deterministic (same flags, same
    // correct server → same bytes); every timing lives under a wall_ key.
    // The workers are joined, so this lock is uncontended — it exists so
    // the thread-safety analysis can prove the guarded reads below.
    const mecsc::util::MutexLock verifier_lock(verifier.mutex);
    bench::BenchRecorder recorder(bench_name);
    for (std::size_t c = 0; c < combos.size(); ++c) {
      util::JsonObject row;
      row["algorithm"] = util::JsonValue(combos[c].algorithm);
      row["instance"] = util::JsonValue(combos[c].instance_index);
      row["result_digest"] = util::JsonValue(verifier.combo_digest[c]);
      recorder.add(combos[c].label, std::move(row));
    }
    {
      util::JsonObject row;
      row["requests"] = util::JsonValue(total_requests);
      row["connections"] = util::JsonValue(connections);
      row["failures"] = util::JsonValue(verifier.failures.size());
      row["payload_bytes_per_request"] =
          util::JsonValue(payload_bytes_per_request);
      row["wall_decoded_mb_per_s"] = util::JsonValue(decoded_mb_per_s);
      row["wall_requests_per_s"] = util::JsonValue(
          run_ms <= 0.0 ? 0.0
                        : 1e3 * static_cast<double>(all_latencies.size()) /
                              run_ms);
      // Whether (and how often) the server sheds load is timing-dependent,
      // so the retry count is wall-clock metadata.
      row["wall_overload_retries"] = util::JsonValue(overload_retries.load());
      if (routed_total > 0) {
        // Every ok routed response is tagged, so the count is as stable as
        // "requests"; which backend answers is timing-dependent once spills
        // happen, so the affinity itself is wall-clock.
        row["routed_responses"] = util::JsonValue(routed_total);
        row["wall_backend_affinity"] = util::JsonValue(affinity);
      }
      recorder.add("summary", std::move(row),
                   {{"latency_p50", latency.p50},
                    {"latency_p95", latency.p95},
                    {"latency_p99", latency.p99},
                    {"run", run_ms}});
    }
    if (scrape_interval_ms > 0.0) {
      // The whole series (count and contents) depends on wall-clock
      // pacing; everything lives under wall_ keys so BENCH_svc.json stays
      // diffable across runs.
      util::JsonObject row;
      row["wall_sample_count"] = util::JsonValue(scrape_samples.size());
      row["wall_samples"] = util::JsonValue(scrape_samples);
      recorder.add("scrape", std::move(row));
    }
    recorder.write_file();

    if (!verifier.failures.empty()) {
      std::cerr << verifier.failures.size() << " failures:\n";
      std::size_t shown = 0;
      for (const std::string& f : verifier.failures) {
        std::cerr << "  " << f << "\n";
        if (++shown == 20) {
          std::cerr << "  ... (" << verifier.failures.size() - shown
                    << " more)\n";
          break;
        }
      }
      return 1;
    }
    std::cerr << "all " << ok_responses.load()
              << " responses verified: parseable, ok, digest-stable\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
