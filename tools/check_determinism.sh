#!/usr/bin/env bash
# Runs the mecsc CLI twice with identical seeds and diffs every artifact.
# Any divergence means hidden nondeterminism (unordered iteration, uninit
# reads, wall-clock leakage) crept into an algorithm — the reproducibility
# guarantee behind every figure in the paper.
#
# Usage: check_determinism.sh /path/to/mecsc [seed]
set -eu

MECSC="${1:?usage: check_determinism.sh /path/to/mecsc [seed]}"
SEED="${2:-42}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

run_once() {
  out="$1"
  mkdir -p "$out"
  "$MECSC" generate --size 80 --providers 30 --seed "$SEED" \
      -o "$out/inst.json"
  for alg in lcf appro appro-literal jo offload selfish; do
    "$MECSC" solve -i "$out/inst.json" --algorithm "$alg" \
        -o "$out/$alg.raw.json" 2>/dev/null
    # wall_elapsed_ms is wall-clock metadata, not an algorithm result;
    # everything else in the artifact must be bit-identical across runs.
    mv "$out/$alg.raw.json" "$out/$alg.json"
    python3 "$TOOLS_DIR/strip_wallclock.py" "$out/$alg.json"
    "$MECSC" evaluate -i "$out/inst.json" -p "$out/$alg.json" \
        > "$out/$alg.eval.txt"
  done
  "$MECSC" price -i "$out/inst.json" -o "$out/priced.json" 2>/dev/null
  "$MECSC" stability -i "$out/inst.json" > "$out/stability.txt"
  "$MECSC" delay -i "$out/inst.json" -p "$out/lcf.json" > "$out/delay.txt"
  "$MECSC" emulate -i "$out/inst.json" -p "$out/lcf.json" --horizon 10 \
      > "$out/emulate.txt"

  # Observability artifacts: trace, metrics, phase profile, and run manifest
  # from one instrumented solve. Their deterministic sections (everything
  # except "wall_"-prefixed keys and the Perfetto traceEvents array) must
  # also be bit-identical across runs.
  "$MECSC" solve -i "$out/inst.json" --algorithm lcf -o - \
      --trace-out "$out/lcf.trace.jsonl" \
      --metrics-out "$out/lcf.metrics.json" \
      --profile-out "$out/lcf.profile.json" \
      --manifest-out "$out/lcf.manifest.json" > /dev/null 2>&1
  python3 "$TOOLS_DIR/strip_wallclock.py" \
      "$out/lcf.trace.jsonl" "$out/lcf.metrics.json" \
      "$out/lcf.profile.json" "$out/lcf.manifest.json"
  # The manifest faithfully records the flags, which contain this run's
  # scratch directory; normalize the path so the a/b dirs compare equal.
  sed -i "s|$out|RUNDIR|g" "$out/lcf.manifest.json"
}

run_once "$DIR/a"
run_once "$DIR/b"

if ! diff -ru "$DIR/a" "$DIR/b"; then
  echo "check_determinism: FAIL — identical seeds produced different output" >&2
  exit 1
fi
echo "check_determinism: OK (seed $SEED, $(ls "$DIR/a" | wc -l) artifacts identical)"
