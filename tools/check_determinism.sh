#!/usr/bin/env bash
# Runs the mecsc CLI twice with identical seeds and diffs every artifact.
# Any divergence means hidden nondeterminism (unordered iteration, uninit
# reads, wall-clock leakage) crept into an algorithm — the reproducibility
# guarantee behind every figure in the paper.
#
# Usage: check_determinism.sh /path/to/mecsc [seed]
set -eu

MECSC="${1:?usage: check_determinism.sh /path/to/mecsc [seed]}"
SEED="${2:-42}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

run_once() {
  out="$1"
  mkdir -p "$out"
  "$MECSC" generate --size 80 --providers 30 --seed "$SEED" \
      -o "$out/inst.json"
  for alg in lcf appro appro-literal jo offload selfish; do
    "$MECSC" solve -i "$out/inst.json" --algorithm "$alg" \
        -o "$out/$alg.raw.json" 2>/dev/null
    # wall_elapsed_ms is wall-clock metadata, not an algorithm result;
    # everything else in the artifact must be bit-identical across runs.
    mv "$out/$alg.raw.json" "$out/$alg.json"
    python3 "$TOOLS_DIR/strip_wallclock.py" "$out/$alg.json"
    "$MECSC" evaluate -i "$out/inst.json" -p "$out/$alg.json" \
        > "$out/$alg.eval.txt"
  done
  "$MECSC" price -i "$out/inst.json" -o "$out/priced.json" 2>/dev/null
  "$MECSC" stability -i "$out/inst.json" > "$out/stability.txt"
  "$MECSC" delay -i "$out/inst.json" -p "$out/lcf.json" > "$out/delay.txt"
  "$MECSC" emulate -i "$out/inst.json" -p "$out/lcf.json" --horizon 10 \
      > "$out/emulate.txt"

  # Observability artifacts: trace, metrics, phase profile, and run manifest
  # from one instrumented solve. Their deterministic sections (everything
  # except "wall_"-prefixed keys and the Perfetto traceEvents array) must
  # also be bit-identical across runs.
  "$MECSC" solve -i "$out/inst.json" --algorithm lcf -o - \
      --trace-out "$out/lcf.trace.jsonl" \
      --metrics-out "$out/lcf.metrics.json" \
      --profile-out "$out/lcf.profile.json" \
      --manifest-out "$out/lcf.manifest.json" > /dev/null 2>&1
  python3 "$TOOLS_DIR/strip_wallclock.py" \
      "$out/lcf.trace.jsonl" "$out/lcf.metrics.json" \
      "$out/lcf.profile.json" "$out/lcf.manifest.json"
  # The manifest faithfully records the flags, which contain this run's
  # scratch directory; normalize the path so the a/b dirs compare equal.
  sed -i "s|$out|RUNDIR|g" "$out/lcf.manifest.json"

  # Served-response determinism: responses from the solver service for
  # identical requests must be byte-identical across runs once wall_ keys
  # are stripped — same contract as the CLI artifacts, over a socket.
  SERVE="$(dirname "$MECSC")/mecsc_serve"
  LOADGEN="$(dirname "$MECSC")/mecsc_loadgen"
  if [ -x "$SERVE" ] && [ -x "$LOADGEN" ]; then
    # One worker: FIFO processing keeps the response *order* on a
    # pipelined connection deterministic, not just the payloads.
    "$SERVE" --tcp-port 0 --threads 1 --port-file "$out/port.txt" \
        2>/dev/null &
    serve_pid=$!
    for _ in $(seq 1 200); do
      [ -s "$out/port.txt" ] && break
      sleep 0.05
    done
    port="$(cat "$out/port.txt")"
    rm "$out/port.txt"  # the ephemeral port differs across runs

    # Raw wire capture: pipelined solve requests (each algorithm twice, so
    # the second hit exercises the result cache) over bash's /dev/tcp.
    python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
inst = json.load(open(out + "/inst.json"))
with open(out + "/svc.requests", "w") as f:
    rid = 0
    for alg in ("lcf", "appro", "lcf", "appro"):
        rid += 1
        f.write(json.dumps({"id": rid, "type": "solve", "algorithm": alg,
                            "instance": inst}) + "\n")
EOF
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    cat "$out/svc.requests" >&3
    : > "$out/svc.responses.jsonl"
    for _ in 1 2 3 4; do
      IFS= read -r line <&3
      printf '%s\n' "$line" >> "$out/svc.responses.jsonl"
    done
    exec 3>&- 3<&-
    rm "$out/svc.requests"
    python3 "$TOOLS_DIR/strip_wallclock.py" "$out/svc.responses.jsonl"

    # Closed-loop load: per-combination result digests land in
    # BENCH_svc.json; its deterministic sections must match across runs.
    MECSC_BENCH_JSON_DIR="$out" "$LOADGEN" --connect "tcp:127.0.0.1:$port" \
        --requests 40 --connections 4 --size 30 --providers 20 \
        --seed "$SEED" --shutdown-after 1 2>/dev/null
    python3 "$TOOLS_DIR/strip_wallclock.py" "$out/BENCH_svc.json"
    wait "$serve_pid"

    # Telemetry determinism: a dedicated single-worker server with the
    # wide-event request log on. One pipelined connection sends solves
    # (cold, cached, second algorithm), a metrics snapshot, and a
    # shutdown; with one FIFO worker the event order, the server-minted
    # request_ids ("s-<n>"), the cache outcomes, and every non-wall_
    # field of both the responses and the request log are exact functions
    # of the request stream — so they must diff clean across runs.
    "$SERVE" --tcp-port 0 --threads 1 --port-file "$out/tport.txt" \
        --request-log "$out/svc.requestlog.jsonl" 2>/dev/null &
    tserve_pid=$!
    for _ in $(seq 1 200); do
      [ -s "$out/tport.txt" ] && break
      sleep 0.05
    done
    tport="$(cat "$out/tport.txt")"
    rm "$out/tport.txt"
    python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
inst = json.load(open(out + "/inst.json"))
requests = [
    {"id": 1, "type": "solve", "algorithm": "lcf", "instance": inst,
     "request_id": "det-1"},                             # miss, echoed id
    {"id": 2, "type": "solve", "algorithm": "lcf", "instance": inst},
                                                         # hit, minted id
    {"id": 3, "type": "solve", "algorithm": "appro", "instance": inst,
     "request_id": "det-3"},                             # second type
    {"id": 4, "type": "metrics"},                        # snapshot of all 3
    {"id": 5, "type": "shutdown"},
]
with open(out + "/svc.trequests", "w") as f:
    for request in requests:
        f.write(json.dumps(request) + "\n")
EOF
    exec 3<>"/dev/tcp/127.0.0.1/$tport"
    cat "$out/svc.trequests" >&3
    : > "$out/svc.telemetry.responses.jsonl"
    for _ in 1 2 3 4 5; do
      IFS= read -r line <&3
      printf '%s\n' "$line" >> "$out/svc.telemetry.responses.jsonl"
    done
    exec 3>&- 3<&-
    rm "$out/svc.trequests"
    wait "$tserve_pid"  # drain closes (and flushes) the request log
    python3 "$TOOLS_DIR/strip_wallclock.py" \
        "$out/svc.telemetry.responses.jsonl" "$out/svc.requestlog.jsonl"

    # Trace determinism: a single-worker server with tracing fully on.
    # Trace ids are derived (client-sent traceparents are fixed strings;
    # server-minted ones hash the FIFO request_id), span ids are sequence
    # hashes, and the trace artifact's summaries, the flight-recorder dump,
    # and the responses must all diff clean once wall_ keys and the
    # traceEvents timeline (wall-clock by nature) are stripped.
    "$SERVE" --tcp-port 0 --threads 1 --port-file "$out/rport.txt" \
        --trace-out "$out/svc.trace.json" --trace-sample-rate 1 \
        --flight-recorder 8 --admin-port 0 \
        --admin-port-file "$out/raport.txt" 2>/dev/null &
    rserve_pid=$!
    for _ in $(seq 1 200); do
      [ -s "$out/rport.txt" ] && [ -s "$out/raport.txt" ] && break
      sleep 0.05
    done
    rport="$(cat "$out/rport.txt")"
    raport="$(cat "$out/raport.txt")"
    rm "$out/rport.txt" "$out/raport.txt"
    python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
inst = json.load(open(out + "/inst.json"))
parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
requests = [
    {"id": 1, "type": "solve", "algorithm": "lcf", "instance": inst,
     "request_id": "trc-1", "traceparent": parent},  # continues the client trace
    {"id": 2, "type": "solve", "algorithm": "lcf", "instance": inst,
     "request_id": "trc-2"},                         # cache hit, minted trace
    {"id": 3, "type": "solve", "algorithm": "no-such-algorithm",
     "instance": inst, "request_id": "trc-err"},     # error: tail-kept
    {"id": 4, "type": "metrics"},                    # FIFO barrier: all flight
]                                                    # entries recorded
with open(out + "/svc.rrequests", "w") as f:
    for request in requests:
        f.write(json.dumps(request) + "\n")
EOF
    exec 3<>"/dev/tcp/127.0.0.1/$rport"
    cat "$out/svc.rrequests" >&3
    : > "$out/svc.trace.responses.jsonl"
    for _ in 1 2 3 4; do
      IFS= read -r line <&3
      printf '%s\n' "$line" >> "$out/svc.trace.responses.jsonl"
    done
    exec 3>&- 3<&-
    rm "$out/svc.rrequests"

    # Flight-recorder dump over the admin endpoint, headers stripped.
    exec 4<>"/dev/tcp/127.0.0.1/$raport"
    printf 'GET /debug/flight HTTP/1.0\r\n\r\n' >&4
    cat <&4 | sed '1,/^\r*$/d' > "$out/svc.flight.json"
    exec 4>&- 4<&-

    # Graceful stop closes (and footers) the trace artifact.
    exec 5<>"/dev/tcp/127.0.0.1/$rport"
    printf '{"id": 9, "type": "shutdown"}\n' >&5
    IFS= read -r _ <&5 || true
    exec 5>&- 5<&-
    wait "$rserve_pid"
    python3 "$TOOLS_DIR/strip_wallclock.py" \
        "$out/svc.trace.responses.jsonl" "$out/svc.trace.json" \
        "$out/svc.flight.json"

    # Routed determinism: a 2-backend single-worker topology behind the
    # front router, health probing off (--health-interval-ms 0 — probe
    # arrival is wall-clock, and these runs must not depend on it). With
    # one pipelined connection and FIFO workers everywhere, the digest
    # placement, the router-minted "r-<n>" ids, the cache outcomes, the
    # spliced route_backend tags, and the wide-event logs of the router
    # and both backends are exact functions of the request stream.
    ROUTE="$(dirname "$MECSC")/mecsc_route"
    if [ -x "$ROUTE" ]; then
      "$SERVE" --tcp-port 0 --threads 1 --port-file "$out/d1port.txt" \
          --request-log "$out/route.b1.requestlog.jsonl" 2>/dev/null &
      d1_pid=$!
      "$SERVE" --tcp-port 0 --threads 1 --port-file "$out/d2port.txt" \
          --request-log "$out/route.b2.requestlog.jsonl" 2>/dev/null &
      d2_pid=$!
      for _ in $(seq 1 200); do
        [ -s "$out/d1port.txt" ] && [ -s "$out/d2port.txt" ] && break
        sleep 0.05
      done
      "$ROUTE" --tcp-port 0 --port-file "$out/rtport.txt" \
          --backend "b1=tcp:127.0.0.1:$(cat "$out/d1port.txt")" \
          --backend "b2=tcp:127.0.0.1:$(cat "$out/d2port.txt")" \
          --health-interval-ms 0 \
          --request-log "$out/route.requestlog.jsonl" 2>/dev/null &
      route_pid=$!
      for _ in $(seq 1 200); do
        [ -s "$out/rtport.txt" ] && break
        sleep 0.05
      done
      rtport="$(cat "$out/rtport.txt")"
      rm "$out/rtport.txt" "$out/d1port.txt" "$out/d2port.txt"
      python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
inst = json.load(open(out + "/inst.json"))
requests = [
    {"id": 1, "type": "solve", "algorithm": "lcf", "instance": inst,
     "request_id": "rt-1"},                       # cold solve on the owner
    {"id": 2, "type": "solve", "algorithm": "lcf", "instance": inst},
                                                  # router-minted id, warm hit
    {"id": 3, "type": "solve", "algorithm": "appro", "instance": inst,
     "request_id": "rt-3"},                       # same digest, same owner
]
with open(out + "/svc.routedrequests", "w") as f:
    for request in requests:
        f.write(json.dumps(request) + "\n")
EOF
      exec 6<>"/dev/tcp/127.0.0.1/$rtport"
      cat "$out/svc.routedrequests" >&6
      : > "$out/svc.routed.responses.jsonl"
      for _ in 1 2 3; do
        IFS= read -r line <&6
        printf '%s\n' "$line" >> "$out/svc.routed.responses.jsonl"
      done
      exec 6>&- 6<&-
      rm "$out/svc.routedrequests"
      # Router first (its drain closes the backend pools and flushes its
      # log), then the backends flush theirs.
      kill -TERM "$route_pid"
      wait "$route_pid"
      kill -TERM "$d1_pid" "$d2_pid"
      wait "$d1_pid" "$d2_pid"
      python3 "$TOOLS_DIR/strip_wallclock.py" \
          "$out/svc.routed.responses.jsonl" "$out/route.requestlog.jsonl" \
          "$out/route.b1.requestlog.jsonl" "$out/route.b2.requestlog.jsonl"
    fi
  fi

  # Parse-path determinism: bench_json's record carries the canonical-dump
  # digest and node counts for the DOM/arena parity corpus; everything
  # outside wall_ keys must be bit-identical across runs.
  BENCH_JSON="$(dirname "$MECSC")/../bench/bench_json"
  if [ -x "$BENCH_JSON" ]; then
    MECSC_BENCH_SMOKE=1 MECSC_BENCH_JSON_DIR="$out" "$BENCH_JSON" >/dev/null
    python3 "$TOOLS_DIR/strip_wallclock.py" "$out/BENCH_json.json"
  fi
}

run_once "$DIR/a"
run_once "$DIR/b"

if ! diff -ru "$DIR/a" "$DIR/b"; then
  echo "check_determinism: FAIL — identical seeds produced different output" >&2
  exit 1
fi
echo "check_determinism: OK (seed $SEED, $(ls "$DIR/a" | wc -l) artifacts identical)"
