#!/usr/bin/env python3
"""Strips wall-clock fields from observability artifacts, in place.

The obs subsystem segregates timing metadata from algorithm results by a
single convention: any JSON key that starts with "wall_" (at any nesting
depth) is wall-clock and excluded from the determinism guarantee; every
other field must be bit-identical across same-seed runs. This script
removes exactly those keys and re-serializes canonically (sorted keys), so
check_determinism.sh can diff what remains.

"traceEvents" keys (Chrome/Perfetto trace arrays from the phase profiler)
are also removed: the literal key name is mandated by the trace-event
format, but every event in the array carries wall-clock ts/dur values, so
the whole array is wall-clock by nature.

Handles both whole-document JSON (metrics files, run manifests, BENCH_*
records, PROFILE_* reports) and JSON-lines traces (one object per line;
files ending in .jsonl, or any file when --jsonl is given).

Usage: strip_wallclock.py [--jsonl] FILE...
Exit status: 0 = all files rewritten, 2 = usage/parse error.
"""

from __future__ import annotations

import json
import sys

WALL_PREFIX = "wall_"

# Keys that are wall-clock by nature but whose literal names are mandated by
# an external format (Chrome trace-event "traceEvents" arrays).
WALL_KEYS = {"traceEvents"}


def strip(value):
    if isinstance(value, dict):
        return {
            k: strip(v)
            for k, v in value.items()
            if not k.startswith(WALL_PREFIX) and k not in WALL_KEYS
        }
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def rewrite(path: str, jsonl: bool) -> None:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if jsonl or path.endswith(".jsonl"):
        lines = [
            json.dumps(strip(json.loads(line)), sort_keys=True)
            for line in text.splitlines()
            if line.strip()
        ]
        out = "\n".join(lines)
    else:
        out = json.dumps(strip(json.loads(text)), sort_keys=True, indent=2)
    with open(path, "w", encoding="utf-8") as f:
        f.write(out + "\n")


def main(argv: list[str]) -> int:
    args = argv[1:]
    jsonl = False
    if args and args[0] == "--jsonl":
        jsonl = True
        args = args[1:]
    if not args:
        print("usage: strip_wallclock.py [--jsonl] FILE...", file=sys.stderr)
        return 2
    for path in args:
        try:
            rewrite(path, jsonl)
        except (OSError, json.JSONDecodeError) as err:
            print(f"strip_wallclock: {path}: {err}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
