// mecsc_route — digest-sharded front router for a fleet of mecsc_serve
// backends.
//
// Terminates client NDJSON connections and consistent-hashes each
// request's instance digest onto the backend that owns it (src/route/),
// so every backend's result cache stays hot for its shard:
//
//   mecsc_route --tcp-port 0 --port-file /tmp/route.port
//       --backend b1=tcp:127.0.0.1:7001
//       --backend b2=tcp:127.0.0.1:7002@2
//       --backend b3=unix:/tmp/mecsc3.sock
//
// "@2" gives a backend twice the keyspace share. Clients speak the exact
// mecsc_serve protocol to the router; responses additionally carry
// "route_backend" (and "route_spilled" when the owner was skipped). A
// {"type": "drain_backend", "backend": "b2"} request rehashes new keys
// away from b2 while its in-flight requests finish.
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "core/io.h"
#include "obs/metrics.h"
#include "obs/run_info.h"
#include "obs/trace.h"
#include "route/router.h"
#include "util/json.h"
#include "util/log.h"

namespace {

using namespace mecsc;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      R"(mecsc_route — digest-sharded front router (NDJSON over a socket)

usage:
  mecsc_route (--unix-socket PATH | --tcp-port PORT)
              --backend [NAME=]ENDPOINT[@WEIGHT]   (repeatable, >= 1)
                                     NAME defaults to b1, b2, ...; WEIGHT
                                     (default 1) scales the keyspace share
              [--health-interval-ms MS]  backend probe period (default
                                     1000; 0 disables probing — forward
                                     failures still mark backends down)
              [--probe-failures N]   consecutive probe failures before a
                                     backend is skipped (default 2)
              [--spill-queue-fraction F]  pre-spill when a probed backend's
                                     queue is >= F full (default 0.9;
                                     >= 1 disables pre-spill)
              [--parser arena|dom]   digest-extraction parse path
              [--port-file FILE]     write the bound TCP port
              [--request-log FILE]   wide-event JSON-lines log (one record
                                     per routed request)
              [--request-log-max-mb MB] [--slow-request-ms MS]
              [--trace-out FILE]     kept causal traces (Chrome trace-event
                                     JSON; spans are route.request ->
                                     route.forward, parenting the backend's
                                     svc.request across the hop)
              [--trace-sample-rate R] [--flight-recorder N]
              [--flight-dump FILE]   where SIGQUIT dumps the flight recorder
              [--admin-port PORT]    read-only loopback HTTP endpoint
              [--admin-port-file FILE] [--telemetry-window-ms MS]
              [--log-level LEVEL] [--metrics-out FILE] [--manifest-out FILE]

Stop with SIGTERM/SIGINT or a {"type": "shutdown"} request; in-flight
requests finish before exit. SIGQUIT dumps the flight recorder and keeps
routing.
)";
  std::exit(error.empty() ? 0 : 2);
}

/// Flag parser allowing repeated keys (--backend is given once per
/// backend; everything else behaves last-wins like the other tools).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      if (key == "--help" || key == "-h") usage();
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      if (i + 1 >= argc) usage("flag '" + key + "' needs a value");
      values_.emplace_back(key, argv[++i]);
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    std::optional<std::string> found;
    for (const auto& [k, v] : values_)
      if (k == key) found = v;
    return found;
  }

  std::vector<std::string> get_all(const std::string& key) const {
    std::vector<std::string> found;
    for (const auto& [k, v] : values_)
      if (k == key) found.push_back(v);
    return found;
  }

  double number_or(const std::string& key, double dflt) const {
    const auto v = get(key);
    return v ? std::stod(*v) : dflt;
  }

  const std::vector<std::pair<std::string, std::string>>& all() const {
    return values_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

/// Parses "[NAME=]ENDPOINT[@WEIGHT]". '@' never appears in the endpoint
/// grammar ("unix:<path>" / "tcp:<host>:<port>" / bare path), and the
/// NAME is cut at the first '=' only when one precedes the endpoint's
/// scheme prefix.
route::BackendSpec parse_backend(const std::string& text, std::size_t index) {
  route::BackendSpec spec;
  std::string rest = text;
  const std::size_t at = rest.rfind('@');
  if (at != std::string::npos) {
    const std::string weight_text = rest.substr(at + 1);
    try {
      const int weight = std::stoi(weight_text);
      if (weight < 1) usage("backend weight must be >= 1 in '" + text + "'");
      spec.weight = static_cast<std::size_t>(weight);
    } catch (const std::exception&) {
      usage("bad backend weight in '" + text + "'");
    }
    rest = rest.substr(0, at);
  }
  const std::size_t eq = rest.find('=');
  if (eq != std::string::npos) {
    spec.name = rest.substr(0, eq);
    spec.endpoint = rest.substr(eq + 1);
  } else {
    spec.name = "b" + std::to_string(index + 1);
    spec.endpoint = rest;
  }
  if (spec.name.empty() || spec.endpoint.empty())
    usage("bad --backend '" + text + "' (want [NAME=]ENDPOINT[@WEIGHT])");
  return spec;
}

/// Self-pipe signal bridge — same pattern as mecsc_serve.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int sig) {
  const char byte = sig == SIGQUIT ? 2 : 1;
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    if (const auto level = args.get("--log-level")) {
      if (*level == "debug") {
        util::set_log_level(util::LogLevel::Debug);
      } else if (*level == "info") {
        util::set_log_level(util::LogLevel::Info);
      } else if (*level == "warn") {
        util::set_log_level(util::LogLevel::Warn);
      } else if (*level == "error") {
        util::set_log_level(util::LogLevel::Error);
      } else if (*level == "off") {
        util::set_log_level(util::LogLevel::Off);
      } else {
        usage("unknown log level '" + *level + "'");
      }
    }
    obs::install_log_bridge();
    obs::MetricsRegistry::global().reset();
    const auto metrics_out = args.get("--metrics-out");
    const auto manifest_out = args.get("--manifest-out");

    route::RouterOptions options;
    options.unix_socket_path = args.get("--unix-socket").value_or("");
    if (const auto port = args.get("--tcp-port")) {
      options.tcp_port = static_cast<int>(std::stod(*port));
      if (options.tcp_port < 0 || options.tcp_port > 65535)
        usage("--tcp-port must be in [0, 65535]");
    }
    if (options.unix_socket_path.empty() && options.tcp_port < 0)
      usage("need --unix-socket PATH or --tcp-port PORT");
    if (!options.unix_socket_path.empty() && options.tcp_port >= 0)
      usage("--unix-socket and --tcp-port are mutually exclusive");
    const std::vector<std::string> backend_args = args.get_all("--backend");
    if (backend_args.empty()) usage("need at least one --backend");
    for (std::size_t i = 0; i < backend_args.size(); ++i)
      options.backends.push_back(parse_backend(backend_args[i], i));
    options.health_interval_ms =
        args.number_or("--health-interval-ms", 1000.0);
    options.probe_failure_threshold =
        static_cast<std::size_t>(args.number_or("--probe-failures", 2));
    if (options.probe_failure_threshold == 0)
      usage("--probe-failures must be >= 1");
    options.spill_queue_fraction =
        args.number_or("--spill-queue-fraction", 0.9);
    if (options.spill_queue_fraction <= 0.0)
      usage("--spill-queue-fraction must be > 0");
    if (const auto parser = args.get("--parser")) {
      if (*parser == "arena") {
        options.use_arena_parser = true;
      } else if (*parser == "dom") {
        options.use_arena_parser = false;
      } else {
        usage("--parser must be 'arena' or 'dom'");
      }
    }
    options.request_log_path = args.get("--request-log").value_or("");
    options.request_log_max_mb = args.number_or("--request-log-max-mb", 0.0);
    options.slow_request_ms = args.number_or("--slow-request-ms", -1.0);
    options.trace_out = args.get("--trace-out").value_or("");
    options.trace_sample_rate = args.number_or("--trace-sample-rate", 0.0);
    if (options.trace_sample_rate < 0.0 || options.trace_sample_rate > 1.0)
      usage("--trace-sample-rate must be in [0, 1]");
    options.flight_recorder_capacity =
        static_cast<std::size_t>(args.number_or("--flight-recorder", 256));
    if (const auto admin = args.get("--admin-port")) {
      options.admin_port = static_cast<int>(std::stod(*admin));
      if (options.admin_port < 0 || options.admin_port > 65535)
        usage("--admin-port must be in [0, 65535]");
    }
    options.telemetry_window_ms =
        args.number_or("--telemetry-window-ms", 60000.0);
    if (options.telemetry_window_ms <= 0.0)
      usage("--telemetry-window-ms must be > 0");
    if (args.get("--admin-port-file") && options.admin_port < 0)
      usage("--admin-port-file needs --admin-port");

    route::Router router(std::move(options));
    router.start();
    std::cerr << "routing on " << router.endpoint() << " ("
              << backend_args.size() << " backends)\n";
    if (router.admin_port() >= 0)
      std::cerr << "admin endpoint on tcp:127.0.0.1:" << router.admin_port()
                << " (/metrics, /stats, /debug/flight)\n";
    if (const auto port_file = args.get("--port-file")) {
      core::write_text_file(*port_file,
                            std::to_string(router.port()) + "\n");
    }
    if (const auto admin_port_file = args.get("--admin-port-file")) {
      core::write_text_file(*admin_port_file,
                            std::to_string(router.admin_port()) + "\n");
    }

    if (pipe(g_signal_pipe) != 0) {
      std::cerr << "error: cannot create signal pipe: " << std::strerror(errno)
                << "\n";
      return 1;
    }
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGQUIT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    const std::string flight_dump_path =
        args.get("--flight-dump").value_or("");
    std::thread signal_watcher([&router, &flight_dump_path] {
      char byte = 0;
      while (true) {
        const ssize_t n = read(g_signal_pipe[0], &byte, 1);
        if (n == 1 && byte == 2) {
          const std::string dump = router.flight_json().dump(2);
          if (flight_dump_path.empty()) {
            std::cerr << "flight recorder dump (SIGQUIT):\n" << dump << "\n";
          } else {
            try {
              core::write_text_file(flight_dump_path, dump + "\n");
              std::cerr << "wrote " << flight_dump_path << "\n";
            } catch (const std::exception& e) {
              std::cerr << "error: flight dump failed: " << e.what() << "\n";
            }
          }
          continue;
        }
        if (n == 1) {
          router.request_shutdown();
          return;
        }
        if (n == 0) return;
        if (errno != EINTR) return;
      }
    });

    router.wait();
    close(g_signal_pipe[1]);
    signal_watcher.join();
    close(g_signal_pipe[0]);

    const route::RouterStats stats = router.stats();
    std::cerr << "drained: " << stats.requests_total << " requests ("
              << stats.responses_ok << " ok, " << stats.responses_error
              << " errors), " << stats.forwarded << " forwarded, "
              << stats.spilled << " spilled, " << stats.backend_failures
              << " backend failures\n";

    if (metrics_out) {
      core::write_text_file(
          *metrics_out,
          obs::MetricsRegistry::global().snapshot().to_json().dump(2));
      std::cerr << "wrote " << *metrics_out << "\n";
    }
    std::optional<std::string> manifest_path = manifest_out;
    if (!manifest_path && metrics_out)
      manifest_path = *metrics_out + ".manifest.json";
    if (manifest_path) {
      obs::RunManifest manifest;
      manifest.tool = "mecsc_route";
      manifest.command = "route";
      for (const auto& [key, value] : args.all()) {
        // Repeated --backend flags fold into one comma-joined config value
        // (manifest config is a flat object).
        if (manifest.config.count(key)) {
          manifest.config[key] = util::JsonValue(
              manifest.config[key].as_string() + "," + value);
        } else {
          manifest.config[key] = util::JsonValue(value);
        }
      }
      obs::write_manifest(*manifest_path, manifest);
      std::cerr << "wrote " << *manifest_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
