#!/usr/bin/env python3
"""Concurrency lint for mecsc (sibling of lint_determinism.py).

Compile-time thread safety rests on two legs: the Clang Thread Safety
Analysis run against the annotated primitives in src/util/sync.h (the `tsa`
CMake preset), and this lint, which keeps the tree inside the subset of C++
that analysis can actually see. The rules:

  naked-primitive   Raw std::mutex / std::condition_variable /
                    std::shared_mutex / std::lock_guard / std::unique_lock /
                    std::scoped_lock / std::shared_lock anywhere but
                    src/util/sync.h. A raw primitive is invisible to the
                    analysis: state it guards is unchecked on every path.
                    Use util::Mutex + util::MutexLock + util::CondVar (or
                    SharedMutex + Reader/WriterMutexLock).
  wait-predicate    A single-argument cv.wait(mutex) that is not the body
                    of a while-loop. Without a loop re-checking the
                    predicate, a spurious or stolen wakeup proceeds on a
                    false condition (lost-wakeup bug). Write
                    `while (!cond) cv.wait(mu);` — the loop is also what
                    lets the analysis see the predicate's guarded reads
                    under the lock.
  manual-lock       Direct .lock()/.unlock()/.try_lock()/.lock_shared()
                    calls outside src/util/sync.h. Manual pairing leaks the
                    lock on every early return and exception path; RAII
                    (MutexLock) cannot.
  double-lock       Constructing a MutexLock (or Reader/WriterMutexLock) on
                    a mutex that an enclosing scope of the same function
                    already holds — self-deadlock on a non-recursive mutex.
                    (Textual heuristic: same spelling of the mutex
                    expression within one brace nest.)

Lock hierarchy (what the annotations in the tree encode; violations show up
as deadlocks under TSan and as review findings here):

  cache -> queue -> stats
    ResultCache::mutex_, BoundedQueue::mutex_, and the server/metrics stats
    locks are LEAF locks: never held while calling into another locking
    component. A future path that must nest them acquires left-to-right in
    the order above.
  SolverServer::lifecycle_mutex_ -> Connection write lock
    The one real nesting today: the server may hold the lifecycle lock
    while write_line() takes a connection's write lock (drain notices).
    Nothing may acquire lifecycle_mutex_ while holding a connection lock.

Suppressing a finding: append  // concurrency-lint: allow(<rule>)  to the
line, with a comment saying why it is safe. src/util/sync.h is exempt
wholesale from naked-primitive / manual-lock / wait-predicate: it is the
one place allowed to build on the raw primitives.

Usage:
  lint_concurrency.py [PATH...]   (default: src/ tests/ tools/ bench/
                                   examples/ relative to the repo root)
  lint_concurrency.py --self-check

Exit status: 0 = clean, 1 = findings, 2 = usage error / self-check failure.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

SYNC_H = "src/util/sync.h"

DEFAULT_TARGETS = ("src", "tests", "tools", "bench", "examples")

ALLOW_RE = re.compile(r"concurrency-lint:\s*allow\(([\w, -]+)\)")

NAKED_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

# lock()/unlock() return void, so a real mutex call is the whole statement;
# requiring statement position keeps value uses like std::weak_ptr::lock()
# (`if (auto p = weak.lock())`) out of scope. try_lock() returns bool and is
# normally a condition, so it is matched anywhere.
MANUAL_LOCK_RE = re.compile(
    r"^\s*[\w\.\[\]]+(?:\s*->\s*[\w\.\[\]]+)*\s*(?:\.|->)\s*"
    r"(?:lock|unlock|lock_shared|unlock_shared)\s*\(\s*\)\s*;"
    r"|[\w\)\]]\s*(?:\.|->)\s*try_lock(?:_shared)?\s*\(\s*\)"
)

# cv.wait(mu) — exactly one argument (no comma ⇒ no predicate overload).
WAIT_CALL_RE = re.compile(r"(?:\.|->)\s*wait\s*\(\s*([^(),]+?)\s*\)")

# MutexLock lock(expr); / WriterMutexLock / ReaderMutexLock — the RAII
# acquisitions double-lock tracks. Group 1 is the mutex expression.
RAII_ACQUIRE_RE = re.compile(
    r"\b(?:Mutex|ReaderMutex|WriterMutex)Lock\s+\w+\s*[({]\s*([^(){};]+?)\s*[)}]"
)


def strip_code(text: str) -> list[str]:
    """Lines with comments and string/char literals blanked (structure and
    line numbers preserved), so rules match only real code."""
    string_or_char = re.compile(r'"(?:\\.|[^"\\])*"' r"|'(?:\\.|[^'\\])*'")
    text = string_or_char.sub(
        lambda m: '"' + " " * (len(m.group()) - 2) + '"', text
    )
    out: list[str] = []
    in_block = False
    for line in text.split("\n"):
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2 :]
            in_block = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        out.append(line)
    return out


def wait_findings(code_lines: list[str]) -> list[tuple[int, str]]:
    """Single-argument wait() calls with no while-loop in sight."""
    out = []
    for lineno, code in enumerate(code_lines, start=1):
        m = WAIT_CALL_RE.search(code)
        if not m:
            continue
        # The enclosing loop may sit on the same line or just above
        # (`while (...)\n    cv.wait(mu);`). A do { ... } while tail also
        # counts — the wait is re-armed by the loop either way.
        window = code_lines[max(0, lineno - 3) : lineno]
        if any(re.search(r"\b(?:while|for)\s*\(|\bdo\b", w) for w in window):
            continue
        out.append(
            (
                lineno,
                f"wait({m.group(1).strip()}) outside a while-loop: spurious "
                "wakeups proceed on a false predicate; write "
                "`while (!cond) cv.wait(mu);`",
            )
        )
    return out


def double_lock_findings(code_lines: list[str]) -> list[tuple[int, str]]:
    """RAII acquisitions of a mutex an enclosing scope already holds.

    Tracks brace depth across the file; each acquisition is live until its
    scope closes. Depth resets cannot cross function boundaries because a
    function body always closes every brace it opens.
    """
    out = []
    depth = 0
    held: list[tuple[int, str, int]] = []  # (depth, mutex expr, line)
    for lineno, code in enumerate(code_lines, start=1):
        for m in RAII_ACQUIRE_RE.finditer(code):
            expr = re.sub(r"\s+", "", m.group(1))
            for _, held_expr, held_line in held:
                if held_expr == expr:
                    out.append(
                        (
                            lineno,
                            f"'{m.group(1).strip()}' is already locked at "
                            f"line {held_line} in an enclosing scope: "
                            "self-deadlock on a non-recursive mutex",
                        )
                    )
                    break
            else:
                held.append((depth, expr, lineno))
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                held = [h for h in held if h[0] < depth or depth < 0]
        if depth <= 0:
            depth = max(depth, 0)
            held = []
    return out


def lint_file(path: Path, repo_root: Path) -> list[str]:
    resolved = path.resolve()
    if resolved.is_relative_to(repo_root):
        rel = resolved.relative_to(repo_root).as_posix()
    else:
        rel = resolved.as_posix()
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}: unreadable: {err}"]
    raw_lines = raw.split("\n")
    code_lines = strip_code(raw)

    collected: list[tuple[int, str, str]] = []  # (lineno, rule, message)
    if rel != SYNC_H:
        for lineno, code in enumerate(code_lines, start=1):
            if NAKED_PRIMITIVE_RE.search(code):
                collected.append(
                    (
                        lineno,
                        "naked-primitive",
                        "raw synchronization primitive: invisible to the "
                        "thread-safety analysis; use util::Mutex / "
                        "util::MutexLock / util::CondVar (src/util/sync.h)",
                    )
                )
            if MANUAL_LOCK_RE.search(code):
                collected.append(
                    (
                        lineno,
                        "manual-lock",
                        "manual lock()/unlock() pairing leaks on early "
                        "returns and exceptions; use RAII util::MutexLock",
                    )
                )
        for lineno, message in wait_findings(code_lines):
            collected.append((lineno, "wait-predicate", message))
    for lineno, message in double_lock_findings(code_lines):
        collected.append((lineno, "double-lock", message))

    findings = []
    for lineno, rule, message in sorted(collected):
        allow = ALLOW_RE.search(raw_lines[lineno - 1])
        if allow and rule in [a.strip() for a in allow.group(1).split(",")]:
            continue
        findings.append(
            f"{rel}:{lineno}: [{rule}] {message}\n"
            f"    {raw_lines[lineno - 1].strip()}"
        )
    return findings


def self_check() -> int:
    """Synthesizes sources exercising every rule, both directions."""
    clean = """
    #include "util/sync.h"
    class Queue {
     public:
      void push(int v) {
        const util::MutexLock lock(mutex_);
        items_.push_back(v);
        cv_.notify_one();
      }
      int pop() {
        const util::MutexLock lock(mutex_);
        while (items_.empty()) cv_.wait(mutex_);
        int v = items_.back();
        items_.pop_back();
        return v;
      }
     private:
      mutable util::Mutex mutex_;
      util::CondVar cv_;
      std::vector<int> items_ MECSC_GUARDED_BY(mutex_);
    };
    """
    cases: list[tuple[str, str, str | None]] = [
        ("clean.cpp", clean, None),
        ("naked.cpp", "static std::mutex g_mu;\n", "naked-primitive"),
        (
            "guard.cpp",
            "void f() { const std::lock_guard<std::mutex> l(m); }\n",
            "naked-primitive",
        ),
        (
            "no_loop_wait.cpp",
            "void f() {\n  const util::MutexLock lock(mu_);\n"
            "  cv_.wait(mu_);\n}\n",
            "wait-predicate",
        ),
        (
            "looped_wait.cpp",
            "void f() {\n  const util::MutexLock lock(mu_);\n"
            "  while (!done_)\n    cv_.wait(mu_);\n}\n",
            None,
        ),
        (
            "manual.cpp",
            "void f() {\n  mu_.lock();\n  ++x_;\n  mu_.unlock();\n}\n",
            "manual-lock",
        ),
        (
            "relock.cpp",
            "void f() {\n  const util::MutexLock a(mu_);\n"
            "  {\n    const util::MutexLock b(mu_);\n  }\n}\n",
            "double-lock",
        ),
        (
            "sibling_scopes.cpp",
            "void f() {\n  { const util::MutexLock a(mu_); }\n"
            "  { const util::MutexLock b(mu_); }\n}\n",
            None,
        ),
        (
            "two_functions.cpp",
            "void f() { const util::MutexLock a(mu_); }\n"
            "void g() { const util::MutexLock b(mu_); }\n",
            None,
        ),
        (
            "allowed.cpp",
            "static std::mutex g_mu;  "
            "// concurrency-lint: allow(naked-primitive)\n",
            None,
        ),
    ]
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for name, text, expected_rule in cases:
            p = root / name
            p.write_text(text, encoding="utf-8")
            findings = lint_file(p, root)
            rules = {
                re.search(r"\[([\w-]+)\]", f).group(1) for f in findings
            }
            if expected_rule is None and findings:
                failures.append(f"{name}: expected clean, got {sorted(rules)}")
            elif expected_rule is not None and expected_rule not in rules:
                failures.append(
                    f"{name}: expected [{expected_rule}], got {sorted(rules)}"
                )
    if failures:
        for f in failures:
            print(f"lint_concurrency --self-check: FAIL: {f}", file=sys.stderr)
        return 2
    print(f"lint_concurrency --self-check: OK ({len(cases)} cases)")
    return 0


def main(argv: list[str]) -> int:
    if argv[1:] == ["--self-check"]:
        return self_check()
    repo_root = Path(__file__).resolve().parent.parent
    targets = [Path(a) for a in argv[1:]] or [
        repo_root / t for t in DEFAULT_TARGETS
    ]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(
                p
                for p in sorted(target.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES
            )
        elif target.is_file():
            files.append(target)
        else:
            print(f"lint_concurrency: no such path: {target}", file=sys.stderr)
            return 2

    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f, repo_root))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\nlint_concurrency: {len(findings)} finding(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_concurrency: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
