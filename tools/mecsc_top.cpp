// mecsc_top — live terminal dashboard for a running mecsc_serve.
//
//   mecsc_top --connect tcp:127.0.0.1:7077 --interval-ms 1000
//
// Polls the service's "metrics" request (the same snapshot the admin
// /stats endpoint serves) and redraws a top(1)-style view: service gauges,
// cache counters, and a per-request-type RED table with log-linear
// latency quantiles and a bucket sparkline. Read-only — the tool sends
// nothing but "metrics" requests on one connection.
//
// For scripting/CI, --iterations N exits after N polls and --no-clear 1
// appends frames instead of redrawing in place.
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include <unistd.h>

#include "svc/client.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace mecsc;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      R"(mecsc_top — live telemetry dashboard for the solver service

usage:
  mecsc_top --connect ENDPOINT       unix:PATH | tcp:HOST:PORT
            [--interval-ms MS]       poll period (default 1000)
            [--iterations N]         exit after N frames (default 0 =
                                     run until the connection drops or
                                     the process is interrupted)
            [--no-clear VAL]         VAL=1 appends frames instead of
                                     clearing the screen (for logs/CI)

Renders worker/queue/cache/trace gauges plus a per-request-type RED table
(rate, errors, latency quantiles from the server's log-linear histograms)
with a per-type latency sparkline. Rows are colored by windowed error rate
(green < 1%, yellow < 5%, red otherwise) when stdout is a terminal.
Read-only: only "metrics" requests are sent.
)";
  std::exit(error.empty() ? 0 : 2);
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      if (key == "--help" || key == "-h") usage();
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      if (i + 1 >= argc) usage("flag '" + key + "' needs a value");
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
  }

  double number_or(const std::string& key, double dflt) const {
    const auto v = get(key);
    return v ? std::stod(*v) : dflt;
  }

  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) usage("missing required flag '" + key + "'");
    return *v;
  }

 private:
  std::map<std::string, std::string> values_;
};

double number_or_zero(const util::JsonValue& obj, const std::string& key) {
  if (!obj.is_object() || !obj.contains(key)) return 0.0;
  const util::JsonValue& v = obj.at(key);
  return v.is_number() ? v.as_number() : 0.0;
}

/// Renders the histogram's nonzero buckets as a fixed-width sparkline:
/// each cell is one bucket, height proportional to its share of the
/// largest bucket. Buckets arrive as [lower_ms, upper_ms, count] triples.
std::string sparkline(const util::JsonValue& buckets, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (!buckets.is_array() || buckets.as_array().empty())
    return std::string(width, '-');
  const util::JsonArray& cells = buckets.as_array();
  // Down-sample (or pad) the bucket list onto `width` columns.
  std::vector<double> columns(width, 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].is_array() || cells[i].as_array().size() != 3) continue;
    const double count = cells[i].as_array()[2].as_number();
    const std::size_t column =
        cells.size() <= width ? i : i * width / cells.size();
    if (column < width) columns[column] += count;
  }
  double peak = 0.0;
  for (const double c : columns) peak = std::max(peak, c);
  std::string out;
  for (const double c : columns) {
    if (peak <= 0.0 || c <= 0.0) {
      out += " ";
      continue;
    }
    const std::size_t level = std::min<std::size_t>(
        7, static_cast<std::size_t>(c / peak * 7.999));
    out += kBlocks[level];
  }
  return out;
}

/// RED-row coloring by windowed error rate: green under 1%, yellow under
/// 5%, red at or above. Applied to whole rendered lines (never inside
/// table cells — ANSI escapes would break the column width math).
const char* error_rate_color(double requests, double errors) {
  if (requests <= 0.0 || errors / requests < 0.01) return "\x1b[32m";
  if (errors / requests < 0.05) return "\x1b[33m";
  return "\x1b[31m";
}

/// Router-tier section: rendered only when the telemetry carries the
/// "route" object (the endpoint is a mecsc_route, not a mecsc_serve).
/// One row per backend: shard state (draining/unhealthy/spill counters)
/// plus the latest probed load when the health prober has fresh data.
std::string render_route(const util::JsonValue& route) {
  std::string out;
  out += "\nroute " + util::format_double(number_or_zero(route, "forwarded"),
                                          0) +
         " forwarded / " +
         util::format_double(number_or_zero(route, "spilled"), 0) +
         " spilled / " +
         util::format_double(number_or_zero(route, "backend_reconnects"), 0) +
         " reconnects / " +
         util::format_double(number_or_zero(route, "backend_failures"), 0) +
         " failures\n";
  if (!route.is_object() || !route.contains("backends") ||
      !route.at("backends").is_array())
    return out;
  util::Table table({"backend", "state", "wt", "fwd", "spill", "fail",
                     "reconn", "queue", "busy", "svc ms"});
  table.set_precision(2);
  for (const util::JsonValue& b : route.at("backends").as_array()) {
    std::string state = "up";
    if (b.contains("draining") && b.at("draining").as_bool()) {
      state = "draining";
    } else if (b.contains("healthy") && !b.at("healthy").as_bool()) {
      state = "down";
    }
    const bool probed = b.contains("queue_capacity");
    table.add_row(
        {b.at("name").as_string(), state,
         static_cast<long long>(number_or_zero(b, "weight")),
         static_cast<long long>(number_or_zero(b, "forwarded")),
         static_cast<long long>(number_or_zero(b, "spilled_to")),
         static_cast<long long>(number_or_zero(b, "failures")),
         static_cast<long long>(number_or_zero(b, "reconnects")),
         probed ? util::format_double(number_or_zero(b, "wall_queue_depth"),
                                      0) + "/" +
                      util::format_double(number_or_zero(b, "queue_capacity"),
                                          0)
                : std::string("-"),
         probed ? util::format_double(number_or_zero(b, "wall_inflight"), 0) +
                      "/" +
                      util::format_double(number_or_zero(b, "workers"), 0)
                : std::string("-"),
         probed ? util::format_double(
                      number_or_zero(b, "wall_service_time_ms"), 2)
                : std::string("-")});
  }
  out += table.to_string();
  return out;
}

/// One dashboard frame rendered from a "metrics" response body.
std::string render_frame(const std::string& endpoint,
                         const util::JsonValue& telemetry, bool color) {
  const util::JsonValue& gauges = telemetry.at("gauges");
  const util::JsonValue& live = telemetry.at("wall_gauges");
  const util::JsonValue& cache = telemetry.at("cache");
  // Absent against a pre-tracing server; every gauge then reads 0.
  const util::JsonValue trace = telemetry.is_object() &&
                                        telemetry.contains("trace")
                                    ? telemetry.at("trace")
                                    : util::JsonValue();

  std::string out;
  out += "mecsc_top — " + endpoint + "   uptime " +
         util::format_double(number_or_zero(live, "uptime_ms") / 1000.0, 1) +
         "s\n";
  out += "workers " +
         util::format_double(number_or_zero(live, "workers_busy"), 0) + "/" +
         util::format_double(number_or_zero(gauges, "workers"), 0) +
         " busy   queue " +
         util::format_double(number_or_zero(live, "queue_depth"), 0) + "/" +
         util::format_double(number_or_zero(gauges, "queue_capacity"), 0) +
         "   connections " +
         util::format_double(number_or_zero(live, "connections_in_flight"),
                             0) +
         " in-flight / " +
         util::format_double(number_or_zero(live, "accepted_connections"),
                             0) +
         " accepted\n";
  out += "cache " + util::format_double(number_or_zero(cache, "size"), 0) +
         "/" + util::format_double(number_or_zero(gauges, "cache_capacity"),
                                   0) +
         " entries   " +
         util::format_double(number_or_zero(cache, "hits"), 0) + " hits / " +
         util::format_double(number_or_zero(cache, "misses"), 0) +
         " misses / " +
         util::format_double(number_or_zero(cache, "coalesced"), 0) +
         " coalesced   hit-ratio " +
         util::format_double(100.0 * number_or_zero(live, "cache_hit_ratio"),
                             1) +
         "%   log-drops " +
         util::format_double(number_or_zero(live, "request_log_dropped"), 0) +
         "\n";
  out += "traces " +
         util::format_double(number_or_zero(trace, "sampled"), 0) +
         " sampled / " +
         util::format_double(number_or_zero(trace, "kept"), 0) + " kept / " +
         util::format_double(number_or_zero(live, "trace_writer_dropped"),
                             0) +
         " writer-drops   flight " +
         util::format_double(number_or_zero(trace, "flight_size"), 0) + "/" +
         util::format_double(number_or_zero(trace, "flight_capacity"), 0) +
         " (" +
         util::format_double(number_or_zero(trace, "flight_recorded_total"),
                             0) +
         " recorded)\n\n";

  util::Table table({"type", "req", "err", "rate/s", "mean ms", "p50", "p95",
                     "p99", "p999", "max", "latency"});
  table.set_precision(2);
  const util::JsonValue& red = telemetry.at("red");
  // Row colors, in insertion order (= the table's rendered row order).
  std::vector<const char*> row_colors;
  for (const auto& [type, stats] : red.as_object()) {
    const util::JsonValue& latency = stats.at("wall_latency_ms");
    const util::JsonValue& window = stats.at("wall_window");
    row_colors.push_back(
        error_rate_color(number_or_zero(window, "requests"),
                         number_or_zero(window, "errors")));
    table.add_row({type,
                   static_cast<long long>(number_or_zero(stats, "requests")),
                   static_cast<long long>(number_or_zero(stats, "errors")),
                   number_or_zero(window, "rate_per_s"),
                   number_or_zero(latency, "mean"),
                   number_or_zero(latency, "p50"),
                   number_or_zero(latency, "p95"),
                   number_or_zero(latency, "p99"),
                   number_or_zero(latency, "p999"),
                   number_or_zero(latency, "max"),
                   sparkline(latency.is_object() && latency.contains("buckets")
                                 ? latency.at("buckets")
                                 : util::JsonValue(),
                             16)});
  }
  const std::string rendered = table.to_string();
  const std::string route_section =
      telemetry.is_object() && telemetry.contains("route")
          ? render_route(telemetry.at("route"))
          : std::string();
  if (!color) {
    out += rendered;
    out += route_section;
    return out;
  }
  // Colorize whole lines after rendering: line 0 is the header, line 1 the
  // separator, line 2+i is data row i.
  std::size_t line = 0;
  std::size_t start = 0;
  while (start < rendered.size()) {
    std::size_t end = rendered.find('\n', start);
    if (end == std::string::npos) end = rendered.size();
    const std::string text = rendered.substr(start, end - start);
    if (line >= 2 && line - 2 < row_colors.size()) {
      out += row_colors[line - 2] + text + "\x1b[0m\n";
    } else {
      out += text + "\n";
    }
    start = end + 1;
    ++line;
  }
  out += route_section;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    const std::string endpoint = args.require("--connect");
    const double interval_ms = args.number_or("--interval-ms", 1000.0);
    const std::uint64_t iterations =
        static_cast<std::uint64_t>(args.number_or("--iterations", 0));
    const bool clear = args.get_or("--no-clear", "0") != "1";
    // Error-rate row coloring only when a human is watching: ANSI escapes
    // in redirected output would pollute CI logs and diffs.
    const bool color = isatty(STDOUT_FILENO) == 1;
    if (interval_ms <= 0.0) usage("--interval-ms must be > 0");

    svc::SvcClient client = svc::SvcClient::connect(endpoint);
    std::uint64_t frame = 0;
    while (true) {
      const svc::SvcResponse response = client.metrics();
      if (!response.ok) {
        std::cerr << "error: metrics request failed: " << response.error_code
                  << ": " << response.error_message << "\n";
        return 1;
      }
      if (!response.body.contains("telemetry")) {
        std::cerr << "error: server response carries no telemetry (old "
                     "server?)\n";
        return 1;
      }
      if (clear) std::cout << "\x1b[2J\x1b[H";
      std::cout << render_frame(endpoint, response.body.at("telemetry"),
                                color)
                << std::flush;
      if (!clear) std::cout << "\n";
      ++frame;
      if (iterations > 0 && frame >= iterations) return 0;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(interval_ms));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
