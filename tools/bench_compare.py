#!/usr/bin/env python3
"""Compares two directories of BENCH_*.json files (bench regression gate).

Each bench binary writes BENCH_<name>.json (see bench/bench_common.h): a
deterministic payload (algorithm results, reproducible bit-for-bit from the
seeds) plus wall-clock timings under "wall_"-prefixed keys. This tool
splits the two apart and holds them to different standards:

  deterministic   After stripping wall_ keys, the baseline and current
                  documents must serialize byte-identically. Any drift is
                  an unflagged behavior change (or hidden nondeterminism)
                  and always fails the comparison — there is no threshold
                  for correctness.
  wall-clock      Per-record "wall_*" timings are compared as percentages.
                  Deltas beyond --threshold (default 25%) are reported as
                  regressions/improvements. CI hardware is noisy, so these
                  only fail the run under --fail-on-regression.

Benches present in just one directory are listed and skipped (new benches
appear, old ones retire; that is not a regression).

Usage:
  bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold PCT]
                   [--fail-on-regression]
  bench_compare.py --self-check

Exit status: 0 = comparable and deterministic payloads identical,
1 = deterministic mismatch (or wall regression under --fail-on-regression),
2 = usage error / self-check failure.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

WALL_PREFIX = "wall_"
DEFAULT_THRESHOLD_PCT = 25.0


def split_walls(value, path=""):
    """Returns (deterministic_copy, {json_path: wall_value})."""
    walls: dict[str, float] = {}
    if isinstance(value, dict):
        det = {}
        for k, v in sorted(value.items()):
            # Records carry a "label" key; use it to keep wall paths stable
            # under record reordering-free insertions.
            key_path = f"{path}.{k}" if path else k
            if k.startswith(WALL_PREFIX):
                if isinstance(v, (int, float)):
                    walls[key_path] = float(v)
                continue
            sub_det, sub_walls = split_walls(v, key_path)
            det[k] = sub_det
            walls.update(sub_walls)
        return det, walls
    if isinstance(value, list):
        det = []
        for i, v in enumerate(value):
            label = ""
            if isinstance(v, dict) and isinstance(v.get("label"), str):
                label = v["label"]
            sub_det, sub_walls = split_walls(v, f"{path}[{label or i}]")
            det.append(sub_det)
            walls.update(sub_walls)
        return det, walls
    return value, walls


def load(path: Path):
    with open(path, encoding="utf-8") as f:
        return split_walls(json.load(f))


def compare_dirs(
    baseline: Path, current: Path, threshold_pct: float, fail_on_regression: bool
) -> int:
    base_files = {p.name: p for p in sorted(baseline.glob("BENCH_*.json"))}
    cur_files = {p.name: p for p in sorted(current.glob("BENCH_*.json"))}
    if not base_files and not cur_files:
        print("bench_compare: no BENCH_*.json in either directory", file=sys.stderr)
        return 2

    for name in sorted(set(base_files) - set(cur_files)):
        print(f"bench_compare: {name}: only in baseline (skipped)")
    for name in sorted(set(cur_files) - set(base_files)):
        print(f"bench_compare: {name}: only in current (skipped)")

    mismatches = 0
    regressions = 0
    compared = 0
    for name in sorted(set(base_files) & set(cur_files)):
        try:
            base_det, base_walls = load(base_files[name])
            cur_det, cur_walls = load(cur_files[name])
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_compare: {name}: unreadable: {err}", file=sys.stderr)
            return 2
        compared += 1

        base_text = json.dumps(base_det, sort_keys=True)
        cur_text = json.dumps(cur_det, sort_keys=True)
        if base_text != cur_text:
            mismatches += 1
            print(f"bench_compare: {name}: DETERMINISTIC MISMATCH")
            diff_paths = diff_leaves(base_det, cur_det)
            for p, (a, b) in list(diff_paths.items())[:10]:
                print(f"  {p}: baseline={a!r} current={b!r}")
            if len(diff_paths) > 10:
                print(f"  ... and {len(diff_paths) - 10} more")
            continue

        for key in sorted(set(base_walls) & set(cur_walls)):
            a, b = base_walls[key], cur_walls[key]
            if a <= 0.0:
                continue
            delta_pct = 100.0 * (b - a) / a
            if abs(delta_pct) >= threshold_pct:
                kind = "regression" if delta_pct > 0 else "improvement"
                print(
                    f"bench_compare: {name}: wall {kind} {delta_pct:+.1f}% "
                    f"at {key} ({a:.3f} -> {b:.3f})"
                )
                if delta_pct > 0:
                    regressions += 1

    if mismatches:
        print(
            f"bench_compare: FAIL — {mismatches} bench(es) changed "
            "deterministic results",
            file=sys.stderr,
        )
        return 1
    if regressions and fail_on_regression:
        print(
            f"bench_compare: FAIL — {regressions} wall-time regression(s) "
            f"over {threshold_pct:.0f}%",
            file=sys.stderr,
        )
        return 1
    note = f", {regressions} wall regression(s) noted" if regressions else ""
    print(f"bench_compare: OK ({compared} bench(es) compared{note})")
    return 0


def diff_leaves(a, b, path="") -> dict:
    """Leaf-level differences between two stripped documents."""
    out: dict = {}
    if isinstance(a, dict) and isinstance(b, dict):
        for k in sorted(set(a) | set(b)):
            p = f"{path}.{k}" if path else k
            if k not in a:
                out[p] = ("<absent>", b[k])
            elif k not in b:
                out[p] = (a[k], "<absent>")
            else:
                out.update(diff_leaves(a[k], b[k], p))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out[f"{path}.length"] = (len(a), len(b))
        for i, (x, y) in enumerate(zip(a, b)):
            out.update(diff_leaves(x, y, f"{path}[{i}]"))
        return out
    if a != b:
        out[path or "<root>"] = (a, b)
    return out


def self_check() -> int:
    """Synthesizes baseline/current pairs and verifies both detectors."""
    doc = {
        "bench": "demo",
        "obs_format_version": 1,
        "repetitions": 5,
        "records": [
            {"label": "size=100", "social_cost": 10.5, "wall_lcf_ms": 4.0},
            {"label": "size=200", "social_cost": 21.0, "wall_lcf_ms": 9.0},
        ],
    }

    def write(dirpath: Path, document) -> None:
        with open(dirpath / "BENCH_demo.json", "w", encoding="utf-8") as f:
            json.dump(document, f)

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # (1) identical payloads pass, even with different wall times.
        a, b = root / "a1", root / "b1"
        a.mkdir(), b.mkdir()
        noisy = json.loads(json.dumps(doc))
        noisy["records"][0]["wall_lcf_ms"] = 4.3  # < threshold
        write(a, doc), write(b, noisy)
        if compare_dirs(a, b, DEFAULT_THRESHOLD_PCT, False) != 0:
            failures.append("identical deterministic payloads did not pass")

        # (2) a deterministic-mean change must fail.
        a, b = root / "a2", root / "b2"
        a.mkdir(), b.mkdir()
        drifted = json.loads(json.dumps(doc))
        drifted["records"][1]["social_cost"] = 21.5
        write(a, doc), write(b, drifted)
        if compare_dirs(a, b, DEFAULT_THRESHOLD_PCT, False) != 1:
            failures.append("deterministic mismatch was not detected")

        # (3) a large wall regression warns by default...
        a, b = root / "a3", root / "b3"
        a.mkdir(), b.mkdir()
        slower = json.loads(json.dumps(doc))
        slower["records"][0]["wall_lcf_ms"] = 8.0  # +100%
        write(a, doc), write(b, slower)
        if compare_dirs(a, b, DEFAULT_THRESHOLD_PCT, False) != 0:
            failures.append("wall regression failed the run without the flag")
        # ... and fails under --fail-on-regression.
        if compare_dirs(a, b, DEFAULT_THRESHOLD_PCT, True) != 1:
            failures.append("wall regression not fatal under the flag")

    if failures:
        for f in failures:
            print(f"bench_compare --self-check: FAIL: {f}", file=sys.stderr)
        return 2
    print("bench_compare --self-check: OK")
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if args == ["--self-check"]:
        return self_check()
    threshold = DEFAULT_THRESHOLD_PCT
    fail_on_regression = False
    positional: list[str] = []
    i = 0
    while i < len(args):
        if args[i] == "--threshold":
            if i + 1 >= len(args):
                print("bench_compare: --threshold needs a value", file=sys.stderr)
                return 2
            threshold = float(args[i + 1])
            i += 2
        elif args[i] == "--fail-on-regression":
            fail_on_regression = True
            i += 1
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline, current = Path(positional[0]), Path(positional[1])
    for d in (baseline, current):
        if not d.is_dir():
            print(f"bench_compare: not a directory: {d}", file=sys.stderr)
            return 2
    return compare_dirs(baseline, current, threshold, fail_on_regression)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
