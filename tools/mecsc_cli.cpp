// mecsc — command-line front end for the service-caching library.
//
// Workflow-oriented subcommands around the JSON interchange format
// (core/io.h):
//
//   mecsc generate --size 250 --providers 100 --seed 7 -o instance.json
//   mecsc solve    -i instance.json --algorithm lcf --one-minus-xi 0.3
//                  -o placement.json
//   mecsc evaluate -i instance.json -p placement.json
//   mecsc info     -i instance.json
//
// Every command reads/writes files (or stdout with "-") so experiments can
// be scripted and diffed.
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "core/appro.h"
#include "core/baselines.h"
#include "core/congestion_game.h"
#include "core/delay_model.h"
#include "core/incentives.h"
#include "core/io.h"
#include "core/lcf.h"
#include "core/pricing.h"
#include "core/social_optimum.h"
#include "core/solver_api.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_info.h"
#include "obs/trace.h"
#include "sim/emulation.h"
#include "sim/workload.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace mecsc;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      R"(mecsc — stable service caching in mobile edge-clouds (ICDCS 2020)

usage:
  mecsc generate [--size N] [--providers N] [--seed S] [--as1755]
                 [--congestion linear|quadratic|exponential|harmonic]
                 [-o FILE]
  mecsc solve    -i FILE --algorithm lcf|appro|appro-literal|jo|offload|
                 selfish|optimal [--one-minus-xi X] [-o FILE]
  mecsc evaluate -i FILE -p FILE
  mecsc emulate  -i FILE -p FILE [--horizon S] [--seed S]
  mecsc delay    -i FILE -p FILE
  mecsc stability -i FILE [--one-minus-xi X]
  mecsc price    -i FILE [-o FILE]
  mecsc info     -i FILE

observability flags (valid on every subcommand):
  --log-level debug|info|warn|error|off   stderr log threshold (default warn)
  --trace-out FILE     JSON-lines algorithm trace (per-round game events,
                       solver spans; see DESIGN.md "Observability")
  --metrics-out FILE   counters/gauges/histograms of the run as JSON
  --profile-out FILE   hierarchical phase profile (per-phase call counts and
                       wall times) with a Chrome/Perfetto traceEvents array;
                       load it at https://ui.perfetto.dev
  --manifest-out FILE  run manifest (seed, config, instance digest, build);
                       defaults to <metrics-out|trace-out>.manifest.json
                       when either of those is requested

"-o -" (default) writes JSON to stdout.
)";
  std::exit(error.empty() ? 0 : 2);
}

/// Tiny flag parser: --key value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 && key.rfind('-', 0) != 0) {
        usage("unexpected argument '" + key + "'");
      }
      if (key == "--as1755") {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) usage("flag '" + key + "' needs a value");
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
  }

  double number_or(const std::string& key, double dflt) const {
    const auto v = get(key);
    return v ? std::stod(*v) : dflt;
  }

  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) usage("missing required flag '" + key + "'");
    return *v;
  }

  /// Every flag as parsed, for the run manifest.
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Digest of the instance consumed (or generated) by the current command,
/// recorded into the run manifest.
std::optional<std::string> g_instance_digest;

/// Configures logging/tracing/metrics from the shared observability flags
/// and, on finish(), writes the metrics file and run manifest.
class ObsSession {
 public:
  ObsSession(std::string command, const Args& args)
      : command_(std::move(command)),
        trace_out_(args.get("--trace-out")),
        metrics_out_(args.get("--metrics-out")),
        profile_out_(args.get("--profile-out")),
        manifest_out_(args.get("--manifest-out")) {
    if (const auto level = args.get("--log-level")) {
      if (*level == "debug") {
        util::set_log_level(util::LogLevel::Debug);
      } else if (*level == "info") {
        util::set_log_level(util::LogLevel::Info);
      } else if (*level == "warn") {
        util::set_log_level(util::LogLevel::Warn);
      } else if (*level == "error") {
        util::set_log_level(util::LogLevel::Error);
      } else if (*level == "off") {
        util::set_log_level(util::LogLevel::Off);
      } else {
        usage("unknown log level '" + *level + "'");
      }
    }
    // One configuration point: LOG_* lines flow into the same trace file
    // and metrics registry as the algorithm events.
    obs::install_log_bridge();
    obs::MetricsRegistry::global().reset();
    if (trace_out_) obs::Trace::global().open_file(*trace_out_);
    if (profile_out_) obs::Profiler::global().enable();
    for (const auto& [key, value] : args.all()) {
      config_[key] = util::JsonValue(value);
    }
  }

  /// Writes the requested observability artifacts. Called once after the
  /// subcommand succeeded (skipped on error paths so partial runs never
  /// leave misleading artifacts).
  void finish() {
    if (trace_out_) {
      obs::Trace::global().close();
      std::cerr << "wrote " << *trace_out_ << "\n";
    }
    if (metrics_out_) {
      core::write_text_file(
          *metrics_out_,
          obs::MetricsRegistry::global().snapshot().to_json().dump(2));
      std::cerr << "wrote " << *metrics_out_ << "\n";
    }
    if (profile_out_) {
      core::write_text_file(
          *profile_out_,
          obs::Profiler::global().report().to_json().dump(2));
      obs::Profiler::global().disable();
      std::cerr << "wrote " << *profile_out_ << "\n";
    }
    std::optional<std::string> manifest_path = manifest_out_;
    if (!manifest_path && metrics_out_) {
      manifest_path = *metrics_out_ + ".manifest.json";
    }
    if (!manifest_path && trace_out_) {
      manifest_path = *trace_out_ + ".manifest.json";
    }
    if (!manifest_path) return;
    obs::RunManifest manifest;
    manifest.tool = "mecsc";
    manifest.command = command_;
    manifest.config = config_;
    if (g_instance_digest) manifest.instance_digest = *g_instance_digest;
    obs::write_manifest(*manifest_path, manifest);
    std::cerr << "wrote " << *manifest_path << "\n";
  }

 private:
  std::string command_;
  std::optional<std::string> trace_out_;
  std::optional<std::string> metrics_out_;
  std::optional<std::string> profile_out_;
  std::optional<std::string> manifest_out_;
  util::JsonObject config_;
};

void emit(const std::string& target, const std::string& content) {
  if (target == "-") {
    std::cout << content << "\n";
  } else {
    core::write_text_file(target, content);
    std::cerr << "wrote " << target << "\n";
  }
}

core::Instance load_instance(const Args& args) {
  const std::string path = args.require("-i");
  const std::string text = core::read_text_file(path);
  g_instance_digest = obs::fnv1a64_hex(text);
  return core::instance_from_json(util::parse_json(text));
}

int cmd_generate(const Args& args) {
  util::Rng rng(static_cast<std::uint64_t>(args.number_or("--seed", 1)));
  core::InstanceParams params;
  params.network_size =
      static_cast<std::size_t>(args.number_or("--size", 100));
  params.provider_count =
      static_cast<std::size_t>(args.number_or("--providers", 100));
  params.use_as1755 = args.get("--as1755").has_value();
  core::Instance inst = core::generate_instance(params, rng);
  if (const auto kind = args.get("--congestion")) {
    bool found = false;
    for (const auto k :
         {core::CongestionKind::Linear, core::CongestionKind::Quadratic,
          core::CongestionKind::Exponential, core::CongestionKind::Harmonic}) {
      if (*kind == core::congestion_kind_name(k)) {
        inst.cost.congestion = k;
        found = true;
      }
    }
    if (!found) usage("unknown congestion kind '" + *kind + "'");
  }
  const std::string doc = core::instance_to_json(inst).dump(2);
  g_instance_digest = obs::fnv1a64_hex(doc);
  emit(args.get_or("-o", "-"), doc);
  return 0;
}

int cmd_solve(const Args& args) {
  const core::Instance inst = load_instance(args);
  core::SolveSpec spec;
  spec.algorithm = args.require("--algorithm");
  spec.one_minus_xi = args.number_or("--one-minus-xi", 0.3);
  if (!core::solver_algorithm_known(spec.algorithm)) {
    usage("unknown algorithm '" + spec.algorithm + "'");
  }

  // Same dispatcher as the solver service (src/svc/), so the two surfaces
  // cannot drift apart on algorithm behavior.
  util::Timer timer;
  const core::SolveOutcome outcome = core::run_solver(inst, spec);
  if (!outcome.proven_optimal) {
    std::cerr << "warning: node budget hit; placement is the incumbent, "
                 "not proven optimal\n";
  }
  const double ms = timer.elapsed_ms();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.gauge_set("solve.social_cost", outcome.assignment.social_cost());
  metrics.gauge_set("solve.potential", outcome.assignment.potential());
  metrics.gauge_set("solve.one_minus_xi", spec.one_minus_xi);
  metrics.wall_duration_record("solve." + spec.algorithm + "_ms", ms);

  auto doc = core::assignment_to_json(outcome.assignment);
  doc.as_object()["algorithm"] = util::JsonValue(spec.algorithm);
  doc.as_object()["wall_elapsed_ms"] = util::JsonValue(ms);
  // Solver-internal time as measured by run_solver itself — the same
  // number the service reports as the wide-event solve phase, so CLI and
  // served runs are directly comparable. wall_elapsed_ms above adds the
  // dispatch overhead around it.
  doc.as_object()["wall_solve_ms"] = util::JsonValue(outcome.wall_solve_ms);
  emit(args.get_or("-o", "-"), doc.dump(2));
  return 0;
}

int cmd_evaluate(const Args& args) {
  const core::Instance inst = load_instance(args);
  const core::Assignment a = core::assignment_from_json(
      inst,
      util::parse_json(core::read_text_file(args.require("-p"))));

  util::Table summary({"metric", "value"});
  summary.add_row({std::string("social cost"), a.social_cost()});
  summary.add_row({std::string("potential"), a.potential()});
  long long cached = 0;
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (a.choice(l) != core::kRemote) ++cached;
  }
  summary.add_row({std::string("cached services"), cached});
  summary.add_row(
      {std::string("remote services"),
       static_cast<long long>(inst.provider_count()) - cached});
  summary.add_row(
      {std::string("feasible"), std::string(a.feasible() ? "yes" : "no")});
  summary.add_row(
      {std::string("nash equilibrium (all selfish)"),
       std::string(core::is_nash_equilibrium(
                       a, std::vector<bool>(inst.provider_count(), true))
                       ? "yes"
                       : "no")});
  summary.add_row({std::string("congestion-free lower bound"),
                   core::social_cost_lower_bound(inst)});
  std::cout << summary.to_string();

  util::Table load({"cloudlet", "tenants", "compute left", "bandwidth left"});
  for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    load.add_row({static_cast<long long>(i),
                  static_cast<long long>(a.occupancy(i)), a.compute_left(i),
                  a.bandwidth_left(i)});
  }
  util::print_section(std::cout, "cloudlet load", load);
  return 0;
}

int cmd_emulate(const Args& args) {
  const core::Instance inst = load_instance(args);
  const core::Assignment a = core::assignment_from_json(
      inst, util::parse_json(core::read_text_file(args.require("-p"))));
  util::Rng rng(static_cast<std::uint64_t>(args.number_or("--seed", 1)));
  sim::WorkloadParams wp;
  wp.horizon_s = args.number_or("--horizon", 30.0);
  const auto trace = sim::generate_workload(inst, wp, rng);
  const sim::EmulationResult r = sim::replay(a, trace);

  util::Table t({"metric", "value"});
  t.add_row({std::string("requests served"),
             static_cast<long long>(r.requests_served)});
  t.add_row({std::string("measured social cost"), r.measured_social_cost});
  t.add_row({std::string("analytic social cost"), a.social_cost()});
  t.add_row({std::string("latency p50 (ms)"),
             r.request_latency_s.p50 * 1e3});
  t.add_row({std::string("latency p95 (ms)"),
             r.request_latency_s.p95 * 1e3});
  t.add_row({std::string("latency max (ms)"),
             r.request_latency_s.max * 1e3});
  t.add_row({std::string("transfer volume (GB x hops)"),
             r.total_transfer_gb});
  std::cout << t.to_string();
  return 0;
}

int cmd_delay(const Args& args) {
  const core::Instance inst = load_instance(args);
  const core::Assignment a = core::assignment_from_json(
      inst, util::parse_json(core::read_text_file(args.require("-p"))));
  const core::DelayReport r = core::evaluate_delay(a);
  util::Table t({"metric", "value"});
  t.add_row({std::string("mean request delay (ms)"), r.mean_delay_s * 1e3});
  t.add_row({std::string("max request delay (ms)"), r.max_delay_s * 1e3});
  t.add_row({std::string("overloaded providers"),
             static_cast<long long>(r.overloaded_providers)});
  std::cout << t.to_string();
  util::Table u({"cloudlet", "utilization"});
  for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    u.add_row({static_cast<long long>(i), r.cloudlet_utilization[i]});
  }
  util::print_section(std::cout, "queue utilization", u);
  return 0;
}

int cmd_stability(const Args& args) {
  const core::Instance inst = load_instance(args);
  core::LcfOptions options;
  options.coordinated_fraction =
      1.0 - args.number_or("--one-minus-xi", 0.3);
  const core::LcfResult lcf = core::run_lcf(inst, options);
  const core::StabilityReport r = core::analyze_stability(inst, lcf);
  util::Table t({"metric", "value"});
  t.add_row({std::string("social cost"), lcf.social_cost()});
  t.add_row({std::string("binding contracts"),
             static_cast<long long>(r.binding_contracts)});
  t.add_row({std::string("side-payment budget"), r.side_payment_budget});
  t.add_row({std::string("max deviation incentive"), r.max_incentive});
  t.add_row({std::string("IR violations"),
             static_cast<long long>(r.ir_violations)});
  t.add_row({std::string("IR subsidy"), r.ir_subsidy});
  std::cout << t.to_string();
  return 0;
}

int cmd_price(const Args& args) {
  const core::Instance inst = load_instance(args);
  const core::PricingResult r = core::decentralize_by_pricing(inst);
  util::Table t({"metric", "value"});
  t.add_row({std::string("social cost"), r.social_cost});
  t.add_row({std::string("occupancy gap vs Appro"),
             static_cast<long long>(r.occupancy_gap)});
  t.add_row({std::string("iterations"),
             static_cast<long long>(r.iterations)});
  t.add_row({std::string("price revenue"), r.revenue});
  std::cerr << t.to_string();
  auto doc = core::assignment_to_json(r.assignment);
  util::JsonArray prices(r.prices.begin(), r.prices.end());
  doc.as_object()["prices"] = util::JsonValue(std::move(prices));
  emit(args.get_or("-o", "-"), doc.dump(2));
  return 0;
}

int cmd_info(const Args& args) {
  const core::Instance inst = load_instance(args);
  util::Table t({"property", "value"});
  t.add_row({std::string("switch nodes"),
             static_cast<long long>(inst.network.topology().node_count())});
  t.add_row({std::string("links"),
             static_cast<long long>(inst.network.topology().edge_count())});
  t.add_row({std::string("cloudlets"),
             static_cast<long long>(inst.cloudlet_count())});
  t.add_row({std::string("data centers"),
             static_cast<long long>(inst.network.data_center_count())});
  t.add_row({std::string("providers"),
             static_cast<long long>(inst.provider_count())});
  t.add_row({std::string("congestion model"),
             std::string(core::congestion_kind_name(inst.cost.congestion))});
  t.add_row({std::string("max compute demand"), inst.max_compute_demand()});
  t.add_row({std::string("max bandwidth demand"),
             inst.max_bandwidth_demand()});
  std::cout << t.to_string();
  return 0;
}

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "solve") return cmd_solve(args);
  if (cmd == "evaluate") return cmd_evaluate(args);
  if (cmd == "emulate") return cmd_emulate(args);
  if (cmd == "delay") return cmd_delay(args);
  if (cmd == "stability") return cmd_stability(args);
  if (cmd == "price") return cmd_price(args);
  if (cmd == "info") return cmd_info(args);
  usage("unknown subcommand '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") usage();
  try {
    const Args args(argc, argv, 2);
    ObsSession session(cmd, args);
    const util::Timer run_timer;
    const int status = dispatch(cmd, args);
    obs::MetricsRegistry::global().wall_duration_record(
        "cli." + cmd + "_ms", run_timer.elapsed_ms());
    if (status == 0) session.finish();
    return status;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
