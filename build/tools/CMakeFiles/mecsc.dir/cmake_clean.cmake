file(REMOVE_RECURSE
  "CMakeFiles/mecsc.dir/mecsc_cli.cpp.o"
  "CMakeFiles/mecsc.dir/mecsc_cli.cpp.o.d"
  "mecsc"
  "mecsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
