# Empty compiler generated dependencies file for mecsc.
# This may be replaced when dependencies are built.
