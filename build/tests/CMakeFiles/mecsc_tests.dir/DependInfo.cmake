
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_appro.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_appro.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_appro.cpp.o.d"
  "/root/repo/tests/test_assignment.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_assignment.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_assignment.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_congestion_game.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_congestion_game.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_congestion_game.cpp.o.d"
  "/root/repo/tests/test_congestion_model.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_congestion_model.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_congestion_model.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_delay_model.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_delay_model.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_delay_model.cpp.o.d"
  "/root/repo/tests/test_emulation.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_emulation.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_emulation.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_gap.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_gap.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_gap.cpp.o.d"
  "/root/repo/tests/test_gap_local_search.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_gap_local_search.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_gap_local_search.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hungarian.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_hungarian.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_hungarian.cpp.o.d"
  "/root/repo/tests/test_incentives.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_incentives.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_incentives.cpp.o.d"
  "/root/repo/tests/test_instance.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_instance.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_instance.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_lcf.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_lcf.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_lcf.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_market_dynamics.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_market_dynamics.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_market_dynamics.cpp.o.d"
  "/root/repo/tests/test_mcmf.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_mcmf.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_mcmf.cpp.o.d"
  "/root/repo/tests/test_mec_network.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_mec_network.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_mec_network.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_poa.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_poa.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_poa.cpp.o.d"
  "/root/repo/tests/test_pricing.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_pricing.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_pricing.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_random_graphs.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_random_graphs.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_random_graphs.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_shortest_path.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_shortest_path.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_shortest_path.cpp.o.d"
  "/root/repo/tests/test_simplex.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_simplex.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_simplex.cpp.o.d"
  "/root/repo/tests/test_social_optimum.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_social_optimum.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_social_optimum.cpp.o.d"
  "/root/repo/tests/test_solver_synergy.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_solver_synergy.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_solver_synergy.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_testbed.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_testbed.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_testbed.cpp.o.d"
  "/root/repo/tests/test_topologies.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_topologies.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_topologies.cpp.o.d"
  "/root/repo/tests/test_transportation.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_transportation.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_transportation.cpp.o.d"
  "/root/repo/tests/test_virtual_cloudlet.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_virtual_cloudlet.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_virtual_cloudlet.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/mecsc_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/mecsc_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mecsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mecsc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mecsc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
