# Empty compiler generated dependencies file for mecsc_tests.
# This may be replaced when dependencies are built.
