# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mecsc_tests[1]_include.cmake")
add_test(cli_roundtrip "/root/repo/tests/cli_roundtrip.sh" "/root/repo/build/tools/mecsc")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
