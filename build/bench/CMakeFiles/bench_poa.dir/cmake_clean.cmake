file(REMOVE_RECURSE
  "CMakeFiles/bench_poa.dir/bench_poa.cpp.o"
  "CMakeFiles/bench_poa.dir/bench_poa.cpp.o.d"
  "bench_poa"
  "bench_poa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
