# Empty dependencies file for bench_poa.
# This may be replaced when dependencies are built.
