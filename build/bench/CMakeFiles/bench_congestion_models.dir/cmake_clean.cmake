file(REMOVE_RECURSE
  "CMakeFiles/bench_congestion_models.dir/bench_congestion_models.cpp.o"
  "CMakeFiles/bench_congestion_models.dir/bench_congestion_models.cpp.o.d"
  "bench_congestion_models"
  "bench_congestion_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_congestion_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
