# Empty dependencies file for bench_congestion_models.
# This may be replaced when dependencies are built.
