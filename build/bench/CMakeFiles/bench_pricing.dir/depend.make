# Empty dependencies file for bench_pricing.
# This may be replaced when dependencies are built.
