# Empty dependencies file for bench_topology_sensitivity.
# This may be replaced when dependencies are built.
