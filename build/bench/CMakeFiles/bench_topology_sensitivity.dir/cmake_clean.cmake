file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_sensitivity.dir/bench_topology_sensitivity.cpp.o"
  "CMakeFiles/bench_topology_sensitivity.dir/bench_topology_sensitivity.cpp.o.d"
  "bench_topology_sensitivity"
  "bench_topology_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
