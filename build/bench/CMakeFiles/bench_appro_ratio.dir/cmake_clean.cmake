file(REMOVE_RECURSE
  "CMakeFiles/bench_appro_ratio.dir/bench_appro_ratio.cpp.o"
  "CMakeFiles/bench_appro_ratio.dir/bench_appro_ratio.cpp.o.d"
  "bench_appro_ratio"
  "bench_appro_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appro_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
