# Empty compiler generated dependencies file for bench_appro_ratio.
# This may be replaced when dependencies are built.
