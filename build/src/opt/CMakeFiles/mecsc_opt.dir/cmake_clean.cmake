file(REMOVE_RECURSE
  "CMakeFiles/mecsc_opt.dir/gap.cpp.o"
  "CMakeFiles/mecsc_opt.dir/gap.cpp.o.d"
  "CMakeFiles/mecsc_opt.dir/gap_local_search.cpp.o"
  "CMakeFiles/mecsc_opt.dir/gap_local_search.cpp.o.d"
  "CMakeFiles/mecsc_opt.dir/hungarian.cpp.o"
  "CMakeFiles/mecsc_opt.dir/hungarian.cpp.o.d"
  "CMakeFiles/mecsc_opt.dir/mcmf.cpp.o"
  "CMakeFiles/mecsc_opt.dir/mcmf.cpp.o.d"
  "CMakeFiles/mecsc_opt.dir/simplex.cpp.o"
  "CMakeFiles/mecsc_opt.dir/simplex.cpp.o.d"
  "CMakeFiles/mecsc_opt.dir/transportation.cpp.o"
  "CMakeFiles/mecsc_opt.dir/transportation.cpp.o.d"
  "libmecsc_opt.a"
  "libmecsc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
