file(REMOVE_RECURSE
  "libmecsc_opt.a"
)
