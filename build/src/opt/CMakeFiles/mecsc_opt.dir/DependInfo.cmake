
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/gap.cpp" "src/opt/CMakeFiles/mecsc_opt.dir/gap.cpp.o" "gcc" "src/opt/CMakeFiles/mecsc_opt.dir/gap.cpp.o.d"
  "/root/repo/src/opt/gap_local_search.cpp" "src/opt/CMakeFiles/mecsc_opt.dir/gap_local_search.cpp.o" "gcc" "src/opt/CMakeFiles/mecsc_opt.dir/gap_local_search.cpp.o.d"
  "/root/repo/src/opt/hungarian.cpp" "src/opt/CMakeFiles/mecsc_opt.dir/hungarian.cpp.o" "gcc" "src/opt/CMakeFiles/mecsc_opt.dir/hungarian.cpp.o.d"
  "/root/repo/src/opt/mcmf.cpp" "src/opt/CMakeFiles/mecsc_opt.dir/mcmf.cpp.o" "gcc" "src/opt/CMakeFiles/mecsc_opt.dir/mcmf.cpp.o.d"
  "/root/repo/src/opt/simplex.cpp" "src/opt/CMakeFiles/mecsc_opt.dir/simplex.cpp.o" "gcc" "src/opt/CMakeFiles/mecsc_opt.dir/simplex.cpp.o.d"
  "/root/repo/src/opt/transportation.cpp" "src/opt/CMakeFiles/mecsc_opt.dir/transportation.cpp.o" "gcc" "src/opt/CMakeFiles/mecsc_opt.dir/transportation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mecsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
