# Empty compiler generated dependencies file for mecsc_opt.
# This may be replaced when dependencies are built.
