file(REMOVE_RECURSE
  "libmecsc_net.a"
)
