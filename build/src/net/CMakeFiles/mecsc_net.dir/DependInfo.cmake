
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/mecsc_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/mec_network.cpp" "src/net/CMakeFiles/mecsc_net.dir/mec_network.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/mec_network.cpp.o.d"
  "/root/repo/src/net/random_graphs.cpp" "src/net/CMakeFiles/mecsc_net.dir/random_graphs.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/random_graphs.cpp.o.d"
  "/root/repo/src/net/shortest_path.cpp" "src/net/CMakeFiles/mecsc_net.dir/shortest_path.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/shortest_path.cpp.o.d"
  "/root/repo/src/net/topology_zoo.cpp" "src/net/CMakeFiles/mecsc_net.dir/topology_zoo.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/topology_zoo.cpp.o.d"
  "/root/repo/src/net/transit_stub.cpp" "src/net/CMakeFiles/mecsc_net.dir/transit_stub.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/transit_stub.cpp.o.d"
  "/root/repo/src/net/waxman.cpp" "src/net/CMakeFiles/mecsc_net.dir/waxman.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mecsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
