file(REMOVE_RECURSE
  "CMakeFiles/mecsc_net.dir/graph.cpp.o"
  "CMakeFiles/mecsc_net.dir/graph.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/mec_network.cpp.o"
  "CMakeFiles/mecsc_net.dir/mec_network.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/random_graphs.cpp.o"
  "CMakeFiles/mecsc_net.dir/random_graphs.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/shortest_path.cpp.o"
  "CMakeFiles/mecsc_net.dir/shortest_path.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/topology_zoo.cpp.o"
  "CMakeFiles/mecsc_net.dir/topology_zoo.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/transit_stub.cpp.o"
  "CMakeFiles/mecsc_net.dir/transit_stub.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/waxman.cpp.o"
  "CMakeFiles/mecsc_net.dir/waxman.cpp.o.d"
  "libmecsc_net.a"
  "libmecsc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
