file(REMOVE_RECURSE
  "libmecsc_sim.a"
)
