# Empty compiler generated dependencies file for mecsc_sim.
# This may be replaced when dependencies are built.
