file(REMOVE_RECURSE
  "CMakeFiles/mecsc_sim.dir/emulation.cpp.o"
  "CMakeFiles/mecsc_sim.dir/emulation.cpp.o.d"
  "CMakeFiles/mecsc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mecsc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mecsc_sim.dir/testbed.cpp.o"
  "CMakeFiles/mecsc_sim.dir/testbed.cpp.o.d"
  "CMakeFiles/mecsc_sim.dir/workload.cpp.o"
  "CMakeFiles/mecsc_sim.dir/workload.cpp.o.d"
  "libmecsc_sim.a"
  "libmecsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
