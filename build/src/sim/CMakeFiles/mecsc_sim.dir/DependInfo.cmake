
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/emulation.cpp" "src/sim/CMakeFiles/mecsc_sim.dir/emulation.cpp.o" "gcc" "src/sim/CMakeFiles/mecsc_sim.dir/emulation.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/mecsc_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/mecsc_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "src/sim/CMakeFiles/mecsc_sim.dir/testbed.cpp.o" "gcc" "src/sim/CMakeFiles/mecsc_sim.dir/testbed.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/mecsc_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/mecsc_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mecsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mecsc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mecsc_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
