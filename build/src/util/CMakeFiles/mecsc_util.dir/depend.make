# Empty dependencies file for mecsc_util.
# This may be replaced when dependencies are built.
