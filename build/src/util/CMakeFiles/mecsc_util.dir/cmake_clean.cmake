file(REMOVE_RECURSE
  "CMakeFiles/mecsc_util.dir/json.cpp.o"
  "CMakeFiles/mecsc_util.dir/json.cpp.o.d"
  "CMakeFiles/mecsc_util.dir/log.cpp.o"
  "CMakeFiles/mecsc_util.dir/log.cpp.o.d"
  "CMakeFiles/mecsc_util.dir/parallel.cpp.o"
  "CMakeFiles/mecsc_util.dir/parallel.cpp.o.d"
  "CMakeFiles/mecsc_util.dir/rng.cpp.o"
  "CMakeFiles/mecsc_util.dir/rng.cpp.o.d"
  "CMakeFiles/mecsc_util.dir/stats.cpp.o"
  "CMakeFiles/mecsc_util.dir/stats.cpp.o.d"
  "CMakeFiles/mecsc_util.dir/table.cpp.o"
  "CMakeFiles/mecsc_util.dir/table.cpp.o.d"
  "libmecsc_util.a"
  "libmecsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
