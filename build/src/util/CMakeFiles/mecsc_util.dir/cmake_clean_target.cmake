file(REMOVE_RECURSE
  "libmecsc_util.a"
)
