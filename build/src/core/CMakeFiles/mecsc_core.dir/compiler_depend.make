# Empty compiler generated dependencies file for mecsc_core.
# This may be replaced when dependencies are built.
