
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/appro.cpp" "src/core/CMakeFiles/mecsc_core.dir/appro.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/appro.cpp.o.d"
  "/root/repo/src/core/assignment.cpp" "src/core/CMakeFiles/mecsc_core.dir/assignment.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/assignment.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/mecsc_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/congestion_game.cpp" "src/core/CMakeFiles/mecsc_core.dir/congestion_game.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/congestion_game.cpp.o.d"
  "/root/repo/src/core/congestion_model.cpp" "src/core/CMakeFiles/mecsc_core.dir/congestion_model.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/congestion_model.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/mecsc_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/delay_model.cpp" "src/core/CMakeFiles/mecsc_core.dir/delay_model.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/delay_model.cpp.o.d"
  "/root/repo/src/core/incentives.cpp" "src/core/CMakeFiles/mecsc_core.dir/incentives.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/incentives.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/mecsc_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/mecsc_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/io.cpp.o.d"
  "/root/repo/src/core/lcf.cpp" "src/core/CMakeFiles/mecsc_core.dir/lcf.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/lcf.cpp.o.d"
  "/root/repo/src/core/market_dynamics.cpp" "src/core/CMakeFiles/mecsc_core.dir/market_dynamics.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/market_dynamics.cpp.o.d"
  "/root/repo/src/core/poa.cpp" "src/core/CMakeFiles/mecsc_core.dir/poa.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/poa.cpp.o.d"
  "/root/repo/src/core/pricing.cpp" "src/core/CMakeFiles/mecsc_core.dir/pricing.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/pricing.cpp.o.d"
  "/root/repo/src/core/social_optimum.cpp" "src/core/CMakeFiles/mecsc_core.dir/social_optimum.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/social_optimum.cpp.o.d"
  "/root/repo/src/core/virtual_cloudlet.cpp" "src/core/CMakeFiles/mecsc_core.dir/virtual_cloudlet.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/virtual_cloudlet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mecsc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mecsc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
