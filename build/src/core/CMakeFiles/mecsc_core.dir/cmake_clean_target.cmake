file(REMOVE_RECURSE
  "libmecsc_core.a"
)
