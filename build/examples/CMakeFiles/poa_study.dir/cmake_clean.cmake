file(REMOVE_RECURSE
  "CMakeFiles/poa_study.dir/poa_study.cpp.o"
  "CMakeFiles/poa_study.dir/poa_study.cpp.o.d"
  "poa_study"
  "poa_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poa_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
