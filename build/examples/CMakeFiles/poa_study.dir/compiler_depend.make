# Empty compiler generated dependencies file for poa_study.
# This may be replaced when dependencies are built.
