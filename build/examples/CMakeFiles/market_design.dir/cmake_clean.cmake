file(REMOVE_RECURSE
  "CMakeFiles/market_design.dir/market_design.cpp.o"
  "CMakeFiles/market_design.dir/market_design.cpp.o.d"
  "market_design"
  "market_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
