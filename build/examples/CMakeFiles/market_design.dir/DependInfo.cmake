
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/market_design.cpp" "examples/CMakeFiles/market_design.dir/market_design.cpp.o" "gcc" "examples/CMakeFiles/market_design.dir/market_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mecsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mecsc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mecsc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
