# Empty compiler generated dependencies file for market_design.
# This may be replaced when dependencies are built.
