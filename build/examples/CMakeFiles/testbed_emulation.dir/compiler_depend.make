# Empty compiler generated dependencies file for testbed_emulation.
# This may be replaced when dependencies are built.
