file(REMOVE_RECURSE
  "CMakeFiles/testbed_emulation.dir/testbed_emulation.cpp.o"
  "CMakeFiles/testbed_emulation.dir/testbed_emulation.cpp.o.d"
  "testbed_emulation"
  "testbed_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
