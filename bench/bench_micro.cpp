// Micro-benchmarks (google-benchmark) for the substrates: graph algorithms,
// optimization solvers, game dynamics, and the emulator event loop.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/appro.h"
#include "core/baselines.h"
#include "core/congestion_game.h"
#include "core/instance.h"
#include "core/lcf.h"
#include "net/shortest_path.h"
#include "net/transit_stub.h"
#include "opt/gap.h"
#include "opt/hungarian.h"
#include "opt/mcmf.h"
#include "opt/simplex.h"
#include "opt/transportation.h"
#include "sim/emulation.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace {

using namespace mecsc;

void BM_Dijkstra(benchmark::State& state) {
  util::Rng rng(1);
  const auto ts = net::generate_transit_stub_sized(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(ts.graph, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(400);

void BM_TransitStubGeneration(benchmark::State& state) {
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::generate_transit_stub_sized(
        static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_TransitStubGeneration)->Arg(100)->Arg(400);

void BM_Hungarian(benchmark::State& state) {
  util::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform_real(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_assignment(cost, n, n));
  }
}
BENCHMARK(BM_Hungarian)->Arg(20)->Arg(100);

void BM_McmfAssignment(benchmark::State& state) {
  util::Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform_real(0.0, 10.0);
  for (auto _ : state) {
    opt::MinCostFlow f(2 * n + 2);
    for (std::size_t i = 0; i < n; ++i) {
      f.add_arc(2 * n, i, 1, 0.0);
      f.add_arc(n + i, 2 * n + 1, 1, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        f.add_arc(i, n + j, 1, cost[i * n + j]);
      }
    }
    benchmark::DoNotOptimize(f.solve(2 * n, 2 * n + 1));
  }
}
BENCHMARK(BM_McmfAssignment)->Arg(20)->Arg(100);

void BM_SimplexLp(benchmark::State& state) {
  util::Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  opt::LpProblem p;
  p.num_vars = n;
  p.objective.resize(n);
  for (auto& c : p.objective) c = rng.uniform_real(0.1, 5.0);
  for (std::size_t k = 0; k < n / 2; ++k) {
    opt::LpConstraint con;
    for (std::size_t j = 0; j < n; ++j) {
      con.terms.emplace_back(j, rng.uniform_real(0.1, 2.0));
    }
    con.rel = opt::Relation::GreaterEq;
    con.rhs = rng.uniform_real(1.0, 10.0);
    p.constraints.push_back(std::move(con));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_lp(p));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(20)->Arg(60);

void BM_GapShmoysTardos(benchmark::State& state) {
  util::Rng rng(6);
  const auto items = static_cast<std::size_t>(state.range(0));
  opt::GapInstance g;
  g.num_knapsacks = 6;
  g.num_items = items;
  g.capacity.assign(6, static_cast<double>(items) / 3.0);
  g.cost.resize(6 * items);
  g.weight.resize(6 * items);
  for (auto& c : g.cost) c = rng.uniform_real(1.0, 10.0);
  for (auto& w : g.weight) w = rng.uniform_real(0.5, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_gap_shmoys_tardos(g));
  }
}
BENCHMARK(BM_GapShmoysTardos)->Arg(20)->Arg(50);

core::Instance bench_instance(std::size_t size, std::size_t providers) {
  util::Rng rng(7);
  core::InstanceParams p;
  p.network_size = size;
  p.provider_count = providers;
  return core::generate_instance(p, rng);
}

void BM_InstanceGeneration(benchmark::State& state) {
  util::Rng rng(8);
  core::InstanceParams p;
  p.network_size = static_cast<std::size_t>(state.range(0));
  p.provider_count = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_instance(p, rng));
  }
}
BENCHMARK(BM_InstanceGeneration)->Arg(100)->Arg(400);

void BM_Appro(benchmark::State& state) {
  const auto inst = bench_instance(
      static_cast<std::size_t>(state.range(0)), 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_appro(inst));
  }
}
BENCHMARK(BM_Appro)->Arg(100)->Arg(400);

void BM_BestResponseDynamics(benchmark::State& state) {
  const auto inst = bench_instance(
      static_cast<std::size_t>(state.range(0)), 100);
  const std::vector<bool> movable(inst.provider_count(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::best_response_dynamics(core::Assignment(inst), movable));
  }
}
BENCHMARK(BM_BestResponseDynamics)->Arg(100)->Arg(400);

void BM_LcfEndToEnd(benchmark::State& state) {
  const auto inst = bench_instance(
      static_cast<std::size_t>(state.range(0)), 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_lcf(inst));
  }
}
BENCHMARK(BM_LcfEndToEnd)->Arg(100)->Arg(400);

void BM_EmulatorReplay(benchmark::State& state) {
  const auto inst = bench_instance(100, 50);
  util::Rng rng(9);
  sim::WorkloadParams wp;
  wp.horizon_s = 10.0;
  const auto trace = sim::generate_workload(inst, wp, rng);
  const auto a = core::run_offload_cache(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::replay(a, trace));
  }
}
BENCHMARK(BM_EmulatorReplay);

/// Console output as usual, plus a BENCH_micro.json in the shared bench
/// layout. The benchmark *names* are the deterministic record content;
/// google-benchmark auto-tunes the iteration count, so iterations and both
/// timings are wall-clock ("wall_" keys).
class MicroJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      util::JsonObject row;
      const double iters = static_cast<double>(run.iterations);
      row["wall_iterations"] = util::JsonValue(iters);
      row["wall_real_ns"] =
          util::JsonValue(run.real_accumulated_time / iters * 1e9);
      row["wall_cpu_ns"] =
          util::JsonValue(run.cpu_accumulated_time / iters * 1e9);
      recorder_.add(run.benchmark_name(), std::move(row));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    recorder_.write_file();
  }

 private:
  bench::BenchRecorder recorder_{"micro"};
};

}  // namespace

int main(int argc, char** argv) {
  // Smoke mode shortens every benchmark's measurement window so CI can run
  // the full registry in seconds; an explicit flag still wins.
  std::vector<char*> args(argv, argv + argc);
  char min_time_flag[] = "--benchmark_min_time=0.01";
  if (mecsc::bench::smoke_mode()) args.push_back(min_time_flag);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  MicroJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
