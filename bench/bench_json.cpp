// bench_json — DOM vs arena JSON parse/decode throughput on instance
// documents (the serving hot path's workload).
//
// For each fig2-scale network size, generates a seed-deterministic
// instance, serializes it canonically, and times four pipelines over the
// same bytes:
//   dom_parse     parse_json -> JsonValue (reference path)
//   arena_parse   parse_json_arena -> JsonArena (zero-DOM hot path)
//   dom_decode    parse_json + instance_from_json -> core::Instance
//   arena_decode  instance_from_json_text -> core::Instance (no DOM)
// Deterministic record fields: document bytes, arena node count, and the
// canonical-dump digest, which must be identical on both paths (a parity
// failure aborts the bench). All timing and throughput live under wall_
// keys; wall_parse_speedup (arena over DOM) is the acceptance headline.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/io.h"
#include "obs/run_info.h"
#include "util/json.h"
#include "util/json_arena.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;

  const std::vector<std::size_t> sizes =
      smoke_trim(std::vector<std::size_t>{40, 80, 160, 320});
  // Iterations per measurement: enough for stable figures in a full run,
  // scaled down (with the repetition count) for CI smoke.
  const std::size_t iterations = smoke_mode() ? 5 : 40;

  util::Table table({"network size", "bytes", "DOM parse (ms)",
                     "arena parse (ms)", "parse speedup", "DOM decode (ms)",
                     "arena decode (ms)", "decode speedup"});
  BenchRecorder recorder("json");

  for (const std::size_t size : sizes) {
    util::Rng rng(1000 * size + 7);
    core::InstanceParams params;
    params.network_size = size;
    params.provider_count = 2 * size;
    const core::Instance inst = core::generate_instance(params, rng);
    const std::string bytes = core::instance_to_json(inst).dump();

    // Parity gate before timing: both paths must re-serialize the document
    // to identical bytes, or the digest-keyed service cache would split.
    const util::JsonValue dom_doc = util::parse_json(bytes);
    const util::JsonArena arena_doc = util::parse_json_arena(bytes);
    const std::string dom_dump = dom_doc.dump();
    const std::string arena_dump = arena_doc.dump();
    if (dom_dump != arena_dump) {
      std::cerr << "FATAL: DOM/arena canonical dumps differ at size " << size
                << "\n";
      return 1;
    }

    double dom_parse_ms = 0.0, arena_parse_ms = 0.0;
    double dom_decode_ms = 0.0, arena_decode_ms = 0.0;
    for (std::size_t rep = 0; rep < repetitions(); ++rep) {
      {
        const util::Timer t;
        for (std::size_t i = 0; i < iterations; ++i) {
          const util::JsonValue v = util::parse_json(bytes);
          if (v.is_null()) std::abort();  // keep the parse observable
        }
        dom_parse_ms += t.elapsed_ms();
      }
      {
        const util::Timer t;
        for (std::size_t i = 0; i < iterations; ++i) {
          const util::JsonArena a = util::parse_json_arena(bytes);
          if (a.empty()) std::abort();
        }
        arena_parse_ms += t.elapsed_ms();
      }
      {
        const util::Timer t;
        for (std::size_t i = 0; i < iterations; ++i) {
          const core::Instance decoded =
              core::instance_from_json(util::parse_json(bytes));
          if (decoded.provider_count() == 0) std::abort();
        }
        dom_decode_ms += t.elapsed_ms();
      }
      {
        const util::Timer t;
        for (std::size_t i = 0; i < iterations; ++i) {
          const core::Instance decoded = core::instance_from_json_text(bytes);
          if (decoded.provider_count() == 0) std::abort();
        }
        arena_decode_ms += t.elapsed_ms();
      }
    }
    const double runs = static_cast<double>(repetitions() * iterations);
    dom_parse_ms /= runs;
    arena_parse_ms /= runs;
    dom_decode_ms /= runs;
    arena_decode_ms /= runs;
    const double parse_speedup =
        arena_parse_ms > 0.0 ? dom_parse_ms / arena_parse_ms : 0.0;
    const double decode_speedup =
        arena_decode_ms > 0.0 ? dom_decode_ms / arena_decode_ms : 0.0;
    const double mb = static_cast<double>(bytes.size()) / 1e6;

    table.add_row({static_cast<long long>(size),
                   static_cast<long long>(bytes.size()), dom_parse_ms,
                   arena_parse_ms, parse_speedup, dom_decode_ms,
                   arena_decode_ms, decode_speedup});

    util::JsonObject row;
    row["network_size"] = util::JsonValue(size);
    row["document_bytes"] = util::JsonValue(bytes.size());
    row["arena_nodes"] = util::JsonValue(arena_doc.node_count());
    row["canonical_digest"] = util::JsonValue(obs::fnv1a64_hex(dom_dump));
    // Ratios and throughputs are derived from wall clocks, so they carry
    // the wall_ prefix even without an _ms unit suffix.
    row["wall_parse_speedup"] = util::JsonValue(parse_speedup);
    row["wall_decode_speedup"] = util::JsonValue(decode_speedup);
    row["wall_dom_parse_mb_per_s"] = util::JsonValue(
        dom_parse_ms > 0.0 ? mb / (dom_parse_ms / 1e3) : 0.0);
    row["wall_arena_parse_mb_per_s"] = util::JsonValue(
        arena_parse_ms > 0.0 ? mb / (arena_parse_ms / 1e3) : 0.0);
    recorder.add("size=" + std::to_string(size), std::move(row),
                 {{"dom_parse", dom_parse_ms},
                  {"arena_parse", arena_parse_ms},
                  {"dom_decode", dom_decode_ms},
                  {"arena_decode", arena_decode_ms}});
  }
  recorder.write_file();

  std::cout << "JSON parse paths — DOM (util/json.h) vs arena "
               "(util/json_arena.h), "
            << repetitions() << " reps x " << iterations
            << " iterations per point, per-parse means\n";
  util::print_section(std::cout, "instance documents", table);
  return 0;
}
