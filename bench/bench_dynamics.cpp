// Dynamic-market study (extension; §II-B's "temporary" caching made
// longitudinal): placement quality vs migration churn across re-planning
// policies, and sensitivity to market volatility.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/market_dynamics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecsc;

core::Instance make_pool(std::uint64_t seed) {
  util::Rng rng(seed);
  core::InstanceParams p;
  p.network_size = 150;
  p.provider_count = 120;
  return core::generate_instance(p, rng);
}

}  // namespace

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = smoke_mode() ? 2 : 3;
  const std::size_t kEpochs = smoke_mode() ? 8 : 25;
  BenchRecorder recorder("dynamics");

  // --- Policy comparison ------------------------------------------------------
  util::Table policy({"policy", "social cost/epoch", "migration cost/epoch",
                      "migrations/epoch", "total cost", "replan ms/epoch"});
  for (const auto p : {core::ReplanPolicy::FullRecompute,
                       core::ReplanPolicy::IncrementalRepair}) {
    util::RunningStats social, migration, moves, total, ms;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      const core::Instance pool = make_pool(50 + rep);
      util::Rng rng(rep + 1);
      core::MarketDynamicsParams params;
      params.epochs = kEpochs;
      params.policy = p;
      const auto r = core::simulate_market(pool, params, rng);
      social.add(r.total_social_cost / static_cast<double>(kEpochs));
      migration.add(r.total_migration_cost / static_cast<double>(kEpochs));
      total.add(r.total_cost());
      double m = 0.0, t = 0.0;
      for (const auto& e : r.epochs) {
        m += static_cast<double>(e.migrations);
        t += e.replan_ms;
      }
      moves.add(m / static_cast<double>(kEpochs));
      ms.add(t / static_cast<double>(kEpochs));
    }
    policy.add_row({std::string(core::replan_policy_name(p)), social.mean(),
                    migration.mean(), moves.mean(), total.mean(), ms.mean()});
    util::JsonObject row;
    row["social_cost_per_epoch"] = util::JsonValue(social.mean());
    row["migration_cost_per_epoch"] = util::JsonValue(migration.mean());
    row["migrations_per_epoch"] = util::JsonValue(moves.mean());
    row["total_cost"] = util::JsonValue(total.mean());
    recorder.add(std::string("policy:") + core::replan_policy_name(p),
                 std::move(row), {{"replan_per_epoch", ms.mean()}});
  }

  // --- Volatility sweep ---------------------------------------------------------
  util::Table volatility({"departure prob", "full: total cost",
                          "incremental: total cost", "incremental wins by %"});
  for (const double dep : smoke_trim(std::vector<double>{0.02, 0.05, 0.10, 0.20, 0.35})) {
    util::RunningStats full, inc;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      const core::Instance pool = make_pool(80 + rep);
      core::MarketDynamicsParams params;
      params.epochs = kEpochs;
      params.departure_probability = dep;
      params.arrival_rate = dep * 40.0;  // keep the population roughly stable
      util::Rng rng1(rep + 1), rng2(rep + 1);
      params.policy = core::ReplanPolicy::FullRecompute;
      full.add(core::simulate_market(pool, params, rng1).total_cost());
      params.policy = core::ReplanPolicy::IncrementalRepair;
      inc.add(core::simulate_market(pool, params, rng2).total_cost());
    }
    volatility.add_row({dep, full.mean(), inc.mean(),
                        100.0 * (full.mean() - inc.mean()) / full.mean()});
    util::JsonObject row;
    row["full_total_cost"] = util::JsonValue(full.mean());
    row["incremental_total_cost"] = util::JsonValue(inc.mean());
    char label[48];
    std::snprintf(label, sizeof label, "volatility:departure=%.2f", dep);
    recorder.add(label, std::move(row));
  }
  recorder.write_file();

  std::cout << "Dynamic market — " << kEpochs << " epochs, " << kReps
            << " seeds per point\n";
  util::print_section(
      std::cout, "Re-planning policy trade-off (placement vs churn)", policy);
  util::print_section(
      std::cout, "Market volatility: total cost incl. migrations",
      volatility);
  std::cout
      << "Reading: full recompute wins on per-epoch social cost and is ~50x\n"
         "slower; incremental repair moves fewer continuing instances\n"
         "(migrations/epoch; the migration-cost column also counts the\n"
         "unavoidable initial shipment of newly arriving services). The\n"
         "volatility sweep reports how the total-cost gap between the two\n"
         "policies responds to market churn.\n";
  return 0;
}
