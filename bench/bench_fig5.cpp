// Fig. 5 — Performance in the (emulated) test-bed with both physical
// underlay and virtual overlay: AS1755 overlay, 1-ξ = 0.3.
//   (a) social cost (measured by the emulator)   (b) running times
// X-axis: number of service caching requests (providers), as in the paper's
// test-bed runs.
#include "bench_common.h"
#include "sim/testbed.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

#include <iostream>

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t reps = smoke_mode() ? 2 : 3;
  const std::vector<std::size_t> provider_counts =
      smoke_trim(std::vector<std::size_t>{25, 50, 75, 100});

  util::Table cost({"providers", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table runtime(
      {"providers", "LCF (ms)", "JoOffloadCache (ms)", "OffloadCache (ms)"});
  util::Table latency({"providers", "LCF p50 (ms)", "JoOffloadCache p50 (ms)",
                       "OffloadCache p50 (ms)"});
  BenchRecorder recorder("fig5");

  for (const std::size_t n : provider_counts) {
    util::RunningStats c[3], t[3], lat[3];
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(9000 + 37 * n + rep);
      sim::TestbedConfig config;
      config.provider_count = n;
      config.one_minus_xi = 0.3;
      config.workload.horizon_s = 20.0;
      const sim::TestbedRun run = sim::run_testbed(config, rng);
      for (std::size_t a = 0; a < 3; ++a) {
        c[a].add(run.results[a].measured_social_cost);
        t[a].add(run.results[a].algorithm_ms);
        lat[a].add(run.results[a].request_latency_s.p50 * 1e3);
      }
    }
    const auto nn = static_cast<long long>(n);
    cost.add_row({nn, c[0].mean(), c[1].mean(), c[2].mean()});
    runtime.add_row({nn, t[0].mean(), t[1].mean(), t[2].mean()});
    latency.add_row({nn, lat[0].mean(), lat[1].mean(), lat[2].mean()});
    util::JsonObject row;
    row["lcf_measured_cost"] = util::JsonValue(c[0].mean());
    row["jo_measured_cost"] = util::JsonValue(c[1].mean());
    row["offload_measured_cost"] = util::JsonValue(c[2].mean());
    row["lcf_latency_p50_ms"] = util::JsonValue(lat[0].mean());  // determinism-lint: allow(wall-key) simulated time
    row["jo_latency_p50_ms"] = util::JsonValue(lat[1].mean());  // determinism-lint: allow(wall-key) simulated time
    row["offload_latency_p50_ms"] = util::JsonValue(lat[2].mean());  // determinism-lint: allow(wall-key) simulated time
    recorder.add("providers=" + std::to_string(n), std::move(row),
                 {{"lcf", t[0].mean()},
                  {"jo", t[1].mean()},
                  {"offload", t[2].mean()}});
  }
  recorder.write_file();

  std::cout << "Fig. 5 — emulated test-bed (AS1755 overlay), 1-xi = 0.3, "
            << reps << " seeds per point\n";
  util::print_section(std::cout, "Fig. 5 (a) social cost (measured)", cost);
  util::print_section(std::cout, "Fig. 5 (b) running times", runtime);
  util::print_section(
      std::cout, "Fig. 5 (extra) median request latency in the overlay",
      latency);
  return 0;
}
