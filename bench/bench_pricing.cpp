// Pricing vs contracts (extension): can the infrastructure provider steer
// the selfish market to the coordinated placement with posted cloudlet
// prices instead of bulk-lease contracts? Compares social cost, how closely
// the priced equilibrium tracks the Appro congestion profile, and the price
// revenue the leader collects.
#include <iostream>

#include "bench_common.h"
#include "core/congestion_game.h"
#include "core/lcf.h"
#include "core/pricing.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = repetitions();
  BenchRecorder recorder("pricing");

  util::Table table({"network size", "Appro (target)", "LCF (contracts)",
                     "pricing (posted)", "free NE", "occupancy gap: priced",
                     "occupancy gap: free", "revenue"});
  for (const std::size_t size : smoke_trim(std::vector<std::size_t>{80, 150, 250})) {
    util::RunningStats appro, lcf, priced, ne, gap_p, gap_f, revenue;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(8000 + rep);
      core::InstanceParams p;
      p.network_size = size;
      p.provider_count = 100;
      const core::Instance inst = core::generate_instance(p, rng);

      const core::ApproResult a = core::run_appro(inst);
      appro.add(a.assignment.social_cost());

      core::LcfOptions lcf_opts;
      lcf_opts.coordinated_fraction = 0.7;
      lcf.add(core::run_lcf(inst, lcf_opts).social_cost());

      const core::PricingResult pr = core::decentralize_by_pricing(inst);
      priced.add(pr.social_cost);
      gap_p.add(static_cast<double>(pr.occupancy_gap));
      revenue.add(pr.revenue);

      const core::GameResult free_ne = core::best_response_dynamics(
          core::Assignment(inst),
          std::vector<bool>(inst.provider_count(), true));
      ne.add(free_ne.assignment.social_cost());
      std::size_t fg = 0;
      for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
        const auto occ =
            static_cast<std::ptrdiff_t>(free_ne.assignment.occupancy(i));
        const auto target =
            static_cast<std::ptrdiff_t>(pr.target_occupancy[i]);
        fg += static_cast<std::size_t>(std::abs(occ - target));
      }
      gap_f.add(static_cast<double>(fg));
    }
    table.add_row({static_cast<long long>(size), appro.mean(), lcf.mean(),
                   priced.mean(), ne.mean(), gap_p.mean(), gap_f.mean(),
                   revenue.mean()});
    util::JsonObject row;
    row["appro_social_cost"] = util::JsonValue(appro.mean());
    row["lcf_social_cost"] = util::JsonValue(lcf.mean());
    row["priced_social_cost"] = util::JsonValue(priced.mean());
    row["free_ne_social_cost"] = util::JsonValue(ne.mean());
    row["occupancy_gap_priced"] = util::JsonValue(gap_p.mean());
    row["occupancy_gap_free"] = util::JsonValue(gap_f.mean());
    row["revenue"] = util::JsonValue(revenue.mean());
    recorder.add("size=" + std::to_string(size), std::move(row));
  }
  recorder.write_file();

  std::cout << "Pricing vs contracts — 100 providers, " << kReps
            << " seeds per point (social cost; transfers excluded)\n";
  util::print_section(std::cout,
                      "Decentralizing the coordinated placement", table);
  std::cout
      << "Reading: posted prices pull the selfish equilibrium's congestion\n"
         "profile toward the Appro target (gap: priced << free) without\n"
         "contracts, at a social cost between LCF and the free equilibrium;\n"
         "the leader additionally collects the price revenue.\n";
  return 0;
}
