// Topology sensitivity (extension): is LCF's advantage an artifact of the
// GT-ITM transit-stub shape? Re-runs the headline comparison on four graph
// families at matched size — transit-stub (paper), AS1755 (paper test-bed),
// Erdős–Rényi, and Barabási–Albert — and reports the structural stats of
// each family alongside the social costs.
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/lcf.h"
#include "net/random_graphs.h"
#include "net/topology_zoo.h"
#include "net/transit_stub.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecsc;

core::Instance build_on(net::Graph topology, util::Rng& rng,
                        const std::vector<net::NodeId>& edge_pref = {}) {
  // Mirror core::generate_instance but on an externally built topology.
  core::InstanceParams params;
  params.provider_count = 100;
  core::Instance inst{
      net::MecNetwork(std::move(topology), params.mec, rng, edge_pref),
      {},
      {}};
  // Reuse the generator for providers/costs by generating a throwaway
  // instance and grafting its provider population (same distributions).
  util::Rng rng2 = rng.split();
  core::InstanceParams p2 = params;
  p2.network_size = 100;
  core::Instance donor = core::generate_instance(p2, rng2);
  inst.cost = donor.cost;
  inst.cost.alpha.resize(inst.cloudlet_count());
  inst.cost.beta.resize(inst.cloudlet_count());
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    inst.cost.alpha[i] = rng.uniform_real(0.0, 1.0);
    inst.cost.beta[i] = rng.uniform_real(0.0, 1.0);
  }
  inst.providers = donor.providers;
  for (auto& sp : inst.providers) {
    sp.home_dc = static_cast<core::DataCenterId>(rng.uniform_int(
        0, static_cast<std::int64_t>(inst.network.data_center_count()) - 1));
    sp.user_region = static_cast<core::CloudletId>(rng.uniform_int(
        0, static_cast<std::int64_t>(inst.cloudlet_count()) - 1));
  }
  return inst;
}

}  // namespace

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = repetitions();
  constexpr std::size_t kSize = 120;
  BenchRecorder recorder("topology_sensitivity");

  util::Table table({"topology", "nodes", "degree var", "clustering", "LCF",
                     "JoOffloadCache", "OffloadCache"});

  const char* names[] = {"transit-stub (GT-ITM)", "AS1755 (Rocketfuel)",
                         "Erdos-Renyi", "Barabasi-Albert"};
  for (int family = 0; family < 4; ++family) {
    util::RunningStats lcf, jo, oc, dvar, clus, nodes;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(4000 + 7 * rep + static_cast<std::uint64_t>(family));
      net::Graph topo;
      std::vector<net::NodeId> pref;
      switch (family) {
        case 0: {
          auto ts = net::generate_transit_stub_sized(kSize, rng);
          pref = ts.stub_nodes;
          topo = std::move(ts.graph);
          break;
        }
        case 1:
          topo = net::as1755_topology();
          break;
        case 2:
          topo = net::generate_erdos_renyi(
              {.node_count = kSize, .edge_probability = 0.035}, rng);
          break;
        case 3:
          topo = net::generate_barabasi_albert(
              {.node_count = kSize, .edges_per_node = 2}, rng);
          break;
      }
      nodes.add(static_cast<double>(topo.node_count()));
      dvar.add(net::degree_stats(topo).variance);
      clus.add(net::clustering_coefficient(topo));
      const core::Instance inst = build_on(std::move(topo), rng, pref);
      core::LcfOptions options;
      options.coordinated_fraction = 0.7;
      lcf.add(core::run_lcf(inst, options).social_cost());
      jo.add(core::run_jo_offload_cache(inst).social_cost());
      oc.add(core::run_offload_cache(inst).social_cost());
    }
    table.add_row({std::string(names[family]),
                   static_cast<long long>(nodes.mean()), dvar.mean(),
                   clus.mean(), lcf.mean(), jo.mean(), oc.mean()});
    const char* slugs[] = {"transit_stub", "as1755", "erdos_renyi",
                           "barabasi_albert"};
    util::JsonObject row;
    row["nodes"] = util::JsonValue(nodes.mean());
    row["degree_variance"] = util::JsonValue(dvar.mean());
    row["clustering"] = util::JsonValue(clus.mean());
    row["lcf_social_cost"] = util::JsonValue(lcf.mean());
    row["jo_social_cost"] = util::JsonValue(jo.mean());
    row["offload_social_cost"] = util::JsonValue(oc.mean());
    recorder.add(std::string("family=") + slugs[family], std::move(row));
  }
  recorder.write_file();

  std::cout << "Topology sensitivity — 100 providers, 1-xi = 0.3, " << kReps
            << " seeds per family\n";
  util::print_section(std::cout, "Headline comparison across graph families",
                      table);
  std::cout << "Reading: LCF < JoOffloadCache < OffloadCache must hold on\n"
               "every family — the mechanism's advantage is not an artifact\n"
               "of the transit-stub generator the paper uses.\n";
  return 0;
}
