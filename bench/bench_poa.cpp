// Theorem 1 validation — empirical Price of Anarchy of the approximation-
// restricted Stackelberg mechanism versus the theoretical bound
// 2δκ/(1-v)·(1/(4v)+1-ξ), on instances small enough for the exact social
// optimum (the PoA denominator).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/poa.h"
#include "core/virtual_cloudlet.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kInstances = smoke_mode() ? 2 : 5;

  util::Table table({"xi", "worst NE / OPT", "best NE / OPT",
                     "Theorem 1 bound", "bound looseness"});
  BenchRecorder recorder("poa");
  for (const double xi :
       smoke_trim(std::vector<double>{0.0, 0.25, 0.5, 0.75})) {
    util::RunningStats worst, best, bound;
    for (std::size_t k = 0; k < kInstances; ++k) {
      util::Rng rng(600 + 13 * k);
      core::InstanceParams p;
      p.network_size = 50;
      p.provider_count = 9;  // exact OPT affordable
      const core::Instance inst = core::generate_instance(p, rng);
      core::PoaOptions options;
      options.coordinated_fraction = xi;
      options.restarts = 25;
      util::Rng poa_rng(rng.split());
      const core::PoaResult r = core::estimate_poa(inst, options, poa_rng);
      if (!r.optimum_exact || r.equilibria_found == 0) continue;
      worst.add(r.empirical_poa);
      best.add(r.best_equilibrium_cost / r.optimum_cost);
      bound.add(r.theoretical_bound);
    }
    table.add_row({xi, worst.mean(), best.mean(), bound.mean(),
                   bound.mean() / std::max(worst.mean(), 1e-9)});
    util::JsonObject row;
    row["worst_ne_over_opt"] = util::JsonValue(worst.mean());
    row["best_ne_over_opt"] = util::JsonValue(best.mean());
    row["theorem1_bound"] = util::JsonValue(bound.mean());
    char label[32];
    std::snprintf(label, sizeof label, "xi=%.2f", xi);
    recorder.add(label, std::move(row));
  }
  recorder.write_file();

  std::cout << "Theorem 1 — empirical PoA vs bound ("
            << kInstances << " instances per row, 9 providers, exact OPT)\n";
  util::print_section(std::cout, "Price of Anarchy of the LCF mechanism",
                      table);
  std::cout << "Reading: worst-NE/OPT must stay below the Theorem 1 bound;\n"
               "the bound is loose by design (looseness column), and both\n"
               "the empirical PoA and the bound shrink as xi grows.\n";
  return 0;
}
