// Fig. 3 — Impact of the selfish share (1-ξ) in a GT-ITM network of size
// 250 (100 providers), (1-ξ) varied from 0 to 1.
//   (a) social cost            (b) cost of the selfish providers
//   (c) cost of the coordinated providers   (d) running times
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;

  constexpr std::size_t kSize = 250;
  const std::vector<double> shares =
      smoke_trim(std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                     0.8, 0.9, 1.0},
                 3);

  util::Table social({"1-xi", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table selfish({"1-xi", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table coordinated({"1-xi", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table runtime(
      {"1-xi", "LCF (ms)", "JoOffloadCache (ms)", "OffloadCache (ms)"});
  BenchRecorder recorder("fig3");

  for (const double share : shares) {
    std::vector<AlgorithmComparison> runs;
    for (std::size_t rep = 0; rep < repetitions(); ++rep) {
      util::Rng rng(777 + rep);  // same instances across shares
      core::InstanceParams params;
      params.network_size = kSize;
      params.provider_count = 100;
      const core::Instance inst = core::generate_instance(params, rng);
      runs.push_back(compare_algorithms(inst, share));
    }
    social.add_row(
        {share, mean_of(runs, [](auto& r) { return r.lcf.social_cost; }),
         mean_of(runs, [](auto& r) { return r.jo.social_cost; }),
         mean_of(runs, [](auto& r) { return r.offload.social_cost; })});
    selfish.add_row(
        {share, mean_of(runs, [](auto& r) { return r.lcf.selfish_cost; }),
         mean_of(runs, [](auto& r) { return r.jo.selfish_cost; }),
         mean_of(runs, [](auto& r) { return r.offload.selfish_cost; })});
    coordinated.add_row(
        {share, mean_of(runs, [](auto& r) { return r.lcf.coordinated_cost; }),
         mean_of(runs, [](auto& r) { return r.jo.coordinated_cost; }),
         mean_of(runs, [](auto& r) { return r.offload.coordinated_cost; })});
    runtime.add_row(
        {share, mean_of(runs, [](auto& r) { return r.lcf.elapsed_ms; }),
         mean_of(runs, [](auto& r) { return r.jo.elapsed_ms; }),
         mean_of(runs, [](auto& r) { return r.offload.elapsed_ms; })});
    char label[32];
    std::snprintf(label, sizeof label, "one_minus_xi=%.1f", share);
    recorder.add_comparison_means(label, runs);
  }
  recorder.write_file();

  std::cout << "Fig. 3 — GT-ITM network size 250, 100 providers, "
            << repetitions() << " seeds per point\n";
  util::print_section(std::cout, "Fig. 3 (a) social cost", social);
  util::print_section(std::cout, "Fig. 3 (b) cost of the selfish providers",
                      selfish);
  util::print_section(std::cout,
                      "Fig. 3 (c) cost of the coordinated providers",
                      coordinated);
  util::print_section(std::cout, "Fig. 3 (d) running times", runtime);
  return 0;
}
