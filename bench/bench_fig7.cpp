// Fig. 7 — Impact of the maximum resource demands a_max and b_max in the
// (emulated) test-bed. Growing a_max shrinks the virtual-cloudlet count
// n_i = min{⌊C/a_max⌋, ⌊B/b_max⌋} (Eq. (7)), so the mechanism can cache
// fewer services and the total cost rises (the paper uses this to validate
// Lemma 2's dependence on δ, κ).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/virtual_cloudlet.h"
#include "sim/emulation.h"
#include "sim/testbed.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecsc;

/// Measured social costs plus the realized average slot count.
struct Point {
  double lcf = 0.0, jo = 0.0, offload = 0.0, avg_slots = 0.0;
};

Point run_point(double compute_hi_scale, double bandwidth_hi_scale,
                std::size_t repetitions) {
  util::RunningStats s[3], slots;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    util::Rng rng(500 + rep);
    core::InstanceParams p;
    p.use_as1755 = true;
    p.provider_count = 100;
    p.compute_per_request_hi *= compute_hi_scale;
    p.bandwidth_per_request_hi *= bandwidth_hi_scale;
    const core::Instance inst = core::generate_instance(p, rng);
    sim::WorkloadParams wp;
    wp.horizon_s = 15.0;
    const auto trace = sim::generate_workload(inst, wp, rng);
    s[0].add(sim::replay(sim::run_algorithm(inst, sim::Algorithm::Lcf, 0.3,
                                            nullptr),
                         trace)
                 .measured_social_cost);
    s[1].add(sim::replay(sim::run_algorithm(
                             inst, sim::Algorithm::JoOffloadCache, 0.3,
                             nullptr),
                         trace)
                 .measured_social_cost);
    s[2].add(sim::replay(sim::run_algorithm(inst, sim::Algorithm::OffloadCache,
                                            0.3, nullptr),
                         trace)
                 .measured_social_cost);
    const auto split = core::split_cloudlets(inst);
    slots.add(static_cast<double>(split.total_slots()) /
              static_cast<double>(inst.cloudlet_count()));
  }
  return Point{s[0].mean(), s[1].mean(), s[2].mean(), slots.mean()};
}

}  // namespace

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = smoke_mode() ? 2 : 3;
  const std::vector<double> scales =
      smoke_trim(std::vector<double>{1.0, 2.0, 3.0, 4.0, 6.0});
  BenchRecorder recorder("fig7");

  const auto record = [&recorder](const char* axis, double scale,
                                  const Point& p) {
    util::JsonObject row;
    row["avg_slots"] = util::JsonValue(p.avg_slots);
    row["lcf_measured_cost"] = util::JsonValue(p.lcf);
    row["jo_measured_cost"] = util::JsonValue(p.jo);
    row["offload_measured_cost"] = util::JsonValue(p.offload);
    char label[48];
    std::snprintf(label, sizeof label, "%s_scale=%.1f", axis, scale);
    recorder.add(label, std::move(row));
  };

  util::Table a({"a_max scale", "avg n_i", "LCF", "JoOffloadCache",
                 "OffloadCache"});
  for (const double scale : scales) {
    const Point p = run_point(scale, 1.0, kReps);
    a.add_row({scale, p.avg_slots, p.lcf, p.jo, p.offload});
    record("a_max", scale, p);
  }

  util::Table b({"b_max scale", "avg n_i", "LCF", "JoOffloadCache",
                 "OffloadCache"});
  for (const double scale : scales) {
    const Point p = run_point(1.0, scale, kReps);
    b.add_row({scale, p.avg_slots, p.lcf, p.jo, p.offload});
    record("b_max", scale, p);
  }
  recorder.write_file();

  std::cout << "Fig. 7 — emulated test-bed, 100 providers, 1-xi = 0.3, "
            << kReps
            << " seeds per point (measured social cost)\n";
  util::print_section(std::cout, "Fig. 7 (a) impact of a_max", a);
  util::print_section(std::cout, "Fig. 7 (b) impact of b_max", b);
  return 0;
}
