// Fig. 6 — Test-bed parameter studies (emulated AS1755 overlay unless a
// panel varies the topology itself):
//   (a) impact of the selfish share 1-ξ on the measured social cost
//   (b) impact of the number of service-caching requests (providers)
//   (c) impact of the network size (50..400; the paper observes the total
//       cost dipping around size 200 before rising again)
//   (d) impact of the consistency-update data volume
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/emulation.h"
#include "sim/testbed.h"
#include "sim/workload.h"

namespace {

using namespace mecsc;

/// Measured social cost of the three algorithms on one emulated scenario.
struct Measured {
  double lcf = 0.0, jo = 0.0, offload = 0.0;
};

Measured measure(const core::Instance& inst, double one_minus_xi,
                 util::Rng& rng) {
  sim::WorkloadParams wp;
  wp.horizon_s = 15.0;
  const auto trace = sim::generate_workload(inst, wp, rng);
  Measured m;
  m.lcf = sim::replay(
              sim::run_algorithm(inst, sim::Algorithm::Lcf, one_minus_xi,
                                 nullptr),
              trace)
              .measured_social_cost;
  m.jo = sim::replay(sim::run_algorithm(inst, sim::Algorithm::JoOffloadCache,
                                        one_minus_xi, nullptr),
                     trace)
             .measured_social_cost;
  m.offload = sim::replay(
                  sim::run_algorithm(inst, sim::Algorithm::OffloadCache,
                                     one_minus_xi, nullptr),
                  trace)
                  .measured_social_cost;
  return m;
}

core::Instance as1755_instance(std::size_t providers, util::Rng& rng,
                               double update_fraction = 0.10) {
  core::InstanceParams p;
  p.use_as1755 = true;
  p.provider_count = providers;
  p.update_fraction = update_fraction;
  return core::generate_instance(p, rng);
}

}  // namespace

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = smoke_mode() ? 2 : 3;
  BenchRecorder recorder("fig6");

  // --- (a) selfish share ----------------------------------------------------
  util::Table a({"1-xi", "LCF", "JoOffloadCache", "OffloadCache"});
  for (const double share : smoke_trim(std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0})) {
    util::RunningStats s[3];
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(100 + rep);
      const core::Instance inst = as1755_instance(100, rng);
      const Measured m = measure(inst, share, rng);
      s[0].add(m.lcf);
      s[1].add(m.jo);
      s[2].add(m.offload);
    }
    a.add_row({share, s[0].mean(), s[1].mean(), s[2].mean()});
    util::JsonObject row;
    row["lcf_measured_cost"] = util::JsonValue(s[0].mean());
    row["jo_measured_cost"] = util::JsonValue(s[1].mean());
    row["offload_measured_cost"] = util::JsonValue(s[2].mean());
    char label[48];
    std::snprintf(label, sizeof label, "a:one_minus_xi=%.1f", share);
    recorder.add(label, std::move(row));
  }

  // --- (b) number of service caching requests -------------------------------
  util::Table b({"providers", "LCF", "JoOffloadCache", "OffloadCache"});
  for (const std::size_t n : smoke_trim(std::vector<std::size_t>{20, 40, 60, 80, 100, 120})) {
    util::RunningStats s[3];
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(200 + rep);
      const core::Instance inst = as1755_instance(n, rng);
      const Measured m = measure(inst, 0.3, rng);
      s[0].add(m.lcf);
      s[1].add(m.jo);
      s[2].add(m.offload);
    }
    b.add_row({static_cast<long long>(n), s[0].mean(), s[1].mean(),
               s[2].mean()});
    util::JsonObject row;
    row["lcf_measured_cost"] = util::JsonValue(s[0].mean());
    row["jo_measured_cost"] = util::JsonValue(s[1].mean());
    row["offload_measured_cost"] = util::JsonValue(s[2].mean());
    recorder.add("b:providers=" + std::to_string(n), std::move(row));
  }

  // --- (c) network size ------------------------------------------------------
  util::Table c({"network size", "LCF", "JoOffloadCache", "OffloadCache"});
  for (const std::size_t size : smoke_trim(std::vector<std::size_t>{50, 100, 150, 200, 250, 300, 400})) {
    util::RunningStats s[3];
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(300 + rep);
      core::InstanceParams p;
      p.network_size = size;
      p.provider_count = 100;
      const core::Instance inst = core::generate_instance(p, rng);
      const Measured m = measure(inst, 0.3, rng);
      s[0].add(m.lcf);
      s[1].add(m.jo);
      s[2].add(m.offload);
    }
    c.add_row({static_cast<long long>(size), s[0].mean(), s[1].mean(),
               s[2].mean()});
    util::JsonObject row;
    row["lcf_measured_cost"] = util::JsonValue(s[0].mean());
    row["jo_measured_cost"] = util::JsonValue(s[1].mean());
    row["offload_measured_cost"] = util::JsonValue(s[2].mean());
    recorder.add("c:size=" + std::to_string(size), std::move(row));
  }

  // --- (d) update data volume -------------------------------------------------
  util::Table d(
      {"update fraction", "LCF", "JoOffloadCache", "OffloadCache"});
  for (const double frac : smoke_trim(std::vector<double>{0.02, 0.05, 0.10, 0.20, 0.40})) {
    util::RunningStats s[3];
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(400 + rep);
      const core::Instance inst = as1755_instance(100, rng, frac);
      const Measured m = measure(inst, 0.3, rng);
      s[0].add(m.lcf);
      s[1].add(m.jo);
      s[2].add(m.offload);
    }
    d.add_row({frac, s[0].mean(), s[1].mean(), s[2].mean()});
    util::JsonObject row;
    row["lcf_measured_cost"] = util::JsonValue(s[0].mean());
    row["jo_measured_cost"] = util::JsonValue(s[1].mean());
    row["offload_measured_cost"] = util::JsonValue(s[2].mean());
    char label[48];
    std::snprintf(label, sizeof label, "d:update_fraction=%.2f", frac);
    recorder.add(label, std::move(row));
  }

  recorder.write_file();

  std::cout << "Fig. 6 — emulated test-bed parameter studies, "
            << kReps << " seeds per point (measured social cost)\n";
  util::print_section(std::cout, "Fig. 6 (a) impact of 1-xi", a);
  util::print_section(std::cout,
                      "Fig. 6 (b) impact of the number of requests", b);
  util::print_section(std::cout, "Fig. 6 (c) impact of the network size", c);
  util::print_section(std::cout,
                      "Fig. 6 (d) impact of the update data volume", d);
  return 0;
}
