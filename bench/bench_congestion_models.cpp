// Congestion-model study (§II-C's extension point): how the market outcome
// changes when the proportional model is replaced by other non-decreasing
// congestion functions, for all three algorithms.
#include <iostream>

#include "bench_common.h"
#include "core/congestion_model.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = repetitions();
  BenchRecorder recorder("congestion_models");

  util::Table cost({"congestion model", "LCF", "JoOffloadCache",
                    "OffloadCache", "LCF advantage %"});
  util::Table spread({"congestion model", "LCF: max tenants",
                      "LCF: cached services", "NE rounds"});

  for (const auto kind :
       {core::CongestionKind::Harmonic, core::CongestionKind::Linear,
        core::CongestionKind::Quadratic, core::CongestionKind::Exponential}) {
    util::RunningStats lcf, jo, oc, peak, cached, rounds;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(3000 + rep);
      core::InstanceParams p;
      p.network_size = 150;
      p.provider_count = 100;
      core::Instance inst = core::generate_instance(p, rng);
      inst.cost.congestion = kind;

      core::LcfOptions options;
      options.coordinated_fraction = 0.7;
      const core::LcfResult r = core::run_lcf(inst, options);
      lcf.add(r.social_cost());
      jo.add(core::run_jo_offload_cache(inst).social_cost());
      oc.add(core::run_offload_cache(inst).social_cost());
      rounds.add(static_cast<double>(r.game_rounds));
      std::size_t pk = 0, cd = 0;
      for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
        pk = std::max(pk, r.assignment.occupancy(i));
      }
      for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
        if (r.assignment.choice(l) != core::kRemote) ++cd;
      }
      peak.add(static_cast<double>(pk));
      cached.add(static_cast<double>(cd));
    }
    const std::string name = core::congestion_kind_name(kind);
    cost.add_row({name, lcf.mean(), jo.mean(), oc.mean(),
                  100.0 * (jo.mean() - lcf.mean()) / jo.mean()});
    spread.add_row({name, peak.mean(), cached.mean(), rounds.mean()});
    util::JsonObject row;
    row["lcf_social_cost"] = util::JsonValue(lcf.mean());
    row["jo_social_cost"] = util::JsonValue(jo.mean());
    row["offload_social_cost"] = util::JsonValue(oc.mean());
    row["peak_tenants"] = util::JsonValue(peak.mean());
    row["cached_services"] = util::JsonValue(cached.mean());
    row["ne_rounds"] = util::JsonValue(rounds.mean());
    recorder.add("model=" + name, std::move(row));
  }
  recorder.write_file();

  std::cout << "Congestion-model study — 100 providers, size 150, 1-xi=0.3, "
            << kReps << " seeds per point\n";
  util::print_section(std::cout, "Social cost by congestion model", cost);
  util::print_section(std::cout, "LCF placement structure", spread);
  std::cout
      << "Reading: sharper congestion (quadratic/exponential) shrinks the\n"
         "peak cloudlet occupancy and pushes more services remote; LCF's\n"
         "advantage over the congestion-blind baselines widens because\n"
         "piling up gets costlier.\n";
  return 0;
}
