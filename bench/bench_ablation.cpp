// Ablation studies for the design choices DESIGN.md calls out:
//   (1) Appro inner pricing — congestion-aware slot costs (default) vs the
//       paper's literal congestion-free Eq. (9);
//   (2) LCF coordinated-set selection — Largest-Cost-First vs random vs
//       smallest-cost-first (is LCF's "enlarge the influence" heuristic
//       actually pulling weight?);
//   (3) selfish players' starting profile — cold start (remote) vs warm
//       start at the Appro seats.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "core/appro.h"
#include "core/congestion_game.h"
#include "core/lcf.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecsc;

/// LCF variant with a pluggable coordinated-set rule.
enum class Selection { LargestCost, Random, SmallestCost };

double lcf_variant(const core::Instance& inst, Selection rule,
                   util::Rng& rng) {
  const core::ApproResult appro = core::run_appro(inst);
  const std::size_t n = inst.provider_count();
  const auto count = static_cast<std::size_t>(0.7 * static_cast<double>(n));
  std::vector<core::ProviderId> order(n);
  std::iota(order.begin(), order.end(), core::ProviderId{0});
  switch (rule) {
    case Selection::LargestCost:
      std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
        return appro.assignment.provider_cost(a) >
               appro.assignment.provider_cost(b);
      });
      break;
    case Selection::SmallestCost:
      std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
        return appro.assignment.provider_cost(a) <
               appro.assignment.provider_cost(b);
      });
      break;
    case Selection::Random:
      rng.shuffle(order);
      break;
  }
  std::vector<bool> movable(n, true);
  core::Assignment start(inst);
  for (std::size_t k = 0; k < count; ++k) {
    const core::ProviderId l = order[k];
    movable[l] = false;
    const std::size_t seat = appro.assignment.choice(l);
    if (seat != core::kRemote) start.move(l, seat);
  }
  return core::best_response_dynamics(std::move(start), movable)
      .assignment.social_cost();
}

}  // namespace

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = repetitions();
  BenchRecorder recorder("ablation");

  // --- (1) Appro pricing ----------------------------------------------------
  util::Table pricing({"network size", "congestion-aware", "literal Eq.(9)",
                       "aware advantage %"});
  for (const std::size_t size : smoke_trim(std::vector<std::size_t>{100, 200, 300})) {
    util::RunningStats aware, literal;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(800 + rep);
      core::InstanceParams p;
      p.network_size = size;
      p.provider_count = 100;
      const core::Instance inst = core::generate_instance(p, rng);
      aware.add(core::run_appro(inst).assignment.social_cost());
      core::ApproOptions lit;
      lit.congestion_aware = false;
      literal.add(core::run_appro(inst, lit).assignment.social_cost());
    }
    pricing.add_row({static_cast<long long>(size), aware.mean(),
                     literal.mean(),
                     100.0 * (literal.mean() - aware.mean()) /
                         literal.mean()});
    util::JsonObject row;
    row["aware_social_cost"] = util::JsonValue(aware.mean());
    row["literal_social_cost"] = util::JsonValue(literal.mean());
    recorder.add("pricing:size=" + std::to_string(size), std::move(row));
  }

  // --- (2) coordinated-set selection rule ------------------------------------
  util::Table selection({"network size", "LCF (largest cost)", "random",
                         "smallest cost"});
  for (const std::size_t size :
       smoke_trim(std::vector<std::size_t>{100, 200}, 1)) {
    util::RunningStats lcf, random, smallest;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(900 + rep);
      core::InstanceParams p;
      p.network_size = size;
      p.provider_count = 100;
      const core::Instance inst = core::generate_instance(p, rng);
      util::Rng sel_rng(42 + rep);
      lcf.add(lcf_variant(inst, Selection::LargestCost, sel_rng));
      random.add(lcf_variant(inst, Selection::Random, sel_rng));
      smallest.add(lcf_variant(inst, Selection::SmallestCost, sel_rng));
    }
    selection.add_row({static_cast<long long>(size), lcf.mean(),
                       random.mean(), smallest.mean()});
    util::JsonObject row;
    row["largest_cost_social_cost"] = util::JsonValue(lcf.mean());
    row["random_social_cost"] = util::JsonValue(random.mean());
    row["smallest_cost_social_cost"] = util::JsonValue(smallest.mean());
    recorder.add("selection:size=" + std::to_string(size), std::move(row));
  }

  // --- (3) selfish start ------------------------------------------------------
  util::Table start({"network size", "cold start (remote)",
                     "warm start (Appro seats)"});
  for (const std::size_t size :
       smoke_trim(std::vector<std::size_t>{100, 200}, 1)) {
    util::RunningStats cold, warm;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(950 + rep);
      core::InstanceParams p;
      p.network_size = size;
      p.provider_count = 100;
      const core::Instance inst = core::generate_instance(p, rng);
      core::LcfOptions c, w;
      c.selfish_start_at_appro = false;
      w.selfish_start_at_appro = true;
      cold.add(core::run_lcf(inst, c).social_cost());
      warm.add(core::run_lcf(inst, w).social_cost());
    }
    start.add_row(
        {static_cast<long long>(size), cold.mean(), warm.mean()});
    util::JsonObject row;
    row["cold_start_social_cost"] = util::JsonValue(cold.mean());
    row["warm_start_social_cost"] = util::JsonValue(warm.mean());
    recorder.add("start:size=" + std::to_string(size), std::move(row));
  }

  recorder.write_file();

  std::cout << "Ablations — " << kReps << " seeds per point\n";
  util::print_section(std::cout,
                      "(1) Appro slot pricing (social cost, lower=better)",
                      pricing);
  util::print_section(std::cout,
                      "(2) Coordinated-set selection rule (social cost)",
                      selection);
  util::print_section(std::cout, "(3) Selfish starting profile (social cost)",
                      start);
  return 0;
}
