// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench regenerates one figure of the paper's §IV as fixed-width
// tables (one table per sub-figure), averaging each data point over a few
// seeded repetitions. Absolute dollar values differ from the paper (our
// substrate prices are synthetic); the *shapes* — orderings, trends,
// crossovers — are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/instance.h"
#include "core/lcf.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace mecsc::bench {

/// Number of seeded repetitions per data point.
inline constexpr std::size_t kRepetitions = 5;

/// Metrics of one algorithm run on one instance.
struct RunMetrics {
  double social_cost = 0.0;
  double selfish_cost = 0.0;      ///< cost of the selfish provider subset
  double coordinated_cost = 0.0;  ///< cost of the coordinated subset
  double elapsed_ms = 0.0;
};

/// Runs LCF / JoOffloadCache / OffloadCache on `inst` with the given selfish
/// share (1-ξ). The coordinated/selfish provider split is determined by LCF
/// and applied to the baselines' cost breakdowns too, so Fig. 2(b)/(c)
/// compare the same provider subsets across algorithms.
struct AlgorithmComparison {
  RunMetrics lcf;
  RunMetrics jo;
  RunMetrics offload;
};

inline AlgorithmComparison compare_algorithms(const core::Instance& inst,
                                              double one_minus_xi) {
  AlgorithmComparison out;
  core::LcfOptions options;
  options.coordinated_fraction = 1.0 - one_minus_xi;

  util::Timer t1;
  const core::LcfResult lcf = core::run_lcf(inst, options);
  out.lcf.elapsed_ms = t1.elapsed_ms();
  out.lcf.social_cost = lcf.social_cost();
  out.lcf.selfish_cost = lcf.selfish_cost;
  out.lcf.coordinated_cost = lcf.coordinated_cost;

  auto breakdown = [&](const core::Assignment& a, RunMetrics& m) {
    m.social_cost = a.social_cost();
    for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
      (lcf.coordinated[l] ? m.coordinated_cost : m.selfish_cost) +=
          a.provider_cost(l);
    }
  };
  util::Timer t2;
  const core::Assignment jo = core::run_jo_offload_cache(inst);
  out.jo.elapsed_ms = t2.elapsed_ms();
  breakdown(jo, out.jo);

  util::Timer t3;
  const core::Assignment oc = core::run_offload_cache(inst);
  out.offload.elapsed_ms = t3.elapsed_ms();
  breakdown(oc, out.offload);
  return out;
}

/// Averages a metric across repetitions via a caller-provided extractor.
template <typename Fn>
double mean_of(const std::vector<AlgorithmComparison>& runs, Fn&& get) {
  util::RunningStats s;
  for (const auto& r : runs) s.add(get(r));
  return s.mean();
}

}  // namespace mecsc::bench
