// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench regenerates one figure of the paper's §IV as fixed-width
// tables (one table per sub-figure), averaging each data point over a few
// seeded repetitions. Absolute dollar values differ from the paper (our
// substrate prices are synthetic); the *shapes* — orderings, trends,
// crossovers — are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/instance.h"
#include "core/lcf.h"
#include "obs/profiler.h"
#include "obs/run_info.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace mecsc::bench {

/// Number of seeded repetitions per data point (full runs).
inline constexpr std::size_t kRepetitions = 5;

/// True when MECSC_BENCH_SMOKE=1: benches shrink their parameter sweeps and
/// repetition counts so CI can execute the whole suite in seconds. Smoke
/// results are still deterministic (same seeds, same records), just fewer.
inline bool smoke_mode() {
  const char* env = std::getenv("MECSC_BENCH_SMOKE");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

/// Seeded repetitions per data point, honoring smoke mode.
inline std::size_t repetitions() { return smoke_mode() ? 2 : kRepetitions; }

/// Trims a parameter sweep to its first `keep` points in smoke mode; full
/// runs keep the whole sweep.
template <typename T>
std::vector<T> smoke_trim(std::vector<T> v, std::size_t keep = 2) {
  if (smoke_mode() && v.size() > keep) v.resize(keep);
  return v;
}

/// Scales a single size down in smoke mode (never below `floor`).
inline std::size_t smoke_scale(std::size_t full, std::size_t floor_value) {
  if (!smoke_mode()) return full;
  return full / 4 > floor_value ? full / 4 : floor_value;
}

/// Metrics of one algorithm run on one instance.
struct RunMetrics {
  double social_cost = 0.0;
  double selfish_cost = 0.0;      ///< cost of the selfish provider subset
  double coordinated_cost = 0.0;  ///< cost of the coordinated subset
  double elapsed_ms = 0.0;
};

/// Runs LCF / JoOffloadCache / OffloadCache on `inst` with the given selfish
/// share (1-ξ). The coordinated/selfish provider split is determined by LCF
/// and applied to the baselines' cost breakdowns too, so Fig. 2(b)/(c)
/// compare the same provider subsets across algorithms.
struct AlgorithmComparison {
  RunMetrics lcf;
  RunMetrics jo;
  RunMetrics offload;
};

inline AlgorithmComparison compare_algorithms(const core::Instance& inst,
                                              double one_minus_xi) {
  AlgorithmComparison out;
  core::LcfOptions options;
  options.coordinated_fraction = 1.0 - one_minus_xi;

  util::Timer t1;
  const core::LcfResult lcf = core::run_lcf(inst, options);
  out.lcf.elapsed_ms = t1.elapsed_ms();
  out.lcf.social_cost = lcf.social_cost();
  out.lcf.selfish_cost = lcf.selfish_cost;
  out.lcf.coordinated_cost = lcf.coordinated_cost;

  auto breakdown = [&](const core::Assignment& a, RunMetrics& m) {
    m.social_cost = a.social_cost();
    for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
      (lcf.coordinated[l] ? m.coordinated_cost : m.selfish_cost) +=
          a.provider_cost(l);
    }
  };
  util::Timer t2;
  const core::Assignment jo = core::run_jo_offload_cache(inst);
  out.jo.elapsed_ms = t2.elapsed_ms();
  breakdown(jo, out.jo);

  util::Timer t3;
  const core::Assignment oc = core::run_offload_cache(inst);
  out.offload.elapsed_ms = t3.elapsed_ms();
  breakdown(oc, out.offload);
  return out;
}

/// Averages a metric across repetitions via a caller-provided extractor.
template <typename Fn>
double mean_of(const std::vector<AlgorithmComparison>& runs, Fn&& get) {
  util::RunningStats s;
  for (const auto& r : runs) s.add(get(r));
  return s.mean();
}

/// Machine-readable bench output, mirroring google-benchmark's JSON layout
/// (a context header plus one record per data point). Each wired bench
/// writes BENCH_<name>.json next to its fixed-width tables so downstream
/// tooling can track perf trajectories without screen-scraping.
///
/// Determinism contract: every wall-clock field uses the "wall_" key
/// prefix; everything else is reproducible bit-for-bit from the seeds
/// (tools/strip_wallclock.py + check_determinism.sh enforce this for the
/// CLI artifacts, and the same convention applies here).
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name) : name_(std::move(name)) {
    // MECSC_BENCH_PROFILE=1 captures a phase profile of the whole bench run
    // and writes PROFILE_<name>.json next to BENCH_<name>.json.
    if (const char* env = std::getenv("MECSC_BENCH_PROFILE")) {
      profile_ = env[0] == '1' && env[1] == '\0';
    }
    if (profile_) obs::Profiler::global().enable();
  }

  /// Adds one data-point record. `deterministic` holds algorithm results;
  /// `wall_ms` holds {metric -> milliseconds} timing pairs, each emitted
  /// under a "wall_<metric>_ms" key.
  void add(const std::string& label, util::JsonObject deterministic,
           const std::map<std::string, double>& wall_ms = {}) {
    deterministic["label"] = util::JsonValue(label);
    for (const auto& [metric, ms] : wall_ms) {
      deterministic["wall_" + metric + "_ms"] = util::JsonValue(ms);
    }
    records_.emplace_back(std::move(deterministic));
  }

  /// Record layout for the LCF-vs-baselines comparison benches.
  void add_comparison_means(const std::string& label,
                            const std::vector<AlgorithmComparison>& runs) {
    util::JsonObject row;
    row["lcf_social_cost"] =
        mean_of(runs, [](auto& r) { return r.lcf.social_cost; });
    row["lcf_selfish_cost"] =
        mean_of(runs, [](auto& r) { return r.lcf.selfish_cost; });
    row["lcf_coordinated_cost"] =
        mean_of(runs, [](auto& r) { return r.lcf.coordinated_cost; });
    row["jo_social_cost"] =
        mean_of(runs, [](auto& r) { return r.jo.social_cost; });
    row["offload_social_cost"] =
        mean_of(runs, [](auto& r) { return r.offload.social_cost; });
    add(label, std::move(row),
        {{"lcf", mean_of(runs, [](auto& r) { return r.lcf.elapsed_ms; })},
         {"jo", mean_of(runs, [](auto& r) { return r.jo.elapsed_ms; })},
         {"offload",
          mean_of(runs, [](auto& r) { return r.offload.elapsed_ms; })}});
  }

  /// Writes BENCH_<name>.json into the current directory (or
  /// $MECSC_BENCH_JSON_DIR when set).
  void write_file() const {
    std::string dir = ".";
    if (const char* env = std::getenv("MECSC_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    util::JsonObject doc;
    doc["bench"] = util::JsonValue(name_);
    doc["obs_format_version"] = util::JsonValue(obs::kObsFormatVersion);
    doc["repetitions"] = util::JsonValue(repetitions());
    doc["records"] = util::JsonValue(records_);
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    out << util::JsonValue(std::move(doc)).dump(2) << "\n";
    if (out) {
      std::cerr << "wrote " << path << "\n";
    } else {
      std::cerr << "warning: could not write " << path << "\n";
    }
    if (profile_) {
      const std::string ppath = dir + "/PROFILE_" + name_ + ".json";
      std::ofstream pout(ppath, std::ios::out | std::ios::trunc);
      pout << obs::Profiler::global().report().to_json().dump(2) << "\n";
      if (pout) {
        std::cerr << "wrote " << ppath << "\n";
      } else {
        std::cerr << "warning: could not write " << ppath << "\n";
      }
    }
  }

 private:
  std::string name_;
  util::JsonArray records_;
  bool profile_ = false;
};

}  // namespace mecsc::bench
