// Market stability & latency study (extension):
//   (1) how binding are the leader's bulk-lease contracts? — side-payment
//       budget that would make coordinated obedience voluntary, vs ξ;
//   (2) the delay side of the story: analytic M/M/1 + hop delays per
//       algorithm (the paper's motivation, quantified).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/delay_model.h"
#include "core/incentives.h"
#include "core/lcf.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kReps = repetitions();
  BenchRecorder recorder("stability");

  // --- (1) contract pressure vs coordination level ---------------------------
  util::Table contracts({"1-xi", "binding contracts", "side-payment budget",
                         "budget / social cost %", "IR violations",
                         "max incentive"});
  for (const double one_minus_xi :
       smoke_trim(std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0})) {
    util::RunningStats binding, budget, share, ir, peak;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(6000 + rep);
      core::InstanceParams p;
      p.network_size = 150;
      p.provider_count = 100;
      const core::Instance inst = core::generate_instance(p, rng);
      core::LcfOptions options;
      options.coordinated_fraction = 1.0 - one_minus_xi;
      const core::LcfResult r = core::run_lcf(inst, options);
      const core::StabilityReport s = core::analyze_stability(inst, r);
      binding.add(static_cast<double>(s.binding_contracts));
      budget.add(s.side_payment_budget);
      share.add(100.0 * s.side_payment_budget / r.social_cost());
      ir.add(static_cast<double>(s.ir_violations));
      peak.add(s.max_incentive);
    }
    contracts.add_row({one_minus_xi, binding.mean(), budget.mean(),
                       share.mean(), ir.mean(), peak.mean()});
    util::JsonObject row;
    row["binding_contracts"] = util::JsonValue(binding.mean());
    row["side_payment_budget"] = util::JsonValue(budget.mean());
    row["ir_violations"] = util::JsonValue(ir.mean());
    row["max_incentive"] = util::JsonValue(peak.mean());
    char label[40];
    std::snprintf(label, sizeof label, "contracts:one_minus_xi=%.1f",
                  one_minus_xi);
    recorder.add(label, std::move(row));
  }

  // --- (2) analytic delay per algorithm --------------------------------------
  util::Table delay({"algorithm", "mean delay (ms)", "max delay (ms)",
                     "overloaded providers", "peak utilization"});
  util::RunningStats mean_d[3], max_d[3], over[3], util_peak[3];
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    util::Rng rng(7000 + rep);
    core::InstanceParams p;
    p.network_size = 150;
    p.provider_count = 100;
    const core::Instance inst = core::generate_instance(p, rng);
    core::LcfOptions options;
    options.coordinated_fraction = 0.7;
    const core::Assignment placements[3] = {
        core::run_lcf(inst, options).assignment,
        core::run_jo_offload_cache(inst), core::run_offload_cache(inst)};
    for (int k = 0; k < 3; ++k) {
      const core::DelayReport r = core::evaluate_delay(placements[k]);
      mean_d[k].add(r.mean_delay_s * 1e3);
      max_d[k].add(r.max_delay_s * 1e3);
      over[k].add(static_cast<double>(r.overloaded_providers));
      double peak = 0.0;
      for (double u : r.cloudlet_utilization) peak = std::max(peak, u);
      util_peak[k].add(peak);
    }
  }
  const char* names[3] = {"LCF", "JoOffloadCache", "OffloadCache"};
  for (int k = 0; k < 3; ++k) {
    delay.add_row({std::string(names[k]), mean_d[k].mean(), max_d[k].mean(),
                   over[k].mean(), util_peak[k].mean()});
    util::JsonObject row;
    row["mean_delay_ms"] = util::JsonValue(mean_d[k].mean());  // determinism-lint: allow(wall-key) simulated time
    row["max_delay_ms"] = util::JsonValue(max_d[k].mean());  // determinism-lint: allow(wall-key) simulated time
    row["overloaded_providers"] = util::JsonValue(over[k].mean());
    row["peak_utilization"] = util::JsonValue(util_peak[k].mean());
    recorder.add(std::string("delay:") + names[k], std::move(row));
  }
  recorder.write_file();

  std::cout << "Market stability & latency — 100 providers, size 150, "
            << kReps << " seeds per point\n";
  util::print_section(
      std::cout, "(1) Contract pressure on coordinated providers", contracts);
  util::print_section(std::cout, "(2) Analytic request delay (M/M/1 + hops)",
                      delay);
  std::cout
      << "Reading: the side-payment budget the leader would need to make\n"
         "obedience voluntary stays a small share (<4%) of the social cost\n"
         "and vanishes as coordination shrinks; LCF also wins the latency\n"
         "story — lower queue utilization and roughly half the mean request\n"
         "delay of the congestion-blind baselines.\n";
  return 0;
}
