// Lemma 2 validation — empirical approximation ratio of Appro versus the
// proven bound 2·δ·κ, on instances small enough for the exact optimum.
// Also contrasts the literal congestion-free Algorithm 1 with the
// congestion-aware default (see DESIGN.md).
#include <iostream>

#include "bench_common.h"
#include "core/appro.h"
#include "core/social_optimum.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;
  const std::size_t kInstances = smoke_mode() ? 3 : 8;

  util::Table table({"providers", "Appro/OPT (aware)", "Appro/OPT (literal)",
                     "ShmoysTardos/OPT", "2*delta*kappa"});
  BenchRecorder recorder("appro_ratio");
  for (const std::size_t n :
       smoke_trim(std::vector<std::size_t>{5, 7, 9, 11})) {
    util::RunningStats aware, literal, st, bound;
    for (std::size_t k = 0; k < kInstances; ++k) {
      util::Rng rng(700 + 17 * k + n);
      core::InstanceParams p;
      p.network_size = 50;
      p.provider_count = n;
      const core::Instance inst = core::generate_instance(p, rng);
      const core::SocialOptimumResult opt = core::solve_social_optimum(inst);
      if (!opt.proven_optimal || opt.cost <= 0.0) continue;

      const core::ApproResult a = core::run_appro(inst);
      core::ApproOptions lit;
      lit.congestion_aware = false;
      const core::ApproResult b = core::run_appro(inst, lit);
      core::ApproOptions stmode;
      stmode.solver = core::ApproOptions::InnerSolver::ShmoysTardos;
      const core::ApproResult c = core::run_appro(inst, stmode);

      aware.add(a.assignment.social_cost() / opt.cost);
      literal.add(b.assignment.social_cost() / opt.cost);
      st.add(c.assignment.social_cost() / opt.cost);
      bound.add(2.0 * a.split.delta_max(inst) * a.split.kappa_max(inst));
    }
    table.add_row({static_cast<long long>(n), aware.mean(), literal.mean(),
                   st.mean(), bound.mean()});
    util::JsonObject row;
    row["appro_aware_over_opt"] = util::JsonValue(aware.mean());
    row["appro_literal_over_opt"] = util::JsonValue(literal.mean());
    row["shmoys_tardos_over_opt"] = util::JsonValue(st.mean());
    row["two_delta_kappa"] = util::JsonValue(bound.mean());
    recorder.add("providers=" + std::to_string(n), std::move(row));
  }
  recorder.write_file();

  std::cout << "Lemma 2 — empirical approximation ratio of Appro ("
            << kInstances << " instances per row, exact OPT)\n";
  util::print_section(std::cout, "Appro vs exact social optimum", table);
  std::cout << "Reading: every ratio column must stay below 2*delta*kappa;\n"
               "the congestion-aware default should sit closest to 1.\n";
  return 0;
}
