// Fig. 2 — Algorithm performance in GT-ITM generated networks with sizes
// varied from 50 to 400 (100 providers, 1-ξ = 0.3).
//   (a) social cost            (b) cost of the selfish providers
//   (c) cost of the coordinated providers   (d) running times
#include "bench_common.h"

int main() {
  using namespace mecsc;
  using namespace mecsc::bench;

  const std::vector<std::size_t> sizes = smoke_trim(
      std::vector<std::size_t>{50, 100, 150, 200, 250, 300, 350, 400});
  constexpr double kOneMinusXi = 0.3;

  util::Table social({"network size", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table selfish(
      {"network size", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table coordinated(
      {"network size", "LCF", "JoOffloadCache", "OffloadCache"});
  util::Table runtime({"network size", "LCF (ms)", "JoOffloadCache (ms)",
                       "OffloadCache (ms)"});
  BenchRecorder recorder("fig2");

  for (const std::size_t size : sizes) {
    std::vector<AlgorithmComparison> runs;
    for (std::size_t rep = 0; rep < repetitions(); ++rep) {
      util::Rng rng(1000 * size + rep);
      core::InstanceParams params;
      params.network_size = size;
      params.provider_count = 100;
      const core::Instance inst = core::generate_instance(params, rng);
      runs.push_back(compare_algorithms(inst, kOneMinusXi));
    }
    const auto n = static_cast<long long>(size);
    social.add_row(
        {n, mean_of(runs, [](auto& r) { return r.lcf.social_cost; }),
         mean_of(runs, [](auto& r) { return r.jo.social_cost; }),
         mean_of(runs, [](auto& r) { return r.offload.social_cost; })});
    selfish.add_row(
        {n, mean_of(runs, [](auto& r) { return r.lcf.selfish_cost; }),
         mean_of(runs, [](auto& r) { return r.jo.selfish_cost; }),
         mean_of(runs, [](auto& r) { return r.offload.selfish_cost; })});
    coordinated.add_row(
        {n, mean_of(runs, [](auto& r) { return r.lcf.coordinated_cost; }),
         mean_of(runs, [](auto& r) { return r.jo.coordinated_cost; }),
         mean_of(runs, [](auto& r) { return r.offload.coordinated_cost; })});
    runtime.add_row(
        {n, mean_of(runs, [](auto& r) { return r.lcf.elapsed_ms; }),
         mean_of(runs, [](auto& r) { return r.jo.elapsed_ms; }),
         mean_of(runs, [](auto& r) { return r.offload.elapsed_ms; })});
    recorder.add_comparison_means("size=" + std::to_string(size), runs);
  }
  recorder.write_file();

  std::cout << "Fig. 2 — GT-ITM networks, 100 providers, 1-xi = 0.3, "
            << repetitions() << " seeds per point\n";
  util::print_section(std::cout, "Fig. 2 (a) social cost", social);
  util::print_section(std::cout, "Fig. 2 (b) cost of the selfish providers",
                      selfish);
  util::print_section(std::cout,
                      "Fig. 2 (c) cost of the coordinated providers",
                      coordinated);
  util::print_section(std::cout, "Fig. 2 (d) running times", runtime);
  return 0;
}
