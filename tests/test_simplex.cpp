#include "opt/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::opt {
namespace {

LpConstraint make(std::vector<std::pair<std::size_t, double>> terms,
                  Relation rel, double rhs) {
  return LpConstraint{std::move(terms), rel, rhs};
}

TEST(Simplex, SimpleTwoVariable) {
  // min -x - 2y  s.t. x + y <= 4, y <= 3, x,y >= 0  -> x=1, y=3, obj=-7.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1.0, -2.0};
  p.constraints.push_back(make({{0, 1.0}, {1, 1.0}}, Relation::LessEq, 4.0));
  p.constraints.push_back(make({{1, 1.0}}, Relation::LessEq, 3.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-9);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y  s.t. x + y = 5  -> obj 5.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.constraints.push_back(make({{0, 1.0}, {1, 1.0}}, Relation::Equal, 5.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-9);
}

TEST(Simplex, GreaterEqual) {
  // min 2x + 3y  s.t. x + y >= 4, x <= 2 -> x=2, y=2, obj=10.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {2.0, 3.0};
  p.constraints.push_back(
      make({{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 4.0));
  p.constraints.push_back(make({{0, 1.0}}, Relation::LessEq, 2.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints.push_back(make({{0, 1.0}}, Relation::LessEq, 1.0));
  p.constraints.push_back(make({{0, 1.0}}, Relation::GreaterEq, 2.0));
  EXPECT_EQ(solve_lp(p).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1.0, 0.0};
  p.constraints.push_back(make({{1, 1.0}}, Relation::LessEq, 1.0));
  EXPECT_EQ(solve_lp(p).status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x >= 2 written as -x <= -2; min x -> 2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints.push_back(make({{0, -1.0}}, Relation::LessEq, -2.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: several constraints meet at the optimum.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1.0, -1.0};
  p.constraints.push_back(make({{0, 1.0}}, Relation::LessEq, 1.0));
  p.constraints.push_back(make({{1, 1.0}}, Relation::LessEq, 1.0));
  p.constraints.push_back(make({{0, 1.0}, {1, 1.0}}, Relation::LessEq, 2.0));
  p.constraints.push_back(make({{0, 1.0}, {1, 2.0}}, Relation::LessEq, 3.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 2.0};
  p.constraints.push_back(make({{0, 1.0}, {1, 1.0}}, Relation::Equal, 3.0));
  p.constraints.push_back(make({{0, 2.0}, {1, 2.0}}, Relation::Equal, 6.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);  // all weight on x0
}

TEST(Simplex, ZeroConstraints) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-12);
}

TEST(Simplex, TransportationRelaxationIsTight) {
  // Assignment LP: 2 items, 2 facilities, both capacity 1 -> integral.
  // Costs: c00=1 c01=5 / c10=4 c11=2 -> optimal 3.
  LpProblem p;
  p.num_vars = 4;  // x00 x01 x10 x11
  p.objective = {1.0, 5.0, 4.0, 2.0};
  p.constraints.push_back(make({{0, 1.0}, {1, 1.0}}, Relation::Equal, 1.0));
  p.constraints.push_back(make({{2, 1.0}, {3, 1.0}}, Relation::Equal, 1.0));
  p.constraints.push_back(make({{0, 1.0}, {2, 1.0}}, Relation::LessEq, 1.0));
  p.constraints.push_back(make({{1, 1.0}, {3, 1.0}}, Relation::LessEq, 1.0));
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[3], 1.0, 1e-9);
}

// Property sweep: random feasible LPs; verify the returned point satisfies
// all constraints and that duality-free sanity holds (objective no better
// than any feasible point we can construct).
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, SolutionIsFeasibleAndLocallyMinimal) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  const std::size_t m = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  LpProblem p;
  p.num_vars = n;
  p.objective.resize(n);
  for (auto& c : p.objective) c = rng.uniform_real(0.1, 5.0);  // bounded below
  for (std::size_t k = 0; k < m; ++k) {
    LpConstraint con;
    for (std::size_t j = 0; j < n; ++j) {
      con.terms.emplace_back(j, rng.uniform_real(0.1, 2.0));
    }
    con.rel = Relation::GreaterEq;  // cover constraints keep it feasible
    con.rhs = rng.uniform_real(1.0, 10.0);
    p.constraints.push_back(std::move(con));
  }
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  for (const auto& con : p.constraints) {
    double lhs = 0.0;
    for (const auto& [j, a] : con.terms) lhs += a * s.x[j];
    EXPECT_GE(lhs, con.rhs - 1e-6);
  }
  for (double xj : s.x) EXPECT_GE(xj, -1e-9);
  // Scaling any feasible point down violates some constraint at the optimum
  // unless objective is already minimal; a weak check: objective > 0.
  EXPECT_GT(s.objective, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandomTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mecsc::opt
