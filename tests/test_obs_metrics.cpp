#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/json.h"
#include "util/parallel.h"

namespace mecsc::obs {
namespace {

/// Each test owns the whole registry: reset on entry and exit so metrics
/// recorded by other tests (the instrumented solvers run all over the
/// suite) never leak in.
class ObsMetrics : public testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::global().reset(); }
  void TearDown() override { MetricsRegistry::global().reset(); }
};

TEST_F(ObsMetrics, CountersAccumulate) {
  auto& m = MetricsRegistry::global();
  m.counter_add("a");
  m.counter_add("a", 4);
  m.counter_add("b", -2);
  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5);
  EXPECT_EQ(snap.counters.at("b"), -2);
}

TEST_F(ObsMetrics, GaugesLastWriterWins) {
  auto& m = MetricsRegistry::global();
  m.gauge_set("g", 1.0);
  m.gauge_set("g", 2.5);
  EXPECT_DOUBLE_EQ(m.snapshot().gauges.at("g"), 2.5);
}

TEST_F(ObsMetrics, HistogramStats) {
  auto& m = MetricsRegistry::global();
  for (const double v : {3.0, 1.0, 2.0}) m.value_record("h", v);
  const ValueStats s = m.snapshot().histograms.at("h");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST_F(ObsMetrics, ResetDropsEverything) {
  auto& m = MetricsRegistry::global();
  m.counter_add("a");
  m.value_record("h", 1.0);
  m.gauge_set("g", 1.0);
  m.reset();
  const MetricsSnapshot snap = m.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.gauges.empty());
}

// The core determinism property: parallel_for hands out indices with an
// atomic counter, so which worker records which value differs from run to
// run — yet the merged snapshot must not.
TEST_F(ObsMetrics, MergeUnderParallelForIsDeterministic) {
  constexpr std::size_t kItems = 256;
  auto run_once = [&] {
    MetricsRegistry::global().reset();
    util::parallel_for(
        kItems,
        [](std::size_t i) {
          auto& m = MetricsRegistry::global();
          m.counter_add("par.count");
          m.counter_add("par.weighted", static_cast<std::int64_t>(i));
          // Values engineered so naive merge order would change the
          // floating-point sum.
          m.value_record("par.values",
                         1.0 + 1e-9 * static_cast<double>(i % 7));
        },
        8);
    return MetricsRegistry::global().snapshot().to_json().dump(2);
  };
  const std::string first = run_once();
  for (int repeat = 0; repeat < 4; ++repeat) {
    EXPECT_EQ(run_once(), first) << "repeat " << repeat;
  }

  MetricsRegistry::global().reset();
  util::parallel_for(
      kItems,
      [](std::size_t i) {
        MetricsRegistry::global().counter_add(
            "par.weighted", static_cast<std::int64_t>(i));
        MetricsRegistry::global().counter_add("par.count");
        MetricsRegistry::global().value_record(
            "par.values", 1.0 + 1e-9 * static_cast<double>(i % 7));
      },
      8);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("par.count"),
            static_cast<std::int64_t>(kItems));
  EXPECT_EQ(snap.counters.at("par.weighted"),
            static_cast<std::int64_t>(kItems * (kItems - 1) / 2));
  EXPECT_EQ(snap.histograms.at("par.values").count, kItems);
}

TEST_F(ObsMetrics, WallTimersSegregatedUnderWallPrefix) {
  auto& m = MetricsRegistry::global();
  m.counter_add("deterministic.counter");
  m.wall_duration_record("phase", 12.5);
  const util::JsonValue doc = m.snapshot().to_json();
  // Timing lives only under the wall_-prefixed section...
  EXPECT_TRUE(doc.at("wall_timers_ms").contains("phase"));
  EXPECT_DOUBLE_EQ(
      doc.at("wall_timers_ms").at("phase").number_at("sum"), 12.5);
  // ...and never in the deterministic sections.
  EXPECT_FALSE(doc.at("histograms").contains("phase"));
  EXPECT_TRUE(doc.at("counters").contains("deterministic.counter"));
}

TEST_F(ObsMetrics, SnapshotJsonRoundTripsThroughParser) {
  auto& m = MetricsRegistry::global();
  m.counter_add("c", 7);
  m.gauge_set("g", 0.5);
  m.value_record("h", 2.0);
  const std::string text = m.snapshot().to_json().dump(2);
  const util::JsonValue parsed = util::parse_json(text);
  EXPECT_DOUBLE_EQ(parsed.at("counters").number_at("c"), 7.0);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").number_at("g"), 0.5);
  EXPECT_EQ(parsed.at("histograms").at("h").number_at("count"), 1.0);
}

}  // namespace
}  // namespace mecsc::obs
