// BoundedQueue edge cases around close and destruction: a close() racing
// many blocked poppers must wake every one of them exactly once, a closed
// queue must reject producers even with spare capacity, and destroying a
// queue that still holds items must release them (run under ASan in CI).
// Suite name starts with "Svc" so the ctest `concurrency` label (and with
// it the TSan job) picks these up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "svc/bounded_queue.h"

namespace {

using mecsc::svc::BoundedQueue;

TEST(SvcBoundedQueue, CloseWakesEveryBlockedPopper) {
  BoundedQueue<int> queue(4);
  constexpr std::size_t kPoppers = 8;

  std::atomic<std::size_t> entered{0};
  std::atomic<std::size_t> woke_empty{0};
  std::vector<std::thread> poppers;
  poppers.reserve(kPoppers);
  for (std::size_t i = 0; i < kPoppers; ++i) {
    poppers.emplace_back([&] {
      entered.fetch_add(1);
      if (!queue.pop().has_value()) woke_empty.fetch_add(1);
    });
  }

  // Wait until every popper has at least reached pop(); most will be
  // parked in the condition wait by the time close() fires, and close()
  // is correct either way — the closed_ flag makes a late pop() return
  // immediately instead of blocking forever.
  while (entered.load() < kPoppers) std::this_thread::yield();
  queue.close();
  for (auto& t : poppers) t.join();

  // Nothing was ever pushed, so all eight must wake via the close path.
  EXPECT_EQ(woke_empty.load(), kPoppers);
}

TEST(SvcBoundedQueue, TryPushAfterCloseRejectedEvenWithSpareCapacity) {
  BoundedQueue<int> queue(16);
  ASSERT_TRUE(queue.try_push(1));
  queue.close();
  ASSERT_EQ(queue.size(), 1u);  // capacity 16: plenty of room, yet...
  EXPECT_FALSE(queue.try_push(2));
  // The item admitted before close() still drains.
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(SvcBoundedQueue, CloseIsIdempotentAcrossThreads) {
  BoundedQueue<int> queue(2);
  std::vector<std::thread> closers;
  closers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&] { queue.close(); });
  }
  for (auto& t : closers) t.join();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(SvcBoundedQueue, DestructionWithQueuedItemsReleasesThem) {
  const auto payload = std::make_shared<int>(42);
  ASSERT_EQ(payload.use_count(), 1);
  {
    BoundedQueue<std::shared_ptr<int>> queue(8);
    ASSERT_TRUE(queue.try_push(payload));
    ASSERT_TRUE(queue.try_push(payload));
    ASSERT_TRUE(queue.try_push(payload));
    ASSERT_EQ(payload.use_count(), 4);
    // Queue dies here holding three live copies; ASan flags any leak.
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(SvcBoundedQueue, ConcurrentProducersConsumersDeliverEveryItemOnce) {
  BoundedQueue<int> queue(3);  // tiny capacity forces real backpressure
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;

  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.pop()) {
        popped_sum.fetch_add(*item);
        popped_count.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();  // producers done: wake consumers once the drain is empty
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), total);
  const long long expected_sum =
      static_cast<long long>(total) * (total - 1) / 2;
  EXPECT_EQ(popped_sum.load(), expected_sum);
}

}  // namespace
