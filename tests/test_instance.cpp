#include "core/instance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, InstanceParams params = {}) {
  util::Rng rng(seed);
  return generate_instance(params, rng);
}

TEST(Instance, ProviderCountMatchesParams) {
  InstanceParams p;
  p.provider_count = 37;
  const Instance inst = make(1, p);
  EXPECT_EQ(inst.provider_count(), 37u);
}

TEST(Instance, ParametersWithinPaperRanges) {
  InstanceParams p;
  const Instance inst = make(2, p);
  for (const auto& sp : inst.providers) {
    EXPECT_GE(sp.compute_per_request, p.compute_per_request_lo);
    EXPECT_LE(sp.compute_per_request, p.compute_per_request_hi);
    EXPECT_GE(sp.bandwidth_per_request, p.bandwidth_per_request_lo);
    EXPECT_LE(sp.bandwidth_per_request, p.bandwidth_per_request_hi);
    EXPECT_GE(sp.requests, p.requests_lo);
    EXPECT_LE(sp.requests, p.requests_hi);
    EXPECT_GE(sp.service_data_gb, p.service_data_gb_lo);
    EXPECT_LE(sp.service_data_gb, p.service_data_gb_hi);
    EXPECT_DOUBLE_EQ(sp.update_fraction, 0.10);
    EXPECT_LT(sp.home_dc, inst.network.data_center_count());
    EXPECT_LT(sp.user_region, inst.cloudlet_count());
    EXPECT_GT(sp.instantiation_cost, 0.0);
    EXPECT_GT(sp.traffic_gb, 0.0);
  }
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_GE(inst.cost.alpha[i], 0.0);
    EXPECT_LE(inst.cost.alpha[i], 1.0);
    EXPECT_GE(inst.cost.beta[i], 0.0);
    EXPECT_LE(inst.cost.beta[i], 1.0);
  }
  EXPECT_GE(inst.cost.transfer_price_per_gb, 0.05);
  EXPECT_LE(inst.cost.transfer_price_per_gb, 0.12);
  EXPECT_GE(inst.cost.processing_price_per_gb, 0.15);
  EXPECT_LE(inst.cost.processing_price_per_gb, 0.22);
}

TEST(Instance, DemandHelpers) {
  ServiceProvider p;
  p.compute_per_request = 0.2;
  p.bandwidth_per_request = 3.0;
  p.requests = 10;
  p.service_data_gb = 4.0;
  p.update_fraction = 0.1;
  EXPECT_DOUBLE_EQ(p.compute_demand(), 2.0);
  EXPECT_DOUBLE_EQ(p.bandwidth_demand(), 30.0);
  EXPECT_NEAR(p.update_volume_gb(), 0.4, 1e-12);
}

TEST(Instance, MaxDemandsAreMaxima) {
  const Instance inst = make(3);
  double a = 0.0, b = 0.0;
  for (const auto& sp : inst.providers) {
    a = std::max(a, sp.compute_demand());
    b = std::max(b, sp.bandwidth_demand());
  }
  EXPECT_DOUBLE_EQ(inst.max_compute_demand(), a);
  EXPECT_DOUBLE_EQ(inst.max_bandwidth_demand(), b);
}

TEST(Instance, DeterministicGivenSeed) {
  const Instance a = make(42), b = make(42);
  ASSERT_EQ(a.provider_count(), b.provider_count());
  for (std::size_t l = 0; l < a.provider_count(); ++l) {
    EXPECT_DOUBLE_EQ(a.providers[l].compute_per_request,
                     b.providers[l].compute_per_request);
    EXPECT_EQ(a.providers[l].home_dc, b.providers[l].home_dc);
  }
  EXPECT_EQ(a.network.topology().edge_count(),
            b.network.topology().edge_count());
}

TEST(Instance, NetworkSizeKnobScalesTopology) {
  InstanceParams small, large;
  small.network_size = 50;
  large.network_size = 400;
  const Instance a = make(5, small), b = make(5, large);
  EXPECT_LT(a.network.topology().node_count(),
            b.network.topology().node_count());
  EXPECT_LT(a.cloudlet_count(), b.cloudlet_count());
}

TEST(Instance, As1755ModeUsesBackbone) {
  InstanceParams p;
  p.use_as1755 = true;
  const Instance inst = make(6, p);
  EXPECT_EQ(inst.network.topology().node_count(), 87u);
  EXPECT_EQ(inst.network.topology().edge_count(), 161u);
}

TEST(Instance, CloudletsAreTenPercentOfNetwork) {
  InstanceParams p;
  p.network_size = 250;
  const Instance inst = make(7, p);
  const double n = static_cast<double>(inst.network.topology().node_count());
  EXPECT_NEAR(static_cast<double>(inst.cloudlet_count()), 0.1 * n, 1.0);
}

}  // namespace
}  // namespace mecsc::core
