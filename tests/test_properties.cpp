// Cross-cutting randomized property suites that don't belong to a single
// module: flow conservation, best-response optimality certificates,
// Shmoys-Tardos eviction handling, and interchange-format stability.
#include <gtest/gtest.h>

#include "core/appro.h"
#include "core/congestion_game.h"
#include "core/io.h"
#include "net/random_graphs.h"
#include "opt/mcmf.h"
#include "util/rng.h"

namespace mecsc {
namespace {

// --- Min-cost flow: conservation at every interior node --------------------

class FlowConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservationTest, NetFlowZeroAtInteriorNodes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  const std::size_t n = 8;
  opt::MinCostFlow f(n);
  struct ArcInfo {
    std::size_t u, v, handle;
  };
  std::vector<ArcInfo> arcs;
  for (int k = 0; k < 20; ++k) {
    const auto u = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto v = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (u == v) continue;
    const auto handle =
        f.add_arc(u, v, rng.uniform_int(0, 5), rng.uniform_real(0.0, 3.0));
    arcs.push_back({u, v, handle});
  }
  const auto res = f.solve(0, n - 1);
  std::vector<std::int64_t> net(n, 0);
  for (const auto& a : arcs) {
    const std::int64_t flow = f.flow_on(a.handle);
    EXPECT_GE(flow, 0);
    net[a.u] -= flow;
    net[a.v] += flow;
  }
  EXPECT_EQ(net[0], -res.flow);
  EXPECT_EQ(net[n - 1], res.flow);
  for (std::size_t v = 1; v + 1 < n; ++v) {
    EXPECT_EQ(net[v], 0) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, FlowConservationTest,
                         ::testing::Range(0, 20));

// --- Best response returns a certified argmin -------------------------------

TEST(BestResponseCertificate, ReturnedTargetIsArgmin) {
  util::Rng rng(5);
  core::InstanceParams p;
  p.network_size = 70;
  p.provider_count = 25;
  const core::Instance inst = core::generate_instance(p, rng);
  core::Assignment a(inst);
  // Random non-trivial state.
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    const auto t = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(inst.cloudlet_count())));
    if (t < inst.cloudlet_count() && a.can_move(l, t)) a.move(l, t);
  }
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t best = core::best_response(a, l);
    const double best_cost = a.provider_cost_if(l, best);
    EXPECT_LE(best_cost, a.provider_cost_if(l, core::kRemote) + 1e-9);
    for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      if (a.can_move(l, i)) {
        EXPECT_LE(best_cost, a.provider_cost_if(l, i) + 1e-9)
            << "provider " << l << " cloudlet " << i;
      }
    }
  }
}

// --- Shmoys-Tardos eviction path ---------------------------------------------

TEST(ApproEvictions, StMayEvictButStaysFeasible) {
  // Under very scarce capacity the ST rounding's +1-item load relaxation
  // can overflow physical cloudlets; the merge step must divert the
  // overflow to the remote tier and stay feasible.
  util::Rng rng(11);
  core::InstanceParams p;
  p.network_size = 60;
  p.provider_count = 60;
  p.compute_per_request_hi = 0.6;  // heavy services
  p.requests_hi = 60;
  core::Instance inst = core::generate_instance(p, rng);
  core::ApproOptions options;
  options.solver = core::ApproOptions::InnerSolver::ShmoysTardos;
  const core::ApproResult r = core::run_appro(inst, options);
  EXPECT_TRUE(r.assignment.feasible());
  // Whether or not evictions occurred, every placed provider fits.
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t c = r.assignment.choice(l);
    if (c != core::kRemote) {
      EXPECT_TRUE(core::demand_fits(inst, l, c));
    }
  }
}

// --- Interchange format stability ---------------------------------------------

TEST(FormatStability, HandWrittenDocumentParses) {
  // A minimal valid document written against the documented format. If this
  // test breaks, the format changed — bump kIoFormatVersion.
  const std::string doc = R"({
    "format_version": 1,
    "topology": {"nodes": 4, "edges": [[0,1,1.0,100],[1,2,1.0,100],[2,3,1.0,100]]},
    "cloudlets": [{"node": 0, "compute": 10, "bandwidth": 500}],
    "data_centers": [3],
    "providers": [{
      "compute_per_request": 0.1, "bandwidth_per_request": 2.0,
      "requests": 10, "instantiation_cost": 0.2, "service_data_gb": 2.0,
      "update_fraction": 0.1, "traffic_gb": 1.0, "home_dc": 0,
      "user_region": 0
    }],
    "cost": {
      "alpha": [0.5], "beta": [0.5],
      "transfer_price_per_gb": 0.08, "processing_price_per_gb": 0.18,
      "vm_boot_cost": 0.1, "remote_hop_penalty": 1.0,
      "congestion": "linear"
    }
  })";
  const core::Instance inst =
      core::instance_from_json(util::parse_json(doc));
  EXPECT_EQ(inst.provider_count(), 1u);
  EXPECT_EQ(inst.cloudlet_count(), 1u);
  EXPECT_DOUBLE_EQ(inst.network.cloudlet_to_dc_hops(0, 0), 3.0);
  // The single provider can cache at the single cloudlet.
  EXPECT_TRUE(core::demand_fits(inst, 0, 0));
  EXPECT_GT(core::remote_cost(inst, 0), 0.0);
}

// --- MEC on adversarial topologies ---------------------------------------------

TEST(AdversarialTopologies, PipelineSurvivesExtremeGraphs) {
  util::Rng rng(13);
  // Star graph: one hub, everything else a leaf.
  net::Graph star(30);
  for (net::NodeId v = 1; v < 30; ++v) star.add_edge(0, v, 1.0, 1000.0);
  // Long path graph.
  net::Graph path(30);
  for (net::NodeId v = 0; v + 1 < 30; ++v) path.add_edge(v, v + 1, 1.0, 1000.0);

  for (net::Graph* g : {&star, &path}) {
    util::Rng build_rng = rng.split();
    core::Instance inst{net::MecNetwork(*g, {}, build_rng), {}, {}};
    // Minimal provider population on top.
    core::InstanceParams p;
    p.network_size = 50;
    p.provider_count = 10;
    util::Rng donor_rng = rng.split();
    core::Instance donor = core::generate_instance(p, donor_rng);
    inst.cost = donor.cost;
    inst.cost.alpha.assign(inst.cloudlet_count(), 0.5);
    inst.cost.beta.assign(inst.cloudlet_count(), 0.5);
    inst.providers = donor.providers;
    for (auto& sp : inst.providers) {
      sp.home_dc = 0;
      sp.user_region = 0;
    }
    const core::ApproResult r = core::run_appro(inst);
    EXPECT_TRUE(r.assignment.feasible());
    const core::GameResult ne = core::best_response_dynamics(
        core::Assignment(inst),
        std::vector<bool>(inst.provider_count(), true));
    EXPECT_TRUE(ne.converged);
  }
}

}  // namespace
}  // namespace mecsc
