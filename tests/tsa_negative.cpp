// Negative fixture for the Clang Thread Safety Analysis gate. NOT part of
// the test suite (the build glob only picks up test_*.cpp); CI compiles
// this file with -Wthread-safety -Werror and FAILS the job if it compiles
// cleanly — that would mean the analysis gate silently stopped checking.
//
// The violation: Counter::total_ is GUARDED_BY(mutex_), and unguarded_add()
// writes it without holding the lock. Expected diagnostic:
//   warning: writing variable 'total_' requires holding mutex 'mutex_'
//   exclusively [-Wthread-safety-analysis]
#include "util/sync.h"

namespace {

class Counter {
 public:
  void add(int v) {
    const mecsc::util::MutexLock lock(mutex_);
    total_ += v;
  }

  void unguarded_add(int v) {
    total_ += v;  // BUG (deliberate): guarded write without mutex_ held.
  }

 private:
  mecsc::util::Mutex mutex_;
  int total_ MECSC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  c.unguarded_add(2);
  return 0;
}
