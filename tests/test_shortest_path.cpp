#include "net/shortest_path.h"

#include <gtest/gtest.h>

#include "net/waxman.h"
#include "util/rng.h"

namespace mecsc::net {
namespace {

Graph line_graph(std::size_t n, double step = 1.0) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, step);
  return g;
}

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = line_graph(5, 2.0);
  const auto t = dijkstra(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(t.distance[v], 2.0 * static_cast<double>(v));
  }
}

TEST(Dijkstra, PrefersCheaperLongerPath) {
  Graph g(4);
  g.add_edge(0, 3, 10.0);  // direct but expensive
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.distance[3], 3.0);
  EXPECT_EQ(t.path_to(3), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Dijkstra, UnreachableIsInfinity) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto t = dijkstra(g, 0);
  EXPECT_EQ(t.distance[2], kUnreachable);
  EXPECT_TRUE(t.path_to(2).empty());
}

TEST(Dijkstra, SourcePath) {
  const Graph g = line_graph(3);
  const auto t = dijkstra(g, 1);
  EXPECT_DOUBLE_EQ(t.distance[1], 0.0);
  EXPECT_EQ(t.path_to(1), (std::vector<NodeId>{1}));
}

TEST(Dijkstra, ZeroLengthEdges) {
  Graph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.distance[2], 0.0);
}

TEST(Dijkstra, ParallelEdgesUseCheapest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[1], 2.0);
}

TEST(BfsHops, CountsEdgesNotLengths) {
  Graph g(3);
  g.add_edge(0, 1, 100.0);
  g.add_edge(1, 2, 100.0);
  const auto t = bfs_hops(g, 0);
  EXPECT_DOUBLE_EQ(t.distance[2], 2.0);
}

TEST(BfsHops, ShortestHopPathWins) {
  Graph g(4);
  g.add_edge(0, 3, 100.0);  // 1 hop, long
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(bfs_hops(g, 0).distance[3], 1.0);
}

TEST(PathTo, EndpointsAndContiguity) {
  util::Rng rng(3);
  const auto sg = generate_waxman({.node_count = 40}, rng);
  const auto t = dijkstra(sg.graph, 0);
  for (NodeId v = 0; v < sg.graph.node_count(); ++v) {
    const auto path = t.path_to(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), v);
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      EXPECT_TRUE(sg.graph.has_edge(path[k], path[k + 1]));
    }
  }
}

TEST(DijkstraProperty, TriangleInequalityOverRandomGraphs) {
  util::Rng rng(17);
  const auto sg = generate_waxman({.node_count = 30}, rng);
  const DistanceMatrix d(sg.graph);
  const std::size_t n = d.node_count();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      for (NodeId c = 0; c < n; c += 7) {
        EXPECT_LE(d.at(a, b), d.at(a, c) + d.at(c, b) + 1e-9);
      }
    }
  }
}

TEST(DistanceMatrix, SymmetricWithZeroDiagonal) {
  util::Rng rng(23);
  const auto sg = generate_waxman({.node_count = 25}, rng);
  const DistanceMatrix d(sg.graph);
  for (NodeId a = 0; a < d.node_count(); ++a) {
    EXPECT_DOUBLE_EQ(d.at(a, a), 0.0);
    for (NodeId b = 0; b < d.node_count(); ++b) {
      EXPECT_NEAR(d.at(a, b), d.at(b, a), 1e-12);
    }
  }
}

TEST(DistanceMatrix, HopModeMatchesBfs) {
  const Graph g = line_graph(6, 5.0);
  const DistanceMatrix d(g, /*by_hops=*/true);
  EXPECT_DOUBLE_EQ(d.at(0, 5), 5.0);  // 5 hops despite length 25
  EXPECT_DOUBLE_EQ(d.diameter(), 5.0);
}

TEST(DistanceMatrix, DiameterOfDisconnectedIgnoresInfinity) {
  Graph g(3);
  g.add_edge(0, 1, 4.0);
  const DistanceMatrix d(g);
  EXPECT_DOUBLE_EQ(d.diameter(), 4.0);
}

}  // namespace
}  // namespace mecsc::net
