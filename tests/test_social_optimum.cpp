#include "core/social_optimum.h"

#include <gtest/gtest.h>

#include "core/appro.h"
#include "core/congestion_game.h"
#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t providers = 8) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 50;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

/// Exhaustive check over all (m+1)^n profiles for tiny n.
double exhaustive_optimum(const Instance& inst) {
  const std::size_t n = inst.provider_count();
  const std::size_t m = inst.cloudlet_count();
  std::vector<std::size_t> choice(n, 0);  // m means remote
  double best = 1e300;
  while (true) {
    Assignment a(inst);
    bool ok = true;
    for (ProviderId l = 0; l < n && ok; ++l) {
      const std::size_t t = choice[l] == m ? kRemote : choice[l];
      if (a.can_move(l, t)) {
        a.move(l, t);
      } else {
        ok = false;
      }
    }
    if (ok) best = std::min(best, a.social_cost());
    std::size_t k = 0;
    while (k < n && ++choice[k] == m + 1) choice[k++] = 0;
    if (k == n) break;
  }
  return best;
}

TEST(SocialOptimum, MatchesExhaustiveSearchTiny) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    InstanceParams p;
    p.network_size = 50;
    p.provider_count = 4;
    p.mec.cloudlet_fraction = 0.06;  // ~3 cloudlets keeps exhaustive cheap
    const Instance inst = generate_instance(p, rng);
    const SocialOptimumResult r = solve_social_optimum(inst);
    ASSERT_TRUE(r.proven_optimal);
    EXPECT_NEAR(r.cost, exhaustive_optimum(inst), 1e-9) << "seed " << seed;
    EXPECT_TRUE(r.assignment.feasible());
    EXPECT_NEAR(r.assignment.social_cost(), r.cost, 1e-9);
  }
}

TEST(SocialOptimum, NeverWorseThanAnyAlgorithm) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed);
    const SocialOptimumResult opt = solve_social_optimum(inst);
    ASSERT_TRUE(opt.proven_optimal);
    EXPECT_LE(opt.cost, run_appro(inst).assignment.social_cost() + 1e-9);
    EXPECT_LE(opt.cost, run_lcf(inst).social_cost() + 1e-9);
    const GameResult ne = best_response_dynamics(
        Assignment(inst), std::vector<bool>(inst.provider_count(), true));
    EXPECT_LE(opt.cost, ne.assignment.social_cost() + 1e-9);
  }
}

TEST(SocialOptimum, LowerBoundIsBelowOptimum) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed);
    const SocialOptimumResult opt = solve_social_optimum(inst);
    ASSERT_TRUE(opt.proven_optimal);
    EXPECT_LE(social_cost_lower_bound(inst), opt.cost + 1e-9);
  }
}

TEST(SocialOptimum, NodeLimitReturnsIncumbent) {
  const Instance inst = make(1, 12);
  SocialOptimumOptions options;
  options.node_limit = 50;  // absurdly small
  const SocialOptimumResult r = solve_social_optimum(inst, options);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_TRUE(r.assignment.feasible());
  EXPECT_GT(r.cost, 0.0);
}

TEST(SocialOptimum, EmptyInstance) {
  Instance inst = make(2);
  inst.providers.clear();
  const SocialOptimumResult r = solve_social_optimum(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(SocialOptimum, OptimumBelowAllRemoteProfile) {
  const Instance inst = make(3);
  const SocialOptimumResult r = solve_social_optimum(inst);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_LE(r.cost, Assignment(inst).social_cost() + 1e-9);
}

}  // namespace
}  // namespace mecsc::core
