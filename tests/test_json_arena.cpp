// Arena-parser-specific coverage: cursor/iteration semantics, canonical
// dump parity with the DOM path (including the duplicate-key and unicode
// corners), and the fixture differential gate over examples/instances/.
// The shared accept/reject corpora live in test_json.cpp, parameterized
// over both paths.
#include "util/json_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace mecsc::util {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

TEST(JsonArena, ScalarDocuments) {
  EXPECT_TRUE(parse_json_arena("null").root().is_null());
  EXPECT_TRUE(parse_json_arena("true").root().as_bool());
  EXPECT_FALSE(parse_json_arena("false").root().as_bool());
  EXPECT_DOUBLE_EQ(parse_json_arena("-3.5").root().as_number(), -3.5);
  EXPECT_EQ(parse_json_arena("\"hi\"").root().as_string(), "hi");
  EXPECT_EQ(parse_json_arena("null").node_count(), 1u);
}

TEST(JsonArena, EmptyArenaAndMoves) {
  JsonArena arena;
  EXPECT_TRUE(arena.empty());
  EXPECT_THROW(arena.root(), JsonError);

  JsonArena parsed = parse_json_arena("[1,2]");
  EXPECT_FALSE(parsed.empty());
  JsonArena moved = std::move(parsed);
  EXPECT_TRUE(parsed.empty());  // NOLINT(bugprone-use-after-move): asserted
  EXPECT_EQ(moved.root().size(), 2u);
}

TEST(JsonArena, IterationPreservesDocumentOrder) {
  // Unlike the DOM path (std::map sorts members), the arena keeps wire
  // order for iteration; only dump() canonicalizes. Decoders that iterate
  // must therefore not depend on member order — and the canonical dump is
  // the only order-sensitive observable.
  const JsonArena arena = parse_json_arena(R"({"z":1,"a":2,"m":3})");
  std::vector<std::string> keys;
  for (const JsonArena::View member : arena.root().as_object()) {
    keys.emplace_back(member.key());
  }
  const std::vector<std::string> wire_order = {"z", "a", "m"};
  EXPECT_EQ(keys, wire_order);
  EXPECT_EQ(arena.dump(), R"({"a":2,"m":3,"z":1})");
}

TEST(JsonArena, ChildRangeIndexing) {
  const JsonArena arena = parse_json_arena("[10,20,30]");
  const auto range = arena.root().as_array();
  EXPECT_EQ(range.size(), 3u);
  EXPECT_DOUBLE_EQ(range[0].as_number(), 10.0);
  EXPECT_DOUBLE_EQ(range[2].as_number(), 30.0);
  EXPECT_THROW(range[3], JsonError);
}

TEST(JsonArena, ObjectAccessMatchesDomSemantics) {
  const JsonArena arena = parse_json_arena(R"({"a": 1, "b": "two"})");
  const JsonArena::View root = arena.root();
  EXPECT_DOUBLE_EQ(root.number_at("a"), 1.0);
  EXPECT_EQ(root.string_at("b"), "two");
  EXPECT_TRUE(root.contains("a"));
  EXPECT_FALSE(root.contains("c"));
  try {
    root.at("c");
    FAIL();
  } catch (const JsonError& e) {
    // Same spelling as JsonValue::at — callers templated over both
    // document types surface identical errors.
    EXPECT_STREQ(e.what(), "json: missing key 'c'");
  }
}

TEST(JsonArena, AccessorTypeErrorsMatchDomSpelling) {
  const JsonArena arena = parse_json_arena("[1.5]");
  const JsonArena::View num = arena.root().as_array()[0];
  const char* expected[] = {"json: value is not a string",
                            "json: value is not an array",
                            "json: value is not an object",
                            "json: value is not a bool"};
  int i = 0;
  for (const auto& call : {
           std::function<void()>([&] { num.as_string(); }),
           std::function<void()>([&] { num.as_array(); }),
           std::function<void()>([&] { num.as_object(); }),
           std::function<void()>([&] { num.as_bool(); }),
       }) {
    try {
      call();
      FAIL() << expected[i];
    } catch (const JsonError& e) {
      EXPECT_STREQ(e.what(), expected[i]);
    }
    ++i;
  }
}

TEST(JsonArena, DuplicateKeysResolveToLastLikeDom) {
  const std::string doc = R"({"a":1,"b":2,"a":3})";
  const JsonArena arena = parse_json_arena(doc);
  EXPECT_DOUBLE_EQ(arena.root().number_at("a"), 3.0);
  EXPECT_EQ(arena.root().size(), 3u);  // wire members, pre-canonicalization
  // Canonical dump collapses duplicates exactly like the DOM's std::map.
  EXPECT_EQ(arena.dump(), parse_json(doc).dump());
  EXPECT_EQ(arena.dump(), R"({"a":3,"b":2})");
  EXPECT_EQ(arena.root().to_json_value(), parse_json(doc));
}

TEST(JsonArena, InSituStringDecoding) {
  const JsonArena arena =
      parse_json_arena(R"(["plain", "a\"b\\c\nd\te", "é€", "é€"])");
  const auto range = arena.root().as_array();
  EXPECT_EQ(range[0].as_string(), "plain");
  EXPECT_EQ(range[1].as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(range[2].as_string(), "\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(range[3].as_string(), "\xC3\xA9\xE2\x82\xAC");
  EXPECT_LE(arena.scratch_bytes(),
            std::string(R"(["plain", "a\"b\\c\nd\te", "é€", "é€"])")
                .size());
}

TEST(JsonArena, DumpParityOnHandwrittenDocuments) {
  const char* docs[] = {
      "null",
      "[]",
      "{}",
      "[[],{},[{}],{\"a\":[]}]",
      R"({"a":[1,2.5,true,null,"s\n"],"b":{"c":-7}})",
      R"({"nums":[0,-0,1e3,0.1,9007199254740993,1.7976931348623157e308]})",
      R"({"z":{"y":{"x":[1,[2,[3]]]}},"dup":1,"dup":2})",
      "[\"\\u0041\\u00e9\\u20ac\", \"\"]",
      " \n\t [ 1 , { \"k\" : null } ] \r\n ",
  };
  for (const char* doc : docs) {
    const JsonValue dom = parse_json(doc);
    const JsonArena arena = parse_json_arena(doc);
    for (int indent : {0, 2, 4}) {
      EXPECT_EQ(dom.dump(indent), arena.dump(indent))
          << "doc " << doc << " indent " << indent;
    }
    EXPECT_EQ(arena.root().to_json_value(), dom) << "doc " << doc;
  }
}

// The fixture differential gate: every instance fixture shipped under
// examples/instances/ must re-serialize byte-identically through both
// paths, at both indents, and decode to equal DOM trees. These documents
// are the realistic workload — deep nesting, long float vectors, the whole
// io.h schema — so this is the closest test to the serving contract.
TEST(JsonArena, FixtureDumpParity) {
  const std::filesystem::path dir =
      std::filesystem::path(MECSC_EXAMPLES_DIR) / "instances";
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::vector<std::filesystem::path> fixtures;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") fixtures.push_back(entry.path());
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_GE(fixtures.size(), 3u) << "fixture corpus went missing";
  for (const auto& path : fixtures) {
    const std::string text = read_file(path);
    ASSERT_FALSE(text.empty()) << path;
    const JsonValue dom = parse_json(text);
    const JsonArena arena = parse_json_arena(text);
    EXPECT_EQ(dom.dump(), arena.dump()) << path;
    EXPECT_EQ(dom.dump(2), arena.dump(2)) << path;
    EXPECT_EQ(arena.root().to_json_value(), dom) << path;
    EXPECT_GT(arena.node_count(), 1u) << path;
  }
}

TEST(JsonArena, NodeCountMatchesDocumentValues) {
  // root + "xs" array + "b" bool + elements 1, 2, {…} + member null = 7.
  const JsonArena arena =
      parse_json_arena(R"({"xs":[1,2,{"y":null}],"b":true})");
  EXPECT_EQ(arena.node_count(), 7u);
}

}  // namespace
}  // namespace mecsc::util
