#include "net/random_graphs.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::net {
namespace {

TEST(ErdosRenyi, NodeCountAndConnectivity) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g =
        generate_erdos_renyi({.node_count = 40, .edge_probability = 0.05},
                             rng);
    EXPECT_EQ(g.node_count(), 40u);
    EXPECT_TRUE(g.connected());
  }
}

TEST(ErdosRenyi, SparseExtreme) {
  util::Rng rng(2);
  const Graph g = generate_erdos_renyi(
      {.node_count = 30, .edge_probability = 0.0}, rng);
  EXPECT_TRUE(g.connected());  // pure patch chain
  EXPECT_EQ(g.edge_count(), 29u);
}

TEST(ErdosRenyi, DenseExtreme) {
  util::Rng rng(3);
  const Graph g = generate_erdos_renyi(
      {.node_count = 20, .edge_probability = 1.0}, rng);
  EXPECT_EQ(g.edge_count(), 20u * 19u / 2u);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  util::Rng rng(4);
  const std::size_t n = 60;
  const double p = 0.2;
  const Graph g =
      generate_erdos_renyi({.node_count = n, .edge_probability = p}, rng);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected,
              0.25 * expected);
}

TEST(ErdosRenyi, AttributesInRange) {
  util::Rng rng(5);
  ErdosRenyiParams params;
  params.length_lo = 2.0;
  params.length_hi = 3.0;
  params.bandwidth_lo_mbps = 100.0;
  params.bandwidth_hi_mbps = 200.0;
  const Graph g = generate_erdos_renyi(params, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.length, 2.0);
    EXPECT_LE(e.length, 3.0);
    EXPECT_GE(e.bandwidth_mbps, 100.0);
    EXPECT_LE(e.bandwidth_mbps, 200.0);
  }
}

TEST(BarabasiAlbert, StructureAndConnectivity) {
  util::Rng rng(6);
  const Graph g = generate_barabasi_albert(
      {.node_count = 80, .edges_per_node = 2}, rng);
  EXPECT_EQ(g.node_count(), 80u);
  EXPECT_TRUE(g.connected());
  // Seed clique C(3,2)=3 edges + (80-3) nodes x 2 edges.
  EXPECT_EQ(g.edge_count(), 3u + 77u * 2u);
}

TEST(BarabasiAlbert, MinimumDegreeIsM) {
  util::Rng rng(7);
  const std::size_t m = 3;
  const Graph g = generate_barabasi_albert(
      {.node_count = 60, .edges_per_node = m}, rng);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.degree(v), m);
  }
}

TEST(BarabasiAlbert, HeavierTailThanErdosRenyi) {
  // At matched mean degree, BA's degree variance dominates ER's.
  util::Rng rng1(8), rng2(8);
  const Graph ba = generate_barabasi_albert(
      {.node_count = 100, .edges_per_node = 2}, rng1);
  const double mean_degree =
      2.0 * static_cast<double>(ba.edge_count()) / 100.0;
  const Graph er = generate_erdos_renyi(
      {.node_count = 100, .edge_probability = mean_degree / 99.0}, rng2);
  EXPECT_GT(degree_stats(ba).variance, degree_stats(er).variance);
}

TEST(DegreeStats, HandComputed) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const DegreeStats s = degree_stats(g);  // degrees 3,1,1,1
  EXPECT_DOUBLE_EQ(s.mean, 1.5);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.variance, 0.75);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degree_stats(Graph{});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Clustering, TriangleIsOne) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 0.0);
}

TEST(Clustering, PathIsZeroAndEmptySafe) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(Graph{}), 0.0);
}

TEST(Clustering, TriangleWithPendant) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  // Triples: node0:1, node1:1, node2:3 -> 5; closed: 3 -> 0.6.
  EXPECT_NEAR(clustering_coefficient(g), 0.6, 1e-12);
}

TEST(Clustering, ParallelEdgesCollapsed) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // duplicate
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

}  // namespace
}  // namespace mecsc::net
