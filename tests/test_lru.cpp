#include "util/lru.h"

#include <gtest/gtest.h>

#include <string>

namespace mecsc::util {
namespace {

TEST(Lru, FindMissesOnEmpty) {
  LruCache<int, std::string> c(4);
  EXPECT_EQ(c.find(1), nullptr);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(Lru, PutThenFind) {
  LruCache<int, std::string> c(4);
  c.put(1, "one");
  c.put(2, "two");
  ASSERT_NE(c.find(1), nullptr);
  EXPECT_EQ(*c.find(1), "one");
  EXPECT_EQ(*c.find(2), "two");
  EXPECT_EQ(c.size(), 2u);
}

TEST(Lru, CapacityZeroNeverStores) {
  LruCache<int, int> c(0);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.find(1), nullptr);
  EXPECT_EQ(c.find(2), nullptr);
  EXPECT_EQ(c.evictions(), 2u);
}

TEST(Lru, EvictsLeastRecentlyUsedInOrder) {
  LruCache<int, int> c(3);
  c.put(1, 10);
  c.put(2, 20);
  c.put(3, 30);
  c.put(4, 40);  // evicts 1 (oldest)
  EXPECT_EQ(c.find(1), nullptr);
  ASSERT_NE(c.find(2), nullptr);
  c.put(5, 50);  // evicts 3: 2 was refreshed by the find above
  EXPECT_EQ(c.find(3), nullptr);
  ASSERT_NE(c.find(2), nullptr);
  ASSERT_NE(c.find(4), nullptr);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.evictions(), 2u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(Lru, FindRefreshesRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  ASSERT_NE(c.find(1), nullptr);  // 1 becomes most recent
  c.put(3, 30);                   // evicts 2
  EXPECT_EQ(c.find(2), nullptr);
  ASSERT_NE(c.find(1), nullptr);
  ASSERT_NE(c.find(3), nullptr);
}

TEST(Lru, PutOfExistingKeyUpdatesValueAndRefreshesRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // overwrite refreshes 1
  ASSERT_NE(c.find(1), nullptr);
  EXPECT_EQ(*c.find(1), 11);
  EXPECT_EQ(c.size(), 2u);
  c.put(3, 30);  // evicts 2, not the refreshed 1
  EXPECT_EQ(c.find(2), nullptr);
  ASSERT_NE(c.find(1), nullptr);
}

TEST(Lru, PeekDoesNotRefreshRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  ASSERT_NE(c.peek(1), nullptr);  // 1 stays least recent
  c.put(3, 30);                   // evicts 1
  EXPECT_EQ(c.find(1), nullptr);
  ASSERT_NE(c.find(2), nullptr);
}

TEST(Lru, EraseRemovesWithoutCountingEviction) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.find(1), nullptr);
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(Lru, ClearKeepsEvictionCounter) {
  LruCache<int, int> c(1);
  c.put(1, 10);
  c.put(2, 20);  // evicts 1
  EXPECT_EQ(c.evictions(), 1u);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.evictions(), 1u);
  c.put(3, 30);
  ASSERT_NE(c.find(3), nullptr);
}

TEST(Lru, PointerStableUntilEviction) {
  LruCache<int, std::string> c(2);
  c.put(1, "one");
  std::string* p = c.find(1);
  ASSERT_NE(p, nullptr);
  c.put(2, "two");  // no eviction yet
  EXPECT_EQ(*p, "one");
}

}  // namespace
}  // namespace mecsc::util
