#include "core/delay_model.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t providers = 30) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(DelayModel, CoversEveryProvider) {
  const Instance inst = make(1);
  const Assignment a = run_offload_cache(inst);
  const DelayReport r = evaluate_delay(a);
  EXPECT_EQ(r.providers.size(), inst.provider_count());
  EXPECT_EQ(r.cloudlet_utilization.size(), inst.cloudlet_count());
}

TEST(DelayModel, RemoteProvidersPayNetworkDistance) {
  const Instance inst = make(2);
  const Assignment a(inst);  // everyone remote
  DelayParams params;
  const DelayReport r = evaluate_delay(a, params);
  for (const auto& d : r.providers) {
    const ServiceProvider& p = inst.providers[d.provider];
    const double hops =
        inst.network.cloudlet_to_dc_hops(p.user_region, p.home_dc) + 1.0;
    EXPECT_NEAR(d.network_delay_s, hops * params.per_hop_delay_s, 1e-12);
    EXPECT_TRUE(d.stable);
    EXPECT_GT(d.processing_delay_s, 0.0);
  }
  // No cloudlet load at all.
  for (double u : r.cloudlet_utilization) EXPECT_DOUBLE_EQ(u, 0.0);
  EXPECT_EQ(r.overloaded_providers, 0u);
}

TEST(DelayModel, UtilizationMatchesHandComputation) {
  const Instance inst = make(3);
  Assignment a(inst);
  ASSERT_TRUE(a.can_move(0, 0));
  a.move(0, 0);
  DelayParams params;
  const DelayReport r = evaluate_delay(a, params);
  const double lambda =
      static_cast<double>(inst.providers[0].requests) / params.horizon_s;
  const double mu = params.per_vm_service_rate *
                    inst.network.cloudlets()[0].compute_capacity;
  EXPECT_NEAR(r.cloudlet_utilization[0], lambda / mu, 1e-12);
}

TEST(DelayModel, QueueingDelayGrowsWithLoad) {
  const Instance inst = make(4);
  Assignment light(inst), heavy(inst);
  light.move(0, 0);
  // Pile several providers on cloudlet 0.
  for (ProviderId l = 0; l < 6; ++l) {
    if (heavy.can_move(l, 0)) heavy.move(l, 0);
  }
  const DelayReport rl = evaluate_delay(light);
  const DelayReport rh = evaluate_delay(heavy);
  if (rh.providers[0].stable) {
    EXPECT_GT(rh.providers[0].processing_delay_s,
              rl.providers[0].processing_delay_s);
  }
}

TEST(DelayModel, OverloadDetected) {
  Instance inst = make(5);
  // One provider with an absurd request rate cached at cloudlet 0.
  inst.providers[0].requests = 1000000;
  inst.providers[0].compute_per_request = 1e-9;  // fits capacity-wise
  inst.providers[0].bandwidth_per_request = 1e-9;
  Assignment a(inst);
  ASSERT_TRUE(a.can_move(0, 0));
  a.move(0, 0);
  const DelayReport r = evaluate_delay(a);
  EXPECT_FALSE(r.providers[0].stable);
  EXPECT_GE(r.overloaded_providers, 1u);
  EXPECT_GT(r.cloudlet_utilization[0], 1.0);
}

TEST(DelayModel, MeanIsRequestWeighted) {
  const Instance inst = make(6, 2);
  const Assignment a(inst);  // both remote, delays differ by distance only
  const DelayReport r = evaluate_delay(a);
  const auto& p0 = inst.providers[0];
  const auto& p1 = inst.providers[1];
  const double w0 = static_cast<double>(p0.requests);
  const double w1 = static_cast<double>(p1.requests);
  const double expect = (w0 * r.providers[0].total_s() +
                         w1 * r.providers[1].total_s()) /
                        (w0 + w1);
  EXPECT_NEAR(r.mean_delay_s, expect, 1e-12);
}

TEST(DelayModel, CachingNearUsersCutsNetworkDelay) {
  // LCF's cached providers sit closer to their users than the remote DC
  // path on average.
  const Instance inst = make(7, 50);
  const LcfResult lcf = run_lcf(inst);
  const DelayReport r = evaluate_delay(lcf.assignment);
  double cached_net = 0.0, remote_net = 0.0;
  std::size_t cached = 0, remote = 0;
  for (const auto& d : r.providers) {
    if (lcf.assignment.choice(d.provider) == kRemote) {
      remote_net += d.network_delay_s;
      ++remote;
    } else {
      cached_net += d.network_delay_s;
      ++cached;
    }
  }
  if (cached > 0 && remote > 0) {
    EXPECT_LT(cached_net / static_cast<double>(cached),
              remote_net / static_cast<double>(remote) * 1.5);
  }
}

TEST(DelayModel, MaxAtLeastMean) {
  const Instance inst = make(8);
  const Assignment a = run_jo_offload_cache(inst);
  const DelayReport r = evaluate_delay(a);
  EXPECT_GE(r.max_delay_s, r.mean_delay_s - 1e-12);
}

}  // namespace
}  // namespace mecsc::core
