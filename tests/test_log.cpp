#include "util/log.h"

#include <gtest/gtest.h>

namespace mecsc::util {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrips) {
  LevelGuard guard;
  for (const auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, SuppressedBelowThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::Off);
  testing::internal::CaptureStderr();
  LOG_ERROR() << "must not appear";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, EmittedAtOrAboveThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  LOG_INFO() << "hello " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO] hello 42"), std::string::npos);
}

TEST(Log, DebugFilteredAtInfoLevel) {
  LevelGuard guard;
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  LOG_DEBUG() << "noise";
  LOG_WARN() << "signal";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("noise"), std::string::npos);
  EXPECT_NE(out.find("[WARN] signal"), std::string::npos);
}

TEST(Log, StreamsArbitraryTypes) {
  LevelGuard guard;
  set_log_level(LogLevel::Debug);
  testing::internal::CaptureStderr();
  LOG_DEBUG() << 1.5 << " " << true << " " << std::string("s");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("1.5 1 s"), std::string::npos);
}

}  // namespace
}  // namespace mecsc::util
