#include "net/graph.h"

#include <gtest/gtest.h>

namespace mecsc::net {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.component_count(), 0u);
  EXPECT_TRUE(g.connected());  // vacuous
}

TEST(Graph, AddNodesReturnsFirstId) {
  Graph g(2);
  EXPECT_EQ(g.add_nodes(3), 2u);
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(Graph, AddEdgeUpdatesAdjacency) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 1.5, 100.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).length, 1.5);
  EXPECT_EQ(g.edge(e).bandwidth_mbps, 100.0);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Graph, EdgeOther) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.edge(e).other(0), 1u);
  EXPECT_EQ(g.edge(e).other(1), 0u);
}

TEST(Graph, HasEdgeBothOrientations) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(5, 0));  // out-of-range is just "no"
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, ComponentsAndConnectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_EQ(g.component_count(), 2u);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3);
  EXPECT_EQ(g.component_count(), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, SingletonIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.component_count(), 1u);
}

TEST(Graph, IncidentEdgesSpan) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(0, 2);
  const auto inc = g.incident_edges(0);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_EQ(inc[0], a);
  EXPECT_EQ(inc[1], b);
}

}  // namespace
}  // namespace mecsc::net
