#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mecsc::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMixKnownToAdvanceState) {
  std::uint64_t s = 0;
  const auto v1 = splitmix64_next(s);
  const auto v2 = splitmix64_next(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(s, 0u);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, UniformRealInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_real(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(41);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(43);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(10, 1.2)];
  for (int k = 2; k <= 10; ++k) EXPECT_GT(counts[1], counts[k]);
}

TEST(Rng, ZipfInRange) {
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.zipf(7, 0.8);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(53);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(5, 0.0) - 1];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, ZipfCacheSwitchesParameters) {
  Rng rng(59);
  // Interleave two parameterizations; both must stay in range.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.zipf(3, 1.0), 3);
    EXPECT_LE(rng.zipf(20, 0.5), 20);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(67);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);  // 50! permutations; identity is absurdly unlikely
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(71);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : uniq) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleFullPopulation) {
  Rng rng(73);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleZero) {
  Rng rng(79);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SplitStreamsAreIndependentlyReproducible) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
  // Child diverges from parent.
  Rng parent3(99);
  Rng child3 = parent3.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child3() == parent3()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == std::numeric_limits<std::uint64_t>::max());
  Rng rng(1);
  (void)rng();
}

}  // namespace
}  // namespace mecsc::util
