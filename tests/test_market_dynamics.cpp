#include "core/market_dynamics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make_pool(std::uint64_t seed, std::size_t providers = 80) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(MigrationCost, DestroyingIsFree) {
  const Instance pool = make_pool(1);
  EXPECT_DOUBLE_EQ(migration_cost(pool, 0, 2, kRemote), 0.0);
  EXPECT_DOUBLE_EQ(migration_cost(pool, 0, kRemote, kRemote), 0.0);
}

TEST(MigrationCost, StayingIsFree) {
  const Instance pool = make_pool(2);
  EXPECT_DOUBLE_EQ(migration_cost(pool, 0, 3, 3), 0.0);
}

TEST(MigrationCost, InitialShipmentFromHomeDc) {
  const Instance pool = make_pool(3);
  const ProviderId l = 0;
  const CloudletId to = 1;
  const double expected =
      pool.cost.transfer_price_per_gb * pool.providers[l].service_data_gb *
      pool.network.cloudlet_to_dc_hops(to, pool.providers[l].home_dc);
  EXPECT_NEAR(migration_cost(pool, l, kRemote, to), expected, 1e-12);
}

TEST(MigrationCost, CloudletToCloudletUsesHops) {
  const Instance pool = make_pool(4);
  const double expected = pool.cost.transfer_price_per_gb *
                          pool.providers[2].service_data_gb *
                          pool.network.cloudlet_to_cloudlet_hops(0, 3);
  EXPECT_NEAR(migration_cost(pool, 2, 0, 3), expected, 1e-12);
}

TEST(MigrationCost, ScalesWithImageSize) {
  Instance pool = make_pool(5);
  const double before = migration_cost(pool, 0, 0, 1);
  pool.providers[0].service_data_gb *= 3.0;
  EXPECT_NEAR(migration_cost(pool, 0, 0, 1), 3.0 * before, 1e-9);
}

TEST(MarketDynamics, RunsRequestedEpochs) {
  const Instance pool = make_pool(6);
  util::Rng rng(1);
  MarketDynamicsParams params;
  params.epochs = 10;
  const MarketDynamicsResult r = simulate_market(pool, params, rng);
  ASSERT_EQ(r.epochs.size(), 10u);
  for (std::size_t e = 0; e < 10; ++e) {
    EXPECT_EQ(r.epochs[e].epoch, e);
    EXPECT_TRUE(r.epochs[e].equilibrium);
    EXPECT_GT(r.epochs[e].social_cost, 0.0);
  }
}

TEST(MarketDynamics, PopulationEvolvesWithinPool) {
  const Instance pool = make_pool(7);
  util::Rng rng(2);
  MarketDynamicsParams params;
  params.epochs = 15;
  params.initial_providers = 30;
  const MarketDynamicsResult r = simulate_market(pool, params, rng);
  for (const auto& e : r.epochs) {
    EXPECT_LE(e.active_providers, pool.provider_count());
    EXPECT_GE(e.active_providers, 1u);
  }
  // Arrivals and departures actually happen across the run.
  std::size_t arrivals = 0, departures = 0;
  for (const auto& e : r.epochs) {
    arrivals += e.arrivals;
    departures += e.departures;
  }
  EXPECT_GT(arrivals, 0u);
  EXPECT_GT(departures, 0u);
}

TEST(MarketDynamics, ActiveCountMatchesFlows) {
  const Instance pool = make_pool(8);
  util::Rng rng(3);
  MarketDynamicsParams params;
  params.epochs = 12;
  const MarketDynamicsResult r = simulate_market(pool, params, rng);
  for (std::size_t e = 1; e < r.epochs.size(); ++e) {
    EXPECT_EQ(r.epochs[e].active_providers,
              r.epochs[e - 1].active_providers + r.epochs[e].arrivals -
                  r.epochs[e].departures);
  }
}

TEST(MarketDynamics, TotalsSumEpochs) {
  const Instance pool = make_pool(9);
  util::Rng rng(4);
  MarketDynamicsParams params;
  params.epochs = 8;
  const MarketDynamicsResult r = simulate_market(pool, params, rng);
  double social = 0.0, migration = 0.0;
  for (const auto& e : r.epochs) {
    social += e.social_cost;
    migration += e.migration_cost;
  }
  EXPECT_NEAR(r.total_social_cost, social, 1e-9);
  EXPECT_NEAR(r.total_migration_cost, migration, 1e-9);
  EXPECT_NEAR(r.total_cost(), social + migration, 1e-9);
}

TEST(MarketDynamics, IncrementalRepairMigratesLess) {
  // The policy trade-off: incremental repair produces (weakly) fewer
  // migrations of continuing providers than recomputing from scratch.
  std::size_t full = 0, incremental = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance pool = make_pool(seed + 10);
    MarketDynamicsParams params;
    params.epochs = 12;
    util::Rng rng1(seed), rng2(seed);
    params.policy = ReplanPolicy::FullRecompute;
    for (const auto& e : simulate_market(pool, params, rng1).epochs) {
      full += e.migrations;
    }
    params.policy = ReplanPolicy::IncrementalRepair;
    for (const auto& e : simulate_market(pool, params, rng2).epochs) {
      incremental += e.migrations;
    }
  }
  EXPECT_LE(incremental, full);
}

TEST(MarketDynamics, FullRecomputeHasLowerSocialCost) {
  // ... and the other side of the trade-off: full recomputation finds
  // (weakly) better placements per epoch, summed over seeds.
  double full = 0.0, incremental = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance pool = make_pool(seed + 20);
    MarketDynamicsParams params;
    params.epochs = 12;
    util::Rng rng1(seed), rng2(seed);
    params.policy = ReplanPolicy::FullRecompute;
    full += simulate_market(pool, params, rng1).total_social_cost;
    params.policy = ReplanPolicy::IncrementalRepair;
    incremental += simulate_market(pool, params, rng2).total_social_cost;
  }
  EXPECT_LE(full, incremental * 1.02);
}

TEST(MarketDynamics, DeterministicGivenSeed) {
  const Instance pool = make_pool(30);
  MarketDynamicsParams params;
  params.epochs = 6;
  util::Rng a(5), b(5);
  const auto r1 = simulate_market(pool, params, a);
  const auto r2 = simulate_market(pool, params, b);
  EXPECT_DOUBLE_EQ(r1.total_cost(), r2.total_cost());
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_EQ(r1.epochs[e].migrations, r2.epochs[e].migrations);
  }
}

TEST(MarketDynamics, PolicyNames) {
  EXPECT_STREQ(replan_policy_name(ReplanPolicy::FullRecompute),
               "full-recompute");
  EXPECT_STREQ(replan_policy_name(ReplanPolicy::IncrementalRepair),
               "incremental-repair");
}

TEST(MarketDynamics, ZeroEpochs) {
  const Instance pool = make_pool(31);
  util::Rng rng(6);
  MarketDynamicsParams params;
  params.epochs = 0;
  const auto r = simulate_market(pool, params, rng);
  EXPECT_TRUE(r.epochs.empty());
  EXPECT_DOUBLE_EQ(r.total_cost(), 0.0);
}

}  // namespace
}  // namespace mecsc::core
