// Failure-injection tests for the emulator: cached instances fail over to
// the original remote instances during cloudlet outages.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "sim/emulation.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace mecsc::sim {
namespace {

struct Scenario {
  core::Instance inst;
  std::vector<Request> trace;
  // Assignment holds a pointer to its Instance, so it must be built against
  // the *member* after the struct is in its final location.
  core::Assignment placement() const { return core::run_offload_cache(inst); }
};

Scenario make(std::uint64_t seed) {
  util::Rng rng(seed);
  core::InstanceParams p;
  p.network_size = 60;
  p.provider_count = 20;
  Scenario s{core::generate_instance(p, rng), {}};
  WorkloadParams w;
  w.horizon_s = 20.0;
  s.trace = generate_workload(s.inst, w, rng);
  return s;
}

TEST(FailureInjection, NoFailuresNoFailovers) {
  const Scenario s = make(1);
  const core::Assignment placement = s.placement();
  const EmulationResult r = replay(placement, s.trace);
  EXPECT_EQ(r.failovers, 0u);
}

TEST(FailureInjection, OutageCausesFailovers) {
  const Scenario s = make(2);
  const core::Assignment placement = s.placement();
  // Find a cloudlet that actually hosts instances.
  core::CloudletId busy = 0;
  for (core::CloudletId i = 0; i < s.inst.cloudlet_count(); ++i) {
    if (placement.occupancy(i) > placement.occupancy(busy)) busy = i;
  }
  ASSERT_GT(placement.occupancy(busy), 0u);
  const FailureEvent outage{busy, 0.0, 100.0};  // down the whole run
  const EmulationResult r =
      replay(placement, s.trace, {}, {{outage}});
  EXPECT_GT(r.failovers, 0u);
  EXPECT_EQ(r.requests_served, s.trace.size());  // nothing is dropped
}

TEST(FailureInjection, FailoverWindowIsRespected) {
  const Scenario s = make(3);
  const core::Assignment placement = s.placement();
  core::CloudletId busy = 0;
  for (core::CloudletId i = 0; i < s.inst.cloudlet_count(); ++i) {
    if (placement.occupancy(i) > placement.occupancy(busy)) busy = i;
  }
  // Outage covering only the first half of the horizon fails over fewer
  // requests than a full-horizon outage.
  const EmulationResult half =
      replay(placement, s.trace, {}, {{FailureEvent{busy, 0.0, 10.0}}});
  const EmulationResult full =
      replay(placement, s.trace, {}, {{FailureEvent{busy, 0.0, 100.0}}});
  EXPECT_GT(full.failovers, half.failovers);
  EXPECT_GT(half.failovers, 0u);
}

TEST(FailureInjection, OutageOfUnusedCloudletIsHarmless) {
  // A zero-capacity cloudlet admits no instances (demand_fits always fails),
  // so it is idle by construction — no seed hunting, no skip.
  util::Rng rng(4);
  core::InstanceParams p;
  p.network_size = 60;
  p.provider_count = 20;
  core::Instance inst = core::generate_instance(p, rng);
  const core::CloudletId empty = 0;
  std::vector<net::Cloudlet> cloudlets = inst.network.cloudlets();
  cloudlets[empty].compute_capacity = 0.0;
  cloudlets[empty].bandwidth_capacity = 0.0;
  inst.network = net::MecNetwork(inst.network.topology(), std::move(cloudlets),
                                 inst.network.data_centers());
  WorkloadParams w;
  w.horizon_s = 20.0;
  const std::vector<Request> trace = generate_workload(inst, w, rng);
  const core::Assignment placement = core::run_offload_cache(inst);
  ASSERT_EQ(placement.occupancy(empty), 0u);
  const EmulationResult base = replay(placement, trace);
  const EmulationResult r =
      replay(placement, trace, {}, {{FailureEvent{empty, 0.0, 100.0}}});
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_DOUBLE_EQ(r.measured_social_cost, base.measured_social_cost);
}

TEST(FailureInjection, AllRemotePlacementUnaffected) {
  const Scenario s = make(5);
  const core::Assignment placement = s.placement();
  const core::Assignment remote(s.inst);
  const EmulationResult r =
      replay(remote, s.trace, {}, {{FailureEvent{0, 0.0, 100.0}}});
  EXPECT_EQ(r.failovers, 0u);
}

TEST(FailureInjection, FailoverShiftsTrafficToWan) {
  // Failing over sends payloads across the WAN to the home DC; the measured
  // transfer volume (GB x hops) cannot shrink.
  const Scenario s = make(6);
  const core::Assignment placement = s.placement();
  core::CloudletId busy = 0;
  for (core::CloudletId i = 0; i < s.inst.cloudlet_count(); ++i) {
    if (placement.occupancy(i) > placement.occupancy(busy)) busy = i;
  }
  const EmulationResult base = replay(placement, s.trace);
  const EmulationResult failed =
      replay(placement, s.trace, {}, {{FailureEvent{busy, 0.0, 100.0}}});
  EXPECT_GT(failed.failovers, 0u);
  // The outage reroutes request payloads over longer DC paths but also
  // suppresses the (short-haul) update traffic; require only that the WAN
  // picture changed.
  EXPECT_NE(failed.total_transfer_gb, base.total_transfer_gb);
}

TEST(FailureInjection, MultipleOverlappingOutages) {
  const Scenario s = make(7);
  const core::Assignment placement = s.placement();
  std::vector<FailureEvent> outages;
  for (core::CloudletId i = 0; i < s.inst.cloudlet_count(); ++i) {
    outages.push_back(FailureEvent{i, 0.0, 100.0});  // everything down
  }
  const EmulationResult r = replay(placement, s.trace, {}, outages);
  // Every request of a cached provider fails over.
  std::size_t cached_requests = 0;
  for (const Request& req : s.trace) {
    if (placement.choice(req.provider) != core::kRemote) ++cached_requests;
  }
  EXPECT_EQ(r.failovers, cached_requests);
  EXPECT_EQ(r.requests_served, s.trace.size());
}

}  // namespace
}  // namespace mecsc::sim
