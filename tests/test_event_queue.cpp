#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace mecsc::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesDuringRun) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(5.0, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_in(3.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, CallbackCanScheduleMore) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) q.schedule_in(1.0, step);
  };
  q.schedule_at(0.0, step);
  EXPECT_EQ(q.run(), 10u);
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(q.run(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EmptyRunIsNoop) {
  EventQueue q;
  EXPECT_EQ(q.run(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, PendingCountsUnfired) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace mecsc::sim
