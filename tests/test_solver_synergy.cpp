// Solver-chain properties: Shmoys-Tardos + local search, greedy + local
// search, and the full ordering LP bound <= exact <= polished <= raw across
// random GAP instances.
#include <gtest/gtest.h>

#include "opt/gap.h"
#include "opt/gap_local_search.h"
#include "util/rng.h"

namespace mecsc::opt {
namespace {

GapInstance random_instance(util::Rng& rng, std::size_t knapsacks,
                            std::size_t items, double slack) {
  GapInstance g;
  g.num_knapsacks = knapsacks;
  g.num_items = items;
  g.cost.resize(knapsacks * items);
  g.weight.resize(knapsacks * items);
  for (auto& c : g.cost) c = rng.uniform_real(1.0, 10.0);
  for (auto& w : g.weight) w = rng.uniform_real(0.5, 1.5);
  g.capacity.assign(knapsacks, slack * static_cast<double>(items) /
                                   static_cast<double>(knapsacks));
  return g;
}

class SolverChainTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverChainTest, FullOrderingHolds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 7);
  const auto g = random_instance(rng, 3, 8, 2.2);
  const auto exact = solve_gap_exact(g);
  if (!exact.feasible) GTEST_SKIP();
  const auto greedy = solve_gap_greedy(g);
  if (!greedy.feasible) GTEST_SKIP();
  const auto polished = improve_gap_local_search(g, greedy);
  const auto st = solve_gap_shmoys_tardos(g);
  ASSERT_TRUE(st.feasible);

  // LP bound <= exact optimum <= polished greedy <= raw greedy.
  EXPECT_LE(*st.lp_bound, exact.cost + 1e-6);
  EXPECT_LE(exact.cost, polished.cost + 1e-9);
  EXPECT_LE(polished.cost, greedy.cost + 1e-9);
  // ST with relaxed capacities never exceeds the LP bound.
  EXPECT_LE(st.cost, *st.lp_bound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, SolverChainTest,
                         ::testing::Range(0, 20));

TEST(SolverSynergy, LocalSearchCanPolishCapacityRespectingSt) {
  // When the ST rounding happens to respect capacities, local search can
  // only keep or improve it while staying capacity-feasible.
  util::Rng rng(99);
  int polished_cases = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = random_instance(rng, 4, 10, 3.0);
    const auto st = solve_gap_shmoys_tardos(g);
    if (!st.feasible || !st.within_capacity) continue;
    const auto out = improve_gap_local_search(g, st);
    EXPECT_TRUE(out.within_capacity);
    EXPECT_LE(out.cost, st.cost + 1e-9);
    ++polished_cases;
  }
  EXPECT_GT(polished_cases, 0);
}

TEST(SolverSynergy, TightCapacityStressAllSolversAgreeOnFeasibility) {
  // With barely-sufficient capacity, whatever the exact solver can place,
  // the ST relaxation must also place (it has strictly more room).
  util::Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = random_instance(rng, 3, 6, 1.15);
    const auto exact = solve_gap_exact(g);
    const auto st = solve_gap_shmoys_tardos(g);
    if (exact.feasible) {
      EXPECT_TRUE(st.feasible) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace mecsc::opt
