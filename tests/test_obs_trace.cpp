#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/lcf.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"

namespace mecsc::obs {
namespace {

/// Guarantees the global trace is detached again even when an assertion
/// fails mid-test, so one failure cannot cascade into the rest of the
/// suite.
class ObsTrace : public testing::Test {
 protected:
  void SetUp() override { Trace::global().close(); }
  void TearDown() override {
    Trace::global().close();
    util::set_log_observer(nullptr);
    util::set_log_level(util::LogLevel::Warn);
  }
};

std::vector<util::JsonValue> parse_lines(const std::string& text) {
  std::vector<util::JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(util::parse_json(line));
  }
  return out;
}

TEST_F(ObsTrace, DisabledByDefaultAndArgumentNotEvaluated) {
  Trace& trace = Trace::global();
  EXPECT_FALSE(trace.enabled());

  // The macro's argument must not be evaluated while disabled — this is
  // the "zero work, zero allocations on the hot path" guarantee. The
  // side-effecting helper would flip the flag if the event were built.
  bool evaluated = false;
  auto expensive_field = [&evaluated] {
    evaluated = true;
    return 42.0;
  };
  MECSC_TRACE(TraceEvent("never").f("v", expensive_field()));
  EXPECT_FALSE(evaluated);
  EXPECT_EQ(trace.events_emitted(), 0u);

  // Attached: the same expression now runs.
  std::ostringstream sink;
  trace.open_stream(&sink);
  MECSC_TRACE(TraceEvent("now").f("v", expensive_field()));
  trace.close();
  EXPECT_TRUE(evaluated);
  EXPECT_NE(sink.str().find("\"event\":\"now\""), std::string::npos);
}

TEST_F(ObsTrace, EmitsOneJsonObjectPerLineWithEventAndSeq) {
  std::ostringstream sink;
  Trace& trace = Trace::global();
  trace.open_stream(&sink);
  MECSC_TRACE(TraceEvent("alpha").f("x", 1).f("label", "one"));
  MECSC_TRACE(TraceEvent("beta").f("flag", true).f("y", 2.5));
  EXPECT_EQ(trace.events_emitted(), 2u);
  trace.close();

  const std::vector<util::JsonValue> lines = parse_lines(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].string_at("event"), "alpha");
  EXPECT_DOUBLE_EQ(lines[0].number_at("x"), 1.0);
  EXPECT_EQ(lines[0].string_at("label"), "one");
  EXPECT_DOUBLE_EQ(lines[0].number_at("seq"), 0.0);
  EXPECT_EQ(lines[1].string_at("event"), "beta");
  EXPECT_TRUE(lines[1].at("flag").as_bool());
  EXPECT_DOUBLE_EQ(lines[1].number_at("seq"), 1.0);
}

TEST_F(ObsTrace, LogBridgeForwardsLinesAsEventsAndCountsThem) {
  install_log_bridge();
  MetricsRegistry::global().reset();
  util::set_log_level(util::LogLevel::Info);

  std::ostringstream sink;
  Trace::global().open_stream(&sink);
  testing::internal::CaptureStderr();
  LOG_INFO() << "bridged " << 7;
  LOG_DEBUG() << "suppressed";  // below the level: neither sink sees it
  testing::internal::GetCapturedStderr();
  Trace::global().close();

  const std::vector<util::JsonValue> lines = parse_lines(sink.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].string_at("event"), "log");
  EXPECT_EQ(lines[0].string_at("level"), "info");
  EXPECT_EQ(lines[0].string_at("message"), "bridged 7");
  EXPECT_EQ(MetricsRegistry::global().snapshot().counters.at(
                "log.lines.info"),
            1);
}

// Golden trace: two identical-seed LCF runs must serialize byte-identical
// traces once the "wall_"-prefixed timing fields are stripped (the same
// contract tools/strip_wallclock.py enforces), and the trace must contain
// the events a convergence plot needs — the coordination-set summary and
// every best-response round with its potential value.
TEST_F(ObsTrace, GoldenLcfTraceIsDeterministicAndComplete) {
  core::InstanceParams params;
  params.network_size = 60;
  params.provider_count = 20;

  auto trace_once = [&] {
    util::Rng rng(2024);
    const core::Instance inst = core::generate_instance(params, rng);
    std::ostringstream sink;
    Trace::global().open_stream(&sink);
    core::run_lcf(inst);
    Trace::global().close();
    return sink.str();
  };

  auto strip_wall = [](const std::string& text) {
    std::string out;
    for (const util::JsonValue& line : parse_lines(text)) {
      util::JsonObject obj = line.as_object();
      for (auto it = obj.begin(); it != obj.end();) {
        it = it->first.rfind("wall_", 0) == 0 ? obj.erase(it) : std::next(it);
      }
      out += util::JsonValue(std::move(obj)).dump() + "\n";
    }
    return out;
  };

  const std::string first = trace_once();
  const std::string second = trace_once();
  EXPECT_EQ(strip_wall(first), strip_wall(second));

  std::size_t coordination_events = 0;
  std::size_t round_events = 0;
  double last_potential = 0.0;
  for (const util::JsonValue& line : parse_lines(first)) {
    const std::string& event = line.string_at("event");
    if (event == "lcf.coordination_set") {
      ++coordination_events;
      EXPECT_GT(line.number_at("coordinated"), 0.0);
      EXPECT_TRUE(line.contains("coordinated_fraction"));
    } else if (event == "game.best_response_round") {
      ++round_events;
      EXPECT_TRUE(line.contains("moves"));
      last_potential = line.number_at("potential");
    }
  }
  EXPECT_EQ(coordination_events, 1u);
  EXPECT_GE(round_events, 1u);
  // The dynamics minimize the potential, so the last round's value is a
  // real finite number (and the field exists on every round).
  EXPECT_GT(last_potential, 0.0);
}

}  // namespace
}  // namespace mecsc::obs
