#include "core/congestion_model.h"

#include <gtest/gtest.h>

#include "core/appro.h"
#include "core/congestion_game.h"
#include "core/social_optimum.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

const CongestionKind kAllKinds[] = {
    CongestionKind::Linear, CongestionKind::Quadratic,
    CongestionKind::Exponential, CongestionKind::Harmonic};

TEST(CongestionShape, NormalizedAtOne) {
  // f(1) = 1 for every shape, so Eq. (9)'s congestion-free cost is
  // shape-independent.
  for (const auto kind : kAllKinds) {
    EXPECT_DOUBLE_EQ(congestion_shape(kind, 1), 1.0)
        << congestion_kind_name(kind);
  }
}

TEST(CongestionShape, NonDecreasing) {
  // The paper's only requirement on the model.
  for (const auto kind : kAllKinds) {
    for (std::size_t k = 1; k < 30; ++k) {
      EXPECT_LE(congestion_shape(kind, k), congestion_shape(kind, k + 1))
          << congestion_kind_name(kind) << " at k=" << k;
    }
  }
}

TEST(CongestionShape, KnownValues) {
  EXPECT_DOUBLE_EQ(congestion_shape(CongestionKind::Linear, 5), 5.0);
  EXPECT_DOUBLE_EQ(congestion_shape(CongestionKind::Quadratic, 4), 16.0);
  EXPECT_DOUBLE_EQ(congestion_shape(CongestionKind::Exponential, 3), 7.0);
  EXPECT_NEAR(congestion_shape(CongestionKind::Harmonic, 3),
              1.0 + 0.5 + 1.0 / 3.0, 1e-12);
}

TEST(CongestionShape, PrefixSumMatchesLoop) {
  for (const auto kind : kAllKinds) {
    double acc = 0.0;
    for (std::size_t k = 1; k <= 25; ++k) {
      acc += congestion_shape(kind, k);
      EXPECT_NEAR(congestion_shape_prefix_sum(kind, k), acc, 1e-9)
          << congestion_kind_name(kind) << " at k=" << k;
    }
    EXPECT_DOUBLE_EQ(congestion_shape_prefix_sum(kind, 0), 0.0);
  }
}

TEST(CongestionShape, MarginalsTelescopeToSocialCongestion) {
  // Σ_{j<=k} marginal(j) == k · f(k): the slot pricing reconstructs the
  // quadratic (shape-weighted) social congestion term exactly.
  for (const auto kind : kAllKinds) {
    double acc = 0.0;
    for (std::size_t k = 1; k <= 20; ++k) {
      acc += congestion_shape_marginal(kind, k);
      EXPECT_NEAR(acc, static_cast<double>(k) * congestion_shape(kind, k),
                  1e-9)
          << congestion_kind_name(kind);
    }
  }
}

TEST(CongestionShape, MarginalsNonDecreasing) {
  // Required for the convex min-cost-flow formulation to be exact.
  for (const auto kind : kAllKinds) {
    for (std::size_t k = 1; k < 30; ++k) {
      EXPECT_LE(congestion_shape_marginal(kind, k),
                congestion_shape_marginal(kind, k + 1) + 1e-12)
          << congestion_kind_name(kind) << " at k=" << k;
    }
  }
}

TEST(CongestionShape, Names) {
  EXPECT_STREQ(congestion_kind_name(CongestionKind::Linear), "linear");
  EXPECT_STREQ(congestion_kind_name(CongestionKind::Quadratic), "quadratic");
  EXPECT_STREQ(congestion_kind_name(CongestionKind::Exponential),
               "exponential");
  EXPECT_STREQ(congestion_kind_name(CongestionKind::Harmonic), "harmonic");
}

// --- Game-theoretic properties carry over to every shape -------------------

Instance make(std::uint64_t seed, CongestionKind kind) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 70;
  p.provider_count = 25;
  Instance inst = generate_instance(p, rng);
  inst.cost.congestion = kind;
  return inst;
}

class CongestionKindGameTest
    : public ::testing::TestWithParam<CongestionKind> {};

TEST_P(CongestionKindGameTest, PotentialIsExactForShape) {
  const Instance inst = make(5, GetParam());
  util::Rng rng(9);
  Assignment a(inst);
  for (int trial = 0; trial < 150; ++trial) {
    const auto l = static_cast<ProviderId>(
        rng.uniform_int(0, static_cast<std::int64_t>(inst.provider_count()) - 1));
    auto target = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(inst.cloudlet_count())));
    if (target >= inst.cloudlet_count()) target = kRemote;
    if (!a.can_move(l, target)) continue;
    const double phi0 = a.potential();
    const double c0 = a.provider_cost(l);
    a.move(l, target);
    EXPECT_NEAR(a.potential() - phi0, a.provider_cost(l) - c0, 1e-9)
        << congestion_kind_name(GetParam());
  }
}

TEST_P(CongestionKindGameTest, DynamicsConvergeToNash) {
  const Instance inst = make(6, GetParam());
  const std::vector<bool> movable(inst.provider_count(), true);
  const GameResult r = best_response_dynamics(Assignment(inst), movable);
  EXPECT_TRUE(r.converged) << congestion_kind_name(GetParam());
  EXPECT_TRUE(is_nash_equilibrium(r.assignment, movable))
      << congestion_kind_name(GetParam());
}

TEST_P(CongestionKindGameTest, ApproFeasibleAndInternalizing) {
  const Instance inst = make(7, GetParam());
  const ApproResult r = run_appro(inst);
  EXPECT_TRUE(r.assignment.feasible());
  // Removing any cached provider must not lower the social cost (the convex
  // slot pricing already charged its exact marginal congestion).
  const double base = r.assignment.social_cost();
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (r.assignment.choice(l) == kRemote) continue;
    Assignment moved = r.assignment;
    moved.move(l, kRemote);
    EXPECT_GE(moved.social_cost(), base - 1e-9)
        << congestion_kind_name(GetParam()) << " provider " << l;
  }
}

TEST_P(CongestionKindGameTest, ExactOptimumStillProven) {
  util::Rng rng(8);
  InstanceParams p;
  p.network_size = 50;
  p.provider_count = 7;
  Instance inst = generate_instance(p, rng);
  inst.cost.congestion = GetParam();
  const SocialOptimumResult opt = solve_social_optimum(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_NEAR(opt.assignment.social_cost(), opt.cost, 1e-9);
  // Appro must respect the Lemma-2-style bound against the exact optimum.
  const ApproResult a = run_appro(inst);
  EXPECT_GE(a.assignment.social_cost(), opt.cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, CongestionKindGameTest,
    ::testing::Values(CongestionKind::Linear, CongestionKind::Quadratic,
                      CongestionKind::Exponential, CongestionKind::Harmonic),
    [](const ::testing::TestParamInfo<CongestionKind>& info) {
      return congestion_kind_name(info.param);
    });

TEST(CongestionKinds, SharperShapesSpreadLoadWider) {
  // With a steeper congestion penalty the equilibrium should use more
  // distinct cloudlets (or cache less), never concentrate harder.
  const Instance linear = make(11, CongestionKind::Linear);
  Instance expo = linear;
  expo.cost.congestion = CongestionKind::Exponential;
  const std::vector<bool> movable(linear.provider_count(), true);
  const auto ne_lin = best_response_dynamics(Assignment(linear), movable);
  const auto ne_exp = best_response_dynamics(Assignment(expo), movable);
  std::size_t peak_lin = 0, peak_exp = 0;
  for (CloudletId i = 0; i < linear.cloudlet_count(); ++i) {
    peak_lin = std::max(peak_lin, ne_lin.assignment.occupancy(i));
    peak_exp = std::max(peak_exp, ne_exp.assignment.occupancy(i));
  }
  EXPECT_LE(peak_exp, peak_lin);
}

}  // namespace
}  // namespace mecsc::core
