#include "util/json.h"

#include <gtest/gtest.h>

namespace mecsc::util {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(parse_json("null"), JsonValue(nullptr));
  EXPECT_EQ(parse_json("true"), JsonValue(true));
  EXPECT_EQ(parse_json("false"), JsonValue(false));
  EXPECT_EQ(parse_json("42"), JsonValue(42.0));
  EXPECT_EQ(parse_json("-3.5"), JsonValue(-3.5));
  EXPECT_EQ(parse_json("1e3"), JsonValue(1000.0));
  EXPECT_EQ(parse_json("\"hi\""), JsonValue("hi"));
}

TEST(Json, TypePredicates) {
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.0).is_number());
  EXPECT_TRUE(JsonValue("x").is_string());
  EXPECT_TRUE(JsonValue(JsonArray{}).is_array());
  EXPECT_TRUE(JsonValue(JsonObject{}).is_object());
}

TEST(Json, AccessorsThrowOnMismatch) {
  const JsonValue v(1.5);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.as_array(), JsonError);
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.as_bool(), JsonError);
  EXPECT_DOUBLE_EQ(v.as_number(), 1.5);
}

TEST(Json, ObjectAccess) {
  const JsonValue v = parse_json(R"({"a": 1, "b": "two"})");
  EXPECT_DOUBLE_EQ(v.number_at("a"), 1.0);
  EXPECT_EQ(v.string_at("b"), "two");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("c"));
  EXPECT_THROW(v.at("c"), JsonError);
}

TEST(Json, NestedStructures) {
  const JsonValue v = parse_json(R"({"xs": [1, [2, 3], {"y": null}]})");
  const JsonArray& xs = v.at("xs").as_array();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(xs[1].as_array()[1].as_number(), 3.0);
  EXPECT_TRUE(xs[2].at("y").is_null());
}

TEST(Json, StringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapeUtf8) {
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xC3\xA9");   // é
  EXPECT_EQ(parse_json(R"("€")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, DumpParseRoundTrip) {
  const std::string doc = R"({"a":[1,2.5,true,null,"s\n"],"b":{"c":-7}})";
  const JsonValue v = parse_json(doc);
  for (int indent : {0, 2, 4}) {
    EXPECT_EQ(parse_json(v.dump(indent)), v) << "indent " << indent;
  }
}

TEST(Json, DumpIsDeterministic) {
  JsonObject o;
  o["zebra"] = JsonValue(1);
  o["alpha"] = JsonValue(2);
  const std::string s = JsonValue(o).dump();
  // std::map ordering: alpha before zebra.
  EXPECT_LT(s.find("alpha"), s.find("zebra"));
}

TEST(Json, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(5.0).dump(), "5");
  EXPECT_EQ(JsonValue(-12.0).dump(), "-12");
  EXPECT_NE(JsonValue(0.5).dump().find('.'), std::string::npos);
}

TEST(Json, PrettyPrintIndents) {
  const JsonValue v = parse_json(R"({"a": [1]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\""), std::string::npos);
}

TEST(Json, ParseErrorsCarryOffsets) {
  for (const char* bad :
       {"", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "01x", "[1] x",
        "{\"a\":}", "nul"}) {
    EXPECT_THROW(parse_json(bad), JsonError) << "input: " << bad;
  }
}

// The parser sits on a network boundary (src/svc/), so every malformed
// document must produce a JsonError with an accurate byte offset — never a
// crash, a hang, or a silently wrong value. One row per failure mode,
// mirroring the error-path tables of the reference C parsers.
struct MalformedCase {
  const char* input;
  std::size_t offset;           ///< expected JsonError::offset()
  const char* message_contains; ///< expected substring of what()
};

TEST(Json, MalformedInputCorpus) {
  const MalformedCase corpus[] = {
      // Truncation and structure.
      {"", 0, "unexpected end of input"},
      {"{", 1, "unexpected end of input"},
      {"[1, 2", 5, "unexpected end of input"},
      {"{\"a\": 1", 7, "unexpected end of input"},
      {"{\"a\"}", 4, "expected ':'"},
      {"{\"a\": 1,}", 8, "expected"},     // trailing comma: '"' expected next
      {"{1: 2}", 1, "expected '\"'"},     // non-string key
      {"[1 2]", 3, "expected"},           // missing comma
      {"]", 0, "expected a value"},
      {"}", 0, "expected a value"},
      {":", 0, "expected a value"},
      // Trailing garbage after a complete document.
      {"1 1", 2, "trailing characters"},
      {"{} {}", 3, "trailing characters"},
      {"null,", 4, "trailing characters"},
      // Bad literals. ("truth" mismatches "true" at its 4th character, so
      // consume_literal rejects the whole token.)
      {"truth", 0, "bad literal"},
      {"falsy", 0, "bad literal"},
      {"none", 0, "bad literal"},
      // Bad strings.
      {"\"abc", 4, "unterminated string"},
      {"\"a\\", 3, "unterminated escape"},
      {"\"\\x41\"", 3, "bad escape character"},
      {"\"\\u12\"", 3, "bad \\u escape"},
      {"\"\\uZZZZ\"", 4, "bad \\u escape"},
      // Bad numbers (strict RFC 8259 grammar).
      {"-", 1, "expected a value"},
      {"+1", 0, "expected a value"},
      {"01", 1, "leading zero"},
      {"-01", 2, "leading zero"},
      {"1.", 2, "expected digits after decimal point"},
      {".5", 0, "expected a value"},
      {"1e", 2, "expected digits in exponent"},
      {"1e+", 3, "expected digits in exponent"},
      {"1e1.5", 3, "trailing characters"},
      {"inf", 0, "expected a value"},  // 'i' is not a JSON value start
      {"1e999", 0, "outside double range"},
      {"-1e999", 0, "outside double range"},
  };
  for (const MalformedCase& c : corpus) {
    try {
      parse_json(c.input);
      FAIL() << "accepted malformed input: " << c.input;
    } catch (const JsonError& err) {
      EXPECT_EQ(err.offset(), c.offset) << "input: " << c.input
                                        << " error: " << err.what();
      EXPECT_NE(std::string(err.what()).find(c.message_contains),
                std::string::npos)
          << "input: " << c.input << " error: " << err.what();
    }
  }
}

TEST(Json, DepthLimitRejectsDeepNesting) {
  JsonParseLimits limits;
  limits.max_depth = 8;
  const std::string ok(8, '[');
  EXPECT_NO_THROW(parse_json(ok + std::string(8, ']'), limits));
  const std::string deep(9, '[');
  EXPECT_THROW(parse_json(deep + std::string(9, ']'), limits), JsonError);
  // Mixed nesting counts every container level.
  EXPECT_THROW(parse_json("[{\"a\":[{\"b\":[{\"c\":[[[1]]]}]}]}]", limits),
               JsonError);
  // Default limit stops pathological input long before the call stack does.
  EXPECT_THROW(parse_json(std::string(100000, '[')), JsonError);
}

TEST(Json, NumberLengthLimit) {
  JsonParseLimits limits;
  limits.max_number_length = 8;
  EXPECT_NO_THROW(parse_json("12345678", limits));
  EXPECT_THROW(parse_json("123456789", limits), JsonError);
  // The default cap still admits full double precision round trips.
  EXPECT_NO_THROW(parse_json("-1.7976931348623157e308"));
}

TEST(Json, ErrorOffsetPointsIntoNestedDocument) {
  try {
    parse_json("{\"a\": [1, 2, tru]}");
    FAIL();
  } catch (const JsonError& err) {
    EXPECT_EQ(err.offset(), 13u);
  }
}

TEST(Json, AccessorErrorsHaveNoOffset) {
  try {
    JsonValue(1.5).as_string();
    FAIL();
  } catch (const JsonError& err) {
    EXPECT_EQ(err.offset(), JsonError::kNoOffset);
  }
}

TEST(Json, WhitespaceTolerated) {
  const JsonValue v = parse_json(" \n\t { \"a\" : [ 1 , 2 ] } \r\n");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_EQ(parse_json("[]").dump(2), "[]");
  EXPECT_EQ(parse_json("{}").dump(2), "{}");
}

TEST(Json, NonFiniteNumbersRejectedOnDump) {
  EXPECT_THROW(JsonValue(std::numeric_limits<double>::infinity()).dump(),
               JsonError);
}

TEST(Json, LargePrecisionPreserved) {
  const double x = 0.1234567890123456;
  const JsonValue v = parse_json(JsonValue(x).dump());
  EXPECT_DOUBLE_EQ(v.as_number(), x);
}

}  // namespace
}  // namespace mecsc::util
