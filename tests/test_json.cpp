#include "util/json.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/json_arena.h"

namespace mecsc::util {
namespace {

// ---------------------------------------------------------------------------
// Two-path parameterization: every accept/reject corpus below runs against
// both the DOM parser (util/json.h, the reference) and the arena parser
// (util/json_arena.h, the serving hot path). The parity contract — identical
// accept/reject decisions, identical error offsets and messages, identical
// number bits — is what lets the service switch paths per request
// (ServerOptions::use_arena_parser) without splitting its digest-keyed cache.
// ---------------------------------------------------------------------------

enum class ParsePath { kDom, kArena };

const char* path_name(ParsePath p) {
  return p == ParsePath::kDom ? "dom" : "arena";
}

/// Parses through the selected path and returns the canonical dump (the
/// byte-level observable the cache digest is built from).
std::string dump_via(ParsePath path, const std::string& text,
                     const JsonParseLimits& limits = {}) {
  if (path == ParsePath::kDom) return parse_json(text, limits).dump();
  return parse_json_arena(text, limits).dump();
}

/// Parses a one-element array document and returns the number inside, so
/// scalar number semantics can be compared across paths bit-for-bit.
double number_via(ParsePath path, const std::string& token) {
  const std::string doc = "[" + token + "]";
  if (path == ParsePath::kDom) {
    return parse_json(doc).as_array().at(0).as_number();
  }
  return parse_json_arena(doc).root().as_array()[0].as_number();
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

class JsonParsePaths : public ::testing::TestWithParam<ParsePath> {};

INSTANTIATE_TEST_SUITE_P(BothPaths, JsonParsePaths,
                         ::testing::Values(ParsePath::kDom, ParsePath::kArena),
                         [](const auto& info) {
                           return std::string(path_name(info.param));
                         });

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(parse_json("null"), JsonValue(nullptr));
  EXPECT_EQ(parse_json("true"), JsonValue(true));
  EXPECT_EQ(parse_json("false"), JsonValue(false));
  EXPECT_EQ(parse_json("42"), JsonValue(42.0));
  EXPECT_EQ(parse_json("-3.5"), JsonValue(-3.5));
  EXPECT_EQ(parse_json("1e3"), JsonValue(1000.0));
  EXPECT_EQ(parse_json("\"hi\""), JsonValue("hi"));
}

TEST(Json, TypePredicates) {
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.0).is_number());
  EXPECT_TRUE(JsonValue("x").is_string());
  EXPECT_TRUE(JsonValue(JsonArray{}).is_array());
  EXPECT_TRUE(JsonValue(JsonObject{}).is_object());
}

TEST(Json, AccessorsThrowOnMismatch) {
  const JsonValue v(1.5);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.as_array(), JsonError);
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.as_bool(), JsonError);
  EXPECT_DOUBLE_EQ(v.as_number(), 1.5);
}

TEST(Json, ObjectAccess) {
  const JsonValue v = parse_json(R"({"a": 1, "b": "two"})");
  EXPECT_DOUBLE_EQ(v.number_at("a"), 1.0);
  EXPECT_EQ(v.string_at("b"), "two");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("c"));
  EXPECT_THROW(v.at("c"), JsonError);
}

TEST(Json, NestedStructures) {
  const JsonValue v = parse_json(R"({"xs": [1, [2, 3], {"y": null}]})");
  const JsonArray& xs = v.at("xs").as_array();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(xs[1].as_array()[1].as_number(), 3.0);
  EXPECT_TRUE(xs[2].at("y").is_null());
}

TEST(Json, StringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapeUtf8) {
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xC3\xA9");   // é
  EXPECT_EQ(parse_json(R"("€")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, DumpParseRoundTrip) {
  const std::string doc = R"({"a":[1,2.5,true,null,"s\n"],"b":{"c":-7}})";
  const JsonValue v = parse_json(doc);
  for (int indent : {0, 2, 4}) {
    EXPECT_EQ(parse_json(v.dump(indent)), v) << "indent " << indent;
  }
}

TEST(Json, DumpIsDeterministic) {
  JsonObject o;
  o["zebra"] = JsonValue(1);
  o["alpha"] = JsonValue(2);
  const std::string s = JsonValue(o).dump();
  // std::map ordering: alpha before zebra.
  EXPECT_LT(s.find("alpha"), s.find("zebra"));
}

TEST(Json, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(5.0).dump(), "5");
  EXPECT_EQ(JsonValue(-12.0).dump(), "-12");
  EXPECT_NE(JsonValue(0.5).dump().find('.'), std::string::npos);
}

TEST(Json, PrettyPrintIndents) {
  const JsonValue v = parse_json(R"({"a": [1]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\""), std::string::npos);
}

TEST(Json, ParseErrorsCarryOffsets) {
  for (const char* bad :
       {"", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "01x", "[1] x",
        "{\"a\":}", "nul"}) {
    EXPECT_THROW(parse_json(bad), JsonError) << "input: " << bad;
  }
}

// The parsers sit on a network boundary (src/svc/), so every malformed
// document must produce a JsonError with an accurate byte offset — never a
// crash, a hang, or a silently wrong value. One row per failure mode,
// mirroring the error-path tables of the reference C parsers. The corpus is
// shared by both parse paths (see malformed_corpus users below).
struct MalformedCase {
  const char* input;
  std::size_t offset;           ///< expected JsonError::offset()
  const char* message_contains; ///< expected substring of what()
};

const MalformedCase* malformed_corpus(std::size_t& count) {
  static const MalformedCase corpus[] = {
      // Truncation and structure.
      {"", 0, "unexpected end of input"},
      {"{", 1, "unexpected end of input"},
      {"[1, 2", 5, "unexpected end of input"},
      {"{\"a\": 1", 7, "unexpected end of input"},
      {"{\"a\"}", 4, "expected ':'"},
      {"{\"a\": 1,}", 8, "expected"},     // trailing comma: '"' expected next
      {"{1: 2}", 1, "expected '\"'"},     // non-string key
      {"[1 2]", 3, "expected"},           // missing comma
      {"]", 0, "expected a value"},
      {"}", 0, "expected a value"},
      {":", 0, "expected a value"},
      // Trailing garbage after a complete document.
      {"1 1", 2, "trailing characters"},
      {"{} {}", 3, "trailing characters"},
      {"null,", 4, "trailing characters"},
      // Bad literals. ("truth" mismatches "true" at its 4th character, so
      // consume_literal rejects the whole token.)
      {"truth", 0, "bad literal"},
      {"falsy", 0, "bad literal"},
      {"none", 0, "bad literal"},
      // Bad strings.
      {"\"abc", 4, "unterminated string"},
      {"\"a\\", 3, "unterminated escape"},
      {"\"\\x41\"", 3, "bad escape character"},
      {"\"\\u12\"", 3, "bad \\u escape"},
      {"\"\\uZZZZ\"", 4, "bad \\u escape"},
      // Bad numbers (strict RFC 8259 grammar).
      {"-", 1, "expected a value"},
      {"+1", 0, "expected a value"},
      {"01", 1, "leading zero"},
      {"-01", 2, "leading zero"},
      {"1.", 2, "expected digits after decimal point"},
      {".5", 0, "expected a value"},
      {"1e", 2, "expected digits in exponent"},
      {"1e+", 3, "expected digits in exponent"},
      {"1e1.5", 3, "trailing characters"},
      {"inf", 0, "expected a value"},  // 'i' is not a JSON value start
      {"1e999", 0, "outside double range"},
      {"-1e999", 0, "outside double range"},
      // Underflow: glibc reports subnormal results as out_of_range, so
      // both paths must reject tokens that land below the normal range.
      {"1e-310", 0, "outside double range"},
      {"4.9e-324", 0, "outside double range"},
  };
  count = sizeof(corpus) / sizeof(corpus[0]);
  return corpus;
}

TEST_P(JsonParsePaths, MalformedInputCorpus) {
  std::size_t count = 0;
  const MalformedCase* corpus = malformed_corpus(count);
  for (std::size_t i = 0; i < count; ++i) {
    const MalformedCase& c = corpus[i];
    try {
      dump_via(GetParam(), c.input);
      FAIL() << "accepted malformed input: " << c.input;
    } catch (const JsonError& err) {
      EXPECT_EQ(err.offset(), c.offset) << "input: " << c.input
                                        << " error: " << err.what();
      EXPECT_NE(std::string(err.what()).find(c.message_contains),
                std::string::npos)
          << "input: " << c.input << " error: " << err.what();
    }
  }
}

// Beyond matching the per-row expectations, the two paths must agree with
// each other verbatim: same exception text, same offset, on every row. This
// is the cross-path half of the parity gate — a new failure mode added to
// one parser but not the other fails here even if both "reasonably" reject.
TEST(JsonParity, MalformedCorpusIdenticalErrorsAcrossPaths) {
  std::size_t count = 0;
  const MalformedCase* corpus = malformed_corpus(count);
  for (std::size_t i = 0; i < count; ++i) {
    const char* input = corpus[i].input;
    std::string dom_err, arena_err;
    std::size_t dom_off = 0, arena_off = 1;
    try {
      parse_json(input);
    } catch (const JsonError& e) {
      dom_err = e.what();
      dom_off = e.offset();
    }
    try {
      parse_json_arena(input);
    } catch (const JsonError& e) {
      arena_err = e.what();
      arena_off = e.offset();
    }
    EXPECT_EQ(dom_err, arena_err) << "input: " << input;
    EXPECT_EQ(dom_off, arena_off) << "input: " << input;
  }
}

// RFC 8259 strict-number corpus: tokens the grammar accepts, with the
// exact double each must produce. The expected literals are compiled by
// the same correctly-rounding conversion strtod guarantees, so EXPECT on
// the raw bit pattern is the right strength — the canonical %.17g dump
// (and through it the service cache key) depends on every bit.
struct NumberCase {
  const char* token;
  double value;
};

TEST_P(JsonParsePaths, StrictNumberCorpus) {
  const NumberCase corpus[] = {
      {"0", 0.0},
      {"-0", -0.0},
      {"42", 42.0},
      {"-7", -7.0},
      {"3.5", 3.5},
      {"-3.5", -3.5},
      {"0.1", 0.1},
      {"0.3", 0.3},
      {"1e3", 1000.0},
      {"1E3", 1000.0},
      {"1e+3", 1000.0},
      {"1e-3", 1e-3},
      {"2.5e-1", 0.25},
      {"123.456", 123.456},
      {"0.000001", 0.000001},
      // Decimal-binary rounding edges.
      {"9007199254740992", 9007199254740992.0},   // 2^53
      {"9007199254740993", 9007199254740993.0},   // ties to even: 2^53
      {"4.5", 4.5},                                // exact tie pattern
      {"1.0000000000000002", 1.0000000000000002},  // 1 + 2^-52
      {"5.9604644775390625e-08", 5.9604644775390625e-08},  // 2^-24, exact
      {"18446744073709551615", 18446744073709551615.0},    // 2^64 - 1
      {"18446744073709551616", 18446744073709551616.0},    // > uint64
      // Range extremes that are still representable.
      {"1.7976931348623157e308", 1.7976931348623157e308},  // DBL_MAX
      {"2.2250738585072014e-308", 2.2250738585072014e-308},  // DBL_MIN
      {"1e22", 1e22},
      {"1e-22", 1e-22},
      {"7450580596923828125e-27", 7450580596923828125e-27},  // 5^27 mantissa
      // More significant digits than a uint64 mantissa can hold.
      {"1.00000000000000011102230246251565404236316680908203125", 1.0},
      {"123456789012345678901234567890", 123456789012345678901234567890.0},
  };
  for (const NumberCase& c : corpus) {
    const double got = number_via(GetParam(), c.token);
    EXPECT_EQ(bits_of(got), bits_of(c.value))
        << "token " << c.token << " parsed to " << got << " via "
        << path_name(GetParam());
  }
}

TEST_P(JsonParsePaths, DepthLimitRejectsDeepNesting) {
  JsonParseLimits limits;
  limits.max_depth = 8;
  const std::string ok(8, '[');
  EXPECT_NO_THROW(dump_via(GetParam(), ok + std::string(8, ']'), limits));
  const std::string deep(9, '[');
  EXPECT_THROW(dump_via(GetParam(), deep + std::string(9, ']'), limits),
               JsonError);
  // Mixed nesting counts every container level.
  EXPECT_THROW(
      dump_via(GetParam(), "[{\"a\":[{\"b\":[{\"c\":[[[1]]]}]}]}]", limits),
      JsonError);
  // Default limit stops pathological input long before the call stack does
  // on the recursive path (the arena path has no recursion to exhaust).
  EXPECT_THROW(dump_via(GetParam(), std::string(100000, '[')), JsonError);
}

// Satellite fix: the over-deep error must carry the *same byte offset* on
// both paths — the offset of the bracket that first exceeds the limit —
// even though one parser counts recursion depth and the other an explicit
// stack. A silent off-by-one here would break error-message parity on the
// wire.
TEST(JsonParity, DepthErrorOffsetIdenticalAcrossPaths) {
  JsonParseLimits limits;
  limits.max_depth = 4;
  // The fifth opener is at byte 6 ("[ [ {\"k\":[ [" layouts vary per doc).
  const std::string docs[] = {
      "[[[[[1]]]]]",
      "[[[[{\"k\":1}]]]]x",  // depth 5 via an object opener
      "{\"a\":[[[[1]]]]}",
  };
  for (const std::string& doc : docs) {
    std::string dom_err, arena_err;
    std::size_t dom_off = 0, arena_off = 1;
    try {
      parse_json(doc, limits);
    } catch (const JsonError& e) {
      dom_err = e.what();
      dom_off = e.offset();
    }
    try {
      parse_json_arena(doc, limits);
    } catch (const JsonError& e) {
      arena_err = e.what();
      arena_off = e.offset();
    }
    EXPECT_EQ(dom_err, arena_err) << "doc: " << doc;
    EXPECT_EQ(dom_off, arena_off) << "doc: " << doc;
    EXPECT_FALSE(dom_err.empty()) << "doc: " << doc;
  }
}

TEST_P(JsonParsePaths, NumberLengthLimit) {
  JsonParseLimits limits;
  limits.max_number_length = 8;
  EXPECT_NO_THROW(dump_via(GetParam(), "12345678", limits));
  EXPECT_THROW(dump_via(GetParam(), "123456789", limits), JsonError);
  // The default cap still admits full double precision round trips.
  EXPECT_NO_THROW(dump_via(GetParam(), "-1.7976931348623157e308"));
}

TEST(Json, ErrorOffsetPointsIntoNestedDocument) {
  try {
    parse_json("{\"a\": [1, 2, tru]}");
    FAIL();
  } catch (const JsonError& err) {
    EXPECT_EQ(err.offset(), 13u);
  }
}

TEST(Json, AccessorErrorsHaveNoOffset) {
  try {
    JsonValue(1.5).as_string();
    FAIL();
  } catch (const JsonError& err) {
    EXPECT_EQ(err.offset(), JsonError::kNoOffset);
  }
}

TEST(Json, WhitespaceTolerated) {
  const JsonValue v = parse_json(" \n\t { \"a\" : [ 1 , 2 ] } \r\n");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_EQ(parse_json("[]").dump(2), "[]");
  EXPECT_EQ(parse_json("{}").dump(2), "{}");
}

TEST(Json, NonFiniteNumbersRejectedOnDump) {
  EXPECT_THROW(JsonValue(std::numeric_limits<double>::infinity()).dump(),
               JsonError);
}

TEST(Json, LargePrecisionPreserved) {
  const double x = 0.1234567890123456;
  const JsonValue v = parse_json(JsonValue(x).dump());
  EXPECT_DOUBLE_EQ(v.as_number(), x);
}

}  // namespace
}  // namespace mecsc::util
