#include "core/pricing.h"

#include <gtest/gtest.h>

#include "core/congestion_game.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t providers = 40) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(PricedGame, SurchargeShiftsBestResponse) {
  const Instance inst = make(1);
  Assignment a(inst);
  const std::size_t free_choice = best_response(a, 0);
  if (free_choice == kRemote) GTEST_SKIP() << "provider prefers remote";
  // An enormous price on the preferred cloudlet must push provider 0 away.
  std::vector<double> prices(inst.cloudlet_count(), 0.0);
  prices[free_choice] = 1e6;
  const std::size_t priced_choice = best_response(a, 0, 1e-9, &prices);
  EXPECT_NE(priced_choice, free_choice);
}

TEST(PricedGame, ZeroPricesMatchUnpricedGame) {
  const Instance inst = make(2);
  const std::vector<double> zero(inst.cloudlet_count(), 0.0);
  const std::vector<bool> movable(inst.provider_count(), true);
  BestResponseOptions priced;
  priced.cloudlet_surcharge = &zero;
  const GameResult a = best_response_dynamics(Assignment(inst), movable);
  const GameResult b =
      best_response_dynamics(Assignment(inst), movable, priced);
  EXPECT_TRUE(a.assignment == b.assignment);
}

TEST(PricedGame, DynamicsConvergeUnderPrices) {
  const Instance inst = make(3);
  util::Rng rng(9);
  std::vector<double> prices(inst.cloudlet_count());
  for (auto& p : prices) p = rng.uniform_real(0.0, 1.0);
  const std::vector<bool> movable(inst.provider_count(), true);
  BestResponseOptions bro;
  bro.cloudlet_surcharge = &prices;
  const GameResult r =
      best_response_dynamics(Assignment(inst), movable, bro);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(is_nash_equilibrium(r.assignment, movable, 1e-9, &prices));
  // Generally NOT an equilibrium of the unpriced game.
}

TEST(Pricing, ResultIsFeasiblePricedEquilibrium) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed);
    const PricingResult r = decentralize_by_pricing(inst);
    EXPECT_TRUE(r.assignment.feasible()) << "seed " << seed;
    EXPECT_TRUE(is_nash_equilibrium(
        r.assignment, std::vector<bool>(inst.provider_count(), true), 1e-9,
        &r.prices))
        << "seed " << seed;
    for (const double p : r.prices) EXPECT_GE(p, 0.0);
  }
}

TEST(Pricing, ShrinksOccupancyGapVersusFreeEquilibrium) {
  // The whole point: prices pull the equilibrium's congestion profile
  // toward the coordinated target. Compare against the zero-price NE gap.
  std::size_t priced_gap = 0, free_gap = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed + 20);
    const PricingResult r = decentralize_by_pricing(inst);
    priced_gap += r.occupancy_gap;
    const GameResult ne = best_response_dynamics(
        Assignment(inst), std::vector<bool>(inst.provider_count(), true));
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      const auto occ = static_cast<std::ptrdiff_t>(ne.assignment.occupancy(i));
      const auto target = static_cast<std::ptrdiff_t>(r.target_occupancy[i]);
      free_gap += static_cast<std::size_t>(std::abs(occ - target));
    }
  }
  EXPECT_LE(priced_gap, free_gap);
}

TEST(Pricing, RevenueMatchesPricesTimesOccupancy) {
  const Instance inst = make(6);
  const PricingResult r = decentralize_by_pricing(inst);
  double revenue = 0.0;
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    revenue += r.prices[i] * static_cast<double>(r.assignment.occupancy(i));
  }
  EXPECT_NEAR(r.revenue, revenue, 1e-9);
}

TEST(Pricing, SocialCostExcludesTransfers) {
  const Instance inst = make(7);
  const PricingResult r = decentralize_by_pricing(inst);
  EXPECT_NEAR(r.social_cost, r.assignment.social_cost(), 1e-9);
}

TEST(Pricing, PerfectMatchStopsEarly) {
  // When the free equilibrium already matches the target, the tâtonnement
  // should stop at iteration 1 with zero prices.
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    const Instance inst = make(seed, 10);  // light load: targets easy to hit
    const PricingResult r = decentralize_by_pricing(inst);
    if (r.occupancy_gap == 0 && r.iterations == 1) {
      for (const double p : r.prices) EXPECT_DOUBLE_EQ(p, 0.0);
      return;  // found the expected case
    }
  }
  GTEST_SKIP() << "no instance with a freely matching equilibrium";
}

TEST(Pricing, TargetsComeFromAppro) {
  const Instance inst = make(8);
  const PricingResult r = decentralize_by_pricing(inst);
  const ApproResult appro = run_appro(inst);
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_EQ(r.target_occupancy[i], appro.assignment.occupancy(i));
  }
}

}  // namespace
}  // namespace mecsc::core
