// Routing-tier tests: digest affinity over real backends, health
// aggregation, drain + spillover, router-answered request types, and
// cross-process trace parenting. Suite names start with "Route" so the
// TSan job's concurrency filter picks them up — every test here runs a
// router and several solver servers worth of threads.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "core/io.h"
#include "obs/run_info.h"
#include "obs/tracing.h"
#include "route/router.h"
#include "route/shard_map.h"
#include "svc/client.h"
#include "svc/server.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace mecsc;
using util::JsonObject;
using util::JsonValue;

util::JsonValue route_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  core::InstanceParams params;
  params.network_size = 20;
  params.provider_count = 10;
  return core::instance_to_json(core::generate_instance(params, rng));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// N solver backends plus one router in front, torn down router-first so
/// in-flight forwards never race a dying backend.
struct RouterFixture {
  std::vector<std::unique_ptr<svc::SolverServer>> backends;
  std::unique_ptr<route::Router> router;

  explicit RouterFixture(std::size_t backend_count,
                         route::RouterOptions options = {},
                         svc::ServerOptions backend_options = {}) {
    for (std::size_t i = 0; i < backend_count; ++i) {
      svc::ServerOptions server_options = backend_options;
      server_options.tcp_port = 0;
      if (server_options.threads == 0) server_options.threads = 2;
      backends.push_back(
          std::make_unique<svc::SolverServer>(std::move(server_options)));
      backends.back()->start();
      route::BackendSpec spec;
      spec.name = "b" + std::to_string(i + 1);
      spec.endpoint =
          "tcp:127.0.0.1:" + std::to_string(backends.back()->port());
      options.backends.push_back(std::move(spec));
    }
    options.tcp_port = 0;
    router = std::make_unique<route::Router>(std::move(options));
    router->start();
  }

  ~RouterFixture() {
    if (router) {
      router->request_shutdown();
      router->wait();
    }
    for (auto& backend : backends) {
      backend->request_shutdown();
      backend->wait();
    }
  }

  svc::SvcClient client() {
    return svc::SvcClient::connect("tcp:127.0.0.1:" +
                                   std::to_string(router->port()));
  }
};

route::RouterOptions no_probe_options() {
  route::RouterOptions options;
  options.health_interval_ms = 0.0;  // deterministic: no probe traffic
  return options;
}

// --- Routing ---------------------------------------------------------------

TEST(RouteAffinity, RepeatDigestsLandOnTheSameBackend) {
  RouterFixture f(3, no_probe_options());
  svc::SvcClient client = f.client();

  // First pass pins each instance's backend; the repeat passes (and a
  // second connection) must agree — that is the cache-affinity contract.
  std::map<std::uint64_t, std::string> first_seen;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const svc::SvcResponse r =
          client.solve(route_instance(seed), "lcf", seed);
      ASSERT_TRUE(r.ok) << r.error_code << ": " << r.error_message;
      ASSERT_TRUE(r.body.contains("route_backend"));
      const std::string backend = r.body.at("route_backend").as_string();
      if (pass == 0) {
        first_seen[seed] = backend;
        EXPECT_FALSE(r.body.contains("route_spilled"));
      } else {
        EXPECT_EQ(first_seen[seed], backend) << "seed " << seed;
      }
    }
  }
  svc::SvcClient other = f.client();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const svc::SvcResponse r = other.solve(route_instance(seed), "lcf", seed);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(first_seen[seed], r.body.at("route_backend").as_string());
  }
  // 6 digests over 3 backends: overwhelmingly likely to touch >= 2, and
  // the router's own counters must agree with what clients observed.
  std::set<std::string> used;
  for (const auto& [seed, backend] : first_seen) used.insert(backend);
  EXPECT_GE(used.size(), 2u);
  const route::RouterStats stats = f.router->stats();
  EXPECT_EQ(stats.forwarded, 24u);
  EXPECT_EQ(stats.spilled, 0u);
  EXPECT_EQ(stats.backend_failures, 0u);
}

TEST(RouteAffinity, AffinityWarmsTheOwnersCache) {
  RouterFixture f(2, no_probe_options());
  svc::SvcClient client = f.client();
  const util::JsonValue instance = route_instance(42);
  const svc::SvcResponse first = client.solve(instance, "lcf", 1);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.body.at("cached").as_bool());
  const svc::SvcResponse second = client.solve(instance, "lcf", 2);
  ASSERT_TRUE(second.ok);
  // Same digest -> same backend -> its single-flight cache answers.
  EXPECT_TRUE(second.body.at("cached").as_bool());
  EXPECT_EQ(first.body.at("route_backend").as_string(),
            second.body.at("route_backend").as_string());
}

TEST(RouteAffinity, RequestIdsAreMintedByTheRouterWhenAbsent) {
  RouterFixture f(2, no_probe_options());
  svc::SvcClient client = f.client();
  const svc::SvcResponse r = client.solve(route_instance(1), "lcf", 9);
  ASSERT_TRUE(r.ok);
  // The router splices "r-<n>" in before forwarding, so the backend never
  // mints its own "s-<n>" for routed traffic (determinism contract).
  EXPECT_EQ(r.request_id.rfind("r-", 0), 0u) << r.request_id;

  const svc::SvcResponse tagged =
      client.solve(route_instance(1), "lcf", 10, 0.3, true, -1.0, "mine-1");
  ASSERT_TRUE(tagged.ok);
  EXPECT_EQ(tagged.request_id, "mine-1");  // client ids pass through
}

// --- Router-answered request types -----------------------------------------

TEST(RouteHealth, AggregatesBackendsAndProbeData) {
  route::RouterOptions options;
  options.health_interval_ms = 20.0;
  RouterFixture f(2, std::move(options));
  svc::SvcClient client = f.client();

  const svc::SvcResponse first = client.health();
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.body.string_at("role"), "router");
  ASSERT_EQ(first.body.at("backends").as_array().size(), 2u);

  // Wait (bounded) for a probe sweep to land load data on every backend.
  bool all_probed = false;
  for (int i = 0; i < 200 && !all_probed; ++i) {
    const svc::SvcResponse h = client.health();
    ASSERT_TRUE(h.ok);
    all_probed = true;
    for (const JsonValue& b : h.body.at("backends").as_array()) {
      EXPECT_TRUE(b.at("healthy").as_bool());
      EXPECT_FALSE(b.at("draining").as_bool());
      if (!b.contains("queue_capacity")) all_probed = false;
    }
    if (!all_probed)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(all_probed) << "probe data never arrived";
  const svc::SvcResponse h = client.health();
  for (const JsonValue& b : h.body.at("backends").as_array()) {
    EXPECT_GT(b.number_at("queue_capacity"), 0.0);
    EXPECT_GT(b.number_at("workers"), 0.0);
    EXPECT_TRUE(b.contains("wall_queue_depth"));
    EXPECT_TRUE(b.contains("wall_inflight"));
    EXPECT_TRUE(b.contains("wall_service_time_ms"));
  }
}

TEST(RouteMetrics, CarriesRouterTelemetryAndPerBackendCounters) {
  RouterFixture f(2, no_probe_options());
  svc::SvcClient client = f.client();
  ASSERT_TRUE(client.solve(route_instance(3), "lcf", 1).ok);
  const svc::SvcResponse m = client.metrics();
  ASSERT_TRUE(m.ok);
  const JsonValue& telemetry = m.body.at("telemetry");
  ASSERT_TRUE(telemetry.contains("route"));
  const JsonValue& route = telemetry.at("route");
  EXPECT_EQ(route.number_at("forwarded"), 1.0);
  ASSERT_EQ(route.at("backends").as_array().size(), 2u);
  // Router RED telemetry sees the routed request under its type.
  EXPECT_TRUE(telemetry.at("red").contains("solve"));
}

// --- Drain + spillover ------------------------------------------------------

TEST(RouteDrain, DrainedBackendSpillsItsKeysAndKeepsServing) {
  RouterFixture f(3, no_probe_options());
  svc::SvcClient client = f.client();

  // Pin each seed's owner, then drain the backend owning seed 1.
  const svc::SvcResponse before = client.solve(route_instance(1), "lcf", 1);
  ASSERT_TRUE(before.ok);
  const std::string owner = before.body.at("route_backend").as_string();

  JsonObject drain;
  drain["type"] = JsonValue("drain_backend");
  drain["id"] = JsonValue(std::uint64_t{100});
  drain["backend"] = JsonValue(owner);
  const svc::SvcResponse drained = client.call(JsonValue(std::move(drain)));
  ASSERT_TRUE(drained.ok) << drained.error_message;
  EXPECT_EQ(drained.body.string_at("draining_backend"), owner);
  EXPECT_EQ(drained.body.number_at("active_backends"), 2.0);

  // The same digest now lands elsewhere, flagged as spilled, still ok.
  const svc::SvcResponse after = client.solve(route_instance(1), "lcf", 2);
  ASSERT_TRUE(after.ok);
  EXPECT_NE(after.body.at("route_backend").as_string(), owner);
  ASSERT_TRUE(after.body.contains("route_spilled"));
  EXPECT_TRUE(after.body.at("route_spilled").as_bool());
  EXPECT_GE(f.router->stats().spilled, 1u);

  // Health marks the drained backend; the other two still accept keys.
  const svc::SvcResponse h = client.health();
  ASSERT_TRUE(h.ok);
  for (const JsonValue& b : h.body.at("backends").as_array())
    EXPECT_EQ(b.at("draining").as_bool(), b.string_at("name") == owner);
}

TEST(RouteDrain, RefusesUnknownAndLastBackend) {
  RouterFixture f(2, no_probe_options());
  svc::SvcClient client = f.client();

  JsonObject unknown;
  unknown["type"] = JsonValue("drain_backend");
  unknown["id"] = JsonValue(std::uint64_t{1});
  unknown["backend"] = JsonValue("nope");
  const svc::SvcResponse bad = client.call(JsonValue(std::move(unknown)));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_code, "bad_request");

  JsonObject first;
  first["type"] = JsonValue("drain_backend");
  first["id"] = JsonValue(std::uint64_t{2});
  first["backend"] = JsonValue("b1");
  ASSERT_TRUE(client.call(JsonValue(std::move(first))).ok);

  // b2 is the last backend accepting keys: draining it must fail, and
  // routed traffic must still be served (by the draining-but-alive b1
  // only as a last resort — b2 remains the universe here).
  JsonObject last;
  last["type"] = JsonValue("drain_backend");
  last["id"] = JsonValue(std::uint64_t{3});
  last["backend"] = JsonValue("b2");
  const svc::SvcResponse refused = client.call(JsonValue(std::move(last)));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, "bad_request");
  EXPECT_TRUE(client.solve(route_instance(5), "lcf", 4).ok);
}

TEST(RouteDrain, DeadBackendIsRoutedAroundAfterOneFailure) {
  // Kill a backend outright (no drain): the first forward that hits it
  // fails at the transport level, marks it unhealthy, and the request
  // finishes on another backend in the same call — the client sees one
  // ok response, never an error.
  RouterFixture f(2, no_probe_options());
  svc::SvcClient client = f.client();

  // Find seeds owned by each backend so we can kill a backend that owns
  // live traffic.
  std::map<std::string, std::uint64_t> seed_by_backend;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const svc::SvcResponse r = client.solve(route_instance(seed), "lcf", seed);
    ASSERT_TRUE(r.ok);
    seed_by_backend.emplace(r.body.at("route_backend").as_string(), seed);
  }
  ASSERT_EQ(seed_by_backend.size(), 2u) << "need both backends owning keys";

  // Kill b1's process-equivalent (the in-process server) hard.
  f.backends[0]->request_shutdown();
  f.backends[0]->wait();

  const std::uint64_t orphan = seed_by_backend.at("b1");
  const svc::SvcResponse r =
      client.solve(route_instance(orphan), "lcf", 99);
  ASSERT_TRUE(r.ok) << r.error_code << ": " << r.error_message;
  EXPECT_EQ(r.body.at("route_backend").as_string(), "b2");
  EXPECT_TRUE(r.body.at("route_spilled").as_bool());
  const route::RouterStats stats = f.router->stats();
  EXPECT_GE(stats.backend_failures, 1u);
  EXPECT_EQ(stats.responses_error, 0u);
}

// --- Cross-process trace parenting -----------------------------------------

TEST(RouteTracing, BackendSpansParentOnTheRoutersForwardSpan) {
  const std::string router_trace =
      testing::TempDir() + "route_trace_router.json";
  const std::string backend_trace =
      testing::TempDir() + "route_trace_backend.json";

  {
    route::RouterOptions options = no_probe_options();
    options.trace_out = router_trace;
    svc::ServerOptions backend_options;
    backend_options.trace_out = backend_trace;
    RouterFixture f(1, std::move(options), std::move(backend_options));
    svc::SvcClient client = f.client();

    // A sampled client traceparent: both hops keep the trace.
    const obs::TraceContext ctx = obs::TraceContext::derive("rt-1", true);
    const svc::SvcResponse r =
        client.solve(route_instance(2), "lcf", 1, 0.3, true, -1.0, "rt-1",
                     ctx.to_traceparent());
    ASSERT_TRUE(r.ok);
    // Fixture teardown closes both trace writers.
  }

  const JsonValue router_doc = util::parse_json(read_file(router_trace));
  const JsonValue backend_doc = util::parse_json(read_file(backend_trace));

  // The router's events: a route.request root and its children, all on
  // the client's trace id.
  const std::string trace_id =
      obs::TraceContext::derive("rt-1", true).trace_id;
  std::string forward_span;
  std::string route_root_span;
  for (const JsonValue& ev : router_doc.at("traceEvents").as_array()) {
    const JsonValue& args = ev.at("args");
    EXPECT_EQ(args.string_at("trace_id"), trace_id);
    if (ev.string_at("name") == "route.forward")
      forward_span = args.string_at("span_id");
    if (ev.string_at("name") == "route.request")
      route_root_span = args.string_at("span_id");
  }
  ASSERT_FALSE(forward_span.empty()) << "router kept no route.forward span";
  ASSERT_FALSE(route_root_span.empty());

  // The backend's svc.request root continues the same trace and parents
  // on the router's forward span — one causal tree across two processes.
  bool found_backend_root = false;
  for (const JsonValue& ev : backend_doc.at("traceEvents").as_array()) {
    const JsonValue& args = ev.at("args");
    EXPECT_EQ(args.string_at("trace_id"), trace_id);
    if (ev.string_at("name") == "svc.request") {
      found_backend_root = true;
      EXPECT_EQ(args.string_at("parent_span_id"), forward_span);
      EXPECT_NE(args.string_at("span_id"), route_root_span);
    }
  }
  EXPECT_TRUE(found_backend_root) << "backend kept no svc.request span";
}

// --- Lifecycle --------------------------------------------------------------

TEST(RouteShutdown, ShutdownRequestDrainsTheRouterNotTheBackends) {
  RouterFixture f(2, no_probe_options());
  {
    svc::SvcClient client = f.client();
    const svc::SvcResponse r = client.shutdown();
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.body.at("draining").as_bool());
  }
  f.router->wait();
  EXPECT_TRUE(f.router->draining());
  // Backends are untouched: direct connections still solve.
  svc::SvcClient direct = svc::SvcClient::connect(
      "tcp:127.0.0.1:" + std::to_string(f.backends[0]->port()));
  EXPECT_TRUE(direct.solve(route_instance(1), "lcf", 1).ok);
}

TEST(RouteOptions, EmptyTopologyIsAConstructionError) {
  // Surfaces before any socket exists — a router with nowhere to send
  // traffic refuses to come up at all.
  route::RouterOptions options;
  options.tcp_port = 0;
  EXPECT_THROW(route::Router{std::move(options)}, std::invalid_argument);
}

}  // namespace
