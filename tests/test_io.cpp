#include "core/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "core/baselines.h"
#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 60;
  p.provider_count = 25;
  return generate_instance(p, rng);
}

TEST(InstanceIo, RoundTripPreservesStructure) {
  const Instance a = make();
  const Instance b = instance_from_json(instance_to_json(a));
  EXPECT_EQ(b.network.topology().node_count(),
            a.network.topology().node_count());
  EXPECT_EQ(b.network.topology().edge_count(),
            a.network.topology().edge_count());
  ASSERT_EQ(b.cloudlet_count(), a.cloudlet_count());
  ASSERT_EQ(b.network.data_center_count(), a.network.data_center_count());
  ASSERT_EQ(b.provider_count(), a.provider_count());
  for (std::size_t i = 0; i < a.cloudlet_count(); ++i) {
    EXPECT_EQ(b.network.cloudlets()[i].node, a.network.cloudlets()[i].node);
    EXPECT_DOUBLE_EQ(b.network.cloudlets()[i].compute_capacity,
                     a.network.cloudlets()[i].compute_capacity);
    EXPECT_DOUBLE_EQ(b.cost.alpha[i], a.cost.alpha[i]);
    EXPECT_DOUBLE_EQ(b.cost.beta[i], a.cost.beta[i]);
  }
  for (ProviderId l = 0; l < a.provider_count(); ++l) {
    EXPECT_DOUBLE_EQ(b.providers[l].compute_per_request,
                     a.providers[l].compute_per_request);
    EXPECT_EQ(b.providers[l].requests, a.providers[l].requests);
    EXPECT_EQ(b.providers[l].home_dc, a.providers[l].home_dc);
    EXPECT_EQ(b.providers[l].user_region, a.providers[l].user_region);
  }
  EXPECT_EQ(b.cost.congestion, a.cost.congestion);
}

TEST(InstanceIo, RoundTripPreservesDistancesAndCosts) {
  const Instance a = make(2);
  const Instance b = instance_from_json(instance_to_json(a));
  // Recomputed hop matrices must agree — they derive from identical graphs.
  for (std::size_t c = 0; c < a.cloudlet_count(); ++c) {
    for (std::size_t d = 0; d < a.network.data_center_count(); ++d) {
      EXPECT_DOUBLE_EQ(b.network.cloudlet_to_dc_hops(c, d),
                       a.network.cloudlet_to_dc_hops(c, d));
    }
  }
  // And therefore every cost the algorithms see is identical.
  for (ProviderId l = 0; l < a.provider_count(); ++l) {
    EXPECT_DOUBLE_EQ(remote_cost(b, l), remote_cost(a, l));
    for (CloudletId i = 0; i < a.cloudlet_count(); ++i) {
      EXPECT_DOUBLE_EQ(flat_cache_cost(b, l, i), flat_cache_cost(a, l, i));
    }
  }
}

TEST(InstanceIo, AlgorithmsAgreeAcrossRoundTrip) {
  const Instance a = make(3);
  const Instance b = instance_from_json(instance_to_json(a));
  EXPECT_DOUBLE_EQ(run_lcf(a).social_cost(), run_lcf(b).social_cost());
  EXPECT_DOUBLE_EQ(run_jo_offload_cache(a).social_cost(),
                   run_jo_offload_cache(b).social_cost());
}

TEST(InstanceIo, CongestionKindSurvives) {
  Instance a = make(4);
  a.cost.congestion = CongestionKind::Exponential;
  const Instance b = instance_from_json(instance_to_json(a));
  EXPECT_EQ(b.cost.congestion, CongestionKind::Exponential);
}

TEST(InstanceIo, RejectsVersionMismatch) {
  auto doc = instance_to_json(make(5));
  doc.as_object()["format_version"] = util::JsonValue(999);
  EXPECT_THROW(instance_from_json(doc), std::invalid_argument);
}

TEST(InstanceIo, RejectsBadIds) {
  auto doc = instance_to_json(make(6));
  doc.as_object()["data_centers"].as_array()[0] =
      util::JsonValue(100000);  // out of range node
  EXPECT_THROW(instance_from_json(doc), std::invalid_argument);
}

TEST(InstanceIo, RejectsAlphaSizeMismatch) {
  auto doc = instance_to_json(make(7));
  doc.as_object()["cost"].as_object()["alpha"].as_array().pop_back();
  EXPECT_THROW(instance_from_json(doc), std::invalid_argument);
}

/// Runs instance_from_json on `doc` after `mutate`, expecting a
/// std::invalid_argument whose message contains `needle` — the message must
/// name the offending element, not just say "invalid".
template <typename Fn>
void expect_rejected(util::JsonValue doc, Fn&& mutate,
                     const std::string& needle) {
  mutate(doc);
  try {
    instance_from_json(doc);
    FAIL() << "document accepted; expected rejection mentioning '" << needle
           << "'";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
        << "actual message: " << err.what();
  }
}

TEST(InstanceIoValidation, RejectsNegativeCloudletCompute) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cloudlets"].as_array()[0].as_object()["compute"] =
            util::JsonValue(-5.0);
      },
      "cloudlets[0].compute");
}

TEST(InstanceIoValidation, RejectsNegativeCloudletBandwidth) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cloudlets"].as_array()[1].as_object()["bandwidth"] =
            util::JsonValue(-1.0);
      },
      "cloudlets[1].bandwidth");
}

TEST(InstanceIoValidation, RejectsCloudletNodeOutOfRange) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cloudlets"].as_array()[0].as_object()["node"] =
            util::JsonValue(1e9);
      },
      "cloudlets[0].node");
}

TEST(InstanceIoValidation, RejectsNegativeNodeIndexBeforeUnsignedCast) {
  // A negative double cast straight to an unsigned index is UB; the
  // validator must reject it *before* any cast happens.
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["data_centers"].as_array()[0] = util::JsonValue(-3);
      },
      "data_centers[0]");
}

TEST(InstanceIoValidation, RejectsFractionalIndex) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["providers"].as_array()[0].as_object()["home_dc"] =
            util::JsonValue(0.5);
      },
      "providers[0].home_dc");
}

TEST(InstanceIoValidation, RejectsProviderHomeDcOutOfRange) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["providers"].as_array()[2].as_object()["home_dc"] =
            util::JsonValue(999);
      },
      "providers[2].home_dc");
}

TEST(InstanceIoValidation, RejectsProviderUserRegionOutOfRange) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["providers"].as_array()[0].as_object()["user_region"] =
            util::JsonValue(999);
      },
      "providers[0].user_region");
}

TEST(InstanceIoValidation, RejectsNegativeRequestCount) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["providers"].as_array()[1].as_object()["requests"] =
            util::JsonValue(-10);
      },
      "providers[1].requests");
}

TEST(InstanceIoValidation, RejectsUpdateFractionAboveOne) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["providers"].as_array()[0]
            .as_object()["update_fraction"] = util::JsonValue(1.5);
      },
      "providers[0].update_fraction");
}

TEST(InstanceIoValidation, RejectsNonFiniteCapacity) {
  // JSON cannot carry inf, but a hand-built document (or a future binary
  // path) can; the validator refuses it regardless of transport.
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cloudlets"].as_array()[0].as_object()["compute"] =
            util::JsonValue(std::numeric_limits<double>::quiet_NaN());
      },
      "cloudlets[0].compute");
}

TEST(InstanceIoValidation, RejectsSelfLoopEdge) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        auto& edges =
            d.as_object()["topology"].as_object()["edges"].as_array();
        auto& e0 = edges[0].as_array();
        e0[1] = e0[0];  // u == v
      },
      "self-loop");
}

TEST(InstanceIoValidation, RejectsEdgeEndpointOutOfRange) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["topology"].as_object()["edges"].as_array()[0]
            .as_array()[0] = util::JsonValue(1e9);
      },
      "topology.edges[0].u");
}

TEST(InstanceIoValidation, RejectsBadEdgeTupleArity) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["topology"].as_object()["edges"].as_array()[0]
            .as_array()
            .pop_back();
      },
      "[u, v, length, bandwidth]");
}

TEST(InstanceIoValidation, RejectsNegativeAlpha) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cost"].as_object()["alpha"].as_array()[3] =
            util::JsonValue(-0.5);
      },
      "cost.alpha[3]");
}

TEST(InstanceIoValidation, RejectsNegativeTransferPrice) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cost"].as_object()["transfer_price_per_gb"] =
            util::JsonValue(-1.0);
      },
      "cost.transfer_price_per_gb");
}

TEST(InstanceIoValidation, RejectsUnknownCongestionKind) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["cost"].as_object()["congestion"] =
            util::JsonValue("cubic");
      },
      "cubic");
}

TEST(InstanceIoValidation, VersionMessageNamesSupportedVersion) {
  expect_rejected(
      instance_to_json(make(20)),
      [](util::JsonValue& d) {
        d.as_object()["format_version"] = util::JsonValue(999);
      },
      "version");
}

TEST(AssignmentIoValidation, RejectsNegativeChoiceBeforeCast) {
  const Instance inst = make(21);
  auto doc = assignment_to_json(Assignment(inst));
  doc.as_object()["choices"].as_array()[0] = util::JsonValue(-1);
  EXPECT_THROW(assignment_from_json(inst, doc), std::invalid_argument);
}

TEST(AssignmentIo, RoundTrip) {
  const Instance inst = make(8);
  const Assignment a = run_jo_offload_cache(inst);
  const Assignment b = assignment_from_json(inst, assignment_to_json(a));
  EXPECT_TRUE(a == b);
  EXPECT_DOUBLE_EQ(a.social_cost(), b.social_cost());
}

TEST(AssignmentIo, RemoteEncodedAsNull) {
  const Instance inst = make(9);
  const Assignment a(inst);  // all remote
  const auto doc = assignment_to_json(a);
  for (const auto& c : doc.at("choices").as_array()) {
    EXPECT_TRUE(c.is_null());
  }
}

TEST(AssignmentIo, CostSummaryIncluded) {
  const Instance inst = make(10);
  const Assignment a = run_offload_cache(inst);
  const auto doc = assignment_to_json(a);
  EXPECT_NEAR(doc.number_at("social_cost"), a.social_cost(), 1e-9);
  EXPECT_NEAR(doc.number_at("potential"), a.potential(), 1e-9);
}

TEST(AssignmentIo, RejectsSizeMismatch) {
  const Instance inst = make(11);
  auto doc = assignment_to_json(Assignment(inst));
  doc.as_object()["choices"].as_array().pop_back();
  EXPECT_THROW(assignment_from_json(inst, doc), std::invalid_argument);
}

TEST(AssignmentIo, RejectsInvalidCloudlet) {
  const Instance inst = make(12);
  auto doc = assignment_to_json(Assignment(inst));
  doc.as_object()["choices"].as_array()[0] = util::JsonValue(99999);
  EXPECT_THROW(assignment_from_json(inst, doc), std::invalid_argument);
}

TEST(AssignmentIo, RejectsCapacityViolations) {
  Instance inst = make(13);
  // Two providers that each fill cloudlet 0 entirely.
  for (ProviderId l = 0; l < 2; ++l) {
    inst.providers[l].compute_per_request =
        inst.network.cloudlets()[0].compute_capacity;
    inst.providers[l].requests = 1;
  }
  auto doc = assignment_to_json(Assignment(inst));
  doc.as_object()["choices"].as_array()[0] = util::JsonValue(0);
  doc.as_object()["choices"].as_array()[1] = util::JsonValue(0);
  EXPECT_THROW(assignment_from_json(inst, doc), std::invalid_argument);
}

TEST(TextFiles, RoundTripAndErrors) {
  const std::string path = "/tmp/mecsc_io_test.txt";
  write_text_file(path, "hello\nworld");
  EXPECT_EQ(read_text_file(path), "hello\nworld");
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file("/nonexistent/dir/file"), std::runtime_error);
  EXPECT_THROW(write_text_file("/nonexistent/dir/file", "x"),
               std::runtime_error);
}

TEST(MecNetworkExplicit, MatchesGeneratedDistances) {
  // The deserialization constructor recomputes exactly what the generating
  // constructor computed.
  const Instance a = make(14);
  net::MecNetwork rebuilt(
      a.network.topology(),
      std::vector<net::Cloudlet>(a.network.cloudlets().begin(),
                                 a.network.cloudlets().end()),
      std::vector<net::DataCenter>(a.network.data_centers().begin(),
                                   a.network.data_centers().end()));
  for (std::size_t c = 0; c < a.cloudlet_count(); ++c) {
    for (std::size_t c2 = 0; c2 < a.cloudlet_count(); ++c2) {
      EXPECT_DOUBLE_EQ(rebuilt.cloudlet_to_cloudlet_hops(c, c2),
                       a.network.cloudlet_to_cloudlet_hops(c, c2));
    }
  }
}

}  // namespace
}  // namespace mecsc::core
