#!/bin/sh
# End-to-end CLI integration test: generate -> info -> solve (all
# algorithms) -> evaluate -> emulate -> delay -> stability -> price.
# Usage: cli_roundtrip.sh /path/to/mecsc
set -eu

MECSC="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$MECSC" generate --size 60 --providers 20 --seed 3 -o "$DIR/inst.json"
test -s "$DIR/inst.json"

"$MECSC" info -i "$DIR/inst.json" | grep -q "providers"

for alg in lcf appro appro-literal jo offload selfish; do
  "$MECSC" solve -i "$DIR/inst.json" --algorithm "$alg" \
      -o "$DIR/$alg.json" 2>/dev/null
  test -s "$DIR/$alg.json"
  "$MECSC" evaluate -i "$DIR/inst.json" -p "$DIR/$alg.json" \
      | grep -q "feasible.*yes"
done

# The solve output records its algorithm.
grep -q '"algorithm": "lcf"' "$DIR/lcf.json"

"$MECSC" emulate -i "$DIR/inst.json" -p "$DIR/lcf.json" --horizon 10 \
    | grep -q "requests served"
"$MECSC" delay -i "$DIR/inst.json" -p "$DIR/lcf.json" \
    | grep -q "mean request delay"
"$MECSC" stability -i "$DIR/inst.json" | grep -q "side-payment budget"
"$MECSC" price -i "$DIR/inst.json" -o "$DIR/priced.json" 2>/dev/null
grep -q '"prices"' "$DIR/priced.json"

# Unknown flags and missing files fail cleanly (non-zero, no crash).
if "$MECSC" solve -i /nonexistent.json --algorithm lcf 2>/dev/null; then
  echo "expected failure on missing file" >&2
  exit 1
fi
if "$MECSC" bogus-subcommand 2>/dev/null; then
  echo "expected failure on bad subcommand" >&2
  exit 1
fi

echo "cli_roundtrip OK"
