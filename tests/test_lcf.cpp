#include "core/lcf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t network = 80,
              std::size_t providers = 40) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = network;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(Lcf, CoordinatedCountIsFloorXiN) {
  const Instance inst = make(1);
  for (const double xi : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    LcfOptions options;
    options.coordinated_fraction = xi;
    const LcfResult r = run_lcf(inst, options);
    std::size_t count = 0;
    for (bool c : r.coordinated) count += c ? 1 : 0;
    EXPECT_EQ(count, static_cast<std::size_t>(std::floor(
                         xi * static_cast<double>(inst.provider_count()))));
  }
}

TEST(Lcf, CoordinatedAreTheCostliestUnderAppro) {
  const Instance inst = make(2);
  LcfOptions options;
  options.coordinated_fraction = 0.4;
  const LcfResult r = run_lcf(inst, options);
  double min_coordinated = 1e300, max_selfish = -1e300;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const double c = r.appro.assignment.provider_cost(l);
    if (r.coordinated[l]) {
      min_coordinated = std::min(min_coordinated, c);
    } else {
      max_selfish = std::max(max_selfish, c);
    }
  }
  EXPECT_GE(min_coordinated, max_selfish - 1e-9);
}

TEST(Lcf, CoordinatedStayAtApproSeats) {
  const Instance inst = make(3);
  LcfOptions options;
  options.coordinated_fraction = 0.5;
  const LcfResult r = run_lcf(inst, options);
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (r.coordinated[l]) {
      EXPECT_EQ(r.assignment.choice(l), r.appro.assignment.choice(l));
    }
  }
}

TEST(Lcf, SelfishPlayersAtNashEquilibrium) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make(seed);
    LcfOptions options;
    options.coordinated_fraction = 0.7;
    const LcfResult r = run_lcf(inst, options);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    std::vector<bool> movable(inst.provider_count());
    for (ProviderId l = 0; l < inst.provider_count(); ++l) {
      movable[l] = !r.coordinated[l];
    }
    EXPECT_TRUE(is_nash_equilibrium(r.assignment, movable)) << "seed " << seed;
    EXPECT_TRUE(r.assignment.feasible());
  }
}

TEST(Lcf, CostBreakdownSumsToSocialCost) {
  const Instance inst = make(4);
  const LcfResult r = run_lcf(inst);
  EXPECT_NEAR(r.social_cost(), r.assignment.social_cost(), 1e-9);
  EXPECT_NEAR(r.coordinated_cost + r.selfish_cost, r.social_cost(), 1e-12);
}

TEST(Lcf, FullCoordinationEqualsAppro) {
  const Instance inst = make(5);
  LcfOptions options;
  options.coordinated_fraction = 1.0;
  const LcfResult r = run_lcf(inst, options);
  EXPECT_TRUE(r.assignment == r.appro.assignment);
  EXPECT_DOUBLE_EQ(r.selfish_cost, 0.0);
}

TEST(Lcf, ZeroCoordinationIsPureSelfishGame) {
  const Instance inst = make(6);
  LcfOptions options;
  options.coordinated_fraction = 0.0;
  const LcfResult r = run_lcf(inst, options);
  EXPECT_DOUBLE_EQ(r.coordinated_cost, 0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(is_nash_equilibrium(
      r.assignment, std::vector<bool>(inst.provider_count(), true)));
}

TEST(Lcf, WarmStartAlsoReachesEquilibrium) {
  const Instance inst = make(7);
  LcfOptions options;
  options.selfish_start_at_appro = true;
  const LcfResult r = run_lcf(inst, options);
  EXPECT_TRUE(r.converged);
  std::vector<bool> movable(inst.provider_count());
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    movable[l] = !r.coordinated[l];
  }
  EXPECT_TRUE(is_nash_equilibrium(r.assignment, movable));
}

TEST(Lcf, MoreCoordinationNeverHurtsMuch) {
  // The paper's Fig. 3: social cost grows with the selfish share (1-ξ).
  // Individual seeds can fluctuate, so compare the endpoints, which the
  // theory separates cleanly.
  double cost_full = 0.0, cost_none = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed, 100, 60);
    LcfOptions full, none;
    full.coordinated_fraction = 1.0;
    none.coordinated_fraction = 0.0;
    cost_full += run_lcf(inst, full).social_cost();
    cost_none += run_lcf(inst, none).social_cost();
  }
  EXPECT_LE(cost_full, cost_none * 1.02);
}

}  // namespace
}  // namespace mecsc::core
