#include "core/poa.h"

#include <gtest/gtest.h>

#include "core/virtual_cloudlet.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t providers = 8) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 50;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(Theorem1Bound, FormulaAtFixedV) {
  // 2δκ/(1-v) * (1/(4v) + 1 - ξ) with δ=κ=1, ξ=0, v=0.5:
  // 2/(0.5) * (0.5 + 1) = 4 * 1.5 = 6.
  EXPECT_NEAR(theorem1_bound_at(1.0, 1.0, 0.0, 0.5), 6.0, 1e-12);
  // ξ=1 removes the (1-ξ) term: 4 * 0.5 = 2.
  EXPECT_NEAR(theorem1_bound_at(1.0, 1.0, 1.0, 0.5), 2.0, 1e-12);
}

TEST(Theorem1Bound, ScalesLinearlyInDeltaKappa) {
  const double base = theorem1_bound(1.0, 1.0, 0.3);
  EXPECT_NEAR(theorem1_bound(2.0, 1.0, 0.3), 2.0 * base, 1e-9);
  EXPECT_NEAR(theorem1_bound(2.0, 3.0, 0.3), 6.0 * base, 1e-9);
}

TEST(Theorem1Bound, MinOverVIsBelowAnySample) {
  const double tight = theorem1_bound(1.5, 2.0, 0.4);
  for (const double v : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_LE(tight, theorem1_bound_at(1.5, 2.0, 0.4, v) + 1e-9);
  }
}

TEST(Theorem1Bound, MoreCoordinationTightensBound) {
  EXPECT_GT(theorem1_bound(1.0, 1.0, 0.0), theorem1_bound(1.0, 1.0, 0.5));
  EXPECT_GT(theorem1_bound(1.0, 1.0, 0.5), theorem1_bound(1.0, 1.0, 1.0));
}

TEST(EstimatePoa, EquilibriaExistAndRatioAtLeastOne) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance inst = make(seed);
    util::Rng rng(seed * 17);
    PoaOptions options;
    options.restarts = 10;
    const PoaResult r = estimate_poa(inst, options, rng);
    EXPECT_GT(r.equilibria_found, 0u) << "seed " << seed;
    ASSERT_TRUE(r.optimum_exact) << "seed " << seed;
    EXPECT_GE(r.empirical_poa, 1.0 - 1e-9) << "seed " << seed;
    EXPECT_LE(r.best_equilibrium_cost, r.worst_equilibrium_cost + 1e-12);
    EXPECT_GT(r.theoretical_bound, 0.0);
  }
}

TEST(EstimatePoa, EmpiricalPoaWithinTheorem1Bound) {
  // Theorem 1 upper-bounds the PoA of the LCF mechanism; the empirical worst
  // equilibrium must respect it (the bound is loose, so this passes with a
  // wide margin — the bench reports how loose).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance inst = make(seed);
    util::Rng rng(seed * 31);
    PoaOptions options;
    options.restarts = 10;
    options.coordinated_fraction = 0.5;
    const PoaResult r = estimate_poa(inst, options, rng);
    if (!r.optimum_exact || r.equilibria_found == 0) continue;
    EXPECT_LE(r.empirical_poa, r.theoretical_bound + 1e-9) << "seed " << seed;
  }
}

TEST(EstimatePoa, CoordinationReducesWorstEquilibrium) {
  // Averaged across seeds: pinning the costliest providers at the Appro
  // solution should not worsen the worst equilibrium.
  double selfish = 0.0, coordinated = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed, 10);
    util::Rng rng1(seed), rng2(seed);
    PoaOptions none, half;
    none.restarts = 10;
    half.restarts = 10;
    half.coordinated_fraction = 0.5;
    selfish += estimate_poa(inst, none, rng1).worst_equilibrium_cost;
    coordinated += estimate_poa(inst, half, rng2).worst_equilibrium_cost;
  }
  EXPECT_LE(coordinated, selfish * 1.05);
}

}  // namespace
}  // namespace mecsc::core
