// Solver service tests: wire protocol, result-cache single-flight,
// bounded-queue backpressure, deadlines, and graceful drain. The
// concurrency tests run under TSan in CI (suite names start with "Svc" so
// the TSan job's filter picks them up).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "core/io.h"
#include "core/solver_api.h"
#include "obs/tracing.h"
#include "svc/bounded_queue.h"
#include "svc/client.h"
#include "svc/result_cache.h"
#include "svc/server.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace mecsc;
using util::JsonObject;
using util::JsonValue;

util::JsonValue small_instance(std::uint64_t seed = 7) {
  util::Rng rng(seed);
  core::InstanceParams params;
  params.network_size = 25;
  params.provider_count = 12;
  return core::instance_to_json(core::generate_instance(params, rng));
}

/// Starts a TCP server on an ephemeral port and tears it down in order.
struct ServerFixture {
  svc::SolverServer server;

  explicit ServerFixture(svc::ServerOptions options = make_default())
      : server(std::move(options)) {
    server.start();
  }

  ~ServerFixture() {
    server.request_shutdown();
    server.wait();
  }

  static svc::ServerOptions make_default() {
    svc::ServerOptions options;
    options.tcp_port = 0;
    options.threads = 2;
    return options;
  }

  svc::SvcClient client() {
    return svc::SvcClient::connect("tcp:127.0.0.1:" +
                                   std::to_string(server.port()));
  }

  svc::ConnectionPtr raw_connection() {
    return svc::connect_tcp("127.0.0.1", server.port());
  }
};

// --- BoundedQueue -----------------------------------------------------------

TEST(SvcBoundedQueue, TryPushRespectsCapacityWithoutBlocking) {
  svc::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: immediate rejection, no block
  EXPECT_EQ(q.size(), 2u);
}

TEST(SvcBoundedQueue, CloseDrainsRemainingItemsThenSignalsEnd) {
  svc::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed: no new admissions
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);  // closed and drained
}

TEST(SvcBoundedQueue, CloseWakesBlockedConsumers) {
  svc::BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

// --- ResultCache ------------------------------------------------------------

TEST(SvcResultCache, LeaderPublishesWaitersCoalesce) {
  svc::ResultCache cache(8);
  ASSERT_EQ(cache.get_or_lead("k"), std::nullopt);  // caller leads

  std::thread waiter([&] {
    // Blocks until the leader publishes, then returns its payload.
    EXPECT_EQ(cache.get_or_lead("k"), std::optional<std::string>("payload"));
  });
  cache.publish("k", "payload");
  waiter.join();

  EXPECT_EQ(cache.get_or_lead("k"), std::optional<std::string>("payload"));
  const svc::ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
}

TEST(SvcResultCache, AbandonPromotesExactlyOneWaiterToLeader) {
  svc::ResultCache cache(8);
  ASSERT_EQ(cache.get_or_lead("k"), std::nullopt);

  std::promise<void> waiter_is_leader;
  std::thread waiter([&] {
    const auto r = cache.get_or_lead("k");
    EXPECT_EQ(r, std::nullopt);  // promoted to leader after the abandon
    waiter_is_leader.set_value();
    cache.publish("k", "recovered");
  });
  // Let the waiter reach the coalescing wait before abandoning. (A sleep
  // would be flaky shorthand; polling the counter is exact.)
  while (cache.stats().coalesced == 0) std::this_thread::yield();
  cache.abandon("k");
  waiter_is_leader.get_future().wait();
  waiter.join();

  EXPECT_EQ(cache.get_or_lead("k"), std::optional<std::string>("recovered"));
}

TEST(SvcResultCache, CapacityZeroKeepsSingleFlightButNoResidency) {
  svc::ResultCache cache(0);
  ASSERT_EQ(cache.get_or_lead("k"), std::nullopt);
  cache.publish("k", "payload");
  // Nothing resident: the next call leads again.
  EXPECT_EQ(cache.get_or_lead("k"), std::nullopt);
  cache.abandon("k");
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(SvcResultCache, ShutdownWakeupUnblocksWaiters) {
  svc::ResultCache cache(8);
  ASSERT_EQ(cache.get_or_lead("k"), std::nullopt);
  std::thread waiter([&] {
    // Woken by shutdown_wakeup with no payload: reported as a miss.
    EXPECT_EQ(cache.get_or_lead("k"), std::nullopt);
  });
  while (cache.stats().coalesced == 0) std::this_thread::yield();
  cache.shutdown_wakeup();
  waiter.join();
}

// --- Endpoint parsing -------------------------------------------------------

TEST(SvcEndpoint, ParsesAllThreeSpellings) {
  const svc::Endpoint unix_ep = svc::parse_endpoint("unix:/tmp/s.sock");
  EXPECT_TRUE(unix_ep.is_unix);
  EXPECT_EQ(unix_ep.path, "/tmp/s.sock");

  const svc::Endpoint tcp = svc::parse_endpoint("tcp:127.0.0.1:7077");
  EXPECT_FALSE(tcp.is_unix);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7077);

  const svc::Endpoint bare = svc::parse_endpoint("/tmp/other.sock");
  EXPECT_TRUE(bare.is_unix);
  EXPECT_EQ(bare.path, "/tmp/other.sock");

  EXPECT_THROW(svc::parse_endpoint("tcp:nohost"), std::runtime_error);
  EXPECT_THROW(svc::parse_endpoint("tcp:host:notaport"), std::runtime_error);
  EXPECT_THROW(svc::parse_endpoint("unix:"), std::runtime_error);
}

// --- Wire protocol ----------------------------------------------------------

TEST(SvcServer, HealthReportsProtocolAndAlgorithms) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  const svc::SvcResponse r = client.health();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.body.number_at("protocol_version"), svc::kSvcProtocolVersion);
  EXPECT_FALSE(r.body.at("draining").as_bool());
  bool has_lcf = false;
  for (const JsonValue& name : r.body.at("algorithms").as_array()) {
    if (name.as_string() == "lcf") has_lcf = true;
  }
  EXPECT_TRUE(has_lcf);
}

TEST(SvcServer, SolveMatchesDirectSolverAndEchoesId) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  const JsonValue instance = small_instance();
  const svc::SvcResponse r = client.solve(instance, "lcf", /*id=*/42);
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.id.as_number(), 42.0);
  EXPECT_FALSE(r.body.at("cached").as_bool());
  EXPECT_EQ(r.body.at("result").string_at("algorithm"), "lcf");
  // The served result equals running the solver in-process.
  const core::Instance inst = core::instance_from_json(instance);
  core::SolveSpec spec;
  const core::SolveOutcome direct = core::run_solver(inst, spec);
  EXPECT_DOUBLE_EQ(
      r.body.at("result").number_at("social_cost"),
      core::assignment_to_json(direct.assignment).number_at("social_cost"));
}

TEST(SvcServer, RepeatedSolveIsByteIdenticalAndCached) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  const JsonValue instance = small_instance();
  const svc::SvcResponse first = client.solve(instance, "appro", 1);
  const svc::SvcResponse second = client.solve(instance, "appro", 1);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.body.at("cached").as_bool());
  EXPECT_TRUE(second.body.at("cached").as_bool());
  // Identical id + identical solve: the *deterministic* parts of the line
  // are byte-identical; only cached and the wall_ keys may differ.
  EXPECT_EQ(first.body.at("result").dump(), second.body.at("result").dump());
  EXPECT_EQ(f.server.stats().solves_executed, 1u);
  EXPECT_EQ(f.server.stats().cache.hits, 1u);
}

TEST(SvcServer, StructuredErrorsCarryCodeAndMessage) {
  ServerFixture f;
  svc::ConnectionPtr conn = f.raw_connection();

  auto roundtrip = [&](const std::string& line) {
    EXPECT_TRUE(conn->write_line(line));
    const auto response = conn->read_line(1 << 20);
    EXPECT_TRUE(response.has_value());
    return util::parse_json(*response);
  };

  JsonValue r = roundtrip("{not json");
  EXPECT_FALSE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("error").string_at("code"), "parse_error");
  EXPECT_TRUE(r.at("id").is_null());

  r = roundtrip("[1, 2]");
  EXPECT_EQ(r.at("error").string_at("code"), "bad_request");

  r = roundtrip("{\"id\": 9, \"type\": \"warp\"}");
  EXPECT_EQ(r.at("error").string_at("code"), "bad_request");
  EXPECT_EQ(r.at("id").as_number(), 9.0);  // id echoed even on errors

  r = roundtrip(
      "{\"id\": 10, \"type\": \"solve\", \"algorithm\": \"quantum\", "
      "\"instance\": {}}");
  EXPECT_EQ(r.at("error").string_at("code"), "bad_request");

  // A structurally valid request whose instance fails io.cpp's semantic
  // validation also comes back as bad_request, with the io message.
  JsonObject request;
  request["id"] = JsonValue(11);
  request["type"] = JsonValue("solve");
  JsonObject bogus;
  bogus["format_version"] = JsonValue(999);
  request["instance"] = JsonValue(std::move(bogus));
  r = roundtrip(JsonValue(std::move(request)).dump());
  EXPECT_EQ(r.at("error").string_at("code"), "bad_request");
}

TEST(SvcServer, ZeroDeadlineIsDeterministicallyExceeded) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  const svc::SvcResponse r =
      client.solve(small_instance(), "lcf", 1, 0.3, true, /*deadline_ms=*/0.0);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, "deadline_exceeded");
  EXPECT_EQ(f.server.stats().deadline_exceeded, 1u);
  EXPECT_EQ(f.server.stats().solves_executed, 0u);  // rejected pre-solve
}

TEST(SvcServer, PoaRequestReturnsTheoreticalBoundAndRatio) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  JsonObject request;
  request["id"] = JsonValue(1);
  request["type"] = JsonValue("poa");
  request["instance"] = small_instance();
  request["restarts"] = JsonValue(3);
  request["seed"] = JsonValue(5);
  const svc::SvcResponse r = client.call(JsonValue(std::move(request)));
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_GT(r.body.at("result").number_at("theoretical_bound"), 0.0);
  EXPECT_GE(r.body.at("result").number_at("empirical_poa"), 0.0);
}

TEST(SvcServer, UnixSocketEndpointRoundTrips) {
  const std::string path = testing::TempDir() + "mecsc_svc_test.sock";
  svc::ServerOptions options;
  options.unix_socket_path = path;
  options.threads = 1;
  svc::SolverServer server(std::move(options));
  server.start();
  EXPECT_EQ(server.endpoint(), "unix:" + path);
  {
    svc::SvcClient client = svc::SvcClient::connect("unix:" + path);
    const svc::SvcResponse r = client.health();
    EXPECT_TRUE(r.ok);
  }
  server.request_shutdown();
  server.wait();
}

// --- Concurrency edges ------------------------------------------------------

// N concurrent identical requests, cold cache: single-flight guarantees the
// solver runs exactly once — every request either leads, coalesces onto the
// leader, or hits the already-published entry. The count is exact, not
// timing-dependent.
TEST(SvcServer, ConcurrentIdenticalRequestsSolveExactlyOnce) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.threads = 4;
  ServerFixture f(std::move(options));
  const JsonValue instance = small_instance();

  constexpr std::size_t kClients = 8;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      svc::SvcClient client = f.client();
      const svc::SvcResponse r = client.solve(instance, "lcf", c);
      ASSERT_TRUE(r.ok) << r.raw;
      results[c] = r.body.at("result").dump();
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t c = 1; c < kClients; ++c) EXPECT_EQ(results[c], results[0]);
  EXPECT_EQ(f.server.stats().solves_executed, 1u);
}

// With caching disabled per-request there is no coalescing: every request
// runs the solver (and results still agree — the solver is deterministic).
TEST(SvcServer, CacheOptOutSolvesEveryRequest) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  const JsonValue instance = small_instance();
  const svc::SvcResponse a =
      client.solve(instance, "lcf", 1, 0.3, /*cache=*/false);
  const svc::SvcResponse b =
      client.solve(instance, "lcf", 2, 0.3, /*cache=*/false);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.body.at("result").dump(), b.body.at("result").dump());
  EXPECT_EQ(f.server.stats().solves_executed, 2u);
  EXPECT_EQ(f.server.stats().cache.hits, 0u);
}

// Deterministic backpressure: one worker held inside the test hook, queue
// capacity 1. Request A occupies the worker, B the queue slot; C must be
// rejected with a structured "overloaded" line *while the others are still
// pending* — the closed-loop admission contract.
TEST(SvcServer, QueueFullYieldsStructuredOverloadResponse) {
  std::promise<void> hook_entered;
  std::promise<void> release_hook;
  std::shared_future<void> release = release_hook.get_future().share();
  std::atomic<int> hook_calls{0};

  svc::ServerOptions options;
  options.tcp_port = 0;
  options.threads = 1;
  options.queue_capacity = 1;
  options.test_hook_before_request = [&] {
    if (hook_calls.fetch_add(1) == 0) {
      hook_entered.set_value();
      release.wait();
    }
  };
  ServerFixture f(std::move(options));
  svc::ConnectionPtr conn = f.raw_connection();

  ASSERT_TRUE(conn->write_line("{\"id\": 1, \"type\": \"health\"}"));
  hook_entered.get_future().wait();  // A is inside the (held) worker
  ASSERT_TRUE(conn->write_line("{\"id\": 2, \"type\": \"health\"}"));
  // B sits in the queue's only slot. Poll until the session thread has
  // admitted it, then C must bounce.
  while (f.server.stats().queue_depth == 0) std::this_thread::yield();
  ASSERT_TRUE(conn->write_line("{\"id\": 3, \"type\": \"health\"}"));

  // C's rejection arrives while A and B are still pending, so it is the
  // first line on the wire.
  const auto rejection = conn->read_line(1 << 20);
  ASSERT_TRUE(rejection.has_value());
  const JsonValue r = util::parse_json(*rejection);
  EXPECT_FALSE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("error").string_at("code"), "overloaded");
  EXPECT_TRUE(r.at("id").is_null());  // rejected before parsing

  release_hook.set_value();
  // A then B complete in order on the single worker.
  for (const double expected_id : {1.0, 2.0}) {
    const auto line = conn->read_line(1 << 20);
    ASSERT_TRUE(line.has_value());
    const JsonValue ok = util::parse_json(*line);
    EXPECT_TRUE(ok.at("ok").as_bool());
    EXPECT_EQ(ok.at("id").as_number(), expected_id);
  }
  EXPECT_EQ(f.server.stats().overloaded, 1u);
}

// Graceful drain with requests in flight: a held worker plus a queued
// request; request_shutdown() must let both finish and answer before the
// pool exits (no dropped work, no deadlock — TSan-verified in CI).
TEST(SvcServer, ShutdownDrainsInFlightRequests) {
  std::promise<void> hook_entered;
  std::promise<void> release_hook;
  std::shared_future<void> release = release_hook.get_future().share();
  std::atomic<int> hook_calls{0};

  svc::ServerOptions options;
  options.tcp_port = 0;
  options.threads = 1;
  options.queue_capacity = 4;
  options.test_hook_before_request = [&] {
    if (hook_calls.fetch_add(1) == 0) {
      hook_entered.set_value();
      release.wait();
    }
  };
  svc::SolverServer server(std::move(options));
  server.start();
  svc::ConnectionPtr conn =
      svc::connect_tcp("127.0.0.1", server.port());

  ASSERT_TRUE(conn->write_line("{\"id\": 1, \"type\": \"health\"}"));
  hook_entered.get_future().wait();
  ASSERT_TRUE(conn->write_line("{\"id\": 2, \"type\": \"health\"}"));
  while (server.stats().queue_depth == 0) std::this_thread::yield();

  server.request_shutdown();
  EXPECT_TRUE(server.draining());
  release_hook.set_value();
  server.wait();  // joins everything; both responses are on the wire

  for (const double expected_id : {1.0, 2.0}) {
    const auto line = conn->read_line(1 << 20);
    ASSERT_TRUE(line.has_value()) << "response dropped during drain";
    const JsonValue ok = util::parse_json(*line);
    EXPECT_TRUE(ok.at("ok").as_bool());
    EXPECT_EQ(ok.at("id").as_number(), expected_id);
  }
  // Connection now reports EOF: the server is fully gone.
  EXPECT_EQ(conn->read_line(1 << 20), std::nullopt);
}

// --- Telemetry plane --------------------------------------------------------

TEST(SvcServer, MetricsRequestReturnsTelemetrySnapshot) {
  // One FIFO worker: the event for a response the client has seen is
  // recorded before the worker pops the next (metrics) job, so the counts
  // below are exact, not racing the post-write record.
  svc::ServerOptions options = ServerFixture::make_default();
  options.threads = 1;
  ServerFixture f(std::move(options));
  svc::SvcClient client = f.client();
  const JsonValue instance = small_instance();
  ASSERT_TRUE(client.solve(instance, "lcf", 1).ok);
  ASSERT_TRUE(client.solve(instance, "lcf", 2).ok);  // cache hit

  const svc::SvcResponse r = client.metrics();
  ASSERT_TRUE(r.ok) << r.raw;
  ASSERT_TRUE(r.body.contains("telemetry"));
  const JsonValue& telemetry = r.body.at("telemetry");
  const JsonValue& solve = telemetry.at("red").at("solve");
  EXPECT_EQ(solve.number_at("requests"), 2.0);
  EXPECT_EQ(solve.number_at("errors"), 0.0);
  EXPECT_EQ(solve.at("wall_latency_ms").number_at("count"), 2.0);
  EXPECT_EQ(telemetry.at("cache").number_at("hits"), 1.0);
  EXPECT_EQ(telemetry.at("cache").number_at("misses"), 1.0);
  EXPECT_EQ(telemetry.at("gauges").number_at("workers"), 1.0);
  EXPECT_TRUE(telemetry.at("wall_gauges").contains("queue_depth"));
}

TEST(SvcServer, RequestIdIsEchoedOrGenerated) {
  ServerFixture f;
  svc::SvcClient client = f.client();
  const JsonValue instance = small_instance();
  // Client-supplied id comes back verbatim on the ok envelope.
  const svc::SvcResponse echoed =
      client.solve(instance, "lcf", 1, 0.3, true, -1.0, "my-req-7");
  ASSERT_TRUE(echoed.ok);
  EXPECT_EQ(echoed.request_id, "my-req-7");
  // No id supplied: the server mints "s-<n>".
  const svc::SvcResponse minted = client.solve(instance, "lcf", 2);
  ASSERT_TRUE(minted.ok);
  EXPECT_EQ(minted.request_id.rfind("s-", 0), 0u) << minted.request_id;
  // Errors echo it too (the parse succeeded, so the id is known).
  const svc::SvcResponse err = client.solve(
      instance, "lcf", 3, 0.3, true, /*deadline_ms=*/0.0, "my-req-8");
  ASSERT_FALSE(err.ok);
  EXPECT_EQ(err.request_id, "my-req-8");
}

TEST(SvcServer, RequestLogRecordsWideEvents) {
  const std::string path = testing::TempDir() + "mecsc_svc_reqlog.jsonl";
  svc::ServerOptions options = ServerFixture::make_default();
  options.request_log_path = path;
  svc::SolverServer server(std::move(options));
  server.start();
  {
    svc::SvcClient client = svc::SvcClient::connect(
        "tcp:127.0.0.1:" + std::to_string(server.port()));
    const svc::SvcResponse r =
        client.solve(small_instance(), "lcf", 1, 0.3, true, -1.0, "wide-1");
    ASSERT_TRUE(r.ok);
  }
  server.request_shutdown();
  server.wait();  // close() drains the log before wait() returns

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    const JsonValue doc = util::parse_json(line);
    EXPECT_EQ(doc.string_at("event"), "request");
    if (doc.string_at("request_id") != "wide-1") continue;
    found = true;
    EXPECT_EQ(doc.string_at("type"), "solve");
    EXPECT_EQ(doc.string_at("algorithm"), "lcf");
    EXPECT_EQ(doc.string_at("cache"), "miss");
    EXPECT_FALSE(doc.string_at("digest").empty());
    EXPECT_TRUE(doc.contains("wall_solve_ms"));
    EXPECT_TRUE(doc.contains("wall_total_ms"));
    EXPECT_GE(doc.number_at("wall_total_ms"),
              doc.number_at("wall_solve_ms"));
  }
  EXPECT_TRUE(found);
}

TEST(SvcServer, OverloadRejectionCarriesRetryAfterHint) {
  std::promise<void> hook_entered;
  std::promise<void> release_hook;
  std::shared_future<void> release = release_hook.get_future().share();
  std::atomic<int> hook_calls{0};

  svc::ServerOptions options;
  options.tcp_port = 0;
  options.threads = 1;
  options.queue_capacity = 1;
  options.test_hook_before_request = [&] {
    if (hook_calls.fetch_add(1) == 0) {
      hook_entered.set_value();
      release.wait();
    }
  };
  ServerFixture f(std::move(options));
  svc::ConnectionPtr conn = f.raw_connection();

  ASSERT_TRUE(conn->write_line("{\"id\": 1, \"type\": \"health\"}"));
  hook_entered.get_future().wait();
  ASSERT_TRUE(conn->write_line("{\"id\": 2, \"type\": \"health\"}"));
  while (f.server.stats().queue_depth == 0) std::this_thread::yield();
  ASSERT_TRUE(conn->write_line("{\"id\": 3, \"type\": \"health\"}"));

  const auto rejection = conn->read_line(1 << 20);
  ASSERT_TRUE(rejection.has_value());
  const JsonValue r = util::parse_json(*rejection);
  EXPECT_EQ(r.at("error").string_at("code"), "overloaded");
  // The hint is present, positive, and inside the documented clamp.
  ASSERT_TRUE(r.at("error").contains("wall_retry_after_ms"));
  const double hint = r.at("error").number_at("wall_retry_after_ms");
  EXPECT_GE(hint, 1.0);
  EXPECT_LE(hint, 10000.0);
  // Rejected-before-parse lines still get a server-minted request_id.
  EXPECT_EQ(r.string_at("request_id").rfind("s-", 0), 0u);

  release_hook.set_value();
  for (int i = 0; i < 2; ++i) {
    const auto line = conn->read_line(1 << 20);
    ASSERT_TRUE(line.has_value());
  }
}

/// Minimal HTTP/1.0 GET against the admin listener; returns the full
/// response (status line + headers + body).
std::string admin_get(int port, const std::string& request_line) {
  svc::ConnectionPtr conn = svc::connect_tcp("127.0.0.1", port);
  EXPECT_TRUE(conn->write_all(request_line + "\r\n\r\n"));
  std::string response;
  // The admin server answers one request and closes: read to EOF.
  while (const auto line = conn->read_line(1 << 20)) {
    response += *line;
    response += "\n";
  }
  return response;
}

TEST(SvcServer, AdminEndpointServesPrometheusAndJson) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.threads = 1;
  options.admin_port = 0;  // ephemeral
  ServerFixture f(std::move(options));
  ASSERT_GE(f.server.admin_port(), 0);
  svc::SvcClient client = f.client();
  ASSERT_TRUE(client.solve(small_instance(), "lcf", 1).ok);
  // FIFO barrier: once this metrics round trip returns, the solve's event
  // is recorded and the admin snapshots below see it.
  ASSERT_TRUE(client.metrics().ok);

  const std::string metrics =
      admin_get(f.server.admin_port(), "GET /metrics HTTP/1.0");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("mecsc_requests_total{type=\"solve\"} 1"),
            std::string::npos);

  const std::string stats =
      admin_get(f.server.admin_port(), "GET /stats HTTP/1.0");
  EXPECT_EQ(stats.rfind("HTTP/1.0 200 OK", 0), 0u);
  const std::size_t body_start = stats.find("\n{");
  ASSERT_NE(body_start, std::string::npos) << stats;
  const JsonValue doc = util::parse_json(stats.substr(body_start + 1));
  EXPECT_EQ(doc.at("red").at("solve").number_at("requests"), 1.0);

  EXPECT_EQ(admin_get(f.server.admin_port(), "GET /nope HTTP/1.0")
                .rfind("HTTP/1.0 404", 0),
            0u);
  EXPECT_EQ(admin_get(f.server.admin_port(), "POST /metrics HTTP/1.0")
                .rfind("HTTP/1.0 405", 0),
            0u);
}

// Scrape-under-load: solves, NDJSON metrics requests, and admin HTTP
// scrapes all running concurrently. TSan (ctest -L concurrency) proves the
// sharded record path, the snapshot merge, and the admin thread share no
// unsynchronized state; the final snapshot must account for every solve.
TEST(SvcServer, ConcurrentScrapesUnderLoadStayConsistent) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.threads = 4;
  options.admin_port = 0;
  ServerFixture f(std::move(options));
  const JsonValue instance = small_instance();
  constexpr std::size_t kSolvers = 4;
  constexpr int kPerSolver = 10;

  std::atomic<bool> done{false};
  std::thread ndjson_scraper([&] {
    svc::SvcClient client = f.client();
    while (!done.load()) {
      const svc::SvcResponse r = client.metrics();
      ASSERT_TRUE(r.ok);
      ASSERT_TRUE(r.body.contains("telemetry"));
    }
  });
  std::thread http_scraper([&] {
    while (!done.load()) {
      const std::string text =
          admin_get(f.server.admin_port(), "GET /metrics HTTP/1.0");
      ASSERT_EQ(text.rfind("HTTP/1.0 200 OK", 0), 0u);
    }
  });
  std::vector<std::thread> solvers;
  for (std::size_t c = 0; c < kSolvers; ++c) {
    solvers.emplace_back([&, c] {
      svc::SvcClient client = f.client();
      for (int i = 0; i < kPerSolver; ++i) {
        const svc::SvcResponse r =
            client.solve(instance, "lcf", c * 1000 + i, 0.3,
                         /*cache=*/(i % 2 == 0));
        ASSERT_TRUE(r.ok) << r.raw;
      }
    });
  }
  for (std::thread& t : solvers) t.join();
  done.store(true);
  ndjson_scraper.join();
  http_scraper.join();

  // Events are recorded just after each response hits the wire, so the
  // last few may still be landing: poll until the totals converge.
  svc::SvcClient client = f.client();
  constexpr double kExpected =
      static_cast<double>(kSolvers) * static_cast<double>(kPerSolver);
  double requests = 0.0;
  double errors = -1.0;
  for (int spin = 0; spin < 100000 && requests < kExpected; ++spin) {
    const svc::SvcResponse r = client.metrics();
    ASSERT_TRUE(r.ok);
    const JsonValue& solve = r.body.at("telemetry").at("red").at("solve");
    requests = solve.number_at("requests");
    errors = solve.number_at("errors");
    std::this_thread::yield();
  }
  EXPECT_EQ(requests, kExpected);
  EXPECT_EQ(errors, 0.0);
}

// --- Causal tracing through the server (obs/tracing.h) ----------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

/// Collects every span name in a trace summary's tree.
void collect_span_names(const JsonValue& span, std::vector<std::string>* out) {
  out->push_back(span.string_at("name"));
  if (!span.contains("children")) return;
  for (const JsonValue& child : span.at("children").as_array())
    collect_span_names(child, out);
}

TEST(SvcServer, TraceparentPropagatesWireToSolverSpans) {
  const std::string trace_path = testing::TempDir() + "mecsc_svc_trace.json";
  const obs::TraceContext client_ctx =
      obs::TraceContext::derive("svc-trace-test", true);
  {
    svc::ServerOptions options = ServerFixture::make_default();
    options.threads = 1;
    options.trace_out = trace_path;
    options.trace_sample_rate = 0.0;  // the 01 flag alone must keep it
    ServerFixture f(std::move(options));
    svc::SvcClient client = f.client();
    const svc::SvcResponse r =
        client.solve(small_instance(), "lcf", 1, 0.3, true, -1.0, "tp-1",
                     client_ctx.to_traceparent());
    ASSERT_TRUE(r.ok) << r.raw;
  }  // drain closes the trace writer

  const JsonValue doc = util::parse_json(read_file(trace_path));
  ASSERT_GE(doc.number_at("kept_traces"), 1.0);
  const util::JsonArray& summaries = doc.at("traces").as_array();
  const JsonValue* ours = nullptr;
  for (const JsonValue& s : summaries) {
    if (s.string_at("request_id") == "tp-1") ours = &s;
  }
  ASSERT_NE(ours, nullptr);
  // The server continued the client's trace and parented its root span on
  // the client's span.
  EXPECT_EQ(ours->string_at("trace_id"), client_ctx.trace_id);
  EXPECT_EQ(ours->string_at("parent_span_id"), client_ctx.span_id);
  EXPECT_EQ(ours->string_at("keep_reason"), "sampled");
  // One tree from the wire down into the solver internals.
  std::vector<std::string> names;
  collect_span_names(ours->at("root"), &names);
  for (const char* expected :
       {"svc.request", "svc.queue", "svc.parse", "svc.solve", "solver.run",
        "lcf", "svc.respond"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing span " << expected;
  }
  // Timeline events reference only span ids that exist in this trace.
  std::set<std::string> ids;
  for (const JsonValue& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("args").string_at("trace_id") == client_ctx.trace_id)
      ids.insert(ev.at("args").string_at("span_id"));
  }
  for (const JsonValue& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("args").string_at("trace_id") != client_ctx.trace_id) continue;
    const std::string parent = ev.at("args").string_at("parent_span_id");
    if (parent == client_ctx.span_id) continue;  // the root's upstream edge
    EXPECT_TRUE(ids.count(parent)) << "dangling parent " << parent;
  }
}

TEST(SvcServer, ErrorRequestsAreTailKeptAtSampleRateZero) {
  const std::string trace_path = testing::TempDir() + "mecsc_svc_errtrace.json";
  {
    svc::ServerOptions options = ServerFixture::make_default();
    options.threads = 1;
    options.trace_out = trace_path;
    options.trace_sample_rate = 0.0;
    ServerFixture f(std::move(options));
    svc::SvcClient client = f.client();
    // A successful solve at rate 0 must NOT be kept...
    ASSERT_TRUE(client.solve(small_instance(), "lcf", 1).ok);
    // ...but an error response must be, regardless of sampling.
    JsonObject bad;
    bad["id"] = JsonValue(static_cast<std::uint64_t>(2));
    bad["type"] = JsonValue("solve");
    bad["algorithm"] = JsonValue("no-such-algorithm");
    bad["instance"] = small_instance();
    bad["request_id"] = JsonValue("err-1");
    const svc::SvcResponse r = client.call(JsonValue(std::move(bad)));
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, "bad_request");
  }
  const JsonValue doc = util::parse_json(read_file(trace_path));
  const util::JsonArray& summaries = doc.at("traces").as_array();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].string_at("request_id"), "err-1");
  EXPECT_EQ(summaries[0].string_at("keep_reason"), "error");
}

TEST(SvcServer, SlowRequestsAreTailKeptAtSampleRateZero) {
  const std::string trace_path =
      testing::TempDir() + "mecsc_svc_slowtrace.json";
  {
    svc::ServerOptions options = ServerFixture::make_default();
    options.threads = 1;
    options.trace_out = trace_path;
    options.trace_sample_rate = 0.0;
    options.slow_request_ms = 0.0;  // every request is "slow"
    ServerFixture f(std::move(options));
    svc::SvcClient client = f.client();
    ASSERT_TRUE(
        client.solve(small_instance(), "lcf", 1, 0.3, true, -1.0, "slow-1")
            .ok);
  }
  const JsonValue doc = util::parse_json(read_file(trace_path));
  const util::JsonArray& summaries = doc.at("traces").as_array();
  ASSERT_GE(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].string_at("request_id"), "slow-1");
  EXPECT_EQ(summaries[0].string_at("keep_reason"), "slow");
}

TEST(SvcServer, DebugFlightEndpointServesTheRing) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.threads = 1;
  options.admin_port = 0;
  options.flight_recorder_capacity = 4;
  ServerFixture f(std::move(options));
  svc::SvcClient client = f.client();
  ASSERT_TRUE(
      client.solve(small_instance(), "lcf", 1, 0.3, true, -1.0, "fl-1").ok);
  // FIFO barrier: the flight entry lands before this response returns.
  ASSERT_TRUE(client.metrics().ok);

  const std::string response =
      admin_get(f.server.admin_port(), "GET /debug/flight HTTP/1.0");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::size_t body_start = response.find("\n{");
  ASSERT_NE(body_start, std::string::npos) << response;
  const JsonValue doc = util::parse_json(response.substr(body_start + 1));
  EXPECT_EQ(doc.number_at("capacity"), 4.0);
  const util::JsonArray& entries = doc.at("entries").as_array();
  ASSERT_GE(entries.size(), 1u);
  bool found = false;
  for (const JsonValue& entry : entries) {
    if (entry.at("event").string_at("request_id") != "fl-1") continue;
    found = true;
    // Tracing ran (the flight ring is always on), so the entry carries the
    // span tree even with no trace writer configured.
    ASSERT_TRUE(entry.contains("trace"));
    EXPECT_EQ(entry.at("trace").at("root").string_at("name"), "svc.request");
  }
  EXPECT_TRUE(found);
}

// --- Admin HTTP robustness --------------------------------------------------

TEST(SvcAdmin, ByteAtATimeRequestIsServed) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.admin_port = 0;
  ServerFixture f(std::move(options));
  svc::ConnectionPtr conn =
      svc::connect_tcp("127.0.0.1", f.server.admin_port());
  const std::string request = "GET /stats HTTP/1.0\r\n\r\n";
  for (const char c : request)
    ASSERT_TRUE(conn->write_all(std::string(1, c)));
  std::string response;
  while (const auto line = conn->read_line(1 << 20)) {
    response += *line;
    response += "\n";
  }
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
}

TEST(SvcAdmin, OversizedRequestLineGets400) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.admin_port = 0;
  ServerFixture f(std::move(options));
  svc::ConnectionPtr conn =
      svc::connect_tcp("127.0.0.1", f.server.admin_port());
  ASSERT_TRUE(conn->write_all(std::string(10000, 'A')));
  std::string response;
  while (const auto line = conn->read_line(1 << 20)) {
    response += *line;
    response += "\n";
  }
  EXPECT_EQ(response.rfind("HTTP/1.0 400 Bad Request", 0), 0u) << response;
}

// Flight-recorder scrapes racing live solves: TSan (ctest -L concurrency)
// proves the ring's lock discipline against the worker epilogues, and
// every dump must be complete, parseable JSON.
TEST(SvcServer, ConcurrentFlightScrapesDuringSolvesStayParseable) {
  svc::ServerOptions options = ServerFixture::make_default();
  options.threads = 4;
  options.admin_port = 0;
  options.flight_recorder_capacity = 8;
  ServerFixture f(std::move(options));
  const JsonValue instance = small_instance();

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string response =
          admin_get(f.server.admin_port(), "GET /debug/flight HTTP/1.0");
      ASSERT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
      const std::size_t body_start = response.find("\n{");
      ASSERT_NE(body_start, std::string::npos);
      const JsonValue doc = util::parse_json(response.substr(body_start + 1));
      ASSERT_LE(doc.at("entries").as_array().size(), 8u);
    }
  });
  std::vector<std::thread> solvers;
  for (int c = 0; c < 3; ++c) {
    solvers.emplace_back([&, c] {
      svc::SvcClient client = f.client();
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(client
                        .solve(instance, "lcf", c * 100 + i, 0.3,
                               /*cache=*/(i % 2 == 0))
                        .ok);
      }
    });
  }
  for (std::thread& t : solvers) t.join();
  done.store(true);
  scraper.join();
  // The worker epilogue records the flight entry *after* writing the
  // response (the client must not wait on bookkeeping), so the last
  // solve's record can trail the join by a beat — poll briefly.
  double recorded = 0.0;
  for (int i = 0; i < 200; ++i) {
    recorded = f.server.flight_json().number_at("recorded_total");
    if (recorded >= 24.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(recorded, 24.0);
}

// --- Client reconnect -------------------------------------------------------

// The reconnect path the router's backend pools and long-lived loadgen
// connections depend on: a server restart mid-stream (ECONNRESET/EPIPE
// territory) is absorbed by SvcClient::call — reconnect with backoff,
// retransmit, same response contract. Unix socket so the endpoint
// survives the restart verbatim (an ephemeral TCP port would move).
TEST(SvcClientReconnect, SurvivesServerRestartMidStream) {
  const std::string sock = testing::TempDir() + "svc_reconnect.sock";
  auto make_server = [&] {
    svc::ServerOptions options;
    options.unix_socket_path = sock;
    options.threads = 2;
    auto server = std::make_unique<svc::SolverServer>(std::move(options));
    server->start();
    return server;
  };
  auto server = make_server();
  svc::SvcClient client = svc::SvcClient::connect("unix:" + sock);
  const JsonValue instance = small_instance();
  ASSERT_TRUE(client.solve(instance, "lcf", 1).ok);
  EXPECT_EQ(client.reconnects(), 0u);

  // Kill the server under the live connection, then bring a fresh one up
  // on the same path (listen_unix unlinks the stale socket file). The old
  // server must be *destroyed* before the new one binds — its listener
  // unlinks the socket path on destruction, which would otherwise delete
  // the replacement's freshly bound file.
  server->request_shutdown();
  server->wait();
  server.reset();
  server = make_server();

  const svc::SvcResponse r = client.solve(instance, "lcf", 2);
  ASSERT_TRUE(r.ok) << r.error_code << ": " << r.error_message;
  EXPECT_GE(client.reconnects(), 1u);
  // The restarted server is a cold process: its cache never saw id 1's
  // solve, so this was a genuine re-execution, not a stale byte replay.
  EXPECT_FALSE(r.body.at("cached").as_bool());

  server->request_shutdown();
  server->wait();
}

TEST(SvcClientReconnect, ZeroAttemptsKeepsTheHardErrorContract) {
  const std::string sock = testing::TempDir() + "svc_noreconnect.sock";
  svc::ServerOptions options;
  options.unix_socket_path = sock;
  options.threads = 1;
  auto server = std::make_unique<svc::SolverServer>(std::move(options));
  server->start();
  svc::ReconnectOptions reconnect;
  reconnect.attempts = 0;
  svc::SvcClient client = svc::SvcClient::connect("unix:" + sock, reconnect);
  ASSERT_TRUE(client.health().ok);
  server->request_shutdown();
  server->wait();
  server.reset();
  EXPECT_THROW(client.health(), std::runtime_error);
}

TEST(SvcClientReconnect, ExhaustedRetriesThrowWhenNothingListens) {
  const std::string sock = testing::TempDir() + "svc_gone.sock";
  auto server = [&] {
    svc::ServerOptions options;
    options.unix_socket_path = sock;
    options.threads = 1;
    auto s = std::make_unique<svc::SolverServer>(std::move(options));
    s->start();
    return s;
  }();
  svc::ReconnectOptions reconnect;
  reconnect.attempts = 2;
  reconnect.backoff_initial_ms = 1.0;  // keep the test fast
  reconnect.backoff_max_ms = 2.0;
  svc::SvcClient client = svc::SvcClient::connect("unix:" + sock, reconnect);
  ASSERT_TRUE(client.health().ok);
  server->request_shutdown();
  server->wait();
  server.reset();
  EXPECT_THROW(client.health(), std::runtime_error);
}

// A shutdown *request* acknowledges on the wire before draining.
TEST(SvcServer, ShutdownRequestAcknowledgesThenDrains) {
  svc::ServerOptions options = ServerFixture::make_default();
  svc::SolverServer server(std::move(options));
  server.start();
  {
    svc::SvcClient client = svc::SvcClient::connect(
        "tcp:127.0.0.1:" + std::to_string(server.port()));
    const svc::SvcResponse r = client.shutdown();
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.body.at("draining").as_bool());
  }
  server.wait();  // the request triggered the drain; wait() must return
  EXPECT_TRUE(server.draining());
}

}  // namespace
