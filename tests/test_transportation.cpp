#include "opt/transportation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace mecsc::opt {
namespace {

/// Brute force over all group choices (m^n), honoring slots.
double brute_force(const TransportationInstance& t) {
  const std::size_t n = t.num_items, m = t.num_groups;
  std::vector<std::size_t> choice(n, 0);
  double best = 1e300;
  while (true) {
    std::vector<std::size_t> used(m, 0);
    double cost = 0.0;
    bool ok = true;
    for (std::size_t j = 0; j < n && ok; ++j) {
      const std::size_t g = choice[j];
      if (t.cost_at(g, j) >= kInadmissibleThreshold) ok = false;
      ++used[g];
      cost += t.cost_at(g, j);
    }
    if (ok) {
      for (std::size_t g = 0; g < m; ++g) {
        if (used[g] > t.slots[g]) ok = false;
      }
    }
    if (ok) best = std::min(best, cost);
    // Increment the mixed-radix counter.
    std::size_t k = 0;
    while (k < n && ++choice[k] == m) choice[k++] = 0;
    if (k == n) break;
  }
  return best;
}

TransportationInstance random_instance(util::Rng& rng, std::size_t groups,
                                       std::size_t items) {
  TransportationInstance t;
  t.num_groups = groups;
  t.num_items = items;
  t.slots.resize(groups);
  for (auto& s : t.slots) {
    s = static_cast<std::size_t>(rng.uniform_int(0, 3));
  }
  // Guarantee feasibility: last group can hold everyone.
  t.slots.back() = items;
  t.cost.resize(groups * items);
  for (auto& c : t.cost) c = rng.uniform_real(0.0, 10.0);
  return t;
}

TEST(Transportation, EmptyIsFeasible) {
  TransportationInstance t;
  const auto s = solve_transportation(t);
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.cost, 0.0);
}

TEST(Transportation, PicksCheapestGroup) {
  TransportationInstance t;
  t.num_groups = 2;
  t.num_items = 1;
  t.slots = {1, 1};
  t.cost = {5.0, 2.0};
  const auto s = solve_transportation(t);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(s.cost, 2.0);
}

TEST(Transportation, SlotLimitForcesSecondBest) {
  TransportationInstance t;
  t.num_groups = 2;
  t.num_items = 2;
  t.slots = {1, 2};
  t.cost = {1.0, 1.0, 5.0, 5.0};  // both want group 0, only one seat
  const auto s = solve_transportation(t);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.cost, 6.0);
}

TEST(Transportation, InfeasibleWhenSlotsShort) {
  TransportationInstance t;
  t.num_groups = 1;
  t.num_items = 2;
  t.slots = {1};
  t.cost = {1.0, 1.0};
  EXPECT_FALSE(solve_transportation(t).feasible);
}

TEST(Transportation, InadmissiblePairsAvoided) {
  TransportationInstance t;
  t.num_groups = 2;
  t.num_items = 1;
  t.slots = {1, 1};
  t.cost = {kInadmissible, 3.0};
  const auto s = solve_transportation(t);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.assignment[0], 1u);
}

TEST(Transportation, InfeasibleWhenOnlyInadmissible) {
  TransportationInstance t;
  t.num_groups = 1;
  t.num_items = 1;
  t.slots = {1};
  t.cost = {kInadmissible};
  EXPECT_FALSE(solve_transportation(t).feasible);
}

TEST(Transportation, ZeroSlotGroupNeverUsed) {
  TransportationInstance t;
  t.num_groups = 2;
  t.num_items = 1;
  t.slots = {0, 1};
  t.cost = {0.1, 9.0};  // group 0 cheaper but has no seat
  const auto s = solve_transportation(t);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.assignment[0], 1u);
}

class TransportationBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportationBruteForceTest, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  const std::size_t m = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  const auto t = random_instance(rng, m, n);
  const auto s = solve_transportation(t);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.cost, brute_force(t), 1e-9);
  // Assignment respects slots.
  std::vector<std::size_t> used(m, 0);
  for (std::size_t j = 0; j < n; ++j) ++used[s.assignment[j]];
  for (std::size_t g = 0; g < m; ++g) EXPECT_LE(used[g], t.slots[g]);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TransportationBruteForceTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace mecsc::opt
