#include "opt/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace mecsc::opt {
namespace {

/// Brute-force minimum over all permutations (n <= 8).
double brute_force(const std::vector<double>& cost, std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  double best = 1e300;
  do {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) total += cost[r * n + perm[r]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, TwoByTwo) {
  // c = [[1,5],[4,2]] -> diagonal, cost 3.
  const auto r = solve_assignment({1, 5, 4, 2}, 2, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_EQ(r.row_to_col[0], 0u);
  EXPECT_EQ(r.row_to_col[1], 1u);
}

TEST(Hungarian, AntiDiagonalOptimum) {
  const auto r = solve_assignment({5, 1, 2, 6}, 2, 2);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_EQ(r.row_to_col[0], 1u);
  EXPECT_EQ(r.row_to_col[1], 0u);
}

TEST(Hungarian, SingleCell) {
  const auto r = solve_assignment({7.5}, 1, 1);
  EXPECT_DOUBLE_EQ(r.cost, 7.5);
  EXPECT_EQ(r.row_to_col[0], 0u);
}

TEST(Hungarian, RectangularMoreColumns) {
  // 1 row, 3 cols: picks cheapest column.
  const auto r = solve_assignment({4, 1, 9}, 1, 3);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
  EXPECT_EQ(r.row_to_col[0], 1u);
}

TEST(Hungarian, RectangularMoreRows) {
  // 3 rows, 1 col: exactly one row matched, the cheapest.
  const auto r = solve_assignment({4, 1, 9}, 3, 1);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
  std::size_t matched = 0;
  for (auto c : r.row_to_col) {
    if (c != static_cast<std::size_t>(-1)) ++matched;
  }
  EXPECT_EQ(matched, 1u);
  EXPECT_EQ(r.row_to_col[1], 0u);
}

TEST(Hungarian, ForbiddenCellsFlagInfeasible) {
  const auto r =
      solve_assignment({kForbidden, kForbidden, 1.0, kForbidden}, 2, 2);
  EXPECT_FALSE(r.feasible);
}

TEST(Hungarian, NegativeCostsSupported) {
  const auto r = solve_assignment({-5, 0, 0, -5}, 2, 2);
  EXPECT_DOUBLE_EQ(r.cost, -10.0);
}

class HungarianBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianBruteForceTest, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform_real(0.0, 20.0);
  const auto r = solve_assignment(cost, n, n);
  EXPECT_NEAR(r.cost, brute_force(cost, n), 1e-9);
  // Columns must be distinct.
  std::set<std::size_t> cols(r.row_to_col.begin(), r.row_to_col.end());
  EXPECT_EQ(cols.size(), n);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, HungarianBruteForceTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace mecsc::opt
