#include "core/appro.h"

#include <gtest/gtest.h>

#include "core/social_optimum.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t network = 80,
              std::size_t providers = 40) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = network;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

ApproOptions literal_mode() {
  ApproOptions options;
  options.congestion_aware = false;  // Algorithm 1 exactly as written
  return options;
}

TEST(Appro, SolutionIsFeasibleBothModes) {
  // Lemma 1: the Appro solution is feasible.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance inst = make(seed);
    const ApproResult aware = run_appro(inst);
    EXPECT_TRUE(aware.assignment.feasible()) << "seed " << seed;
    const ApproResult literal = run_appro(inst, literal_mode());
    EXPECT_TRUE(literal.assignment.feasible()) << "seed " << seed;
    EXPECT_EQ(literal.evicted_to_remote, 0u)
        << "single-instance virtual cloudlets never overload";
  }
}

TEST(Appro, LiteralModeRespectsSlotCounts) {
  const Instance inst = make(2);
  const ApproResult r = run_appro(inst, literal_mode());
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_LE(r.assignment.occupancy(i), r.split.slots[i]);
  }
}

TEST(Appro, CongestionAwareModeNoWorseSocially) {
  // The strengthened default optimizes the true social cost over a superset
  // of the literal mode's feasible placements; summed over seeds it must not
  // lose.
  double aware = 0.0, literal = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance inst = make(seed);
    aware += run_appro(inst).assignment.social_cost();
    literal += run_appro(inst, literal_mode()).assignment.social_cost();
  }
  EXPECT_LE(aware, literal * 1.001);
}

TEST(Appro, CongestionAwareInternalizesExternalities) {
  // In the congestion-aware placement, no single reassignment of one cached
  // provider to the remote tier may lower the *social* cost (the solver
  // already weighed each provider's marginal congestion).
  const Instance inst = make(12);
  const ApproResult r = run_appro(inst);
  const double base = r.assignment.social_cost();
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (r.assignment.choice(l) == kRemote) continue;
    Assignment moved = r.assignment;
    moved.move(l, kRemote);
    EXPECT_GE(moved.social_cost(), base - 1e-9) << "provider " << l;
  }
}

TEST(Appro, FlatCostIsOptimalForRestrictedProblem) {
  // The transportation inner solver is exact for the congestion-free slotted
  // problem, so no other slot-respecting placement can have lower flat cost.
  // Spot-check against random slot-respecting placements.
  const Instance inst = make(3, 60, 20);
  const ApproResult r = run_appro(inst, literal_mode());
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::size_t> used(inst.cloudlet_count(), 0);
    double flat = 0.0;
    for (ProviderId l = 0; l < inst.provider_count(); ++l) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(inst.cloudlet_count())));
      if (pick < inst.cloudlet_count() && used[pick] < r.split.slots[pick] &&
          demand_fits(inst, l, pick)) {
        ++used[pick];
        flat += flat_cache_cost(inst, l, pick);
      } else {
        flat += remote_cost(inst, l);
      }
    }
    EXPECT_GE(flat, r.flat_cost - 1e-9);
  }
}

TEST(Appro, ShmoysTardosPathAlsoFeasible) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed, 50, 15);
    ApproOptions options;
    options.solver = ApproOptions::InnerSolver::ShmoysTardos;
    const ApproResult r = run_appro(inst, options);
    EXPECT_TRUE(r.assignment.feasible()) << "seed " << seed;
    ASSERT_TRUE(r.lp_bound.has_value());
    EXPECT_GE(*r.lp_bound, 0.0);
  }
}

TEST(Appro, TwoSolversAgreeOnEasyInstances) {
  // With ample capacity both inner solvers place every provider at its
  // cheapest flat option; costs should match closely.
  const Instance inst = make(11, 60, 10);
  ApproOptions st;
  st.solver = ApproOptions::InnerSolver::ShmoysTardos;
  const ApproResult a = run_appro(inst, literal_mode());
  const ApproResult b = run_appro(inst, st);
  EXPECT_NEAR(a.flat_cost, b.flat_cost, 0.05 * a.flat_cost);
}

TEST(Appro, Lemma2ApproximationRatioHolds) {
  // C < 2·δ·κ·OPT (Lemma 2), with OPT the exact congestion-aware optimum.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make(seed, 50, 8);
    const ApproResult r = run_appro(inst);
    const SocialOptimumResult opt = solve_social_optimum(inst);
    ASSERT_TRUE(opt.proven_optimal);
    const double delta = r.split.delta_max(inst);
    const double kappa = r.split.kappa_max(inst);
    EXPECT_LT(r.assignment.social_cost(),
              2.0 * delta * kappa * opt.cost + 1e-9)
        << "seed " << seed;
  }
}

TEST(Appro, EmptyProviderSetTrivial) {
  Instance inst = make(4);
  inst.providers.clear();
  const ApproResult r = run_appro(inst);
  EXPECT_DOUBLE_EQ(r.flat_cost, 0.0);
  EXPECT_TRUE(r.assignment.feasible());
}

TEST(Appro, ScarceSlotsSendSomeProvidersRemote) {
  // Shrink slots by inflating a_max so not everyone can cache.
  const Instance inst = make(5, 60, 50);
  ApproOptions options;
  options.a_max_override = inst.max_compute_demand() * 8.0;
  const ApproResult r = run_appro(inst, options);
  std::size_t remote = 0;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (r.assignment.choice(l) == kRemote) ++remote;
  }
  EXPECT_GT(remote, 0u);
  EXPECT_TRUE(r.assignment.feasible());
}

TEST(Appro, CachedChoicesBeatRemoteUnderFlatCost) {
  // The exact transportation solution would never cache a provider whose
  // flat cache cost exceeds its remote cost (the remote group is always
  // open).
  const Instance inst = make(6);
  const ApproResult r = run_appro(inst, literal_mode());
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t c = r.assignment.choice(l);
    if (c != kRemote) {
      EXPECT_LE(flat_cache_cost(inst, l, c), remote_cost(inst, l) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace mecsc::core
