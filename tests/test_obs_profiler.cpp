#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "util/json.h"
#include "util/parallel.h"

namespace mecsc::obs {
namespace {

/// Each test owns the whole profiler: reset on entry and exit so spans
/// recorded by other tests (the instrumented solvers run all over the
/// suite) never leak in.
class ObsProfiler : public testing::Test {
 protected:
  void SetUp() override { Profiler::global().reset(); }
  void TearDown() override { Profiler::global().reset(); }
};

/// Serializes the aggregate tree with every "wall_" key removed — the same
/// reduction tools/strip_wallclock.py applies before determinism diffs.
std::string stripped_aggregate(const ProfileReport& report) {
  util::JsonValue doc = report.aggregate_to_json();
  struct Stripper {
    static void strip(util::JsonValue& value) {
      if (!value.is_object()) return;
      util::JsonObject& obj = value.as_object();
      for (auto it = obj.begin(); it != obj.end();) {
        if (it->first.rfind("wall_", 0) == 0) {
          it = obj.erase(it);
        } else {
          strip(it->second);
          ++it;
        }
      }
    }
  };
  Stripper::strip(doc);
  return doc.dump(2);
}

TEST_F(ObsProfiler, DisabledScopeRecordsNothing) {
  auto& prof = Profiler::global();
  EXPECT_FALSE(prof.enabled());
  {
    MECSC_PROFILE_SCOPE("never.outer");
    MECSC_PROFILE_SCOPE("never.inner");
  }
  const ProfileReport report = prof.report();
  EXPECT_EQ(report.spans_total, 0u);
  EXPECT_TRUE(report.roots.empty());
  EXPECT_TRUE(report.events.empty());
}

TEST_F(ObsProfiler, NestingBuildsTreeAndSelfTimeMathHolds) {
  auto& prof = Profiler::global();
  prof.enable();
  for (int rep = 0; rep < 3; ++rep) {
    MECSC_PROFILE_SCOPE("solve");
    {
      MECSC_PROFILE_SCOPE("solve.lp");
      { MECSC_PROFILE_SCOPE("solve.lp.pivot"); }
      { MECSC_PROFILE_SCOPE("solve.lp.pivot"); }
    }
    { MECSC_PROFILE_SCOPE("solve.rounding"); }
  }
  const ProfileReport report = prof.report();

  // 3 reps × 5 scope exits each.
  EXPECT_EQ(report.spans_total, 15u);
  ASSERT_EQ(report.roots.count("solve"), 1u);
  const ProfileNode& solve = report.roots.at("solve");
  EXPECT_EQ(solve.count, 3u);
  ASSERT_EQ(solve.children.count("solve.lp"), 1u);
  ASSERT_EQ(solve.children.count("solve.rounding"), 1u);
  const ProfileNode& lp = solve.children.at("solve.lp");
  EXPECT_EQ(lp.count, 3u);
  ASSERT_EQ(lp.children.count("solve.lp.pivot"), 1u);
  EXPECT_EQ(lp.children.at("solve.lp.pivot").count, 6u);

  // Self time is total minus the time spent inside direct children, so it
  // can never exceed the total, and a parent's total must cover its
  // children's totals. min/max bracket the per-span durations.
  EXPECT_GE(solve.total_ms, 0.0);
  EXPECT_LE(solve.self_ms, solve.total_ms + 1e-9);
  EXPECT_GE(solve.total_ms + 1e-9,
            lp.total_ms + solve.children.at("solve.rounding").total_ms);
  EXPECT_LE(solve.min_ms, solve.max_ms);
  EXPECT_LE(3.0 * solve.min_ms, solve.total_ms + 1e-9);
  EXPECT_GE(3.0 * solve.max_ms + 1e-9, solve.total_ms);

  // A leaf has no children, so all its time is self time.
  const ProfileNode& pivot = lp.children.at("solve.lp.pivot");
  EXPECT_DOUBLE_EQ(pivot.self_ms, pivot.total_ms);
}

TEST_F(ObsProfiler, SiblingScopesWithSameNameAggregateIntoOneNode) {
  auto& prof = Profiler::global();
  prof.enable();
  {
    MECSC_PROFILE_SCOPE("epoch");
    { MECSC_PROFILE_SCOPE("epoch.replan"); }
    { MECSC_PROFILE_SCOPE("epoch.replan"); }
    { MECSC_PROFILE_SCOPE("epoch.replan"); }
  }
  const ProfileReport report = prof.report();
  const ProfileNode& epoch = report.roots.at("epoch");
  ASSERT_EQ(epoch.children.size(), 1u);
  EXPECT_EQ(epoch.children.at("epoch.replan").count, 3u);
  // The timeline keeps them distinct: one complete event per span.
  EXPECT_EQ(report.events.size(), 4u);
}

// The core determinism property: parallel_for hands out indices with an
// atomic counter, so which worker profiles which index — and each worker's
// span timings — differ run to run; yet the stripped aggregate (structure
// and counts) must not.
TEST_F(ObsProfiler, ShardMergeUnderParallelForIsDeterministic) {
  constexpr std::size_t kItems = 256;
  auto run_once = [&] {
    auto& prof = Profiler::global();
    prof.reset();
    prof.enable();
    {
      MECSC_PROFILE_SCOPE("par.outer");
      util::parallel_for(
          kItems,
          [](std::size_t i) {
            MECSC_PROFILE_SCOPE("par.item");
            if (i % 3 == 0) { MECSC_PROFILE_SCOPE("par.item.slow"); }
          },
          8);
    }
    return prof.report();
  };

  const ProfileReport first = run_once();
  // Worker spans root at the worker's own stack, not under "par.outer":
  // the nesting a thread observes is the nesting it executed.
  ASSERT_EQ(first.roots.count("par.item"), 1u);
  EXPECT_EQ(first.roots.at("par.item").count, kItems);
  EXPECT_EQ(first.roots.at("par.item").children.at("par.item.slow").count,
            (kItems + 2) / 3);
  EXPECT_EQ(first.roots.at("par.outer").count, 1u);
  EXPECT_EQ(first.spans_total, 1 + kItems + (kItems + 2) / 3);

  const std::string golden = stripped_aggregate(first);
  for (int repeat = 0; repeat < 4; ++repeat) {
    EXPECT_EQ(stripped_aggregate(run_once()), golden) << "repeat " << repeat;
  }
}

TEST_F(ObsProfiler, PerfettoExportMatchesTraceEventSchema) {
  auto& prof = Profiler::global();
  prof.enable();
  {
    MECSC_PROFILE_SCOPE("export.outer");
    { MECSC_PROFILE_SCOPE("export.inner"); }
  }
  const util::JsonValue doc = prof.report().to_json();

  // Top-level layout, including the wall_ segregation of mutable fields.
  EXPECT_DOUBLE_EQ(doc.number_at("obs_format_version"), 1.0);
  EXPECT_EQ(doc.string_at("displayTimeUnit"), "ms");
  EXPECT_DOUBLE_EQ(doc.number_at("spans_total"), 2.0);
  EXPECT_DOUBLE_EQ(doc.number_at("wall_events_dropped"), 0.0);
  EXPECT_TRUE(doc.at("aggregate").contains("export.outer"));

  // Every element of traceEvents is a Chrome trace-event "complete" event
  // (ph:"X") with the fields Perfetto requires.
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const util::JsonValue& event : events) {
    EXPECT_EQ(event.string_at("cat"), "mecsc");
    EXPECT_EQ(event.string_at("ph"), "X");
    EXPECT_DOUBLE_EQ(event.number_at("pid"), 1.0);
    EXPECT_DOUBLE_EQ(event.number_at("tid"), 0.0);  // main thread only
    EXPECT_GE(event.number_at("ts"), 0.0);
    EXPECT_GE(event.number_at("dur"), 0.0);
    EXPECT_FALSE(event.string_at("name").empty());
  }
  // Both spans ran on the main thread, so the inner span nests strictly
  // inside the outer one on the timeline.
  const util::JsonValue& outer =
      events[0].string_at("name") == "export.outer" ? events[0] : events[1];
  const util::JsonValue& inner =
      events[0].string_at("name") == "export.outer" ? events[1] : events[0];
  EXPECT_EQ(outer.string_at("name"), "export.outer");
  EXPECT_EQ(inner.string_at("name"), "export.inner");
  EXPECT_LE(outer.number_at("ts"), inner.number_at("ts"));
  EXPECT_GE(outer.number_at("ts") + outer.number_at("dur"),
            inner.number_at("ts") + inner.number_at("dur"));

  // The aggregate export segregates every duration under wall_ keys.
  const util::JsonValue& agg_outer = doc.at("aggregate").at("export.outer");
  EXPECT_DOUBLE_EQ(agg_outer.number_at("count"), 1.0);
  EXPECT_TRUE(agg_outer.contains("wall_total_ms"));
  EXPECT_TRUE(agg_outer.contains("wall_self_ms"));
  EXPECT_TRUE(agg_outer.contains("wall_min_ms"));
  EXPECT_TRUE(agg_outer.contains("wall_max_ms"));
  EXPECT_TRUE(agg_outer.at("children").contains("export.inner"));

  // And the whole document round-trips through the parser.
  const util::JsonValue parsed = util::parse_json(doc.dump(2));
  EXPECT_DOUBLE_EQ(parsed.number_at("spans_total"), 2.0);
}

TEST_F(ObsProfiler, DisableKeepsDataAndResetDropsIt) {
  auto& prof = Profiler::global();
  prof.enable();
  { MECSC_PROFILE_SCOPE("kept"); }
  prof.disable();
  EXPECT_FALSE(prof.enabled());

  // Scopes after disable() pay only the atomic load and record nothing.
  { MECSC_PROFILE_SCOPE("after.disable"); }
  const ProfileReport report = prof.report();
  EXPECT_EQ(report.spans_total, 1u);
  EXPECT_EQ(report.roots.count("kept"), 1u);
  EXPECT_EQ(report.roots.count("after.disable"), 0u);

  prof.reset();
  const ProfileReport empty = prof.report();
  EXPECT_EQ(empty.spans_total, 0u);
  EXPECT_TRUE(empty.roots.empty());
}

TEST_F(ObsProfiler, EnableStartsAFreshSession) {
  auto& prof = Profiler::global();
  prof.enable();
  { MECSC_PROFILE_SCOPE("first.session"); }
  // enable() drops previous data: a new session starts from t = 0 with an
  // empty tree, so back-to-back solves get independent profiles.
  prof.enable();
  { MECSC_PROFILE_SCOPE("second.session"); }
  const ProfileReport report = prof.report();
  EXPECT_EQ(report.spans_total, 1u);
  EXPECT_EQ(report.roots.count("first.session"), 0u);
  ASSERT_EQ(report.roots.count("second.session"), 1u);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_GE(report.events[0].start_us, 0.0);
}

}  // namespace
}  // namespace mecsc::obs
