#include "core/assignment.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed = 1, std::size_t providers = 25) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(Assignment, StartsAllRemote) {
  const Instance inst = make();
  const Assignment a(inst);
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    EXPECT_EQ(a.choice(l), kRemote);
  }
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_EQ(a.occupancy(i), 0u);
  }
  EXPECT_TRUE(a.feasible());
}

TEST(Assignment, MoveUpdatesOccupancyAndLoads) {
  const Instance inst = make(2);
  Assignment a(inst);
  const double c0 = a.compute_left(0);
  const double b0 = a.bandwidth_left(0);
  ASSERT_TRUE(a.can_move(0, 0));
  a.move(0, 0);
  EXPECT_EQ(a.choice(0), 0u);
  EXPECT_EQ(a.occupancy(0), 1u);
  EXPECT_NEAR(a.compute_left(0), c0 - inst.providers[0].compute_demand(),
              1e-9);
  EXPECT_NEAR(a.bandwidth_left(0), b0 - inst.providers[0].bandwidth_demand(),
              1e-9);
  a.move(0, kRemote);
  EXPECT_EQ(a.occupancy(0), 0u);
  EXPECT_NEAR(a.compute_left(0), c0, 1e-9);
  EXPECT_NEAR(a.bandwidth_left(0), b0, 1e-9);
}

TEST(Assignment, MoveBetweenCloudlets) {
  const Instance inst = make(3);
  Assignment a(inst);
  a.move(0, 0);
  ASSERT_TRUE(a.can_move(0, 1));
  a.move(0, 1);
  EXPECT_EQ(a.occupancy(0), 0u);
  EXPECT_EQ(a.occupancy(1), 1u);
  EXPECT_EQ(a.choice(0), 1u);
}

TEST(Assignment, MoveToSelfIsNoop) {
  const Instance inst = make(4);
  Assignment a(inst);
  a.move(0, 0);
  a.move(0, 0);
  EXPECT_EQ(a.occupancy(0), 1u);
}

TEST(Assignment, CanMoveRejectsOverload) {
  Instance inst = make(5, 4);
  // Make provider 0 consume the entire cloudlet 0 compute capacity.
  inst.providers[0].compute_per_request =
      inst.network.cloudlets()[0].compute_capacity;
  inst.providers[0].requests = 1;
  inst.providers[1].compute_per_request =
      inst.network.cloudlets()[0].compute_capacity;
  inst.providers[1].requests = 1;
  Assignment a(inst);
  ASSERT_TRUE(a.can_move(0, 0));
  a.move(0, 0);
  EXPECT_FALSE(a.can_move(1, 0));
  EXPECT_TRUE(a.can_move(1, kRemote));
}

TEST(Assignment, ProviderCostMatchesCostModel) {
  const Instance inst = make(6);
  Assignment a(inst);
  EXPECT_NEAR(a.provider_cost(0), remote_cost(inst, 0), 1e-12);
  a.move(0, 2);
  a.move(1, 2);
  EXPECT_NEAR(a.provider_cost(0), cache_cost(inst, 0, 2, 2), 1e-12);
  EXPECT_NEAR(a.provider_cost(1), cache_cost(inst, 1, 2, 2), 1e-12);
}

TEST(Assignment, ProviderCostIfSimulatesJoin) {
  const Instance inst = make(7);
  Assignment a(inst);
  a.move(0, 1);
  // Provider 1 evaluating cloudlet 1 sees occupancy 2 (tenant + itself).
  EXPECT_NEAR(a.provider_cost_if(1, 1), cache_cost(inst, 1, 1, 2), 1e-12);
  // Evaluating an empty cloudlet sees occupancy 1.
  EXPECT_NEAR(a.provider_cost_if(1, 0), cache_cost(inst, 1, 0, 1), 1e-12);
  EXPECT_NEAR(a.provider_cost_if(1, kRemote), remote_cost(inst, 1), 1e-12);
  // provider_cost_if at the current choice equals provider_cost.
  EXPECT_NEAR(a.provider_cost_if(0, 1), a.provider_cost(0), 1e-12);
}

TEST(Assignment, SocialCostIsSumOfProviderCosts) {
  const Instance inst = make(8);
  Assignment a(inst);
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (a.can_move(l, l % inst.cloudlet_count())) {
      a.move(l, l % inst.cloudlet_count());
    }
  }
  double sum = 0.0;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    sum += a.provider_cost(l);
  }
  EXPECT_NEAR(a.social_cost(), sum, 1e-9);
}

TEST(Assignment, PotentialTracksUnilateralMovesExactly) {
  // The defining property of an exact potential function: for any unilateral
  // deviation, ΔΦ == Δcost of the mover.
  const Instance inst = make(9);
  util::Rng rng(99);
  Assignment a(inst);
  // Random warm-up placement.
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const auto t = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(inst.cloudlet_count())));
    if (t < inst.cloudlet_count() && a.can_move(l, t)) a.move(l, t);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const auto l = static_cast<ProviderId>(
        rng.uniform_int(0, static_cast<std::int64_t>(inst.provider_count()) - 1));
    auto target = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(inst.cloudlet_count())));
    if (target >= inst.cloudlet_count()) target = kRemote;
    if (!a.can_move(l, target)) continue;
    const double phi_before = a.potential();
    const double cost_before = a.provider_cost(l);
    const double cost_after_predicted = a.provider_cost_if(l, target);
    a.move(l, target);
    const double phi_after = a.potential();
    const double cost_after = a.provider_cost(l);
    EXPECT_NEAR(cost_after, cost_after_predicted, 1e-9);
    EXPECT_NEAR(phi_after - phi_before, cost_after - cost_before, 1e-9);
  }
}

TEST(Assignment, TenantsListsExactlyResidents) {
  const Instance inst = make(10);
  Assignment a(inst);
  a.move(0, 3);
  a.move(2, 3);
  a.move(4, 1);
  const auto t3 = a.tenants(3);
  EXPECT_EQ(t3, (std::vector<ProviderId>{0, 2}));
  EXPECT_EQ(a.tenants(1), (std::vector<ProviderId>{4}));
  EXPECT_TRUE(a.tenants(0).empty());
}

TEST(Assignment, EqualityComparesChoices) {
  const Instance inst = make(11);
  Assignment a(inst), b(inst);
  EXPECT_TRUE(a == b);
  a.move(0, 0);
  EXPECT_FALSE(a == b);
  b.move(0, 0);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace mecsc::core
