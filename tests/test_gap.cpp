#include "opt/gap.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mecsc::opt {
namespace {

GapInstance random_instance(util::Rng& rng, std::size_t knapsacks,
                            std::size_t items, double slack = 1.6) {
  GapInstance g;
  g.num_knapsacks = knapsacks;
  g.num_items = items;
  g.cost.resize(knapsacks * items);
  g.weight.resize(knapsacks * items);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < knapsacks; ++i) {
    for (std::size_t j = 0; j < items; ++j) {
      g.cost[i * items + j] = rng.uniform_real(1.0, 10.0);
      g.weight[i * items + j] = rng.uniform_real(0.5, 2.0);
    }
  }
  for (std::size_t j = 0; j < items; ++j) {
    double w = 0.0;
    for (std::size_t i = 0; i < knapsacks; ++i) w += g.weight[i * items + j];
    total_weight += w / static_cast<double>(knapsacks);
  }
  // Capacities sized so the instance is comfortably feasible.
  g.capacity.assign(knapsacks,
                    slack * total_weight / static_cast<double>(knapsacks));
  return g;
}

TEST(GapEvaluate, DetectsBadAssignment) {
  GapInstance g;
  g.num_knapsacks = 1;
  g.num_items = 1;
  g.capacity = {1.0};
  g.cost = {2.0};
  g.weight = {5.0};  // does not fit
  const auto s = evaluate_gap_assignment(g, {0});
  EXPECT_FALSE(s.feasible);
}

TEST(GapEvaluate, ComputesCostAndCapacityFlag) {
  GapInstance g;
  g.num_knapsacks = 2;
  g.num_items = 2;
  g.capacity = {1.0, 1.0};
  g.cost = {1.0, 2.0, 3.0, 4.0};
  g.weight = {0.6, 0.6, 0.6, 0.6};
  const auto ok = evaluate_gap_assignment(g, {0, 1});
  EXPECT_TRUE(ok.feasible);
  EXPECT_TRUE(ok.within_capacity);
  EXPECT_DOUBLE_EQ(ok.cost, 1.0 + 4.0);
  const auto crowded = evaluate_gap_assignment(g, {0, 0});
  EXPECT_TRUE(crowded.feasible);        // each pair admissible
  EXPECT_FALSE(crowded.within_capacity);  // 1.2 > 1.0
}

TEST(GapExact, TinyKnownOptimum) {
  // 2 knapsacks cap 1; items weight 1; costs force split.
  GapInstance g;
  g.num_knapsacks = 2;
  g.num_items = 2;
  g.capacity = {1.0, 1.0};
  g.cost = {1.0, 5.0, 4.0, 2.0};
  g.weight = {1.0, 1.0, 1.0, 1.0};
  const auto s = solve_gap_exact(g);
  ASSERT_TRUE(s.feasible);
  EXPECT_TRUE(s.within_capacity);
  EXPECT_DOUBLE_EQ(s.cost, 3.0);
}

TEST(GapExact, InfeasibleWhenNothingFits) {
  GapInstance g;
  g.num_knapsacks = 1;
  g.num_items = 1;
  g.capacity = {0.5};
  g.cost = {1.0};
  g.weight = {1.0};
  EXPECT_FALSE(solve_gap_exact(g).feasible);
}

TEST(GapExact, CapacityForcesExpensiveChoice) {
  // Both items prefer knapsack 0 but only one fits.
  GapInstance g;
  g.num_knapsacks = 2;
  g.num_items = 2;
  g.capacity = {1.0, 2.0};
  g.cost = {1.0, 1.0, 10.0, 10.0};
  g.weight = {1.0, 1.0, 1.0, 1.0};
  const auto s = solve_gap_exact(g);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.cost, 11.0);
}

TEST(GapGreedy, FeasibleOnEasyInstances) {
  util::Rng rng(1);
  const auto g = random_instance(rng, 4, 10, 3.0);
  const auto s = solve_gap_greedy(g);
  ASSERT_TRUE(s.feasible);
  EXPECT_TRUE(s.within_capacity);
}

TEST(GapGreedy, EmptyInstance) {
  GapInstance g;
  const auto s = solve_gap_greedy(g);
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.cost, 0.0);
}

TEST(ShmoysTardos, EmptyInstance) {
  GapInstance g;
  const auto s = solve_gap_shmoys_tardos(g);
  EXPECT_TRUE(s.feasible);
  ASSERT_TRUE(s.lp_bound.has_value());
  EXPECT_DOUBLE_EQ(*s.lp_bound, 0.0);
}

TEST(ShmoysTardos, ItemWithNoAdmissibleKnapsack) {
  GapInstance g;
  g.num_knapsacks = 1;
  g.num_items = 1;
  g.capacity = {0.5};
  g.cost = {1.0};
  g.weight = {1.0};
  EXPECT_FALSE(solve_gap_shmoys_tardos(g).feasible);
}

TEST(ShmoysTardos, IntegralInstanceSolvedExactly) {
  // Unit weights, unit capacities: assignment problem; LP is integral.
  GapInstance g;
  g.num_knapsacks = 3;
  g.num_items = 3;
  g.capacity = {1.0, 1.0, 1.0};
  g.cost = {1, 9, 9, 9, 1, 9, 9, 9, 1};
  g.weight.assign(9, 1.0);
  const auto s = solve_gap_shmoys_tardos(g);
  ASSERT_TRUE(s.feasible);
  EXPECT_TRUE(s.within_capacity);
  EXPECT_DOUBLE_EQ(s.cost, 3.0);
  EXPECT_NEAR(*s.lp_bound, 3.0, 1e-6);
}

// The Shmoys-Tardos guarantees, verified on random instances:
//  (1) rounded cost <= LP bound + eps  (cost never exceeds the fractional
//      optimum in the [34] construction);
//  (2) every knapsack's load <= capacity + max single item weight in it.
class ShmoysTardosPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ShmoysTardosPropertyTest, CostAndLoadGuarantees) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  const std::size_t m = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const auto g = random_instance(rng, m, n);
  const auto s = solve_gap_shmoys_tardos(g);
  if (!s.feasible) GTEST_SKIP() << "random instance LP-infeasible";
  ASSERT_TRUE(s.lp_bound.has_value());
  EXPECT_LE(s.cost, *s.lp_bound + 1e-6);

  std::vector<double> load(m, 0.0), biggest(m, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t i = s.assignment[j];
    load[i] += g.weight_at(i, j);
    biggest[i] = std::max(biggest[i], g.weight_at(i, j));
  }
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_LE(load[i], g.capacity[i] + biggest[i] + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGaps, ShmoysTardosPropertyTest,
                         ::testing::Range(0, 25));

// Cross-check: on small instances the ST cost is never worse than the exact
// optimum by more than the bicriteria allowance, and never better than the
// LP bound.
class GapCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GapCrossCheckTest, OrderingBetweenSolvers) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const auto g = random_instance(rng, 3, 7, 2.5);
  const auto exact = solve_gap_exact(g);
  const auto st = solve_gap_shmoys_tardos(g);
  const auto greedy = solve_gap_greedy(g);
  if (!exact.feasible) GTEST_SKIP();
  ASSERT_TRUE(st.feasible);
  // LP bound <= exact optimum; ST cost <= LP bound (capacity-relaxed).
  EXPECT_LE(*st.lp_bound, exact.cost + 1e-6);
  EXPECT_LE(st.cost, exact.cost + 1e-6);
  if (greedy.feasible) {
    EXPECT_GE(greedy.cost, exact.cost - 1e-6);  // greedy can't beat optimum
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGaps, GapCrossCheckTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace mecsc::opt
