#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mecsc::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "count", "ratio"});
  t.add_row({std::string("alpha"), 3LL, 0.5});
  t.add_row({std::string("b"), 12345LL, 1.25});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_NE(s.find("1.250"), std::string::npos);  // default precision 3
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row({3.14159});
  EXPECT_NE(t.to_string().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.14"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"a", "bbbb"});
  t.add_row({std::string("xxxxxx"), 1LL});
  const std::string s = t.to_string();
  std::istringstream in(s);
  std::string header, sep, row;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRowCount) {
  Table t({"a", "b"});
  t.add_row({1LL, 2LL});
  t.add_row({3LL, 4LL});
  const std::string csv = t.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({1LL, 2LL, 3LL});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
}

TEST(PrintSection, IncludesTitle) {
  Table t({"a"});
  t.add_row({1LL});
  std::ostringstream os;
  print_section(os, "Fig. 2 (a)", t);
  EXPECT_NE(os.str().find("=== Fig. 2 (a) ==="), std::string::npos);
}

}  // namespace
}  // namespace mecsc::util
