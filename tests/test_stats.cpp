#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mecsc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-3.0, 7.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(9);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, SortedInterpolation) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 25.0), 17.5);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_EQ(percentile_sorted({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 99.0), 7.0);
}

TEST(Summary, OrderIndependent) {
  const Summary a = summarize({3.0, 1.0, 2.0});
  const Summary b = summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
  EXPECT_EQ(a.count, 3u);
}

TEST(Summary, PercentilesAreMonotone) {
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.exponential(1.0));
  const Summary s = summarize(xs);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Summary, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 4
  h.add(-3.0);  // clamped to bucket 0
  h.add(42.0);  // clamped to bucket 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[4], 2u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 10.0);
}

TEST(Histogram, ToStringMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  const std::string out = h.to_string();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace mecsc::util
