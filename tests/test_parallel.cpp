#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(
      5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(
      3, [&](std::size_t i) { sum += static_cast<int>(i); }, 64);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelMap, CollectsInIndexOrder) {
  const auto squares = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, DeterministicExperimentFanout) {
  // The harness pattern: per-index seeds give identical results regardless
  // of the thread count.
  auto experiment = [](std::size_t i) {
    util::Rng rng(1000 + i);
    core::InstanceParams p;
    p.network_size = 50;
    p.provider_count = 15;
    const core::Instance inst = core::generate_instance(p, rng);
    return core::run_lcf(inst).social_cost();
  };
  const auto serial = parallel_map<double>(8, experiment, 1);
  const auto wide = parallel_map<double>(8, experiment, 8);
  EXPECT_EQ(serial, wide);
}

TEST(ParallelFor, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace mecsc::util
