#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(
      5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(
      3, [&](std::size_t i) { sum += static_cast<int>(i); }, 64);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelMap, CollectsInIndexOrder) {
  const auto squares = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, DeterministicExperimentFanout) {
  // The harness pattern: per-index seeds give identical results regardless
  // of the thread count.
  auto experiment = [](std::size_t i) {
    util::Rng rng(1000 + i);
    core::InstanceParams p;
    p.network_size = 50;
    p.provider_count = 15;
    const core::Instance inst = core::generate_instance(p, rng);
    return core::run_lcf(inst).social_cost();
  };
  const auto serial = parallel_map<double>(8, experiment, 1);
  const auto wide = parallel_map<double>(8, experiment, 8);
  EXPECT_EQ(serial, wide);
}

TEST(ParallelFor, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ParallelFor, ZeroCountWithExplicitThreadsIsNoop) {
  bool called = false;
  parallel_for(
      0, [&](std::size_t) { called = true; }, 16);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ExceptionDoesNotCancelOtherIndices) {
  // A throwing index must not starve the rest: every index still runs
  // exactly once, workers all join, and one exception is rethrown.
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(
                   64,
                   [&](std::size_t i) {
                     ++hits[i];
                     if (i % 2 == 0) throw std::runtime_error("boom");
                   },
                   8),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionsFromAllWorkersStillJoin) {
  // Every invocation throws on every worker; exactly one exception must
  // surface after all workers have finished (no std::terminate, no hang).
  std::atomic<int> calls{0};
  EXPECT_THROW(parallel_for(
                   100,
                   [&](std::size_t) {
                     ++calls;
                     throw std::logic_error("everything fails");
                   },
                   8),
               std::logic_error);
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelMap, ZeroCountReturnsEmpty) {
  const auto out =
      parallel_map<int>(0, [](std::size_t) { return 1; }, 8);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, MoreThreadsThanWorkKeepsIndexOrder) {
  const auto out = parallel_map<std::size_t>(
      3, [](std::size_t i) { return i + 10; }, 64);
  EXPECT_EQ(out, (std::vector<std::size_t>{10, 11, 12}));
}

TEST(ParallelMap, NestedMapsAreDeterministic) {
  // parallel_map inside parallel_map: result ordering depends only on the
  // indices, never on which worker ran which slot.
  auto nested = [](std::size_t threads) {
    return parallel_map<std::vector<std::size_t>>(
        4,
        [&](std::size_t outer) {
          return parallel_map<std::size_t>(
              8, [&](std::size_t inner) { return outer * 100 + inner; }, 4);
        },
        threads);
  };
  const auto serial = nested(1);
  const auto wide = nested(4);
  EXPECT_EQ(serial, wide);
  for (std::size_t outer = 0; outer < 4; ++outer) {
    for (std::size_t inner = 0; inner < 8; ++inner) {
      EXPECT_EQ(serial[outer][inner], outer * 100 + inner);
    }
  }
}

}  // namespace
}  // namespace mecsc::util
