#include "opt/mcmf.h"

#include <gtest/gtest.h>

#include "opt/hungarian.h"
#include "util/rng.h"

namespace mecsc::opt {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow f(2);
  const auto a = f.add_arc(0, 1, 5, 2.0);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
  EXPECT_EQ(f.flow_on(a), 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  MinCostFlow f(4);
  const auto cheap1 = f.add_arc(0, 1, 1, 1.0);
  const auto cheap2 = f.add_arc(1, 3, 1, 1.0);
  const auto pricey = f.add_arc(0, 3, 1, 10.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
  EXPECT_EQ(f.flow_on(cheap1), 1);
  EXPECT_EQ(f.flow_on(cheap2), 1);
  EXPECT_EQ(f.flow_on(pricey), 1);
}

TEST(MinCostFlow, RespectsMaxFlow) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 10, 1.0);
  const auto r = f.solve(0, 1, 4);
  EXPECT_EQ(r.flow, 4);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

TEST(MinCostFlow, DisconnectedGivesZero) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 1, 1.0);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(MinCostFlow, BottleneckLimitsFlow) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 10, 1.0);
  f.add_arc(1, 2, 3, 1.0);
  EXPECT_EQ(f.solve(0, 2).flow, 3);
}

TEST(MinCostFlow, ReroutesThroughResidualArcs) {
  // Classic case where the second augmentation must undo part of the first.
  MinCostFlow f(4);
  f.add_arc(0, 1, 1, 1.0);
  f.add_arc(0, 2, 1, 5.0);
  f.add_arc(1, 2, 1, 1.0);
  f.add_arc(1, 3, 1, 5.0);
  f.add_arc(2, 3, 2, 1.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  // Optimal: 0-1-2-3 (3) + 0-2-3 (6) = 9 ... or 0-1-3 (6) + 0-2-3 (6) = 12.
  EXPECT_DOUBLE_EQ(r.cost, 9.0);
}

TEST(MinCostFlow, NegativeCostArcsHandled) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 1, -2.0);
  f.add_arc(1, 2, 1, 1.0);
  f.add_arc(0, 2, 1, 0.5);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, -0.5);
}

TEST(MinCostFlow, ZeroCapacityArcUnusable) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 0, 1.0);
  EXPECT_EQ(f.solve(0, 1).flow, 0);
}

// Property: min-cost bipartite matching via MCMF agrees with Hungarian on
// random instances.
class McmfVsHungarianTest : public ::testing::TestWithParam<int> {};

TEST_P(McmfVsHungarianTest, AssignmentCostsAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform_real(0.0, 10.0);

  const auto hungarian = solve_assignment(cost, n, n);

  MinCostFlow f(2 * n + 2);
  const std::size_t source = 2 * n, sink = 2 * n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    f.add_arc(source, i, 1, 0.0);
    f.add_arc(n + i, sink, 1, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      f.add_arc(i, n + j, 1, cost[i * n + j]);
    }
  }
  const auto r = f.solve(source, sink);
  EXPECT_EQ(r.flow, static_cast<std::int64_t>(n));
  EXPECT_NEAR(r.cost, hungarian.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomMatchings, McmfVsHungarianTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace mecsc::opt
