#include "sim/workload.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::sim {
namespace {

core::Instance make(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  core::InstanceParams p;
  p.network_size = 60;
  p.provider_count = 20;
  return core::generate_instance(p, rng);
}

TEST(Workload, OneRequestPerProviderRequest) {
  const core::Instance inst = make();
  util::Rng rng(2);
  const auto trace = generate_workload(inst, {}, rng);
  std::size_t expected = 0;
  for (const auto& p : inst.providers) expected += p.requests;
  EXPECT_EQ(trace.size(), expected);
}

TEST(Workload, SortedByArrival) {
  const core::Instance inst = make();
  util::Rng rng(3);
  const auto trace = generate_workload(inst, {}, rng);
  for (std::size_t k = 1; k < trace.size(); ++k) {
    EXPECT_LE(trace[k - 1].arrival_s, trace[k].arrival_s);
  }
}

TEST(Workload, ArrivalsWithinHorizon) {
  const core::Instance inst = make();
  WorkloadParams params;
  params.horizon_s = 30.0;
  util::Rng rng(4);
  for (const auto& r : generate_workload(inst, params, rng)) {
    EXPECT_GE(r.arrival_s, 0.0);
    EXPECT_LE(r.arrival_s, params.horizon_s);
  }
}

TEST(Workload, SizesWithinPaperRange) {
  const core::Instance inst = make();
  util::Rng rng(5);
  for (const auto& r : generate_workload(inst, {}, rng)) {
    EXPECT_GE(r.size_gb, 10.0 / 1024.0);
    EXPECT_LE(r.size_gb, 200.0 / 1024.0);
  }
}

TEST(Workload, ProvidersAllRepresented) {
  const core::Instance inst = make();
  util::Rng rng(6);
  std::vector<std::size_t> counts(inst.provider_count(), 0);
  for (const auto& r : generate_workload(inst, {}, rng)) {
    ++counts[r.provider];
  }
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    EXPECT_EQ(counts[l], inst.providers[l].requests);
  }
}

TEST(Workload, DeterministicGivenSeed) {
  const core::Instance inst = make();
  util::Rng a(7), b(7);
  const auto t1 = generate_workload(inst, {}, a);
  const auto t2 = generate_workload(inst, {}, b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t k = 0; k < t1.size(); ++k) {
    EXPECT_EQ(t1[k].provider, t2[k].provider);
    EXPECT_DOUBLE_EQ(t1[k].arrival_s, t2[k].arrival_s);
    EXPECT_DOUBLE_EQ(t1[k].size_gb, t2[k].size_gb);
  }
}

}  // namespace
}  // namespace mecsc::sim
