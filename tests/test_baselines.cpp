#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t network = 100,
              std::size_t providers = 60) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = network;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(JoObjective, ExcludesUpdateTerm) {
  // The Jo objective must not depend on the update fraction (the paper:
  // "the data updating however is not considered in [23]").
  Instance inst = make(1);
  const double before = jo_objective(inst, 0, 0);
  inst.providers[0].update_fraction = 0.9;
  EXPECT_DOUBLE_EQ(jo_objective(inst, 0, 0), before);
  // But the real cost model does depend on it.
  EXPECT_GE(fixed_cache_cost(inst, 0, 0), before - 1e-9);
}

TEST(JoOffloadCache, FeasibleAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance inst = make(seed);
    const Assignment a = run_jo_offload_cache(inst);
    EXPECT_TRUE(a.feasible()) << "seed " << seed;
  }
}

TEST(JoOffloadCache, CachesOnlyWhenItsObjectiveSaysSo) {
  const Instance inst = make(2);
  const Assignment a = run_jo_offload_cache(inst);
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t c = a.choice(l);
    if (c != kRemote) {
      EXPECT_LT(jo_objective(inst, l, c), remote_cost(inst, l));
    }
  }
}

TEST(OffloadCache, FeasibleAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance inst = make(seed);
    const Assignment a = run_offload_cache(inst);
    EXPECT_TRUE(a.feasible()) << "seed " << seed;
  }
}

TEST(OffloadCache, CachesAggressively) {
  // OffloadCache never chooses remote while any cloudlet has room; with the
  // default capacities everyone is cached.
  const Instance inst = make(3);
  const Assignment a = run_offload_cache(inst);
  std::size_t cached = 0;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    if (a.choice(l) != kRemote) ++cached;
  }
  EXPECT_EQ(cached, inst.provider_count());
}

TEST(OffloadCache, PrefersUserRegion) {
  const Instance inst = make(4, 100, 5);  // few providers: no contention
  const Assignment a = run_offload_cache(inst);
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    ASSERT_NE(a.choice(l), kRemote);
    // With no contention, each provider sits at hop distance 0 from its
    // user region.
    EXPECT_DOUBLE_EQ(inst.network.cloudlet_to_cloudlet_hops(
                         inst.providers[l].user_region, a.choice(l)),
                     0.0);
  }
}

TEST(Baselines, PaperOrderingHoldsOnAverage) {
  // Fig. 2(a): LCF <= JoOffloadCache <= OffloadCache in social cost.
  // Averaged over seeds (individual draws can tie or flip rarely).
  double lcf = 0.0, jo = 0.0, oc = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance inst = make(seed);
    LcfOptions options;
    options.coordinated_fraction = 0.7;
    lcf += run_lcf(inst, options).social_cost();
    jo += run_jo_offload_cache(inst).social_cost();
    oc += run_offload_cache(inst).social_cost();
  }
  EXPECT_LT(lcf, jo);
  EXPECT_LT(jo, oc);
}

TEST(Baselines, DeterministicForFixedInstance) {
  const Instance inst = make(5);
  const Assignment a1 = run_jo_offload_cache(inst);
  const Assignment a2 = run_jo_offload_cache(inst);
  EXPECT_TRUE(a1 == a2);
  const Assignment b1 = run_offload_cache(inst);
  const Assignment b2 = run_offload_cache(inst);
  EXPECT_TRUE(b1 == b2);
}

}  // namespace
}  // namespace mecsc::core
