#include "sim/testbed.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::sim {
namespace {

TEST(Testbed, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::Lcf), "LCF");
  EXPECT_EQ(algorithm_name(Algorithm::JoOffloadCache), "JoOffloadCache");
  EXPECT_EQ(algorithm_name(Algorithm::OffloadCache), "OffloadCache");
}

TEST(Testbed, RunAlgorithmMeasuresTime) {
  util::Rng rng(1);
  core::InstanceParams p;
  p.network_size = 60;
  p.provider_count = 30;
  const core::Instance inst = core::generate_instance(p, rng);
  double ms = -1.0;
  const core::Assignment a =
      run_algorithm(inst, Algorithm::Lcf, 0.3, &ms);
  EXPECT_GE(ms, 0.0);
  EXPECT_TRUE(a.feasible());
}

TEST(Testbed, RunAlgorithmNullTimerOk) {
  util::Rng rng(2);
  core::InstanceParams p;
  p.network_size = 50;
  p.provider_count = 10;
  const core::Instance inst = core::generate_instance(p, rng);
  const core::Assignment a =
      run_algorithm(inst, Algorithm::OffloadCache, 0.3, nullptr);
  EXPECT_TRUE(a.feasible());
}

TEST(Testbed, FullRunProducesAllThreeAlgorithms) {
  util::Rng rng(3);
  TestbedConfig config;
  config.provider_count = 30;
  config.workload.horizon_s = 10.0;
  const TestbedRun run = run_testbed(config, rng);
  ASSERT_EQ(run.results.size(), 3u);
  for (const auto& r : run.results) {
    EXPECT_GT(r.analytic_social_cost, 0.0);
    EXPECT_GT(r.measured_social_cost, 0.0);
    EXPECT_GE(r.algorithm_ms, 0.0);
    EXPECT_GT(r.request_latency_s.count, 0u);
  }
}

TEST(Testbed, LcfBeatsBaselinesOnAs1755) {
  // Fig. 5(a) shape: LCF has a much lower social cost than the baselines.
  double lcf = 0.0, jo = 0.0, oc = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    TestbedConfig config;
    config.provider_count = 60;
    config.workload.horizon_s = 10.0;
    const TestbedRun run = run_testbed(config, rng);
    lcf += run.results[0].analytic_social_cost;
    jo += run.results[1].analytic_social_cost;
    oc += run.results[2].analytic_social_cost;
  }
  EXPECT_LT(lcf, jo);
  EXPECT_LT(jo, oc);
}

TEST(Testbed, UsesAs1755Topology) {
  util::Rng rng(4);
  TestbedConfig config;
  config.instance.use_as1755 = false;  // forced back on by run_testbed
  config.provider_count = 10;
  config.workload.horizon_s = 5.0;
  const TestbedRun run = run_testbed(config, rng);
  EXPECT_EQ(run.results.size(), 3u);
}

}  // namespace
}  // namespace mecsc::sim
