#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = 30;
  return generate_instance(p, rng);
}

TEST(CostModel, CongestionIsLinearInOccupancy) {
  const Instance inst = make();
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    const double c1 = congestion_cost(inst, i, 1);
    const double c2 = congestion_cost(inst, i, 2);
    const double c5 = congestion_cost(inst, i, 5);
    EXPECT_NEAR(c2, 2.0 * c1, 1e-12);
    EXPECT_NEAR(c5, 5.0 * c1, 1e-12);
    EXPECT_NEAR(c1, (inst.cost.alpha[i] + inst.cost.beta[i]) * kCongestionUnit,
                1e-12);
  }
}

TEST(CostModel, CacheCostDecomposes) {
  const Instance inst = make(2);
  for (ProviderId l = 0; l < inst.provider_count(); l += 3) {
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      EXPECT_NEAR(cache_cost(inst, l, i, 4),
                  congestion_cost(inst, i, 4) + fixed_cache_cost(inst, l, i),
                  1e-12);
    }
  }
}

TEST(CostModel, FlatCostIsCacheCostAtOccupancyOne) {
  const Instance inst = make(3);
  for (ProviderId l = 0; l < inst.provider_count(); l += 5) {
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      EXPECT_NEAR(flat_cache_cost(inst, l, i), cache_cost(inst, l, i, 1),
                  1e-12);
    }
  }
}

TEST(CostModel, CostNondecreasingWithCongestion) {
  // The paper's derivations rely only on cost being non-decreasing in the
  // congestion level; verify it for every (provider, cloudlet).
  const Instance inst = make(4);
  for (ProviderId l = 0; l < inst.provider_count(); l += 7) {
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      double prev = 0.0;
      for (std::size_t occ = 1; occ <= 10; ++occ) {
        const double c = cache_cost(inst, l, i, occ);
        EXPECT_GE(c, prev);
        prev = c;
      }
    }
  }
}

TEST(CostModel, UpdateVolumeRaisesCacheCost) {
  Instance inst = make(5);
  const ProviderId l = 0;
  const CloudletId i = 0;
  const double before = fixed_cache_cost(inst, l, i);
  inst.providers[l].update_fraction = 0.5;  // 10% -> 50%
  const double after = fixed_cache_cost(inst, l, i);
  // The user region might sit 0 hops from the DC only if colocated; the
  // update term can only grow.
  EXPECT_GE(after, before);
}

TEST(CostModel, CachingNearUsersIsCheaper) {
  const Instance inst = make(6);
  // For each provider, the fixed cost at its user region must not exceed
  // the fixed cost at the farthest cloudlet (same update term bounds apply
  // only through the access hops, so compare like-for-like via a provider
  // whose home-DC distances are equal). We check the weaker, always-true
  // property: access cost component grows with cloudlet distance.
  for (ProviderId l = 0; l < inst.provider_count(); l += 4) {
    const ServiceProvider& p = inst.providers[l];
    const CloudletId home = p.user_region;
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      const double d_home =
          inst.network.cloudlet_to_cloudlet_hops(home, home);
      const double d_i = inst.network.cloudlet_to_cloudlet_hops(home, i);
      EXPECT_LE(d_home, d_i);
    }
  }
}

TEST(CostModel, RemoteCostIndependentOfCloudlets) {
  const Instance inst = make(7);
  // Remote cost uses only provider fields + user-region-to-DC distance.
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const double r = remote_cost(inst, l);
    EXPECT_GT(r, 0.0);
    EXPECT_DOUBLE_EQ(r, remote_cost(inst, l));  // pure function
  }
}

TEST(CostModel, RemoteScalesWithTraffic) {
  Instance inst = make(8);
  const double before = remote_cost(inst, 0);
  inst.providers[0].traffic_gb *= 2.0;
  EXPECT_NEAR(remote_cost(inst, 0), 2.0 * before, 1e-9);
}

TEST(CostModel, DemandFitsChecksBothResources) {
  Instance inst = make(9);
  const CloudletId i = 0;
  ServiceProvider& p = inst.providers[0];
  p.compute_per_request = 0.0;
  p.bandwidth_per_request = 0.0;
  p.requests = 1;
  EXPECT_TRUE(demand_fits(inst, 0, i));
  p.compute_per_request =
      inst.network.cloudlets()[i].compute_capacity + 1.0;
  EXPECT_FALSE(demand_fits(inst, 0, i));
  p.compute_per_request = 0.0;
  p.bandwidth_per_request =
      inst.network.cloudlets()[i].bandwidth_capacity + 1.0;
  EXPECT_FALSE(demand_fits(inst, 0, i));
}

TEST(CostModel, CachingSometimesBeatsRemoteAndViceVersa) {
  // The market premise: neither option dominates globally.
  const Instance inst = make(10);
  bool cache_wins = false, remote_wins = false;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    double best_cache = 1e300;
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      best_cache = std::min(best_cache, flat_cache_cost(inst, l, i));
    }
    if (best_cache < remote_cost(inst, l)) cache_wins = true;
    if (cache_cost(inst, l, 0, 20) > remote_cost(inst, l)) remote_wins = true;
  }
  EXPECT_TRUE(cache_wins);
  EXPECT_TRUE(remote_wins);
}

}  // namespace
}  // namespace mecsc::core
