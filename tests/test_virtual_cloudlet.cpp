#include "core/virtual_cloudlet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = 40;
  return generate_instance(p, rng);
}

TEST(VirtualCloudlet, Equation7) {
  const Instance inst = make();
  const auto split = split_cloudlets(inst);
  EXPECT_DOUBLE_EQ(split.a_max, inst.max_compute_demand());
  EXPECT_DOUBLE_EQ(split.b_max, inst.max_bandwidth_demand());
  ASSERT_EQ(split.slots.size(), inst.cloudlet_count());
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    const auto& cl = inst.network.cloudlets()[i];
    const auto expected = std::min(
        static_cast<std::size_t>(std::floor(cl.compute_capacity / split.a_max)),
        static_cast<std::size_t>(
            std::floor(cl.bandwidth_capacity / split.b_max)));
    EXPECT_EQ(split.slots[i], expected);
  }
}

TEST(VirtualCloudlet, SlotsGuaranteeCapacity) {
  // n_i virtual cloudlets each holding one service of demand <= a_max/b_max
  // never exceed the physical capacities (Lemma 1's core argument).
  const Instance inst = make(2);
  const auto split = split_cloudlets(inst);
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    const auto& cl = inst.network.cloudlets()[i];
    EXPECT_LE(static_cast<double>(split.slots[i]) * split.a_max,
              cl.compute_capacity + 1e-9);
    EXPECT_LE(static_cast<double>(split.slots[i]) * split.b_max,
              cl.bandwidth_capacity + 1e-9);
  }
}

TEST(VirtualCloudlet, OverridesShrinkOrGrowSlots) {
  const Instance inst = make(3);
  const auto normal = split_cloudlets(inst);
  const auto bigger_amax = split_cloudlets(inst, normal.a_max * 2.0, 0.0);
  const auto smaller_amax = split_cloudlets(inst, normal.a_max / 2.0, 0.0);
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_LE(bigger_amax.slots[i], normal.slots[i]);
    EXPECT_GE(smaller_amax.slots[i], normal.slots[i]);
  }
}

TEST(VirtualCloudlet, TotalSlotsSums) {
  const Instance inst = make(4);
  const auto split = split_cloudlets(inst);
  std::size_t total = 0;
  for (auto s : split.slots) total += s;
  EXPECT_EQ(split.total_slots(), total);
  EXPECT_GT(total, 0u);
}

TEST(VirtualCloudlet, DeltaKappaDefinitions) {
  const Instance inst = make(5);
  const auto split = split_cloudlets(inst);
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_NEAR(split.delta(inst, i),
                inst.network.cloudlets()[i].compute_capacity / split.a_max,
                1e-12);
    EXPECT_NEAR(split.kappa(inst, i),
                inst.network.cloudlets()[i].bandwidth_capacity / split.b_max,
                1e-12);
    EXPECT_LE(split.delta(inst, i), split.delta_max(inst));
    EXPECT_LE(split.kappa(inst, i), split.kappa_max(inst));
  }
  // δ_i >= n_i by construction.
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    EXPECT_GE(split.delta(inst, i),
              static_cast<double>(split.slots[i]) - 1e-9);
  }
}

TEST(VirtualCloudlet, NoProvidersMeansNoSlots) {
  util::Rng rng(6);
  InstanceParams p;
  p.network_size = 50;
  p.provider_count = 1;
  Instance inst = generate_instance(p, rng);
  inst.providers.clear();
  const auto split = split_cloudlets(inst);
  EXPECT_EQ(split.total_slots(), 0u);
  EXPECT_DOUBLE_EQ(split.a_max, 0.0);
}

TEST(VirtualCloudlet, HugeDemandYieldsZeroSlots) {
  const Instance inst = make(7);
  const double huge =
      inst.network.cloudlets()[0].compute_capacity * 100.0;
  const auto split = split_cloudlets(inst, huge, 0.0);
  for (auto s : split.slots) EXPECT_EQ(s, 0u);
}

}  // namespace
}  // namespace mecsc::core
