// Cross-module integration and end-to-end property tests: the full paper
// pipeline (instance -> Appro -> LCF -> equilibrium -> emulation) at
// realistic scale, and the paper's headline claims as executable checks.
#include <gtest/gtest.h>

#include "core/appro.h"
#include "core/baselines.h"
#include "core/lcf.h"
#include "core/poa.h"
#include "core/social_optimum.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace mecsc {
namespace {

core::Instance make(std::uint64_t seed, std::size_t network,
                    std::size_t providers) {
  util::Rng rng(seed);
  core::InstanceParams p;
  p.network_size = network;
  p.provider_count = providers;
  return core::generate_instance(p, rng);
}

TEST(Integration, PaperScalePipelineRuns) {
  // The paper's default: 100 providers; network sizes 50..400.
  for (const std::size_t size : {50u, 100u, 250u, 400u}) {
    const core::Instance inst = make(size, size, 100);
    core::LcfOptions options;
    options.coordinated_fraction = 0.7;
    const core::LcfResult lcf = core::run_lcf(inst, options);
    EXPECT_TRUE(lcf.converged) << "size " << size;
    EXPECT_TRUE(lcf.assignment.feasible()) << "size " << size;
    EXPECT_GT(lcf.social_cost(), 0.0);
  }
}

TEST(Integration, HeadlineOrderingAtPaperScale) {
  // Fig. 2(a) at size 250: LCF < JoOffloadCache < OffloadCache (averaged).
  double lcf = 0.0, jo = 0.0, oc = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const core::Instance inst = make(seed, 250, 100);
    core::LcfOptions options;
    options.coordinated_fraction = 0.7;
    lcf += core::run_lcf(inst, options).social_cost();
    jo += core::run_jo_offload_cache(inst).social_cost();
    oc += core::run_offload_cache(inst).social_cost();
  }
  EXPECT_LT(lcf, jo);
  EXPECT_LT(jo, oc);
}

TEST(Integration, SocialCostGrowsWithSelfishShare) {
  // Fig. 3(a): LCF social cost is non-decreasing in (1-ξ) (averaged,
  // endpoints plus midpoint).
  double at_0 = 0.0, at_half = 0.0, at_1 = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const core::Instance inst = make(seed + 50, 150, 80);
    for (auto& [frac, acc] :
         std::initializer_list<std::pair<double, double&>>{
             {1.0, at_0}, {0.5, at_half}, {0.0, at_1}}) {
      core::LcfOptions options;
      options.coordinated_fraction = frac;
      acc += core::run_lcf(inst, options).social_cost();
    }
  }
  EXPECT_LE(at_0, at_half * 1.02);
  EXPECT_LE(at_half, at_1 * 1.02);
}

TEST(Integration, ApproBeatsEveryNashOnSocialCost) {
  // The coordinated solution should (weakly) beat selfish equilibria found
  // from the empty profile, on average — the motivation for Stackelberg
  // coordination.
  double appro = 0.0, nash = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const core::Instance inst = make(seed + 10, 120, 60);
    appro += core::run_appro(inst).assignment.social_cost();
    core::LcfOptions selfish;
    selfish.coordinated_fraction = 0.0;
    nash += core::run_lcf(inst, selfish).social_cost();
  }
  EXPECT_LE(appro, nash * 1.02);
}

TEST(Integration, Lemma2BoundAtModerateScale) {
  // Appro's congestion-aware cost within 2δκ of the *lower bound* (which is
  // itself <= OPT), checked where exact OPT is unaffordable.
  const core::Instance inst = make(77, 100, 50);
  const core::ApproResult r = core::run_appro(inst);
  const double lb = core::social_cost_lower_bound(inst);
  const double delta = r.split.delta_max(inst);
  const double kappa = r.split.kappa_max(inst);
  EXPECT_LT(r.assignment.social_cost(), 2.0 * delta * kappa * lb + 1e-9);
}

TEST(Integration, EmulatorAgreesOnAlgorithmRanking) {
  // End-to-end: the emulated test-bed must reproduce the analytic ranking of
  // LCF vs OffloadCache (Fig. 5 shape), summed over seeds.
  double lcf_measured = 0.0, oc_measured = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    sim::TestbedConfig config;
    config.provider_count = 50;
    config.workload.horizon_s = 10.0;
    const sim::TestbedRun run = sim::run_testbed(config, rng);
    lcf_measured += run.results[0].measured_social_cost;
    oc_measured += run.results[2].measured_social_cost;
  }
  EXPECT_LT(lcf_measured, oc_measured);
}

TEST(Integration, DeterministicEndToEnd) {
  // Identical seeds -> identical social costs through the whole pipeline.
  auto run_once = [](std::uint64_t seed) {
    const core::Instance inst = make(seed, 100, 50);
    core::LcfOptions options;
    options.coordinated_fraction = 0.7;
    return core::run_lcf(inst, options).social_cost();
  };
  EXPECT_DOUBLE_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(124));
}

TEST(Integration, StressManySeedsNoInvariantViolations) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    const core::Instance inst = make(seed, 80, 40);
    const core::LcfResult lcf = core::run_lcf(inst);
    ASSERT_TRUE(lcf.assignment.feasible()) << "seed " << seed;
    ASSERT_TRUE(lcf.converged) << "seed " << seed;
    // Every selfish provider is individually rational: pays at most remote.
    for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
      if (!lcf.coordinated[l]) {
        EXPECT_LE(lcf.assignment.provider_cost(l),
                  core::remote_cost(inst, l) + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace mecsc
