// Tests for the service telemetry plane (obs/histogram.h, obs/telemetry.h):
// log-linear quantile accuracy against exact sorted-sample quantiles,
// order-independent shard merges, sliding-window rotation driven through
// the explicit-clock *_at entry points, wide-event JSON schema (wall_
// segregation), the bounded async request log, and concurrent
// record/snapshot under TSan (suite names Telemetry*/RequestLog* carry the
// ctest `concurrency` label; see tests/CMakeLists.txt).
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "util/json.h"
#include "util/rng.h"

namespace mecsc::obs {
namespace {

/// Exact sorted-sample quantile with the same rank convention the
/// histogram documents: rank q*(n-1), nearest sample.
double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  return samples[static_cast<std::size_t>(std::lround(rank))];
}

TEST(TelemetryHistogram, EmptyIsAllZero) {
  const LogLinearHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(TelemetryHistogram, SingleValueQuantilesClampToIt) {
  LogLinearHistogram h;
  h.record(3.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.25);
  EXPECT_DOUBLE_EQ(h.max(), 3.25);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.25) << "q=" << q;
}

TEST(TelemetryHistogram, QuantilesTrackExactWithinRelativeErrorBound) {
  // Log-uniform samples across six decades: the histogram promises
  // 1/kSubBuckets (6.25%) worst-case relative error for in-range values.
  util::Rng rng(42);
  std::vector<double> samples;
  samples.reserve(20000);
  LogLinearHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, -2.0 + 6.0 * rng.uniform_real(0.0, 1.0));
    samples.push_back(v);
    h.record(v);
  }
  EXPECT_EQ(h.count(), samples.size());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(samples, q);
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact / LogLinearHistogram::kSubBuckets)
        << "q=" << q;
  }
}

TEST(TelemetryHistogram, MergeIsOrderIndependentAndExact) {
  // The same multiset recorded into one histogram, and split across three
  // shards merged in two different orders: identical buckets either way.
  util::Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i)
    samples.push_back(std::pow(10.0, -1.0 + 4.0 * rng.uniform_real(0.0, 1.0)));

  LogLinearHistogram whole;
  LogLinearHistogram shard[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    whole.record(samples[i]);
    shard[i % 3].record(samples[i]);
  }
  LogLinearHistogram forward;  // shard 0, 1, 2
  forward.merge(shard[0]);
  forward.merge(shard[1]);
  forward.merge(shard[2]);
  LogLinearHistogram backward;  // shard 2, 1, 0
  backward.merge(shard[2]);
  backward.merge(shard[1]);
  backward.merge(shard[0]);

  for (const LogLinearHistogram* merged : {&forward, &backward}) {
    EXPECT_EQ(merged->count(), whole.count());
    EXPECT_DOUBLE_EQ(merged->sum(), whole.sum());
    EXPECT_DOUBLE_EQ(merged->min(), whole.min());
    EXPECT_DOUBLE_EQ(merged->max(), whole.max());
    const auto a = merged->nonzero_buckets();
    const auto b = whole.nonzero_buckets();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].lower, b[i].lower);
      EXPECT_EQ(a[i].count, b[i].count);
    }
    for (const double q : {0.5, 0.95, 0.999})
      EXPECT_DOUBLE_EQ(merged->quantile(q), whole.quantile(q));
  }
}

TEST(TelemetryHistogram, OutOfRangeValuesLandInEdgeBuckets) {
  LogLinearHistogram h;
  h.record(-5.0);    // negative → underflow
  h.record(1e-9);    // below 2^-10 ms → underflow
  h.record(1e9);     // above 2^24 ms → overflow
  h.record(1.0);     // regular
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);  // min/max stay exact regardless
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 3u);  // underflow(2), the 1.0 bucket, overflow
  EXPECT_EQ(buckets.front().count, 2u);
  EXPECT_EQ(buckets.back().count, 1u);
  // Edge-bucket quantiles stay inside the exact extremes: the underflow
  // estimate can't go below min(), the overflow estimate can't exceed
  // max() (the overflow bucket has no meaningful upper edge).
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(0.0), 1e-3);  // an underflow-bucket-sized value
  EXPECT_GE(h.quantile(1.0), std::ldexp(1.0, LogLinearHistogram::kMaxExponent));
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(TelemetryHistogram, ClearResets) {
  LogLinearHistogram h;
  h.record(1.0);
  h.record(2.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

// ---------------------------------------------------------------------------
// Wide events

TEST(TelemetryEvent, JsonSchemaSegregatesWallKeys) {
  RequestEvent event;
  event.request_id = "lg-0-7";
  event.type = "solve";
  event.algorithm = "lcf";
  event.instance_digest = "deadbeef00000000";
  event.cache_outcome = "miss";
  event.bytes_in = 123;
  event.bytes_out = 456;
  event.queue_ms = 0.5;
  event.parse_ms = 0.25;
  event.decode_ms = 0.125;
  event.solve_ms = 2.0;
  event.serialize_ms = 0.0625;
  event.total_ms = 3.0;

  const util::JsonValue doc = event.to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_at("event"), "request");
  EXPECT_EQ(doc.string_at("request_id"), "lg-0-7");
  EXPECT_EQ(doc.string_at("type"), "solve");
  EXPECT_EQ(doc.string_at("algorithm"), "lcf");
  EXPECT_EQ(doc.string_at("digest"), "deadbeef00000000");
  EXPECT_EQ(doc.string_at("cache"), "miss");
  EXPECT_EQ(doc.string_at("outcome"), "ok");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.number_at("bytes_in"), 123.0);
  // Every wall-clock-derived field must carry the wall_ prefix so
  // strip_wallclock.py removes it before determinism diffs.
  for (const std::string key :
       {"bytes_out", "queue_ms", "parse_ms", "decode_ms", "solve_ms",
        "serialize_ms", "total_ms"}) {
    EXPECT_FALSE(doc.contains(key)) << key;
    EXPECT_TRUE(doc.contains("wall_" + key)) << key;
  }
  EXPECT_EQ(doc.number_at("wall_total_ms"), 3.0);
}

TEST(TelemetryEvent, OmitsEmptyOptionalFields) {
  RequestEvent event;
  event.request_id = "s-1";
  event.type = "health";
  const util::JsonValue doc = event.to_json();
  EXPECT_FALSE(doc.contains("algorithm"));
  EXPECT_FALSE(doc.contains("digest"));
}

// ---------------------------------------------------------------------------
// Sliding-window RED accounting (explicit clock)

RequestEvent solve_event(double total_ms, bool ok = true,
                         const std::string& code = "") {
  RequestEvent e;
  e.type = "solve";
  e.total_ms = total_ms;
  e.ok = ok;
  if (!ok) e.outcome = code;
  e.bytes_in = 10;
  e.bytes_out = 20;
  return e;
}

TEST(TelemetryWindow, CumulativeAndWindowedCountsAgreeInsideWindow) {
  ServiceTelemetry::Options opt;
  opt.window_ms = 1000.0;
  opt.slots = 4;
  opt.shards = 2;
  ServiceTelemetry telemetry(opt);
  telemetry.record_at(solve_event(5.0), 100.0);
  telemetry.record_at(solve_event(7.0), 200.0);
  telemetry.record_at(solve_event(9.0, false, "bad_request"), 300.0);

  const TelemetrySnapshot snap = telemetry.snapshot_at(400.0);
  ASSERT_EQ(snap.types.count("solve"), 1u);
  const RedTypeStats& s = snap.types.at("solve");
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.errors_by_code.at("bad_request"), 1u);
  EXPECT_EQ(s.bytes_in, 30u);
  EXPECT_EQ(s.bytes_out, 60u);
  EXPECT_EQ(s.latency.count(), 3u);
  EXPECT_EQ(s.window_requests, 3u);
  EXPECT_EQ(s.window_errors, 1u);
  EXPECT_DOUBLE_EQ(s.window_duration_sum_ms, 21.0);
}

TEST(TelemetryWindow, RotationExpiresOldSlotsButKeepsCumulative) {
  ServiceTelemetry::Options opt;
  opt.window_ms = 1000.0;  // 4 slots of 250 ms
  opt.slots = 4;
  opt.shards = 1;
  ServiceTelemetry telemetry(opt);
  telemetry.record_at(solve_event(5.0), 100.0);   // slot 0
  telemetry.record_at(solve_event(7.0), 900.0);   // slot 3

  // At t=1200 the window [200, 1200] has dropped slot 0.
  {
    const TelemetrySnapshot snap = telemetry.snapshot_at(1200.0);
    const RedTypeStats& s = snap.types.at("solve");
    EXPECT_EQ(s.requests, 2u);          // cumulative: everything
    EXPECT_EQ(s.window_requests, 1u);   // windowed: only the t=900 event
    EXPECT_DOUBLE_EQ(s.window_duration_sum_ms, 7.0);
  }
  // Far in the future the window is empty but totals persist.
  {
    const TelemetrySnapshot snap = telemetry.snapshot_at(60000.0);
    const RedTypeStats& s = snap.types.at("solve");
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.latency.count(), 2u);
    EXPECT_EQ(s.window_requests, 0u);
  }
}

TEST(TelemetryWindow, RingReusesStaleSlotAfterFullRotation) {
  ServiceTelemetry::Options opt;
  opt.window_ms = 400.0;  // 4 slots of 100 ms
  opt.slots = 4;
  opt.shards = 1;
  ServiceTelemetry telemetry(opt);
  telemetry.record_at(solve_event(1.0), 50.0);  // slot index 0
  // Slot index 4 maps to the same ring position as index 0: the stale
  // counters must be reset, not added to.
  telemetry.record_at(solve_event(2.0), 450.0);
  const TelemetrySnapshot snap = telemetry.snapshot_at(460.0);
  const RedTypeStats& s = snap.types.at("solve");
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.window_requests, 1u);  // only the slot-4 event is in-window
  EXPECT_DOUBLE_EQ(s.window_duration_sum_ms, 2.0);
}

TEST(TelemetryWindow, RetryHintScalesWithQueueAndClamps) {
  ServiceTelemetry::Options opt;
  opt.window_ms = 1000.0;
  opt.slots = 4;
  opt.shards = 1;
  ServiceTelemetry telemetry(opt);
  // Cold window: nominal 25 ms mean. One queued request, one worker.
  EXPECT_DOUBLE_EQ(telemetry.retry_after_ms_hint_at(0, 1, 10.0), 25.0);
  // Deep queue clamps at the 10 s ceiling.
  EXPECT_DOUBLE_EQ(telemetry.retry_after_ms_hint_at(100000, 1, 10.0),
                   10000.0);
  // Warm window: mean 50 ms, 4 queued + this one, 2 workers → 125 ms.
  telemetry.record_at(solve_event(40.0), 100.0);
  telemetry.record_at(solve_event(60.0), 110.0);
  EXPECT_DOUBLE_EQ(telemetry.retry_after_ms_hint_at(4, 2, 200.0), 125.0);
  // A tiny hint clamps at the 1 ms floor.
  EXPECT_DOUBLE_EQ(telemetry.retry_after_ms_hint_at(0, 64, 200.0), 1.0);
}

// ---------------------------------------------------------------------------
// Exports

TEST(TelemetryExport, JsonShapeSegregatesWallKeys) {
  ServiceTelemetry telemetry;
  telemetry.record_at(solve_event(5.0), 10.0);
  ServiceGauges gauges;
  gauges.queue_capacity = 64;
  gauges.workers = 4;
  gauges.cache_hits = 3;
  gauges.cache_misses = 1;
  const util::JsonValue doc =
      telemetry_to_json(telemetry.snapshot_at(20.0), gauges);

  ASSERT_TRUE(doc.is_object());
  const util::JsonValue& solve = doc.at("red").at("solve");
  EXPECT_EQ(solve.number_at("requests"), 1.0);
  EXPECT_TRUE(solve.contains("wall_latency_ms"));
  EXPECT_TRUE(solve.contains("wall_window"));
  EXPECT_FALSE(solve.contains("latency_ms"));
  EXPECT_EQ(solve.at("wall_latency_ms").number_at("count"), 1.0);
  EXPECT_EQ(doc.at("gauges").number_at("queue_capacity"), 64.0);
  EXPECT_EQ(doc.at("cache").number_at("hits"), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("wall_gauges").number_at("cache_hit_ratio"), 0.75);
  // Point-in-time readings are wall-segregated, never bare.
  EXPECT_FALSE(doc.contains("gauges_live"));
  EXPECT_FALSE(doc.at("gauges").contains("queue_depth"));
  EXPECT_TRUE(doc.at("wall_gauges").contains("queue_depth"));
}

TEST(TelemetryExport, PrometheusExpositionIsWellFormed) {
  ServiceTelemetry telemetry;
  telemetry.record_at(solve_event(0.5), 10.0);
  telemetry.record_at(solve_event(2.5), 11.0);
  telemetry.record_at(solve_event(400.0, false, "overloaded"), 12.0);
  ServiceGauges gauges;
  gauges.workers = 2;
  const std::string text =
      telemetry_to_prometheus(telemetry.snapshot_at(20.0), gauges);

  EXPECT_NE(text.find("# TYPE mecsc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mecsc_requests_total{type=\"solve\"} 3"),
            std::string::npos);
  EXPECT_NE(
      text.find("mecsc_errors_total{type=\"solve\",code=\"overloaded\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE mecsc_request_duration_ms histogram"),
            std::string::npos);
  // The histogram must terminate with the mandatory +Inf bucket equal to
  // the observation count, plus _sum and _count series.
  EXPECT_NE(
      text.find("mecsc_request_duration_ms_bucket{type=\"solve\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("mecsc_request_duration_ms_count{type=\"solve\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mecsc_workers 2"), std::string::npos);
  // Exposition format: every line is comment or sample; file ends with \n.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Cumulative `le` buckets must be monotonically non-decreasing.
  std::uint64_t previous = 0;
  std::size_t pos = 0;
  const std::string needle = "mecsc_request_duration_ms_bucket{type=\"solve\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    const std::size_t eol = text.find('\n', space);
    const std::uint64_t value =
        std::stoull(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(value, previous);
    previous = value;
    pos = eol;
  }
  EXPECT_EQ(previous, 3u);  // the +Inf bucket saw every observation
}

// ---------------------------------------------------------------------------
// Request log

TEST(RequestLog, WritesOneParseableLinePerEvent) {
  const std::string path = testing::TempDir() + "mecsc_requestlog_test.jsonl";
  {
    RequestLog::Options opt;
    opt.path = path;
    RequestLog log(opt);
    for (int i = 0; i < 100; ++i) {
      RequestEvent e = solve_event(1.0 + i);
      e.request_id = "t-" + std::to_string(i);
      log.write(e);
    }
    log.close();
    EXPECT_EQ(log.dropped(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const util::JsonValue doc = util::parse_json(line);
    EXPECT_EQ(doc.string_at("request_id"), "t-" + std::to_string(lines));
    ++lines;
  }
  EXPECT_EQ(lines, 100);
}

TEST(RequestLog, WriteAfterCloseCountsAsDropped) {
  RequestLog::Options opt;
  opt.path = testing::TempDir() + "mecsc_requestlog_closed.jsonl";
  RequestLog log(opt);
  log.close();
  log.write(solve_event(1.0));
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(RequestLog, SizeRotationKeepsOneRolledFileAndEveryLine) {
  const std::string path = testing::TempDir() + "mecsc_requestlog_rotate.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  constexpr int kEvents = 200;
  {
    RequestLog::Options opt;
    opt.path = path;
    opt.max_bytes = 4096;  // tiny cap: every wide event is ~300 bytes
    RequestLog log(opt);
    for (int i = 0; i < kEvents; ++i) {
      RequestEvent e = solve_event(1.0 + i);
      e.request_id = "r-" + std::to_string(i);
      log.write(e);
    }
    log.close();
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_GE(log.rotations(), 1u);
  }
  // Single-rollover policy: the live file plus exactly one `.1` sibling,
  // and no line is lost across the most recent boundary (older rollovers
  // are intentionally discarded).
  int live_lines = 0;
  std::string line;
  std::ifstream live(path);
  ASSERT_TRUE(live.good());
  while (std::getline(live, line)) {
    EXPECT_EQ(util::parse_json(line).string_at("type"), "solve");
    ++live_lines;
  }
  std::ifstream rolled(path + ".1");
  ASSERT_TRUE(rolled.good());
  int rolled_lines = 0;
  std::string last_rolled;
  while (std::getline(rolled, line)) {
    last_rolled = line;
    ++rolled_lines;
  }
  EXPECT_GT(live_lines, 0);
  EXPECT_GT(rolled_lines, 0);
  // The rolled file ends exactly where the live file begins.
  std::ifstream live2(path);
  std::string first_live;
  ASSERT_TRUE(std::getline(live2, first_live));
  const auto index_of = [](const std::string& event_line) {
    // request_id is "r-<i>"; recover <i>.
    const std::string id = util::parse_json(event_line).string_at("request_id");
    return std::stoi(id.substr(2));
  };
  EXPECT_EQ(index_of(first_live), index_of(last_rolled) + 1);
}

TEST(RequestLog, SlowRequestsAreMirrored) {
  RequestLog::Options opt;
  opt.path = testing::TempDir() + "mecsc_requestlog_slow.jsonl";
  opt.slow_request_ms = 10.0;
  RequestLog log(opt);
  testing::internal::CaptureStderr();
  log.write(solve_event(5.0));    // below threshold
  log.write(solve_event(50.0));   // mirrored
  const std::string err = testing::internal::GetCapturedStderr();
  log.close();
  EXPECT_EQ(log.slow_mirrored(), 1u);
  EXPECT_NE(err.find("slow request"), std::string::npos);
  EXPECT_NE(err.find("wall_total_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan via the ctest `concurrency` label)

TEST(TelemetryConcurrency, ScrapeUnderLoadIsRaceFreeAndLosesNothing) {
  ServiceTelemetry::Options opt;
  opt.window_ms = 10000.0;
  opt.shards = 4;
  ServiceTelemetry telemetry(opt);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};

  std::thread scraper([&] {
    // Concurrent scrapes must see a monotonically growing, internally
    // consistent view — never a torn count.
    std::uint64_t last = 0;
    while (!done.load()) {
      const TelemetrySnapshot snap = telemetry.snapshot();
      std::uint64_t total = 0;
      for (const auto& [type, stats] : snap.types) {
        EXPECT_EQ(stats.latency.count(), stats.requests);
        total += stats.requests;
      }
      EXPECT_GE(total, last);
      last = total;
      scrapes.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&telemetry, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        RequestEvent e = solve_event(0.5 + 0.001 * i);
        e.type = (w % 2 == 0) ? "solve" : "poa";
        telemetry.record(e);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  const TelemetrySnapshot snap = telemetry.snapshot();
  std::uint64_t total = 0;
  for (const auto& [type, stats] : snap.types) total += stats.requests;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(RequestLogConcurrency, ParallelWritersNeverLoseCountedLines) {
  const std::string path =
      testing::TempDir() + "mecsc_requestlog_concurrent.jsonl";
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::uint64_t dropped = 0;
  {
    RequestLog::Options opt;
    opt.path = path;
    RequestLog log(opt);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&log, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          RequestEvent e = solve_event(1.0);
          e.request_id = "c-" + std::to_string(w) + "-" + std::to_string(i);
          log.write(e);
        }
      });
    }
    for (std::thread& t : writers) t.join();
    log.close();
    dropped = log.dropped();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_FALSE(util::parse_json(line).string_at("request_id").empty());
    ++lines;
  }
  // Every write either landed in the file or was counted as dropped.
  EXPECT_EQ(lines + dropped,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace mecsc::obs
