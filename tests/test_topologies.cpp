// Tests for the topology generators: Waxman, GT-ITM-style transit-stub, and
// the AS1755 synthetic equivalent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/topology_zoo.h"
#include "net/transit_stub.h"
#include "net/waxman.h"
#include "util/rng.h"

namespace mecsc::net {
namespace {

TEST(Waxman, NodeCountMatches) {
  util::Rng rng(1);
  const auto sg = generate_waxman({.node_count = 64}, rng);
  EXPECT_EQ(sg.graph.node_count(), 64u);
  EXPECT_EQ(sg.x.size(), 64u);
  EXPECT_EQ(sg.y.size(), 64u);
}

TEST(Waxman, AlwaysConnected) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sg = generate_waxman(
        {.node_count = 30, .alpha = 0.05, .beta = 0.05}, rng);
    EXPECT_TRUE(sg.graph.connected());
  }
}

TEST(Waxman, CoordinatesInUnitSquare) {
  util::Rng rng(3);
  const auto sg = generate_waxman({.node_count = 50}, rng);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(sg.x[i], 0.0);
    EXPECT_LT(sg.x[i], 1.0);
    EXPECT_GE(sg.y[i], 0.0);
    EXPECT_LT(sg.y[i], 1.0);
  }
}

TEST(Waxman, EdgeLengthsMatchEuclideanDistance) {
  util::Rng rng(4);
  const auto sg = generate_waxman({.node_count = 40}, rng);
  for (const Edge& e : sg.graph.edges()) {
    const double dx = sg.x[e.u] - sg.x[e.v];
    const double dy = sg.y[e.u] - sg.y[e.v];
    EXPECT_NEAR(e.length, std::sqrt(dx * dx + dy * dy), 1e-12);
  }
}

TEST(Waxman, BandwidthInRange) {
  util::Rng rng(5);
  WaxmanParams p{.node_count = 40,
                 .alpha = 0.4,
                 .beta = 0.4,
                 .bandwidth_lo_mbps = 100.0,
                 .bandwidth_hi_mbps = 200.0};
  const auto sg = generate_waxman(p, rng);
  for (const Edge& e : sg.graph.edges()) {
    EXPECT_GE(e.bandwidth_mbps, 100.0);
    EXPECT_LE(e.bandwidth_mbps, 200.0);
  }
}

TEST(Waxman, HigherAlphaGivesDenserGraphs) {
  util::Rng rng1(6), rng2(6);
  const auto sparse = generate_waxman(
      {.node_count = 60, .alpha = 0.1, .beta = 0.4}, rng1);
  const auto dense = generate_waxman(
      {.node_count = 60, .alpha = 0.9, .beta = 0.4}, rng2);
  EXPECT_GT(dense.graph.edge_count(), sparse.graph.edge_count());
}

TEST(Waxman, DeterministicGivenSeed) {
  util::Rng a(7), b(7);
  const auto g1 = generate_waxman({.node_count = 30}, a);
  const auto g2 = generate_waxman({.node_count = 30}, b);
  ASSERT_EQ(g1.graph.edge_count(), g2.graph.edge_count());
  for (std::size_t e = 0; e < g1.graph.edge_count(); ++e) {
    EXPECT_EQ(g1.graph.edge(e).u, g2.graph.edge(e).u);
    EXPECT_EQ(g1.graph.edge(e).v, g2.graph.edge(e).v);
  }
}

TEST(TransitStub, StructureCounts) {
  util::Rng rng(8);
  TransitStubParams p;
  p.transit_domains = 2;
  p.nodes_per_transit = 3;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub = 4;
  const auto ts = generate_transit_stub(p, rng);
  EXPECT_EQ(ts.transit_nodes.size(), 6u);
  EXPECT_EQ(ts.stub_nodes.size(), 6u * 2u * 4u);
  EXPECT_EQ(ts.graph.node_count(),
            ts.transit_nodes.size() + ts.stub_nodes.size());
  EXPECT_TRUE(ts.graph.connected());
}

TEST(TransitStub, KindsAndDomainsConsistent) {
  util::Rng rng(9);
  const auto ts = generate_transit_stub({}, rng);
  ASSERT_EQ(ts.kind.size(), ts.graph.node_count());
  ASSERT_EQ(ts.domain.size(), ts.graph.node_count());
  for (const NodeId n : ts.transit_nodes) {
    EXPECT_EQ(ts.kind[n], NodeKind::Transit);
  }
  for (const NodeId n : ts.stub_nodes) {
    EXPECT_EQ(ts.kind[n], NodeKind::Stub);
  }
}

TEST(TransitStub, SizedGeneratorHitsTarget) {
  util::Rng rng(10);
  for (const std::size_t target : {50u, 100u, 250u, 400u}) {
    const auto ts = generate_transit_stub_sized(target, rng);
    const double n = static_cast<double>(ts.graph.node_count());
    EXPECT_GE(n, 0.7 * static_cast<double>(target))
        << "target " << target;
    EXPECT_LE(n, 1.3 * static_cast<double>(target))
        << "target " << target;
    EXPECT_TRUE(ts.graph.connected());
  }
}

TEST(TransitStub, StubNodesAreMajority) {
  util::Rng rng(11);
  const auto ts = generate_transit_stub_sized(200, rng);
  EXPECT_GT(ts.stub_nodes.size(), ts.transit_nodes.size() * 3);
}

TEST(As1755, MatchesPublishedCounts) {
  const Graph g = as1755_topology();
  EXPECT_EQ(g.node_count(), 87u);
  EXPECT_EQ(g.edge_count(), 161u);
  EXPECT_TRUE(g.connected());
}

TEST(As1755, DeterministicAcrossCalls) {
  const Graph a = as1755_topology();
  const Graph b = as1755_topology();
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_DOUBLE_EQ(a.edge(e).length, b.edge(e).length);
  }
}

TEST(As1755, HeavyTailedDegrees) {
  const Graph g = as1755_topology();
  std::size_t max_degree = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    max_degree = std::max(max_degree, g.degree(n));
  }
  const double avg_degree =
      2.0 * static_cast<double>(g.edge_count()) /
      static_cast<double>(g.node_count());
  // A measured ISP backbone has hubs several times the average degree.
  EXPECT_GT(static_cast<double>(max_degree), 2.5 * avg_degree);
}

TEST(EdgeList, RoundTrip) {
  const Graph g = as1755_topology();
  const Graph h = parse_edge_list(to_edge_list(g));
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_NEAR(h.edge(e).length, g.edge(e).length, 1e-6);
  }
}

TEST(EdgeList, CommentsAndBlankLines) {
  const Graph g = parse_edge_list(
      "# header\n"
      "\n"
      "0 1 2.5 100 # trailing comment\n"
      "1 2 1.0 50\n");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).length, 2.5);
}

TEST(EdgeList, RejectsMalformed) {
  EXPECT_THROW(parse_edge_list("0 1 2.5\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("0 0 1 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("0 1 -2 1\n"), std::invalid_argument);
}

TEST(EdgeList, EmptyInputGivesEmptyGraph) {
  const Graph g = parse_edge_list("# nothing\n\n");
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

}  // namespace
}  // namespace mecsc::net
