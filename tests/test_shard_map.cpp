// Consistent-hash ring properties the routing tier's affinity guarantee
// rests on: deterministic placement, weight-proportional shares, and
// minimal key movement when the topology changes. Suite names start with
// "ShardMap" so the TSan job's concurrency filter picks them up (the map
// itself is immutable — these pin the contract the concurrent router
// leans on).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/run_info.h"
#include "route/shard_map.h"

namespace {

using namespace mecsc;
using route::BackendSpec;
using route::ShardMap;

std::vector<BackendSpec> topology(std::size_t n) {
  std::vector<BackendSpec> backends;
  for (std::size_t i = 0; i < n; ++i) {
    BackendSpec spec;
    spec.name = "b" + std::to_string(i + 1);
    spec.endpoint = "tcp:127.0.0.1:" + std::to_string(7001 + i);
    backends.push_back(std::move(spec));
  }
  return backends;
}

/// The digests the router actually feeds the ring: fnv1a64_hex of a
/// canonical instance dump. Synthetic payloads stand in for instances.
std::vector<std::string> digests(std::size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(obs::fnv1a64_hex("instance-payload-" + std::to_string(i)));
  return out;
}

TEST(ShardMap, PlacementIsDeterministicAcrossInstances) {
  // Two independently built maps over the same topology must agree on
  // every key — placement is a pure function of (topology, digest), the
  // property that keeps backend caches warm across router restarts.
  const ShardMap a(topology(5));
  const ShardMap b(topology(5));
  for (const std::string& d : digests(500)) {
    EXPECT_EQ(a.owner(d), b.owner(d));
    EXPECT_EQ(a.preference(d), b.preference(d));
  }
}

TEST(ShardMap, PreferenceListsEveryBackendOnceOwnerFirst) {
  const ShardMap map(topology(7));
  for (const std::string& d : digests(100)) {
    const std::vector<std::size_t> order = map.preference(d);
    ASSERT_EQ(order.size(), 7u);
    EXPECT_EQ(order.front(), map.owner(d));
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 7u);
  }
}

TEST(ShardMap, AddingABackendMovesAtMostItsShare) {
  // Growing 4 -> 5 backends may only move keys *onto* the new backend:
  // a key that stays on an old backend must stay on the same one, and
  // the stolen fraction concentrates near 1/5.
  const std::vector<std::string> keys = digests(4000);
  const ShardMap before(topology(4));
  const ShardMap after(topology(5));
  std::size_t moved = 0;
  for (const std::string& d : keys) {
    const std::size_t old_owner = before.owner(d);
    const std::size_t new_owner = after.owner(d);
    if (old_owner != new_owner) {
      ++moved;
      // Only the new backend (index 4) may steal keys.
      EXPECT_EQ(new_owner, 4u) << "key rehashed between surviving backends";
    }
  }
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.0);  // the new backend owns *something*
  // Expected 1/5 = 0.2; 64 vnodes/backend keeps the spread tight, the
  // bound below is ~2x expectation — movement near 1.0 (naive mod-N
  // rehash) fails loudly.
  EXPECT_LT(fraction, 0.4);
}

TEST(ShardMap, RemovingABackendOnlyReassignsItsKeys) {
  const std::vector<std::string> keys = digests(4000);
  const ShardMap full(topology(5));
  // Drop b3 (index 2). Surviving specs keep their names, so their vnodes
  // are identical points on the ring.
  std::vector<BackendSpec> reduced = topology(5);
  reduced.erase(reduced.begin() + 2);
  const ShardMap after(std::move(reduced));
  std::size_t moved = 0;
  for (const std::string& d : keys) {
    const std::size_t old_owner = full.owner(d);
    const std::size_t new_owner = after.owner(d);
    // Map the reduced index back to the full topology's numbering.
    const std::size_t new_owner_full =
        new_owner >= 2 ? new_owner + 1 : new_owner;
    if (old_owner == 2) {
      ++moved;  // orphaned keys must land somewhere else
      EXPECT_NE(new_owner_full, 2u);
    } else {
      EXPECT_EQ(new_owner_full, old_owner)
          << "key moved although its owner survived";
    }
  }
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.4);  // ≈ 1/5 expected
}

TEST(ShardMap, OwnershipIsProportionalToWeight) {
  // b1 at weight 3 against three weight-1 peers: b1 should own ≈ 3/6 of
  // the keyspace and each peer ≈ 1/6.
  std::vector<BackendSpec> backends = topology(4);
  backends[0].weight = 3;
  const ShardMap map(std::move(backends));
  const std::vector<std::string> keys = digests(6000);
  std::vector<std::size_t> owned(4, 0);
  for (const std::string& d : keys) ++owned[map.owner(d)];
  const double heavy =
      static_cast<double>(owned[0]) / static_cast<double>(keys.size());
  EXPECT_GT(heavy, 0.35);  // expected 0.5
  EXPECT_LT(heavy, 0.65);
  for (std::size_t i = 1; i < 4; ++i) {
    const double share =
        static_cast<double>(owned[i]) / static_cast<double>(keys.size());
    EXPECT_GT(share, 0.07) << "backend " << i;  // expected ≈ 0.167
    EXPECT_LT(share, 0.30) << "backend " << i;
  }
}

TEST(ShardMap, InvalidTopologiesThrow) {
  EXPECT_THROW(ShardMap(std::vector<BackendSpec>{}), std::invalid_argument);

  std::vector<BackendSpec> dup = topology(2);
  dup[1].name = dup[0].name;
  EXPECT_THROW(ShardMap(std::move(dup)), std::invalid_argument);

  std::vector<BackendSpec> unnamed = topology(2);
  unnamed[1].name.clear();
  EXPECT_THROW(ShardMap(std::move(unnamed)), std::invalid_argument);

  std::vector<BackendSpec> weightless = topology(2);
  weightless[0].weight = 0;
  EXPECT_THROW(ShardMap(std::move(weightless)), std::invalid_argument);
}

TEST(ShardMap, RenamingABackendMovesItsKeys) {
  // The name is the hash identity: same endpoint under a new name is a
  // different ring position (documented sharp edge, pinned here).
  const std::vector<std::string> keys = digests(500);
  const ShardMap original(topology(3));
  std::vector<BackendSpec> renamed = topology(3);
  renamed[1].name = "b2-renamed";
  const ShardMap after(std::move(renamed));
  std::size_t moved = 0;
  for (const std::string& d : keys)
    if (original.owner(d) != after.owner(d)) ++moved;
  EXPECT_GT(moved, 0u);
}

}  // namespace
