#include "core/incentives.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t providers = 40) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = 80;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

TEST(Incentives, SelfishPlayersNeverWantToDeviate) {
  // The selfish players sit at a Nash equilibrium, so their deviation
  // incentive is zero (up to eps).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make(seed);
    const LcfResult r = run_lcf(inst);
    ASSERT_TRUE(r.converged);
    const StabilityReport report = analyze_stability(inst, r);
    for (const auto& pi : report.providers) {
      if (!pi.coordinated) {
        EXPECT_LE(pi.deviation_incentive, 1e-7)
            << "seed " << seed << " provider " << pi.provider;
      }
    }
  }
}

TEST(Incentives, SelfishPlayersAreIndividuallyRational) {
  const Instance inst = make(6);
  const LcfResult r = run_lcf(inst);
  const StabilityReport report = analyze_stability(inst, r);
  for (const auto& pi : report.providers) {
    if (!pi.coordinated) {
      EXPECT_TRUE(pi.individually_rational);
    }
  }
}

TEST(Incentives, BudgetAggregatesPositiveIncentivesOnly) {
  const Instance inst = make(7);
  const LcfResult r = run_lcf(inst);
  const StabilityReport report = analyze_stability(inst, r);
  double budget = 0.0;
  std::size_t binding = 0;
  for (const auto& pi : report.providers) {
    if (pi.coordinated && pi.deviation_incentive > 1e-9) {
      budget += pi.deviation_incentive;
      ++binding;
    }
  }
  EXPECT_NEAR(report.side_payment_budget, budget, 1e-9);
  EXPECT_EQ(report.binding_contracts, binding);
}

TEST(Incentives, MaxIncentiveIsMaximum) {
  const Instance inst = make(8);
  const LcfResult r = run_lcf(inst);
  const StabilityReport report = analyze_stability(inst, r);
  double expect = 0.0;
  for (const auto& pi : report.providers) {
    expect = std::max(expect, pi.deviation_incentive);
  }
  EXPECT_DOUBLE_EQ(report.max_incentive, expect);
}

TEST(Incentives, BestDeviationNeverAboveCurrent) {
  const Instance inst = make(9);
  const LcfResult r = run_lcf(inst);
  const StabilityReport report = analyze_stability(inst, r);
  for (const auto& pi : report.providers) {
    EXPECT_LE(pi.best_deviation_cost, pi.current_cost + 1e-12);
    EXPECT_GE(pi.deviation_incentive, -1e-12);
  }
}

TEST(Incentives, FullySelfishMarketHasZeroBudget) {
  const Instance inst = make(10);
  LcfOptions options;
  options.coordinated_fraction = 0.0;
  const LcfResult r = run_lcf(inst, options);
  const StabilityReport report = analyze_stability(inst, r);
  EXPECT_EQ(report.binding_contracts, 0u);
  EXPECT_DOUBLE_EQ(report.side_payment_budget, 0.0);
  EXPECT_EQ(report.ir_violations, 0u);
}

TEST(Incentives, IrSubsidyConsistentWithViolations) {
  const Instance inst = make(11);
  LcfOptions options;
  options.coordinated_fraction = 1.0;  // everyone pinned — IR may bind
  const LcfResult r = run_lcf(inst, options);
  const StabilityReport report = analyze_stability(inst, r);
  double subsidy = 0.0;
  std::size_t violations = 0;
  for (const auto& pi : report.providers) {
    if (!pi.individually_rational) {
      ++violations;
      subsidy += pi.current_cost - remote_cost(inst, pi.provider);
    }
  }
  EXPECT_EQ(report.ir_violations, violations);
  EXPECT_NEAR(report.ir_subsidy, subsidy, 1e-9);
  if (violations > 0) {
    EXPECT_GT(report.ir_subsidy, 0.0);
  }
}

TEST(Incentives, ReportCoversEveryProvider) {
  const Instance inst = make(12, 23);
  const LcfResult r = run_lcf(inst);
  const StabilityReport report = analyze_stability(inst, r);
  ASSERT_EQ(report.providers.size(), 23u);
  for (ProviderId l = 0; l < 23; ++l) {
    EXPECT_EQ(report.providers[l].provider, l);
    EXPECT_EQ(report.providers[l].coordinated, r.coordinated[l]);
  }
}

}  // namespace
}  // namespace mecsc::core
