#include "core/congestion_game.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::core {
namespace {

Instance make(std::uint64_t seed, std::size_t network = 80,
              std::size_t providers = 30) {
  util::Rng rng(seed);
  InstanceParams p;
  p.network_size = network;
  p.provider_count = providers;
  return generate_instance(p, rng);
}

std::vector<bool> all_movable(const Instance& inst) {
  return std::vector<bool>(inst.provider_count(), true);
}

TEST(BestResponse, ReturnsCurrentWhenNoImprovement) {
  const Instance inst = make(1);
  Assignment a(inst);
  // Move provider 0 to its globally best option manually.
  std::size_t best = kRemote;
  double best_cost = remote_cost(inst, 0);
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    if (cache_cost(inst, 0, i, 1) < best_cost && demand_fits(inst, 0, i)) {
      best = i;
      best_cost = cache_cost(inst, 0, i, 1);
    }
  }
  if (best != kRemote) a.move(0, best);
  EXPECT_EQ(best_response(a, 0), a.choice(0));
}

TEST(BestResponse, FindsStrictlyBetterSeat) {
  const Instance inst = make(2);
  Assignment a(inst);  // provider 0 remote
  const std::size_t target = best_response(a, 0);
  if (target != kRemote) {
    EXPECT_LT(a.provider_cost_if(0, target), a.provider_cost(0));
  }
}

TEST(BestResponse, IgnoresFullCloudlets) {
  Instance inst = make(3, 60, 3);
  // Providers 0 and 1 each fill a cloudlet completely.
  for (ProviderId l = 0; l < 2; ++l) {
    inst.providers[l].compute_per_request =
        inst.network.cloudlets()[l].compute_capacity;
    inst.providers[l].requests = 1;
  }
  // Provider 2 fits nowhere but cloudlet 2+ (cloudlets 0,1 are full).
  Assignment a(inst);
  a.move(0, 0);
  a.move(1, 1);
  const std::size_t t = best_response(a, 2);
  EXPECT_NE(t, 0u);
  EXPECT_NE(t, 1u);
}

TEST(Dynamics, ConvergesToNash) {
  // Lemma 3: at least one NE exists and best-response reaches it.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance inst = make(seed);
    const GameResult r =
        best_response_dynamics(Assignment(inst), all_movable(inst));
    EXPECT_TRUE(r.converged) << "seed " << seed;
    EXPECT_TRUE(is_nash_equilibrium(r.assignment, all_movable(inst)))
        << "seed " << seed;
    EXPECT_TRUE(r.assignment.feasible());
  }
}

TEST(Dynamics, PotentialDecreasesMonotonically) {
  const Instance inst = make(9);
  Assignment a(inst);
  std::vector<bool> movable = all_movable(inst);
  double phi = a.potential();
  // Manual best-response loop mirroring the engine, checking Φ each move.
  for (int round = 0; round < 100; ++round) {
    bool any = false;
    for (ProviderId l = 0; l < inst.provider_count(); ++l) {
      const std::size_t t = best_response(a, l);
      if (t != a.choice(l)) {
        a.move(l, t);
        const double phi2 = a.potential();
        EXPECT_LT(phi2, phi + 1e-12);
        phi = phi2;
        any = true;
      }
    }
    if (!any) break;
  }
  EXPECT_TRUE(is_nash_equilibrium(a, movable));
}

TEST(Dynamics, PinnedPlayersNeverMove) {
  const Instance inst = make(10);
  std::vector<bool> movable(inst.provider_count(), true);
  for (ProviderId l = 0; l < inst.provider_count(); l += 2) {
    movable[l] = false;  // pin even providers at remote
  }
  const GameResult r = best_response_dynamics(Assignment(inst), movable);
  EXPECT_TRUE(r.converged);
  for (ProviderId l = 0; l < inst.provider_count(); l += 2) {
    EXPECT_EQ(r.assignment.choice(l), kRemote);
  }
}

TEST(Dynamics, NoMovablePlayersConvergesImmediately) {
  const Instance inst = make(11);
  const GameResult r = best_response_dynamics(
      Assignment(inst), std::vector<bool>(inst.provider_count(), false));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Dynamics, ShuffledOrdersAlsoConverge) {
  const Instance inst = make(12);
  util::Rng rng(5);
  BestResponseOptions options;
  options.shuffle_rng = &rng;
  const GameResult r =
      best_response_dynamics(Assignment(inst), all_movable(inst), options);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(is_nash_equilibrium(r.assignment, all_movable(inst)));
}

TEST(Dynamics, EquilibriumCostAtLeastBestCaseBound) {
  // Sanity: at NE each provider pays at most its remote cost (it could
  // always deviate to remote).
  const Instance inst = make(13);
  const GameResult r =
      best_response_dynamics(Assignment(inst), all_movable(inst));
  ASSERT_TRUE(r.converged);
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    EXPECT_LE(r.assignment.provider_cost(l), remote_cost(inst, l) + 1e-9);
  }
}

TEST(IsNash, DetectsNonEquilibrium) {
  const Instance inst = make(14);
  Assignment a(inst);  // everyone remote: usually some cloudlet is tempting
  const GameResult r = best_response_dynamics(a, all_movable(inst));
  if (r.moves > 0) {
    EXPECT_FALSE(is_nash_equilibrium(a, all_movable(inst)));
  }
}

class DynamicsSweep : public ::testing::TestWithParam<int> {};

TEST_P(DynamicsSweep, NashInvariantsAcrossSeeds) {
  const Instance inst =
      make(static_cast<std::uint64_t>(GetParam()) + 100, 70, 25);
  const GameResult r =
      best_response_dynamics(Assignment(inst), all_movable(inst));
  ASSERT_TRUE(r.converged);
  const Assignment& a = r.assignment;
  EXPECT_TRUE(a.feasible());
  // No feasible unilateral deviation improves any provider.
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const double mine = a.provider_cost(l);
    EXPECT_LE(mine, remote_cost(inst, l) + 1e-9);
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      if (i != a.choice(l) && a.can_move(l, i)) {
        EXPECT_GE(a.provider_cost_if(l, i), mine - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicsSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace mecsc::core
