#include "sim/emulation.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::sim {
namespace {

struct Scenario {
  core::Instance inst;
  std::vector<Request> trace;
};

Scenario make(std::uint64_t seed, std::size_t providers = 15) {
  util::Rng rng(seed);
  core::InstanceParams p;
  p.network_size = 60;
  p.provider_count = providers;
  Scenario s{core::generate_instance(p, rng), {}};
  WorkloadParams w;
  w.horizon_s = 20.0;
  s.trace = generate_workload(s.inst, w, rng);
  return s;
}

TEST(Emulation, ServesEveryRequest) {
  const Scenario s = make(1);
  const core::Assignment a = core::run_offload_cache(s.inst);
  const EmulationResult r = replay(a, s.trace);
  EXPECT_EQ(r.requests_served, s.trace.size());
  EXPECT_EQ(r.request_latency_s.count, s.trace.size());
}

TEST(Emulation, LatenciesArePositiveAndOrdered) {
  const Scenario s = make(2);
  const core::Assignment a = core::run_offload_cache(s.inst);
  const EmulationResult r = replay(a, s.trace);
  EXPECT_GT(r.request_latency_s.min, 0.0);
  EXPECT_LE(r.request_latency_s.min, r.request_latency_s.p50);
  EXPECT_LE(r.request_latency_s.p50, r.request_latency_s.max);
}

TEST(Emulation, CostIsPositiveAndSumsPerProvider) {
  const Scenario s = make(3);
  const core::Assignment a = core::run_jo_offload_cache(s.inst);
  const EmulationResult r = replay(a, s.trace);
  double sum = 0.0;
  for (double c : r.provider_cost) sum += c;
  EXPECT_NEAR(r.measured_social_cost, sum, 1e-9);
  EXPECT_GT(r.measured_social_cost, 0.0);
}

TEST(Emulation, AllRemotePlacementHasNoCloudletConcurrency) {
  const Scenario s = make(4);
  const core::Assignment a(s.inst);  // everyone remote
  const EmulationResult r = replay(a, s.trace);
  for (double c : r.avg_concurrency) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_EQ(r.requests_served, s.trace.size());
}

TEST(Emulation, CachedPlacementShowsCloudletActivity) {
  const Scenario s = make(5);
  const core::Assignment a = core::run_offload_cache(s.inst);
  const EmulationResult r = replay(a, s.trace);
  double total = 0.0;
  for (double c : r.avg_concurrency) total += c;
  EXPECT_GT(total, 0.0);
}

TEST(Emulation, DeterministicReplay) {
  const Scenario s = make(6);
  const core::Assignment a = core::run_offload_cache(s.inst);
  const EmulationResult r1 = replay(a, s.trace);
  const EmulationResult r2 = replay(a, s.trace);
  EXPECT_DOUBLE_EQ(r1.measured_social_cost, r2.measured_social_cost);
  EXPECT_DOUBLE_EQ(r1.request_latency_s.mean, r2.request_latency_s.mean);
}

TEST(Emulation, SlowerServersRaiseLatency) {
  const Scenario s = make(7);
  const core::Assignment a = core::run_offload_cache(s.inst);
  EmuParams fast, slow;
  slow.server_rate_gbps = fast.server_rate_gbps / 10.0;
  const EmulationResult rf = replay(a, s.trace, fast);
  const EmulationResult rs = replay(a, s.trace, slow);
  EXPECT_GT(rs.request_latency_s.mean, rf.request_latency_s.mean);
}

TEST(Emulation, ThinnerLinksRaiseLatency) {
  const Scenario s = make(8);
  const core::Assignment a = core::run_offload_cache(s.inst);
  EmuParams fat, thin;
  thin.link_rate_mbps = fat.link_rate_mbps / 20.0;
  EXPECT_GT(replay(a, s.trace, thin).request_latency_s.mean,
            replay(a, s.trace, fat).request_latency_s.mean);
}

TEST(Emulation, UpdateTrafficMetered) {
  // Same trace, same placement, but a provider with a larger update fraction
  // must transfer more GB.
  Scenario s = make(9);
  const core::Assignment a = core::run_offload_cache(s.inst);
  const EmulationResult before = replay(a, s.trace);
  for (auto& p : s.inst.providers) p.update_fraction = 0.5;
  const EmulationResult after = replay(a, s.trace);
  EXPECT_GE(after.total_transfer_gb, before.total_transfer_gb);
}

TEST(Emulation, EmptyTrace) {
  const Scenario s = make(10);
  const core::Assignment a = core::run_offload_cache(s.inst);
  const EmulationResult r = replay(a, {});
  EXPECT_EQ(r.requests_served, 0u);
  // Cached services still pay instantiation.
  EXPECT_GT(r.measured_social_cost, 0.0);
}

TEST(Emulation, MeasuredCostCorrelatesWithAnalyticCost) {
  // Across placements of the same instance, the emulator's measured cost
  // should rank placements the same way as the analytic model for clearly
  // separated alternatives (LCF vs OffloadCache).
  const Scenario s = make(11, 40);
  core::LcfOptions options;
  options.coordinated_fraction = 0.7;
  const core::Assignment good = core::run_lcf(s.inst, options).assignment;
  const core::Assignment bad = core::run_offload_cache(s.inst);
  if (good.social_cost() < bad.social_cost() * 0.8) {
    EXPECT_LT(replay(good, s.trace).measured_social_cost,
              replay(bad, s.trace).measured_social_cost);
  }
}

}  // namespace
}  // namespace mecsc::sim
