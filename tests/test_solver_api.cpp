// SolveSpec decoding: the three front doors (DOM, arena view, raw bytes)
// must accept and reject identically — they are one template underneath,
// and the service's bad_request error text is part of the wire contract.
#include "core/solver_api.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/json.h"

namespace mecsc::core {
namespace {

SolveSpec decode(const std::string& doc) {
  return decode_solve_spec(doc.data(), doc.size());
}

TEST(SolverApi, DecodeSolveSpecDefaults) {
  const SolveSpec spec = decode("{}");
  EXPECT_EQ(spec.algorithm, "lcf");
  EXPECT_DOUBLE_EQ(spec.one_minus_xi, 0.3);
}

TEST(SolverApi, DecodeSolveSpecFields) {
  const SolveSpec spec =
      decode(R"({"algorithm": "lcf", "one_minus_xi": 0.45, "extra": 1})");
  EXPECT_EQ(spec.algorithm, "lcf");
  EXPECT_DOUBLE_EQ(spec.one_minus_xi, 0.45);
  for (const std::string& name : solver_algorithm_names()) {
    EXPECT_EQ(decode(R"({"algorithm": ")" + name + R"("})").algorithm, name);
  }
}

TEST(SolverApi, DecodeSolveSpecRejectsUnknownAlgorithm) {
  try {
    decode(R"({"algorithm": "gradient-descent"})");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "unknown algorithm \"gradient-descent\"");
  }
}

TEST(SolverApi, DecodeSolveSpecRejectsNonNumberXi) {
  try {
    decode(R"({"one_minus_xi": "0.3"})");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "field \"one_minus_xi\" must be a number");
  }
}

TEST(SolverApi, DecodeSolveSpecRejectsMalformedJson) {
  EXPECT_THROW(decode("{\"algorithm\": "), util::JsonError);
  EXPECT_THROW(decode(""), util::JsonError);
}

// All three overloads are instantiations of one template, but the wrapper
// plumbing (arena root, DOM at()) could still drift — pin the parity.
TEST(SolverApi, ThreeFrontDoorsAgree) {
  const std::string docs[] = {
      "{}",
      R"({"algorithm": "appro"})",
      R"({"algorithm": "lcf", "one_minus_xi": 0.7})",
      R"({"one_minus_xi": 1})",
  };
  for (const std::string& doc : docs) {
    const SolveSpec from_dom = solve_spec_from_json(util::parse_json(doc));
    const util::JsonArena arena = util::parse_json_arena(doc);
    const SolveSpec from_arena = solve_spec_from_arena(arena.root());
    const SolveSpec from_bytes = decode(doc);
    EXPECT_EQ(from_dom.algorithm, from_arena.algorithm) << doc;
    EXPECT_EQ(from_dom.algorithm, from_bytes.algorithm) << doc;
    EXPECT_DOUBLE_EQ(from_dom.one_minus_xi, from_arena.one_minus_xi) << doc;
    EXPECT_DOUBLE_EQ(from_dom.one_minus_xi, from_bytes.one_minus_xi) << doc;
    EXPECT_EQ(from_dom.cache_key(), from_bytes.cache_key()) << doc;
  }
  // Error parity on the reject side.
  const std::string bad[] = {
      R"({"algorithm": "nope"})",
      R"({"one_minus_xi": null})",
  };
  for (const std::string& doc : bad) {
    std::string dom_err, bytes_err;
    try {
      solve_spec_from_json(util::parse_json(doc));
    } catch (const std::invalid_argument& e) {
      dom_err = e.what();
    }
    try {
      decode(doc);
    } catch (const std::invalid_argument& e) {
      bytes_err = e.what();
    }
    EXPECT_FALSE(dom_err.empty()) << doc;
    EXPECT_EQ(dom_err, bytes_err) << doc;
  }
}

TEST(SolverApi, CacheKeySeparatesLcfXi) {
  SolveSpec a, b;
  a.algorithm = b.algorithm = "lcf";
  a.one_minus_xi = 0.3;
  b.one_minus_xi = 0.30000000000000004;  // adjacent double
  EXPECT_NE(a.cache_key(), b.cache_key());
  b.one_minus_xi = 0.3;
  EXPECT_EQ(a.cache_key(), b.cache_key());
  // Non-LCF algorithms ignore xi in the key (it does not affect results).
  a.algorithm = b.algorithm = "appro";
  a.one_minus_xi = 0.1;
  b.one_minus_xi = 0.9;
  EXPECT_EQ(a.cache_key(), b.cache_key());
}

}  // namespace
}  // namespace mecsc::core
