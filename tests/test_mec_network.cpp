#include "net/mec_network.h"

#include <gtest/gtest.h>

#include <set>

#include "net/topology_zoo.h"
#include "net/transit_stub.h"
#include "util/rng.h"

namespace mecsc::net {
namespace {

MecNetwork build(std::size_t size, std::uint64_t seed,
                 MecNetworkParams params = {}) {
  util::Rng rng(seed);
  TransitStubGraph ts = generate_transit_stub_sized(size, rng);
  return MecNetwork(std::move(ts.graph), params, rng, ts.stub_nodes);
}

TEST(MecNetwork, CloudletFractionRespected) {
  const MecNetwork mec = build(200, 1);
  const double n = static_cast<double>(mec.topology().node_count());
  EXPECT_NEAR(static_cast<double>(mec.cloudlet_count()), 0.10 * n, 1.0);
  EXPECT_EQ(mec.data_center_count(), 5u);
}

TEST(MecNetwork, PlacementsAreDisjoint) {
  const MecNetwork mec = build(150, 2);
  std::set<NodeId> nodes;
  for (const auto& cl : mec.cloudlets()) nodes.insert(cl.node);
  for (const auto& dc : mec.data_centers()) nodes.insert(dc.node);
  EXPECT_EQ(nodes.size(), mec.cloudlet_count() + mec.data_center_count());
}

TEST(MecNetwork, CapacitiesWithinConfiguredRanges) {
  MecNetworkParams p;
  const MecNetwork mec = build(120, 3, p);
  for (const auto& cl : mec.cloudlets()) {
    EXPECT_GE(cl.compute_capacity, static_cast<double>(p.vms_lo));
    EXPECT_LE(cl.compute_capacity, static_cast<double>(p.vms_hi));
    // Total bandwidth = VMs x per-VM bandwidth in [10, 100] Mbps.
    EXPECT_GE(cl.bandwidth_capacity,
              cl.compute_capacity * p.vm_bandwidth_lo_mbps - 1e-9);
    EXPECT_LE(cl.bandwidth_capacity,
              cl.compute_capacity * p.vm_bandwidth_hi_mbps + 1e-9);
  }
}

TEST(MecNetwork, CloudletsPreferStubNodes) {
  util::Rng rng(4);
  TransitStubGraph ts = generate_transit_stub_sized(200, rng);
  const std::set<NodeId> stubs(ts.stub_nodes.begin(), ts.stub_nodes.end());
  const MecNetwork mec(std::move(ts.graph), {}, rng, ts.stub_nodes);
  for (const auto& cl : mec.cloudlets()) {
    EXPECT_TRUE(stubs.count(cl.node)) << "cloudlet on non-stub node";
  }
}

TEST(MecNetwork, DataCentersOnHighDegreeNodes) {
  const MecNetwork mec = build(200, 5);
  double dc_avg = 0.0, all_avg = 0.0;
  for (const auto& dc : mec.data_centers()) {
    dc_avg += static_cast<double>(mec.topology().degree(dc.node));
  }
  dc_avg /= static_cast<double>(mec.data_center_count());
  for (NodeId v = 0; v < mec.topology().node_count(); ++v) {
    all_avg += static_cast<double>(mec.topology().degree(v));
  }
  all_avg /= static_cast<double>(mec.topology().node_count());
  EXPECT_GT(dc_avg, all_avg);
}

TEST(MecNetwork, HopMatricesConsistent) {
  const MecNetwork mec = build(100, 6);
  for (std::size_t c = 0; c < mec.cloudlet_count(); ++c) {
    EXPECT_DOUBLE_EQ(mec.cloudlet_to_cloudlet_hops(c, c), 0.0);
    for (std::size_t c2 = 0; c2 < mec.cloudlet_count(); ++c2) {
      EXPECT_DOUBLE_EQ(mec.cloudlet_to_cloudlet_hops(c, c2),
                       mec.cloudlet_to_cloudlet_hops(c2, c));
    }
    for (std::size_t d = 0; d < mec.data_center_count(); ++d) {
      const double h = mec.cloudlet_to_dc_hops(c, d);
      EXPECT_GE(h, 1.0);  // disjoint placement => at least one hop
      EXPECT_NE(h, kUnreachable);
    }
  }
}

TEST(MecNetwork, NearestDcIsArgmin) {
  const MecNetwork mec = build(150, 7);
  for (std::size_t c = 0; c < mec.cloudlet_count(); ++c) {
    const std::size_t best = mec.nearest_dc(c);
    for (std::size_t d = 0; d < mec.data_center_count(); ++d) {
      EXPECT_LE(mec.cloudlet_to_dc_hops(c, best),
                mec.cloudlet_to_dc_hops(c, d));
    }
  }
}

TEST(MecNetwork, MaxHopsIsMaximum) {
  const MecNetwork mec = build(100, 8);
  double expect = 0.0;
  for (std::size_t c = 0; c < mec.cloudlet_count(); ++c) {
    for (std::size_t d = 0; d < mec.data_center_count(); ++d) {
      expect = std::max(expect, mec.cloudlet_to_dc_hops(c, d));
    }
  }
  EXPECT_DOUBLE_EQ(mec.max_cloudlet_dc_hops(), expect);
}

TEST(MecNetwork, WorksOnAs1755) {
  util::Rng rng(9);
  const MecNetwork mec(as1755_topology(), {}, rng);
  EXPECT_EQ(mec.cloudlet_count(), 8u);  // 10% of 87
  EXPECT_EQ(mec.data_center_count(), 5u);
}

TEST(MecNetwork, TinyTopologyStillBuilds) {
  util::Rng rng(10);
  Graph g(12);
  for (NodeId i = 0; i + 1 < 12; ++i) g.add_edge(i, i + 1);
  const MecNetwork mec(std::move(g), {}, rng);
  EXPECT_GE(mec.cloudlet_count(), 1u);
  EXPECT_GE(mec.data_center_count(), 1u);
}

}  // namespace
}  // namespace mecsc::net
