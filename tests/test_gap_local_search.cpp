#include "opt/gap_local_search.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mecsc::opt {
namespace {

GapInstance random_instance(util::Rng& rng, std::size_t knapsacks,
                            std::size_t items) {
  GapInstance g;
  g.num_knapsacks = knapsacks;
  g.num_items = items;
  g.cost.resize(knapsacks * items);
  g.weight.resize(knapsacks * items);
  for (auto& c : g.cost) c = rng.uniform_real(1.0, 10.0);
  for (auto& w : g.weight) w = rng.uniform_real(0.5, 1.5);
  g.capacity.assign(knapsacks,
                    2.0 * static_cast<double>(items) /
                        static_cast<double>(knapsacks));
  return g;
}

TEST(GapLocalSearch, RejectsInfeasibleStart) {
  util::Rng rng(1);
  const auto g = random_instance(rng, 3, 6);
  GapSolution bad;  // feasible == false
  const auto out = improve_gap_local_search(g, bad);
  EXPECT_FALSE(out.feasible);
}

TEST(GapLocalSearch, FixesObviousShift) {
  // One item parked on an expensive knapsack with a cheap one empty.
  GapInstance g;
  g.num_knapsacks = 2;
  g.num_items = 1;
  g.capacity = {1.0, 1.0};
  g.cost = {9.0, 1.0};
  g.weight = {1.0, 1.0};
  auto start = evaluate_gap_assignment(g, {0});
  ASSERT_TRUE(start.feasible);
  LocalSearchStats stats;
  const auto out = improve_gap_local_search(g, start, &stats);
  EXPECT_EQ(out.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(out.cost, 1.0);
  EXPECT_EQ(stats.shift_moves, 1u);
}

TEST(GapLocalSearch, FindsSwapWhenShiftsBlocked) {
  // Two unit-capacity knapsacks, both full, assignment crossed: only a swap
  // can fix it.
  GapInstance g;
  g.num_knapsacks = 2;
  g.num_items = 2;
  g.capacity = {1.0, 1.0};
  g.cost = {1.0, 9.0, 9.0, 1.0};  // item0 cheap at k0, item1 cheap at k1
  g.weight = {1.0, 1.0, 1.0, 1.0};
  auto start = evaluate_gap_assignment(g, {1, 0});  // crossed
  ASSERT_TRUE(start.feasible);
  LocalSearchStats stats;
  const auto out = improve_gap_local_search(g, start, &stats);
  EXPECT_EQ(out.assignment[0], 0u);
  EXPECT_EQ(out.assignment[1], 1u);
  EXPECT_DOUBLE_EQ(out.cost, 2.0);
  EXPECT_GE(stats.swap_moves, 1u);
}

TEST(GapLocalSearch, NeverWorsensAndStaysFeasible) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = random_instance(rng, 4, 12);
    const auto start = solve_gap_greedy(g);
    if (!start.feasible) continue;
    LocalSearchStats stats;
    const auto out = improve_gap_local_search(g, start, &stats);
    EXPECT_TRUE(out.feasible);
    EXPECT_TRUE(out.within_capacity);
    EXPECT_LE(out.cost, start.cost + 1e-9);
    EXPECT_DOUBLE_EQ(stats.cost_before, start.cost);
    EXPECT_NEAR(stats.cost_after, out.cost, 1e-9);
  }
}

TEST(GapLocalSearch, ReachesLocalOptimality) {
  // After convergence, no single shift improves the cost.
  util::Rng rng(3);
  const auto g = random_instance(rng, 3, 10);
  const auto start = solve_gap_greedy(g);
  ASSERT_TRUE(start.feasible);
  const auto out = improve_gap_local_search(g, start);
  std::vector<double> slack = g.capacity;
  for (std::size_t j = 0; j < g.num_items; ++j) {
    slack[out.assignment[j]] -= g.weight_at(out.assignment[j], j);
  }
  for (std::size_t j = 0; j < g.num_items; ++j) {
    const std::size_t from = out.assignment[j];
    for (std::size_t to = 0; to < g.num_knapsacks; ++to) {
      if (to == from || g.weight_at(to, j) > slack[to] + 1e-9) continue;
      EXPECT_GE(g.cost_at(to, j), g.cost_at(from, j) - 1e-9);
    }
  }
}

TEST(GapLocalSearch, CannotBeatExactOptimum) {
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = random_instance(rng, 3, 7);
    const auto exact = solve_gap_exact(g);
    const auto start = solve_gap_greedy(g);
    if (!exact.feasible || !start.feasible) continue;
    const auto out = improve_gap_local_search(g, start);
    EXPECT_GE(out.cost, exact.cost - 1e-9);
  }
}

TEST(GapLocalSearch, IdempotentOnLocalOptimum) {
  util::Rng rng(5);
  const auto g = random_instance(rng, 4, 10);
  const auto start = solve_gap_greedy(g);
  ASSERT_TRUE(start.feasible);
  const auto once = improve_gap_local_search(g, start);
  LocalSearchStats stats;
  const auto twice = improve_gap_local_search(g, once, &stats);
  EXPECT_DOUBLE_EQ(once.cost, twice.cost);
  EXPECT_EQ(stats.shift_moves + stats.swap_moves, 0u);
}

}  // namespace
}  // namespace mecsc::opt
