// Causal-tracing tests (obs/tracing.h): W3C traceparent parse/mint
// round-trips, deterministic id derivation and head sampling, span-tree
// construction through the Profiler::SpanListener bridge, the bounded
// async TraceWriter's Chrome trace-event artifact, and the FlightRecorder
// ring. Suites Tracing*/TracingWriter*/FlightRecorder* carry the ctest
// `concurrency` label (tests/CMakeLists.txt) so the threaded ones run
// under TSan in CI.
#include "obs/tracing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.h"
#include "util/json.h"
#include "util/timer.h"

namespace mecsc::obs {
namespace {

using util::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- TraceContext -----------------------------------------------------------

TEST(TracingContext, DeriveRoundTripsThroughTraceparent) {
  const TraceContext ctx = TraceContext::derive("lg-0-17", true);
  EXPECT_EQ(ctx.trace_id.size(), 32u);
  EXPECT_EQ(ctx.span_id.size(), 16u);
  EXPECT_TRUE(ctx.sampled);

  const std::string header = ctx.to_traceparent();
  EXPECT_EQ(header.size(), 55u);
  EXPECT_EQ(header.rfind("00-", 0), 0u);
  EXPECT_EQ(header.substr(53), "01");

  const auto parsed = TraceContext::parse(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
  EXPECT_TRUE(parsed->sampled);
}

TEST(TracingContext, DeriveIsDeterministicPerSeed) {
  const TraceContext a = TraceContext::derive("req-1", false);
  const TraceContext b = TraceContext::derive("req-1", false);
  const TraceContext c = TraceContext::derive("req-2", false);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_NE(a.trace_id, c.trace_id);
  EXPECT_FALSE(a.sampled);
}

TEST(TracingContext, ParseRejectsEveryMalformedShape) {
  const std::string good = TraceContext::derive("x", false).to_traceparent();
  ASSERT_TRUE(TraceContext::parse(good).has_value());

  // Wrong length.
  EXPECT_FALSE(TraceContext::parse(good + "0").has_value());
  EXPECT_FALSE(TraceContext::parse(good.substr(0, 54)).has_value());
  EXPECT_FALSE(TraceContext::parse("").has_value());
  // Wrong version.
  std::string bad = good;
  bad[0] = '0';
  bad[1] = '1';
  EXPECT_FALSE(TraceContext::parse(bad).has_value());
  // Dash out of place.
  bad = good;
  bad[35] = '_';
  EXPECT_FALSE(TraceContext::parse(bad).has_value());
  // Non-hex (and uppercase-hex, which W3C forbids) digits.
  bad = good;
  bad[5] = 'g';
  EXPECT_FALSE(TraceContext::parse(bad).has_value());
  bad = good;
  bad[5] = 'A';
  EXPECT_FALSE(TraceContext::parse(bad).has_value());
  // All-zero ids.
  EXPECT_FALSE(
      TraceContext::parse("00-00000000000000000000000000000000-" +
                          good.substr(36, 16) + "-01")
          .has_value());
  EXPECT_FALSE(TraceContext::parse("00-" + good.substr(3, 32) +
                                   "-0000000000000000-01")
                   .has_value());
}

TEST(TracingContext, ParseReadsSampledFromLowFlagBit) {
  const TraceContext base = TraceContext::derive("flag", false);
  const std::string id = "00-" + base.trace_id + "-" + base.span_id + "-";
  EXPECT_FALSE(TraceContext::parse(id + "00")->sampled);
  EXPECT_TRUE(TraceContext::parse(id + "01")->sampled);
  EXPECT_FALSE(TraceContext::parse(id + "02")->sampled);
  EXPECT_TRUE(TraceContext::parse(id + "03")->sampled);
}

TEST(TracingSample, HeadSampleIsDeterministicAndTracksRate) {
  const std::string id = TraceContext::derive("s", false).trace_id;
  EXPECT_FALSE(trace_head_sample(id, 0.0));
  EXPECT_TRUE(trace_head_sample(id, 1.0));
  EXPECT_EQ(trace_head_sample(id, 0.5), trace_head_sample(id, 0.5));

  int hits = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const TraceContext ctx =
        TraceContext::derive("trial-" + std::to_string(i), false);
    if (trace_head_sample(ctx.trace_id, 0.25)) ++hits;
  }
  // FNV-1a spreads well enough that 25% +- 5 points holds with huge margin.
  EXPECT_GT(hits, kTrials / 5);
  EXPECT_LT(hits, kTrials * 3 / 10);
}

TEST(TracingSpanId, IsDeterministicAndSeqSensitive) {
  EXPECT_EQ(trace_span_id("abc", 0), trace_span_id("abc", 0));
  EXPECT_NE(trace_span_id("abc", 0), trace_span_id("abc", 1));
  EXPECT_NE(trace_span_id("abc", 0), trace_span_id("abd", 0));
  EXPECT_EQ(trace_span_id("abc", 3).size(), 16u);
}

// --- RequestTrace -----------------------------------------------------------

TEST(TracingRequestTrace, BuildsNestedTreeWithSequentialSpanIds) {
  const util::Timer clock;
  RequestTrace trace(TraceContext::derive("r-1", true), clock);
  const std::string trace_id = trace.context().trace_id;
  // Span ids hash in the inbound parent span so that processes sharing a
  // trace (router + backend) can never mint colliding ids.
  const std::string ns = trace_id + "/" + trace.context().span_id;

  trace.add_complete("svc.queue", 0.0, 0.5);
  trace.begin("svc.solve");
  trace.begin("solver.run");
  trace.end();
  trace.end();
  const FinishedTrace finished =
      trace.finish("r-1", "solve", "sampled", 3, 10.0);

  EXPECT_STREQ(finished.root.name, "svc.request");
  EXPECT_EQ(finished.root.span_id, trace_span_id(ns, 0));
  ASSERT_EQ(finished.root.children.size(), 2u);
  EXPECT_STREQ(finished.root.children[0].name, "svc.queue");
  EXPECT_EQ(finished.root.children[0].span_id, trace_span_id(ns, 1));
  EXPECT_DOUBLE_EQ(finished.root.children[0].dur_ms, 0.5);
  EXPECT_STREQ(finished.root.children[1].name, "svc.solve");
  EXPECT_EQ(finished.root.children[1].span_id, trace_span_id(ns, 2));
  ASSERT_EQ(finished.root.children[1].children.size(), 1u);
  EXPECT_STREQ(finished.root.children[1].children[0].name, "solver.run");
  EXPECT_EQ(finished.root.span_count(), 4u);
  EXPECT_EQ(finished.tid, 3u);
  EXPECT_DOUBLE_EQ(finished.base_ms, 10.0);
  EXPECT_EQ(finished.keep_reason, "sampled");
}

TEST(TracingRequestTrace, UnmatchedEndsNeverPopTheRoot) {
  const util::Timer clock;
  RequestTrace trace(TraceContext::derive("r-2", false), clock);
  trace.end();
  trace.end();
  trace.begin("child");
  trace.end();
  trace.end();
  const FinishedTrace finished = trace.finish("r-2", "solve", "", 0, 0.0);
  EXPECT_EQ(finished.root.span_count(), 2u);
  EXPECT_STREQ(finished.root.name, "svc.request");
}

TEST(TracingRequestTrace, FinishClosesStillOpenSpans) {
  const util::Timer clock;
  RequestTrace trace(TraceContext::derive("r-3", false), clock);
  trace.begin("outer");
  trace.begin("inner");  // left open deliberately
  const FinishedTrace finished = trace.finish("r-3", "solve", "error", 0, 0.0);
  ASSERT_EQ(finished.root.children.size(), 1u);
  ASSERT_EQ(finished.root.children[0].children.size(), 1u);
  EXPECT_GE(finished.root.children[0].dur_ms, 0.0);
  EXPECT_GE(finished.root.dur_ms, finished.root.children[0].dur_ms);
}

TEST(TracingRequestTrace, ProfilerBridgeRoutesScopesIntoTheTree) {
  // The aggregate profiler stays disabled: MECSC_PROFILE_SCOPE sites must
  // record into the listener's tree anyway (should_record() is
  // listener-aware), and the aggregate report must stay untouched.
  ASSERT_FALSE(Profiler::global().enabled());
  const std::uint64_t aggregate_before =
      Profiler::global().report().spans_total;
  const util::Timer clock;
  RequestTrace trace(TraceContext::derive("r-4", true), clock);
  {
    const ProfilerListenerScope bridge(&trace);
    MECSC_PROFILE_SCOPE("bridge.outer");
    {
      MECSC_PROFILE_SCOPE("bridge.inner");
    }
  }
  {
    // Bridge detached: scopes below must NOT land in the tree.
    MECSC_PROFILE_SCOPE("bridge.after");
  }
  const FinishedTrace finished = trace.finish("r-4", "solve", "sampled", 0, 0.0);
  ASSERT_EQ(finished.root.children.size(), 1u);
  EXPECT_STREQ(finished.root.children[0].name, "bridge.outer");
  ASSERT_EQ(finished.root.children[0].children.size(), 1u);
  EXPECT_STREQ(finished.root.children[0].children[0].name, "bridge.inner");
  EXPECT_EQ(Profiler::global().report().spans_total, aggregate_before);
}

TEST(TracingRequestTrace, ListenerScopeRestoresThePreviousListener) {
  const util::Timer clock;
  RequestTrace outer_trace(TraceContext::derive("r-5", false), clock);
  RequestTrace inner_trace(TraceContext::derive("r-6", false), clock);
  EXPECT_EQ(Profiler::thread_listener(), nullptr);
  {
    const ProfilerListenerScope outer(&outer_trace);
    EXPECT_EQ(Profiler::thread_listener(), &outer_trace);
    {
      const ProfilerListenerScope inner(&inner_trace);
      EXPECT_EQ(Profiler::thread_listener(), &inner_trace);
    }
    EXPECT_EQ(Profiler::thread_listener(), &outer_trace);
  }
  EXPECT_EQ(Profiler::thread_listener(), nullptr);
}

TEST(TracingRequestTrace, SummaryJsonSegregatesWallKeys) {
  const util::Timer clock;
  RequestTrace trace(TraceContext::derive("r-7", true), clock);
  trace.add_complete("svc.queue", 0.0, 1.0);
  const FinishedTrace finished =
      trace.finish("r-7", "solve", "sampled", 0, 5.0);
  const JsonValue doc = finished.summary_json();
  EXPECT_EQ(doc.string_at("trace_id"), finished.ctx.trace_id);
  EXPECT_EQ(doc.string_at("request_id"), "r-7");
  EXPECT_EQ(doc.string_at("keep_reason"), "sampled");
  EXPECT_EQ(doc.number_at("spans"), 2.0);
  const JsonValue& root = doc.at("root");
  EXPECT_EQ(root.string_at("name"), "svc.request");
  EXPECT_TRUE(root.contains("wall_dur_ms"));
  EXPECT_TRUE(root.contains("wall_start_ms"));
  EXPECT_FALSE(root.contains("dur_ms"));
  const JsonValue& child = root.at("children").as_array()[0];
  EXPECT_EQ(child.string_at("name"), "svc.queue");
  EXPECT_FALSE(child.contains("children"));  // omitted when empty
}

// --- TraceWriter ------------------------------------------------------------

FinishedTrace make_trace(const std::string& request_id) {
  const util::Timer clock;
  RequestTrace trace(TraceContext::derive(request_id, true), clock);
  trace.begin("svc.solve");
  trace.end();
  return trace.finish(request_id, "solve", "sampled", 0, 1.0);
}

TEST(TracingWriter, WritesLoadableChromeTraceWithDeterministicFooter) {
  const std::string path = testing::TempDir() + "mecsc_trace_writer.json";
  {
    TraceWriter::Options options;
    options.path = path;
    TraceWriter writer(options);
    writer.write(make_trace("w-1"));
    writer.write(make_trace("w-2"));
    writer.close();
    EXPECT_EQ(writer.written(), 2u);
    EXPECT_EQ(writer.dropped(), 0u);
  }
  const JsonValue doc = util::parse_json(read_file(path));
  EXPECT_EQ(doc.number_at("obs_format_version"), 1.0);
  EXPECT_EQ(doc.string_at("displayTimeUnit"), "ms");
  EXPECT_EQ(doc.number_at("kept_traces"), 2.0);
  EXPECT_EQ(doc.number_at("summaries_dropped"), 0.0);
  EXPECT_EQ(doc.number_at("wall_dropped_traces"), 0.0);

  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 4u);  // 2 traces x (root + svc.solve)
  // First pass: find each trace's root span id (span ids are namespaced
  // by the inbound parent span, so the roots are discovered, not derived).
  std::map<std::string, std::string> root_span;
  for (const JsonValue& ev : events) {
    if (ev.string_at("name") == "svc.request") {
      root_span[ev.at("args").string_at("trace_id")] =
          ev.at("args").string_at("span_id");
    }
  }
  EXPECT_EQ(root_span.size(), 2u);
  std::set<std::string> span_ids;
  for (const JsonValue& ev : events) {
    EXPECT_EQ(ev.string_at("ph"), "X");
    EXPECT_EQ(ev.number_at("pid"), 1.0);
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.contains("dur"));
    const JsonValue& args = ev.at("args");
    EXPECT_EQ(args.string_at("trace_id").size(), 32u);
    span_ids.insert(args.string_at("span_id"));
    // Every non-root event's parent is its own trace's root.
    if (ev.string_at("name") != "svc.request") {
      EXPECT_EQ(args.string_at("parent_span_id"),
                root_span[args.string_at("trace_id")]);
    }
  }
  EXPECT_EQ(span_ids.size(), 4u);

  const util::JsonArray& summaries = doc.at("traces").as_array();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].string_at("request_id"), "w-1");
  EXPECT_EQ(summaries[1].string_at("request_id"), "w-2");
  // The root event's ts reflects the base offset (1.0 ms -> 1000 us).
  EXPECT_GE(events[0].number_at("ts"), 1000.0);
}

TEST(TracingWriter, WriteAfterCloseCountsAsDropped) {
  const std::string path = testing::TempDir() + "mecsc_trace_closed.json";
  TraceWriter::Options options;
  options.path = path;
  TraceWriter writer(options);
  writer.close();
  writer.write(make_trace("late"));
  EXPECT_EQ(writer.written(), 0u);
  EXPECT_EQ(writer.dropped(), 1u);
  // The footer was written exactly once; the artifact stays parseable.
  const JsonValue doc = util::parse_json(read_file(path));
  EXPECT_EQ(doc.number_at("kept_traces"), 0.0);
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(TracingWriter, SummaryOverflowIsCountedNotSilent) {
  const std::string path = testing::TempDir() + "mecsc_trace_overflow.json";
  {
    TraceWriter::Options options;
    options.path = path;
    options.max_summaries = 2;
    TraceWriter writer(options);
    for (int i = 0; i < 5; ++i)
      writer.write(make_trace("o-" + std::to_string(i)));
    writer.close();
  }
  const JsonValue doc = util::parse_json(read_file(path));
  EXPECT_EQ(doc.number_at("kept_traces"), 5.0);
  EXPECT_EQ(doc.at("traces").as_array().size(), 2u);
  EXPECT_EQ(doc.number_at("summaries_dropped"), 3.0);
}

// Concurrent producers against one writer; TSan (ctest -L concurrency)
// checks the queue discipline, and written+dropped must account for every
// write regardless of interleaving.
TEST(TracingWriterConcurrency, ParallelWritersNeverLoseCountedTraces) {
  const std::string path = testing::TempDir() + "mecsc_trace_conc.json";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
  {
    TraceWriter::Options options;
    options.path = path;
    options.queue_capacity = 16;  // small enough to exercise the drop path
    TraceWriter writer(options);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&writer, t] {
        for (int i = 0; i < kPerThread; ++i) {
          writer.write(
              make_trace("c-" + std::to_string(t) + "-" + std::to_string(i)));
        }
      });
    }
    for (std::thread& p : producers) p.join();
    writer.close();
    written = writer.written();
    dropped = writer.dropped();
  }
  EXPECT_EQ(written + dropped,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const JsonValue doc = util::parse_json(read_file(path));
  EXPECT_EQ(doc.number_at("kept_traces"), static_cast<double>(written));
}

// --- FlightRecorder ---------------------------------------------------------

RequestEvent make_event(const std::string& request_id) {
  RequestEvent event;
  event.request_id = request_id;
  event.type = "solve";
  event.total_ms = 1.0;
  return event;
}

TEST(FlightRecorder, RingKeepsTheLastNOldestFirst) {
  FlightRecorder flight(3);
  for (int i = 0; i < 5; ++i) {
    flight.record(make_event("f-" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(flight.size(), 3u);
  EXPECT_EQ(flight.recorded_total(), 5u);
  const JsonValue doc = flight.to_json();
  EXPECT_EQ(doc.number_at("capacity"), 3.0);
  EXPECT_EQ(doc.number_at("recorded_total"), 5.0);
  const util::JsonArray& entries = doc.at("entries").as_array();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].at("event").string_at("request_id"), "f-2");
  EXPECT_EQ(entries[2].at("event").string_at("request_id"), "f-4");
  EXPECT_FALSE(entries[0].contains("trace"));
}

TEST(FlightRecorder, CapacityZeroClampsToOne) {
  FlightRecorder flight(0);
  EXPECT_EQ(flight.capacity(), 1u);
  flight.record(make_event("a"), nullptr);
  flight.record(make_event("b"), nullptr);
  EXPECT_EQ(flight.size(), 1u);
  EXPECT_EQ(flight.to_json().at("entries").as_array()[0].at("event")
                .string_at("request_id"),
            "b");
}

TEST(FlightRecorder, EntriesCarryTraceSummariesWhenPresent) {
  FlightRecorder flight(4);
  const FinishedTrace trace = make_trace("f-t");
  flight.record(make_event("f-t"), &trace);
  const JsonValue doc = flight.to_json();
  const JsonValue& entry = doc.at("entries").as_array()[0];
  ASSERT_TRUE(entry.contains("trace"));
  EXPECT_EQ(entry.at("trace").string_at("request_id"), "f-t");
  EXPECT_EQ(entry.at("trace").number_at("spans"), 2.0);
  EXPECT_EQ(entry.at("trace").at("root").string_at("name"), "svc.request");
}

// Recorders and dumpers racing; TSan checks the lock discipline and the
// final tallies must account for every record.
TEST(FlightRecorderConcurrency, ParallelRecordAndDumpStayConsistent) {
  FlightRecorder flight(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::atomic<bool> done{false};
  std::thread dumper([&flight, &done] {
    while (!done.load()) {
      const JsonValue doc = flight.to_json();
      ASSERT_LE(doc.at("entries").as_array().size(), 16u);
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&flight, t] {
      for (int i = 0; i < kPerThread; ++i) {
        flight.record(make_event(std::to_string(t) + "-" + std::to_string(i)),
                      nullptr);
      }
    });
  }
  for (std::thread& r : recorders) r.join();
  done.store(true);
  dumper.join();
  EXPECT_EQ(flight.recorded_total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(flight.size(), 16u);
}

}  // namespace
}  // namespace mecsc::obs
