#include "obs/run_info.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.h"

namespace mecsc::obs {
namespace {

// Published FNV-1a 64-bit test vectors — the digest must match across
// platforms, that is its whole point.
TEST(ObsRunInfo, Fnv1a64KnownAnswers) {
  EXPECT_EQ(fnv1a64_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(fnv1a64_hex("foobar"), "85944171f73967e8");
}

TEST(ObsRunInfo, DigestIsSensitiveToEveryByte) {
  EXPECT_NE(fnv1a64_hex("instance-a"), fnv1a64_hex("instance-b"));
  EXPECT_EQ(fnv1a64_hex("same"), fnv1a64_hex("same"));
  EXPECT_EQ(fnv1a64_hex("x").size(), 16u);
}

TEST(ObsRunInfo, ManifestJsonCarriesAllFields) {
  RunManifest m;
  m.tool = "mecsc";
  m.command = "solve";
  m.config["--seed"] = util::JsonValue("42");
  m.config["--algorithm"] = util::JsonValue("lcf");
  m.instance_digest = fnv1a64_hex("instance bytes");

  const util::JsonValue doc = manifest_to_json(m);
  EXPECT_EQ(doc.string_at("tool"), "mecsc");
  EXPECT_EQ(doc.string_at("command"), "solve");
  EXPECT_EQ(doc.number_at("obs_format_version"), kObsFormatVersion);
  EXPECT_EQ(doc.at("config").string_at("--seed"), "42");
  EXPECT_EQ(doc.at("config").string_at("--algorithm"), "lcf");
  EXPECT_EQ(doc.string_at("instance_digest"), m.instance_digest);
  EXPECT_TRUE(doc.at("build").contains("compiler"));
  EXPECT_TRUE(doc.at("build").contains("build_type"));
  // The only wall-clock field, and it wears the wall_ prefix so
  // strip_wallclock.py removes it before determinism diffs.
  EXPECT_TRUE(doc.contains("wall_written_unix_ms"));
}

TEST(ObsRunInfo, DeterministicSectionsIdenticalAcrossCalls) {
  RunManifest m;
  m.tool = "mecsc";
  m.command = "generate";
  m.config["--size"] = util::JsonValue("80");

  auto strip_wall = [](util::JsonValue doc) {
    util::JsonObject obj = doc.as_object();
    obj.erase("wall_written_unix_ms");
    return util::JsonValue(obj).dump(2);
  };
  EXPECT_EQ(strip_wall(manifest_to_json(m)), strip_wall(manifest_to_json(m)));
}

TEST(ObsRunInfo, WriteManifestProducesParseableFile) {
  const std::string path = testing::TempDir() + "/mecsc_manifest_test.json";
  RunManifest m;
  m.tool = "mecsc";
  m.command = "solve";
  write_manifest(path, m);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const util::JsonValue doc = util::parse_json(text.str());
  EXPECT_EQ(doc.string_at("tool"), "mecsc");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mecsc::obs
