# Shared warning / sanitizer / lint flags for every mecsc target.
#
# Every CMakeLists.txt in the tree links its targets against the
# `mecsc_build_flags` INTERFACE library defined here, so one knob controls
# the whole build:
#
#   MECSC_SANITIZE  semicolon list of sanitizers to instrument with.
#                   Supported: "address;undefined" (memory errors + UB) or
#                   "thread" (data races). ASan/UBSan compose; TSan must run
#                   alone. Empty (default) = no instrumentation.
#   MECSC_WERROR    promote warnings to errors (CI builds set this ON).
#   MECSC_CLANG_TIDY run clang-tidy alongside compilation when the tool is
#                   installed; a missing binary downgrades to a warning so
#                   local builds on minimal toolchains keep working.
#   MECSC_THREAD_SAFETY enable Clang Thread Safety Analysis
#                   (-Wthread-safety -Wthread-safety-beta) against the
#                   annotated primitives in src/util/sync.h. Requires Clang
#                   (the `tsa` preset selects clang++); on other compilers
#                   the option downgrades to a warning because the
#                   annotation macros expand to nothing there. Under
#                   MECSC_WERROR every analysis finding is an error.

set(MECSC_SANITIZE "" CACHE STRING
    "Sanitizers to enable: 'address;undefined' or 'thread' (empty = off)")
option(MECSC_WERROR "Treat compiler warnings as errors" OFF)
option(MECSC_CLANG_TIDY "Run clang-tidy during the build if available" OFF)
option(MECSC_THREAD_SAFETY
       "Enable Clang Thread Safety Analysis warnings (Clang only)" OFF)

add_library(mecsc_build_flags INTERFACE)

target_compile_options(mecsc_build_flags INTERFACE -Wall -Wextra)
if(MECSC_WERROR)
  target_compile_options(mecsc_build_flags INTERFACE -Werror)
endif()

if(MECSC_SANITIZE)
  set(_mecsc_san_flags "")
  foreach(_san IN LISTS MECSC_SANITIZE)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR
              "MECSC_SANITIZE: unknown sanitizer '${_san}' "
              "(expected address, undefined, thread, or leak)")
    endif()
    list(APPEND _mecsc_san_flags "-fsanitize=${_san}")
  endforeach()
  if("thread" IN_LIST MECSC_SANITIZE AND "address" IN_LIST MECSC_SANITIZE)
    message(FATAL_ERROR "MECSC_SANITIZE: thread and address are incompatible")
  endif()

  # Frame pointers keep sanitizer stack traces usable in optimized builds;
  # no-recover turns every UBSan diagnostic into a hard failure so CI cannot
  # scroll past one.
  list(APPEND _mecsc_san_flags -fno-omit-frame-pointer)
  if("undefined" IN_LIST MECSC_SANITIZE)
    list(APPEND _mecsc_san_flags -fno-sanitize-recover=undefined)
  endif()

  target_compile_options(mecsc_build_flags INTERFACE ${_mecsc_san_flags})
  target_link_options(mecsc_build_flags INTERFACE ${_mecsc_san_flags})
  message(STATUS "mecsc: sanitizers enabled: ${MECSC_SANITIZE}")
endif()

if(MECSC_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    target_compile_options(mecsc_build_flags INTERFACE
                           -Wthread-safety -Wthread-safety-beta)
    if(MECSC_WERROR)
      # Redundant with the global -Werror above, but explicit so the gate
      # survives a build that turns blanket -Werror off.
      target_compile_options(mecsc_build_flags INTERFACE
                             -Werror=thread-safety -Werror=thread-safety-beta)
    endif()
    message(STATUS "mecsc: Clang Thread Safety Analysis enabled")
  else()
    message(WARNING
            "MECSC_THREAD_SAFETY=ON needs Clang; the sync.h annotations "
            "compile to no-ops on ${CMAKE_CXX_COMPILER_ID}, so nothing is "
            "checked in this build")
  endif()
endif()

if(MECSC_CLANG_TIDY)
  find_program(MECSC_CLANG_TIDY_EXE NAMES clang-tidy)
  if(MECSC_CLANG_TIDY_EXE)
    # Applied globally; the checks themselves live in .clang-tidy at the
    # repo root so editors and CI agree on one configuration.
    set(CMAKE_CXX_CLANG_TIDY "${MECSC_CLANG_TIDY_EXE}")
    message(STATUS "mecsc: clang-tidy enabled: ${MECSC_CLANG_TIDY_EXE}")
  else()
    message(WARNING "MECSC_CLANG_TIDY=ON but clang-tidy was not found; "
                    "continuing without it")
  endif()
endif()
