#include "net/shortest_path.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace mecsc::net {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  if (target >= distance.size() || distance[target] == kUnreachable) {
    return {};
  }
  std::vector<NodeId> path;
  NodeId cur = target;
  path.push_back(cur);
  while (cur != source) {
    cur = parent[cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  assert(source < g.node_count());
  ShortestPathTree t;
  t.source = source;
  t.distance.assign(g.node_count(), kUnreachable);
  t.parent.assign(g.node_count(), source);
  t.parent_edge.assign(g.node_count(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) t.parent[v] = v;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.distance[source] = 0.0;
  t.parent[source] = source;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, n] = pq.top();
    pq.pop();
    if (d > t.distance[n]) continue;  // stale entry
    for (EdgeId e : g.incident_edges(n)) {
      const Edge& edge = g.edge(e);
      const NodeId m = edge.other(n);
      const double nd = d + edge.length;
      if (nd < t.distance[m]) {
        t.distance[m] = nd;
        t.parent[m] = n;
        t.parent_edge[m] = e;
        pq.emplace(nd, m);
      }
    }
  }
  return t;
}

ShortestPathTree bfs_hops(const Graph& g, NodeId source) {
  assert(source < g.node_count());
  ShortestPathTree t;
  t.source = source;
  t.distance.assign(g.node_count(), kUnreachable);
  t.parent.assign(g.node_count(), source);
  t.parent_edge.assign(g.node_count(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) t.parent[v] = v;

  std::queue<NodeId> q;
  t.distance[source] = 0.0;
  q.push(source);
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (EdgeId e : g.incident_edges(n)) {
      const NodeId m = g.edge(e).other(n);
      if (t.distance[m] == kUnreachable) {
        t.distance[m] = t.distance[n] + 1.0;
        t.parent[m] = n;
        t.parent_edge[m] = e;
        q.push(m);
      }
    }
  }
  return t;
}

DistanceMatrix::DistanceMatrix(const Graph& g, bool by_hops)
    : n_(g.node_count()), d_(n_ * n_, kUnreachable) {
  for (NodeId s = 0; s < n_; ++s) {
    const ShortestPathTree t = by_hops ? bfs_hops(g, s) : dijkstra(g, s);
    for (NodeId v = 0; v < n_; ++v) d_[s * n_ + v] = t.distance[v];
  }
}

double DistanceMatrix::diameter() const {
  double best = 0.0;
  for (double d : d_) {
    if (d != kUnreachable) best = std::max(best, d);
  }
  return best;
}

}  // namespace mecsc::net
