// Additional random-graph families: Erdős–Rényi G(n, p) and
// Barabási–Albert preferential attachment.
//
// The paper's experiments use GT-ITM transit-stub graphs and the measured
// AS1755 backbone; these families serve as *sensitivity substrates* — the
// MEC builder accepts any connected graph, so experiments can check that
// the mechanism's behaviour is not an artifact of the transit-stub shape
// (bench_topology_sensitivity) — and as adversarial inputs for property
// tests.
#pragma once

#include "net/graph.h"
#include "util/rng.h"

namespace mecsc::net {

struct ErdosRenyiParams {
  std::size_t node_count = 50;
  double edge_probability = 0.1;
  double length_lo = 1.0;  ///< per-edge length drawn uniformly
  double length_hi = 4.0;
  double bandwidth_lo_mbps = 500.0;
  double bandwidth_hi_mbps = 5000.0;
};

/// G(n, p), patched to connectivity by chaining components with one extra
/// edge each (same policy as the Waxman generator).
Graph generate_erdos_renyi(const ErdosRenyiParams& params, util::Rng& rng);

struct BarabasiAlbertParams {
  std::size_t node_count = 50;
  /// Edges added per new node (also the seed-clique size).
  std::size_t edges_per_node = 2;
  double length_lo = 1.0;
  double length_hi = 4.0;
  double bandwidth_lo_mbps = 500.0;
  double bandwidth_hi_mbps = 5000.0;
};

/// Barabási–Albert scale-free graph: new nodes attach to existing nodes
/// with probability proportional to degree. Always connected.
Graph generate_barabasi_albert(const BarabasiAlbertParams& params,
                               util::Rng& rng);

// --- Structural metrics ------------------------------------------------------

/// Degree distribution statistics of a graph.
struct DegreeStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
  /// Degree variance; heavy-tailed families (BA) have much larger variance
  /// than homogeneous ones (ER) at equal mean degree.
  double variance = 0.0;
};

DegreeStats degree_stats(const Graph& g);

/// Global clustering coefficient: 3 x triangles / connected triples
/// (0 for graphs with no triple). Parallel edges are counted once.
double clustering_coefficient(const Graph& g);

}  // namespace mecsc::net
