#include "net/transit_stub.h"

#include <cassert>
#include <cmath>

namespace mecsc::net {

TransitStubGraph generate_transit_stub(const TransitStubParams& params,
                                       util::Rng& rng) {
  assert(params.transit_domains >= 1);
  assert(params.nodes_per_transit >= 1);
  assert(params.nodes_per_stub >= 1);

  TransitStubGraph ts;
  std::size_t next_domain = 0;

  // --- Transit tier -------------------------------------------------------
  // One Waxman graph per transit domain; domains are chained by a single
  // inter-domain link each (GT-ITM links domains along a top-level Waxman
  // graph; with the small domain counts used here a chain is equivalent and
  // keeps the construction deterministic in shape).
  std::vector<std::vector<NodeId>> transit_domain_nodes;
  for (std::size_t d = 0; d < params.transit_domains; ++d) {
    WaxmanParams wp = params.transit_waxman;
    wp.node_count = params.nodes_per_transit;
    const SpatialGraph sg = generate_waxman(wp, rng);
    const NodeId base = ts.graph.add_nodes(sg.graph.node_count());
    for (const Edge& e : sg.graph.edges()) {
      ts.graph.add_edge(base + e.u, base + e.v,
                        e.length * params.transit_length_scale,
                        e.bandwidth_mbps);
    }
    std::vector<NodeId> ids;
    for (NodeId n = 0; n < sg.graph.node_count(); ++n) {
      ids.push_back(base + n);
      ts.kind.push_back(NodeKind::Transit);
      ts.domain.push_back(next_domain);
      ts.transit_nodes.push_back(base + n);
    }
    transit_domain_nodes.push_back(std::move(ids));
    ++next_domain;
  }
  for (std::size_t d = 1; d < transit_domain_nodes.size(); ++d) {
    const auto& a = transit_domain_nodes[d - 1];
    const auto& b = transit_domain_nodes[d];
    const NodeId u = a[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(a.size()) - 1))];
    const NodeId v = b[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1))];
    ts.graph.add_edge(u, v, params.transit_length_scale,
                      rng.uniform_real(params.transit_waxman.bandwidth_lo_mbps,
                                       params.transit_waxman.bandwidth_hi_mbps));
  }

  // --- Stub tier ----------------------------------------------------------
  for (const NodeId attach : ts.transit_nodes) {
    for (std::size_t s = 0; s < params.stubs_per_transit_node; ++s) {
      WaxmanParams wp = params.stub_waxman;
      wp.node_count = params.nodes_per_stub;
      const SpatialGraph sg = generate_waxman(wp, rng);
      const NodeId base = ts.graph.add_nodes(sg.graph.node_count());
      for (const Edge& e : sg.graph.edges()) {
        ts.graph.add_edge(base + e.u, base + e.v, e.length, e.bandwidth_mbps);
      }
      for (NodeId n = 0; n < sg.graph.node_count(); ++n) {
        ts.kind.push_back(NodeKind::Stub);
        ts.domain.push_back(next_domain);
        ts.stub_nodes.push_back(base + n);
      }
      // Attach the stub domain to its transit node through one gateway.
      const NodeId gw = base + static_cast<NodeId>(rng.uniform_int(
                                   0,
                                   static_cast<std::int64_t>(
                                       sg.graph.node_count()) -
                                       1));
      ts.graph.add_edge(attach, gw, params.transit_length_scale * 0.5,
                        rng.uniform_real(params.stub_waxman.bandwidth_lo_mbps,
                                         params.stub_waxman.bandwidth_hi_mbps));
      ++next_domain;
    }
  }

  assert(ts.graph.connected());
  return ts;
}

TransitStubGraph generate_transit_stub_sized(std::size_t target_nodes,
                                             util::Rng& rng) {
  assert(target_nodes >= 8);
  TransitStubParams p;
  // Per-transit-node subtree size = 1 + stubs * nodes_per_stub.
  p.stubs_per_transit_node = 3;
  p.nodes_per_stub = 4;
  const std::size_t per_transit_node =
      1 + p.stubs_per_transit_node * p.nodes_per_stub;  // 13
  // Choose transit breadth to land near the target.
  std::size_t total_transit_nodes =
      std::max<std::size_t>(1, (target_nodes + per_transit_node / 2) /
                                   per_transit_node);
  p.transit_domains = total_transit_nodes <= 4 ? 1 : (total_transit_nodes + 5) / 6;
  p.nodes_per_transit =
      std::max<std::size_t>(1, total_transit_nodes / p.transit_domains);
  return generate_transit_stub(p, rng);
}

}  // namespace mecsc::net
