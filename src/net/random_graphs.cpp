#include "net/random_graphs.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

namespace mecsc::net {

namespace {

/// Joins components by chaining one node of each to the next (deterministic
/// given the component labeling).
void patch_connectivity(Graph& g, util::Rng& rng, double length_lo,
                        double length_hi, double bw_lo, double bw_hi) {
  std::vector<std::size_t> comp(g.node_count(), g.node_count());
  std::size_t count = 0;
  std::vector<NodeId> representative;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (comp[s] != g.node_count()) continue;
    representative.push_back(s);
    comp[s] = count;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (EdgeId e : g.incident_edges(n)) {
        const NodeId m = g.edge(e).other(n);
        if (comp[m] == g.node_count()) {
          comp[m] = count;
          stack.push_back(m);
        }
      }
    }
    ++count;
  }
  for (std::size_t c = 1; c < representative.size(); ++c) {
    g.add_edge(representative[c - 1], representative[c],
               rng.uniform_real(length_lo, length_hi),
               rng.uniform_real(bw_lo, bw_hi));
  }
}

}  // namespace

Graph generate_erdos_renyi(const ErdosRenyiParams& params, util::Rng& rng) {
  assert(params.node_count >= 1);
  assert(params.edge_probability >= 0.0 && params.edge_probability <= 1.0);
  Graph g(params.node_count);
  for (NodeId u = 0; u < params.node_count; ++u) {
    for (NodeId v = u + 1; v < params.node_count; ++v) {
      if (rng.bernoulli(params.edge_probability)) {
        g.add_edge(u, v, rng.uniform_real(params.length_lo, params.length_hi),
                   rng.uniform_real(params.bandwidth_lo_mbps,
                                    params.bandwidth_hi_mbps));
      }
    }
  }
  patch_connectivity(g, rng, params.length_lo, params.length_hi,
                     params.bandwidth_lo_mbps, params.bandwidth_hi_mbps);
  return g;
}

Graph generate_barabasi_albert(const BarabasiAlbertParams& params,
                               util::Rng& rng) {
  const std::size_t m = std::max<std::size_t>(params.edges_per_node, 1);
  assert(params.node_count > m);
  Graph g(params.node_count);
  // Seed clique of m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      g.add_edge(u, v, rng.uniform_real(params.length_lo, params.length_hi),
                 rng.uniform_real(params.bandwidth_lo_mbps,
                                  params.bandwidth_hi_mbps));
    }
  }
  // Preferential attachment via the endpoint-repetition trick: sampling a
  // uniform endpoint of a uniform existing edge IS degree-proportional.
  for (NodeId n = m + 1; n < params.node_count; ++n) {
    std::set<NodeId> targets;
    while (targets.size() < m) {
      const auto e = static_cast<EdgeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(g.edge_count()) - 1));
      const NodeId pick =
          rng.bernoulli(0.5) ? g.edge(e).u : g.edge(e).v;
      if (pick != n) targets.insert(pick);
    }
    for (const NodeId t : targets) {
      g.add_edge(n, t, rng.uniform_real(params.length_lo, params.length_hi),
                 rng.uniform_real(params.bandwidth_lo_mbps,
                                  params.bandwidth_hi_mbps));
    }
  }
  return g;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.node_count() == 0) return s;
  s.min = g.degree(0);
  double sum = 0.0, sq = 0.0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const std::size_t d = g.degree(n);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += static_cast<double>(d);
    sq += static_cast<double>(d) * static_cast<double>(d);
  }
  const auto n = static_cast<double>(g.node_count());
  s.mean = sum / n;
  s.variance = sq / n - s.mean * s.mean;
  return s;
}

double clustering_coefficient(const Graph& g) {
  // Adjacency sets with parallel edges collapsed.
  std::vector<std::set<NodeId>> adj(g.node_count());
  for (const Edge& e : g.edges()) {
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }
  std::size_t triangles3 = 0;  // each triangle counted 3 times
  std::size_t triples = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::size_t d = adj[v].size();
    if (d < 2) continue;
    triples += d * (d - 1) / 2;
    for (auto it = adj[v].begin(); it != adj[v].end(); ++it) {
      for (auto jt = std::next(it); jt != adj[v].end(); ++jt) {
        if (adj[*it].count(*jt)) ++triangles3;
      }
    }
  }
  if (triples == 0) return 0.0;
  return static_cast<double>(triangles3) / static_cast<double>(triples);
}

}  // namespace mecsc::net
