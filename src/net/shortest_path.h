// Shortest-path computations over net::Graph: Dijkstra by edge length,
// BFS by hop count, and cached all-pairs matrices. The MEC cost model uses
// hop/length distances between cloudlets and data centers for update-traffic
// pricing and remote-access latency.
#pragma once

#include <limits>
#include <vector>

#include "net/graph.h"

namespace mecsc::net {

/// Sentinel distance for unreachable nodes.
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path run.
struct ShortestPathTree {
  NodeId source = 0;
  std::vector<double> distance;    ///< distance[v] or kUnreachable
  std::vector<NodeId> parent;      ///< parent[v] on the tree; source's parent
                                   ///< is itself; unreachable nodes keep it too
  std::vector<EdgeId> parent_edge; ///< edge to parent (undefined for source)

  /// Reconstructs the node path source -> target (empty if unreachable).
  std::vector<NodeId> path_to(NodeId target) const;
};

/// Dijkstra by Edge::length. O((V + E) log V).
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// BFS hop distances (every edge counts 1).
ShortestPathTree bfs_hops(const Graph& g, NodeId source);

/// Dense all-pairs distance matrix, computed by running Dijkstra from every
/// node. Suitable for the topology sizes in the paper (<= ~400 nodes).
class DistanceMatrix {
 public:
  /// If `by_hops` is true, distances are hop counts instead of lengths.
  explicit DistanceMatrix(const Graph& g, bool by_hops = false);

  std::size_t node_count() const { return n_; }
  double at(NodeId u, NodeId v) const { return d_[u * n_ + v]; }

  /// Largest finite pairwise distance (0 for empty/singleton graphs).
  double diameter() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;
};

}  // namespace mecsc::net
