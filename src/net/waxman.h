// Waxman random graph generator (Waxman 1988), the edge model used inside
// GT-ITM's transit and stub domains. Nodes are scattered uniformly in the
// unit square; an edge (u, v) appears with probability
//   p(u, v) = alpha * exp(-d(u, v) / (beta * L)),
// where d is Euclidean distance and L the maximum possible distance.
// The generator then patches connectivity by linking components along their
// nearest pair, so the returned graph is always connected (GT-ITM retries
// until connected; patching is deterministic and cheaper).
#pragma once

#include <vector>

#include "net/graph.h"
#include "util/rng.h"

namespace mecsc::net {

/// Parameters of the Waxman model.
struct WaxmanParams {
  std::size_t node_count = 50;
  double alpha = 0.4;  ///< edge density knob, in (0, 1]
  double beta = 0.4;   ///< edge length decay knob, in (0, 1]
  /// Range from which each created link's bandwidth (Mbps) is drawn.
  double bandwidth_lo_mbps = 1000.0;
  double bandwidth_hi_mbps = 10000.0;
};

/// A generated topology together with node coordinates (kept because the
/// MEC builder places cloudlets "at the network edge", i.e. low-degree /
/// peripheral nodes).
struct SpatialGraph {
  Graph graph;
  std::vector<double> x;  ///< unit-square coordinates per node
  std::vector<double> y;
};

/// Generates a connected Waxman graph. Edge length is the Euclidean
/// distance between endpoints.
SpatialGraph generate_waxman(const WaxmanParams& params, util::Rng& rng);

}  // namespace mecsc::net
