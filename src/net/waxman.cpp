#include "net/waxman.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace mecsc::net {

namespace {
double euclid(const SpatialGraph& sg, NodeId u, NodeId v) {
  const double dx = sg.x[u] - sg.x[v];
  const double dy = sg.y[u] - sg.y[v];
  return std::sqrt(dx * dx + dy * dy);
}

/// Labels each node with its component id; returns component count.
std::size_t label_components(const Graph& g, std::vector<std::size_t>& comp) {
  comp.assign(g.node_count(), g.node_count());
  std::size_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (comp[s] != g.node_count()) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (EdgeId e : g.incident_edges(n)) {
        const NodeId m = g.edge(e).other(n);
        if (comp[m] == g.node_count()) {
          comp[m] = comp[n];
          stack.push_back(m);
        }
      }
    }
    ++next;
  }
  return next;
}
}  // namespace

SpatialGraph generate_waxman(const WaxmanParams& params, util::Rng& rng) {
  assert(params.node_count >= 1);
  assert(params.alpha > 0.0 && params.alpha <= 1.0);
  assert(params.beta > 0.0 && params.beta <= 1.0);

  SpatialGraph sg;
  sg.graph = Graph(params.node_count);
  sg.x.resize(params.node_count);
  sg.y.resize(params.node_count);
  for (std::size_t i = 0; i < params.node_count; ++i) {
    sg.x[i] = rng.uniform_real(0.0, 1.0);
    sg.y[i] = rng.uniform_real(0.0, 1.0);
  }

  const double max_dist = std::sqrt(2.0);  // unit-square diagonal
  auto draw_bandwidth = [&] {
    return rng.uniform_real(params.bandwidth_lo_mbps,
                            params.bandwidth_hi_mbps);
  };

  for (NodeId u = 0; u < params.node_count; ++u) {
    for (NodeId v = u + 1; v < params.node_count; ++v) {
      const double d = euclid(sg, u, v);
      const double p =
          params.alpha * std::exp(-d / (params.beta * max_dist));
      if (rng.bernoulli(p)) {
        sg.graph.add_edge(u, v, d, draw_bandwidth());
      }
    }
  }

  // Patch connectivity: repeatedly join the two closest nodes that are in
  // different components.
  std::vector<std::size_t> comp;
  while (label_components(sg.graph, comp) > 1) {
    double best = std::numeric_limits<double>::infinity();
    NodeId bu = 0, bv = 0;
    for (NodeId u = 0; u < params.node_count; ++u) {
      for (NodeId v = u + 1; v < params.node_count; ++v) {
        if (comp[u] == comp[v]) continue;
        const double d = euclid(sg, u, v);
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    sg.graph.add_edge(bu, bv, best, draw_bandwidth());
  }
  return sg;
}

}  // namespace mecsc::net
