#include "net/graph.h"

#include <cassert>

namespace mecsc::net {

NodeId Graph::add_nodes(std::size_t count) {
  const NodeId first = adjacency_.size();
  adjacency_.resize(adjacency_.size() + count);
  return first;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double length,
                       double bandwidth_mbps) {
  assert(u != v && "self-loops are not allowed");
  assert(u < adjacency_.size() && v < adjacency_.size());
  assert(length >= 0.0);
  const EdgeId id = edges_.size();
  edges_.push_back(Edge{u, v, length, bandwidth_mbps});
  adjacency_[u].push_back(id);
  adjacency_[v].push_back(id);
  return id;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= adjacency_.size()) return false;
  for (EdgeId e : adjacency_[u]) {
    if (edges_[e].other(u) == v) return true;
  }
  return false;
}

std::size_t Graph::component_count() const {
  if (adjacency_.empty()) return 0;
  std::vector<bool> seen(adjacency_.size(), false);
  std::size_t components = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < adjacency_.size(); ++start) {
    if (seen[start]) continue;
    ++components;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (EdgeId e : adjacency_[n]) {
        const NodeId m = edges_[e].other(n);
        if (!seen[m]) {
          seen[m] = true;
          stack.push_back(m);
        }
      }
    }
  }
  return components;
}

bool Graph::connected() const {
  return node_count() <= 1 || component_count() == 1;
}

}  // namespace mecsc::net
