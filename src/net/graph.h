// Undirected weighted graph used to model network topologies (switch-level
// connectivity of the two-tiered MEC network). Nodes are dense 0-based ids;
// edges carry a length (propagation metric) and a bandwidth capacity.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mecsc::net {

using NodeId = std::size_t;
using EdgeId = std::size_t;

/// One undirected edge.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double length = 1.0;        ///< distance/latency metric (>= 0)
  double bandwidth_mbps = 0;  ///< link capacity in Mbps

  /// The endpoint that is not `from`. Precondition: from is u or v.
  NodeId other(NodeId from) const { return from == u ? v : u; }
};

/// Undirected graph with adjacency lists. Parallel edges are allowed
/// (transit-stub composition can create them); self-loops are rejected.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Appends `count` fresh isolated nodes, returning the id of the first.
  NodeId add_nodes(std::size_t count);

  /// Adds an undirected edge; returns its id. Precondition: u != v, both
  /// ids valid, length >= 0.
  EdgeId add_edge(NodeId u, NodeId v, double length = 1.0,
                  double bandwidth_mbps = 0.0);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  /// Edge ids incident to `n`.
  std::span<const EdgeId> incident_edges(NodeId n) const {
    return adjacency_[n];
  }

  std::size_t degree(NodeId n) const { return adjacency_[n].size(); }

  /// True if an edge (u, v) already exists (either orientation).
  bool has_edge(NodeId u, NodeId v) const;

  /// True if every node can reach every other node.
  bool connected() const;

  /// Number of connected components (0 for the empty graph).
  std::size_t component_count() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace mecsc::net
