#include "net/mec_network.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mecsc::net {

MecNetwork::MecNetwork(Graph topology, const MecNetworkParams& params,
                       util::Rng& rng,
                       const std::vector<NodeId>& edge_preference)
    : topology_(std::move(topology)) {
  const std::size_t n = topology_.node_count();
  assert(n >= 2);
  const std::size_t cloudlet_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) *
                                  params.cloudlet_fraction));
  const std::size_t dc_count =
      std::min(params.data_center_count, n - cloudlet_count);
  assert(dc_count >= 1 && "topology too small to host any data center");

  std::vector<bool> used(n, false);

  // --- Cloudlet placement: edge-preferred nodes first, shuffled so repeated
  // builds with different rng seeds explore different placements.
  std::vector<NodeId> pref = edge_preference;
  rng.shuffle(pref);
  std::vector<NodeId> chosen;
  for (NodeId v : pref) {
    if (chosen.size() >= cloudlet_count) break;
    if (v < n && !used[v]) {
      used[v] = true;
      chosen.push_back(v);
    }
  }
  if (chosen.size() < cloudlet_count) {
    // Fill from lowest-degree (most peripheral) unused nodes; ties broken by
    // shuffled order.
    std::vector<NodeId> rest;
    for (NodeId v = 0; v < n; ++v) {
      if (!used[v]) rest.push_back(v);
    }
    rng.shuffle(rest);
    std::stable_sort(rest.begin(), rest.end(), [&](NodeId a, NodeId b) {
      return topology_.degree(a) < topology_.degree(b);
    });
    for (NodeId v : rest) {
      if (chosen.size() >= cloudlet_count) break;
      used[v] = true;
      chosen.push_back(v);
    }
  }
  for (NodeId v : chosen) {
    const auto vms = static_cast<double>(
        rng.uniform_int(static_cast<std::int64_t>(params.vms_lo),
                        static_cast<std::int64_t>(params.vms_hi)));
    const double per_vm_bw = rng.uniform_real(params.vm_bandwidth_lo_mbps,
                                              params.vm_bandwidth_hi_mbps);
    cloudlets_.push_back(Cloudlet{v, vms, vms * per_vm_bw});
  }

  // --- Data-center placement: highest-degree unused nodes (the core).
  std::vector<NodeId> rest;
  for (NodeId v = 0; v < n; ++v) {
    if (!used[v]) rest.push_back(v);
  }
  rng.shuffle(rest);
  std::stable_sort(rest.begin(), rest.end(), [&](NodeId a, NodeId b) {
    return topology_.degree(a) > topology_.degree(b);
  });
  for (std::size_t i = 0; i < dc_count; ++i) {
    data_centers_.push_back(DataCenter{rest[i]});
  }

  compute_distances();
}

MecNetwork::MecNetwork(Graph topology, std::vector<Cloudlet> cloudlets,
                       std::vector<DataCenter> data_centers)
    : topology_(std::move(topology)),
      cloudlets_(std::move(cloudlets)),
      data_centers_(std::move(data_centers)) {
  assert(!cloudlets_.empty() && !data_centers_.empty());
  for (const auto& cl : cloudlets_) {
    assert(cl.node < topology_.node_count());
    (void)cl;
  }
  for (const auto& dc : data_centers_) {
    assert(dc.node < topology_.node_count());
    (void)dc;
  }
  compute_distances();
}

void MecNetwork::compute_distances() {
  // Hop counts; the cost model prices update traffic per hop.
  cl_dc_hops_.assign(cloudlets_.size() * data_centers_.size(), kUnreachable);
  cl_cl_hops_.assign(cloudlets_.size() * cloudlets_.size(), kUnreachable);
  for (std::size_t c = 0; c < cloudlets_.size(); ++c) {
    const ShortestPathTree t = bfs_hops(topology_, cloudlets_[c].node);
    for (std::size_t d = 0; d < data_centers_.size(); ++d) {
      cl_dc_hops_[c * data_centers_.size() + d] =
          t.distance[data_centers_[d].node];
    }
    for (std::size_t c2 = 0; c2 < cloudlets_.size(); ++c2) {
      cl_cl_hops_[c * cloudlets_.size() + c2] =
          t.distance[cloudlets_[c2].node];
    }
  }
}

double MecNetwork::cloudlet_to_dc_hops(std::size_t cl, std::size_t dc) const {
  assert(cl < cloudlets_.size() && dc < data_centers_.size());
  return cl_dc_hops_[cl * data_centers_.size() + dc];
}

double MecNetwork::cloudlet_to_cloudlet_hops(std::size_t a,
                                             std::size_t b) const {
  assert(a < cloudlets_.size() && b < cloudlets_.size());
  return cl_cl_hops_[a * cloudlets_.size() + b];
}

std::size_t MecNetwork::nearest_dc(std::size_t cl) const {
  assert(cl < cloudlets_.size());
  std::size_t best = 0;
  for (std::size_t d = 1; d < data_centers_.size(); ++d) {
    if (cloudlet_to_dc_hops(cl, d) < cloudlet_to_dc_hops(cl, best)) best = d;
  }
  return best;
}

double MecNetwork::max_cloudlet_dc_hops() const {
  double best = 0.0;
  for (double h : cl_dc_hops_) {
    if (h != kUnreachable) best = std::max(best, h);
  }
  return best;
}

}  // namespace mecsc::net
