#include "net/topology_zoo.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace mecsc::net {

Graph as1755_topology() {
  // Published Rocketfuel backbone statistics for AS1755 (Ebone):
  // 87 routers, 161 links.
  constexpr std::size_t kNodes = 87;
  constexpr std::size_t kLinks = 161;
  constexpr std::size_t kCore = 4;  // fully meshed dense core

  // Fixed seed makes this function a pure constant; experiments that "use
  // AS1755" are reproducible across runs and machines.
  util::Rng rng(0xA51755);
  Graph g(kNodes);

  // Core mesh.
  for (NodeId u = 0; u < kCore; ++u) {
    for (NodeId v = u + 1; v < kCore; ++v) {
      g.add_edge(u, v, 1.0, rng.uniform_real(2000.0, 10000.0));
    }
  }

  // Preferential attachment: each new node connects to 1-2 existing nodes
  // chosen with probability proportional to degree (+1). This yields the
  // heavy-tailed degree shape of measured router-level ISP maps.
  for (NodeId n = kCore; n < kNodes; ++n) {
    const int stubs = rng.bernoulli(0.55) ? 2 : 1;
    for (int s = 0; s < stubs; ++s) {
      // Weighted pick over existing nodes by degree + 1.
      std::size_t total = 0;
      for (NodeId m = 0; m < n; ++m) total += g.degree(m) + 1;
      auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
      NodeId target = 0;
      for (NodeId m = 0; m < n; ++m) {
        const std::size_t w = g.degree(m) + 1;
        if (pick < w) {
          target = m;
          break;
        }
        pick -= w;
      }
      if (!g.has_edge(n, target)) {
        g.add_edge(n, target, rng.uniform_real(1.0, 4.0),
                   rng.uniform_real(500.0, 5000.0));
      }
    }
  }

  // Top up to exactly kLinks with random shortcut links (avoiding
  // duplicates), biased toward the core like real ISP shortcut links.
  while (g.edge_count() < kLinks) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, kNodes - 1));
    const auto v = static_cast<NodeId>(
        rng.uniform_int(0, rng.bernoulli(0.4) ? kCore - 1 : kNodes - 1));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v, rng.uniform_real(1.0, 4.0),
               rng.uniform_real(500.0, 5000.0));
  }
  return g;
}

Graph parse_edge_list(const std::string& text) {
  struct Row {
    std::size_t u, v;
    double length, bw;
  };
  std::vector<Row> rows;
  std::size_t max_id = 0;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    Row r{};
    if (!(ls >> r.u)) continue;  // blank/comment-only line
    if (!(ls >> r.v >> r.length >> r.bw)) {
      throw std::invalid_argument("edge list line " + std::to_string(lineno) +
                                  ": expected 'u v length bandwidth'");
    }
    if (r.u == r.v) {
      throw std::invalid_argument("edge list line " + std::to_string(lineno) +
                                  ": self-loop");
    }
    if (r.length < 0.0) {
      throw std::invalid_argument("edge list line " + std::to_string(lineno) +
                                  ": negative length");
    }
    max_id = std::max({max_id, r.u, r.v});
    rows.push_back(r);
  }
  Graph g(rows.empty() ? 0 : max_id + 1);
  for (const Row& r : rows) g.add_edge(r.u, r.v, r.length, r.bw);
  return g;
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os.precision(17);  // round-trips double exactly
  os << "# " << g.node_count() << " nodes, " << g.edge_count() << " edges\n";
  for (const Edge& e : g.edges()) {
    os << e.u << " " << e.v << " " << e.length << " " << e.bandwidth_mbps
       << "\n";
  }
  return os.str();
}

}  // namespace mecsc::net
