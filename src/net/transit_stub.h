// GT-ITM-style transit-stub topology generator.
//
// GT-ITM (Georgia Tech Internetwork Topology Models) composes internet-like
// graphs hierarchically: a small Waxman graph of *transit domains*, each
// transit node expanded into a Waxman *transit network*, and several *stub
// domains* (Waxman again) hanging off each transit node. The paper generates
// its 50-400 node simulation topologies with GT-ITM; this module is a from-
// scratch reimplementation of that construction (see DESIGN.md /
// Substitutions).
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.h"
#include "net/waxman.h"
#include "util/rng.h"

namespace mecsc::net {

/// Shape parameters of the transit-stub hierarchy.
struct TransitStubParams {
  std::size_t transit_domains = 1;        ///< top-level domains
  std::size_t nodes_per_transit = 4;      ///< nodes per transit domain
  std::size_t stubs_per_transit_node = 3; ///< stub domains per transit node
  std::size_t nodes_per_stub = 4;         ///< nodes per stub domain
  WaxmanParams transit_waxman{.node_count = 0, .alpha = 0.6, .beta = 0.6};
  WaxmanParams stub_waxman{.node_count = 0, .alpha = 0.42, .beta = 0.42};
  /// Length multiplier applied to inter-domain (transit) links: transit
  /// links span geographically larger distances than stub-local links.
  double transit_length_scale = 10.0;
};

/// Classification of each generated node.
enum class NodeKind { Transit, Stub };

/// A generated transit-stub topology.
struct TransitStubGraph {
  Graph graph;
  std::vector<NodeKind> kind;         ///< per node
  std::vector<std::size_t> domain;    ///< domain index per node (stub domains
                                      ///< and transit domains share one
                                      ///< numbering space)
  std::vector<NodeId> transit_nodes;  ///< ids of all transit nodes
  std::vector<NodeId> stub_nodes;     ///< ids of all stub nodes
};

/// Generates a connected transit-stub graph. Total node count is
/// transit_domains * nodes_per_transit * (1 + stubs_per_transit_node *
/// nodes_per_stub).
TransitStubGraph generate_transit_stub(const TransitStubParams& params,
                                       util::Rng& rng);

/// Convenience: picks hierarchy parameters so the total node count is close
/// to `target_nodes` (matching the paper's "network size 50..400" knob),
/// then generates the graph. Guaranteed to produce a connected graph whose
/// size is within ~20% of the target.
TransitStubGraph generate_transit_stub_sized(std::size_t target_nodes,
                                             util::Rng& rng);

}  // namespace mecsc::net
