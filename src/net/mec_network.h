// Two-tiered mobile edge-cloud (MEC) network model: G = (CL ∪ DC, E).
//
// Built on top of a switch-level topology (transit-stub or AS1755), this
// module selects which nodes host cloudlets (10% of the network size,
// placed at the network edge = stub/low-degree nodes, matching §IV-A) and
// which host the remote data centers (5, placed at well-connected core
// nodes), assigns resource capacities, and precomputes the distance
// matrices the cost model consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.h"
#include "net/shortest_path.h"
#include "util/rng.h"

namespace mecsc::net {

/// A cloudlet: an edge site with finite computing (VM) and bandwidth
/// capacity, managed by the infrastructure provider (§II-A).
struct Cloudlet {
  NodeId node = 0;              ///< attachment point in the switch graph
  double compute_capacity = 0;  ///< C(CL_i), in VM units
  double bandwidth_capacity = 0;  ///< B(CL_i), in Mbps
};

/// A remote data center. Capacity is unconstrained (§II-A: "we do not
/// consider the capacity constraint of each data center").
struct DataCenter {
  NodeId node = 0;
};

/// Knobs for building an MecNetwork from a raw topology; defaults follow the
/// paper's parameter settings (§IV-A).
struct MecNetworkParams {
  double cloudlet_fraction = 0.10;  ///< |CL| = fraction * node count
  std::size_t data_center_count = 5;
  std::size_t vms_lo = 15;  ///< VMs per cloudlet drawn from [vms_lo, vms_hi]
  std::size_t vms_hi = 30;
  double vm_bandwidth_lo_mbps = 10.0;   ///< per-VM bandwidth in [10, 100] Mbps
  double vm_bandwidth_hi_mbps = 100.0;
};

/// The two-tiered MEC network: topology + cloudlet/DC placement +
/// capacities + hop distances.
class MecNetwork {
 public:
  /// Builds an MEC network over `topology`. `edge_preference` orders
  /// candidate cloudlet nodes: nodes listed there are used first (pass the
  /// stub nodes of a transit-stub graph); remaining cloudlets are drawn from
  /// the lowest-degree unused nodes. Data centers go to the highest-degree
  /// nodes not used by cloudlets.
  MecNetwork(Graph topology, const MecNetworkParams& params, util::Rng& rng,
             const std::vector<NodeId>& edge_preference = {});

  /// Builds from explicit placements (deserialization path): the cloudlet /
  /// data-center sets are taken verbatim and only the distance matrices are
  /// recomputed. Preconditions: all node ids valid, at least one of each.
  MecNetwork(Graph topology, std::vector<Cloudlet> cloudlets,
             std::vector<DataCenter> data_centers);

  const Graph& topology() const { return topology_; }
  const std::vector<Cloudlet>& cloudlets() const { return cloudlets_; }
  const std::vector<DataCenter>& data_centers() const { return data_centers_; }

  std::size_t cloudlet_count() const { return cloudlets_.size(); }
  std::size_t data_center_count() const { return data_centers_.size(); }

  /// Hop distance between cloudlet `cl` and data center `dc` (by index).
  double cloudlet_to_dc_hops(std::size_t cl, std::size_t dc) const;

  /// Hop distance between two cloudlets (by index).
  double cloudlet_to_cloudlet_hops(std::size_t a, std::size_t b) const;

  /// Index of the data center closest (in hops) to cloudlet `cl`.
  std::size_t nearest_dc(std::size_t cl) const;

  /// Largest cloudlet-to-DC hop distance in the network (normalization
  /// constant for cost scaling).
  double max_cloudlet_dc_hops() const;

 private:
  void compute_distances();

  Graph topology_;
  std::vector<Cloudlet> cloudlets_;
  std::vector<DataCenter> data_centers_;
  // hops_[cl * data_centers_.size() + dc]
  std::vector<double> cl_dc_hops_;
  // hops between cloudlets, row-major cloudlet_count x cloudlet_count
  std::vector<double> cl_cl_hops_;
};

}  // namespace mecsc::net
