#include "sim/emulation.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sim/event_queue.h"

namespace mecsc::sim {

namespace {

/// Time-weighted occupancy integrator for one contention point.
struct Occupancy {
  std::size_t active = 0;
  double last_change = 0.0;
  double integral = 0.0;  ///< ∫ active dt

  void change(double now, int delta) {
    integral += static_cast<double>(active) * (now - last_change);
    last_change = now;
    if (delta > 0) {
      active += static_cast<std::size_t>(delta);
    } else {
      assert(active >= static_cast<std::size_t>(-delta));
      active -= static_cast<std::size_t>(-delta);
    }
  }

  double average(double horizon) const {
    if (horizon <= 0.0) return 0.0;
    return integral / horizon;
  }
};

}  // namespace

EmulationResult replay(const core::Assignment& a,
                       std::span<const Request> trace,
                       const EmuParams& params,
                       std::span<const FailureEvent> failures) {
  const core::Instance& inst = a.instance();
  const std::size_t m = inst.cloudlet_count();
  const std::size_t servers = m + inst.network.data_center_count();

  EmulationResult result;
  result.provider_cost.assign(inst.provider_count(), 0.0);
  result.avg_concurrency.assign(m, 0.0);

  EventQueue queue;
  std::vector<Occupancy> flows(servers);   // concurrent inbound transfers
  std::vector<Occupancy> tenants(servers); // queued + in-service requests
  std::vector<double> busy_until(servers, 0.0);
  std::vector<double> latencies;
  latencies.reserve(trace.size());
  double makespan = 0.0;

  auto cloudlet_down = [&](core::CloudletId i, double now) {
    for (const FailureEvent& f : failures) {
      if (f.cloudlet == i && now >= f.at_s && now < f.recover_s) return true;
    }
    return false;
  };

  for (const Request& req : trace) {
    queue.schedule_at(req.arrival_s, [&, req] {
      const core::ProviderId l = req.provider;
      const core::ServiceProvider& p = inst.providers[l];
      std::size_t choice = a.choice(l);
      // Outage: fall back to the original instance in the home DC.
      if (choice != core::kRemote && cloudlet_down(choice, queue.now())) {
        choice = core::kRemote;
        ++result.failovers;
      }
      const bool cached = choice != core::kRemote;
      const std::size_t server = cached ? choice : m + p.home_dc;
      const double hops =
          (cached ? inst.network.cloudlet_to_cloudlet_hops(p.user_region,
                                                           choice)
                  : inst.network.cloudlet_to_dc_hops(p.user_region,
                                                     p.home_dc)) +
          1.0;
      const double wire_gb = req.size_gb * params.vxlan_overhead;

      // --- Transfer: bandwidth shared among concurrent flows to `server`.
      flows[server].change(queue.now(), +1);
      const double share =
          params.link_rate_mbps /
          static_cast<double>(std::max<std::size_t>(flows[server].active, 1));
      const double transfer_s =
          wire_gb * 8.0 * 1024.0 / share + hops * params.per_hop_latency_s;

      // Dollar meter: observed bytes x observed hops.
      result.total_transfer_gb += wire_gb * hops;
      result.provider_cost[l] +=
          inst.cost.transfer_price_per_gb * wire_gb * hops;
      if (cached) {
        // Consistency update shipped to the original instance.
        const double update_gb = req.size_gb * p.update_fraction;
        const double update_hops =
            inst.network.cloudlet_to_dc_hops(choice, p.home_dc);
        result.total_transfer_gb += update_gb * update_hops;
        result.provider_cost[l] +=
            inst.cost.transfer_price_per_gb * update_gb * update_hops;
      } else {
        result.provider_cost[l] +=
            inst.cost.processing_price_per_gb * req.size_gb;
      }

      queue.schedule_in(transfer_s, [&, req, l, server, cached] {
        flows[server].change(queue.now(), -1);
        tenants[server].change(queue.now(), +1);
        // --- Processing: FIFO per server.
        const double rate = cached
                                ? params.server_rate_gbps
                                : params.server_rate_gbps * params.dc_speedup;
        const double service_s = req.size_gb / rate;
        const double start = std::max(queue.now(), busy_until[server]);
        const double done = start + service_s;
        busy_until[server] = done;
        queue.schedule_at(done, [&, req, server] {
          tenants[server].change(queue.now(), -1);
          latencies.push_back(queue.now() - req.arrival_s);
          makespan = std::max(makespan, queue.now());
          ++result.requests_served;
        });
      });
    });
  }
  queue.run();

  // Close the occupancy integrals at the makespan.
  for (std::size_t s = 0; s < servers; ++s) {
    flows[s].change(makespan, 0);
    tenants[s].change(makespan, 0);
  }
  for (std::size_t i = 0; i < m; ++i) {
    result.avg_concurrency[i] = tenants[i].average(makespan);
  }

  // Congestion + instantiation charges for cached providers: Eq. (1)-(2)
  // with |σ_i| measured the way the test-bed would — by counting the service
  // instances (VMs) deployed on the cloudlet. (avg_concurrency reports the
  // transient request-level congestion separately; it drives latency, not
  // the infrastructure bill.)
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t choice = a.choice(l);
    if (choice == core::kRemote) continue;
    result.provider_cost[l] +=
        core::congestion_cost(inst, choice, a.occupancy(choice)) +
        inst.providers[l].instantiation_cost;
  }
  for (const double c : result.provider_cost) {
    result.measured_social_cost += c;
  }
  result.request_latency_s = util::summarize(latencies);
  return result;
}

}  // namespace mecsc::sim
