// End-to-end test-bed scenario runner (§IV-C).
//
// Reproduces the paper's test-bed pipeline in software: build the AS1755
// overlay MEC network, generate providers, run a placement algorithm (LCF /
// JoOffloadCache / OffloadCache), then replay a request workload through the
// emulator and report *measured* social cost, request latency, and the
// algorithm's wall-clock running time.
#pragma once

#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "sim/emulation.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace mecsc::sim {

enum class Algorithm { Lcf, JoOffloadCache, OffloadCache };

/// Display name used in tables ("LCF", "JoOffloadCache", "OffloadCache").
std::string algorithm_name(Algorithm alg);

/// Runs one placement algorithm on `inst`; returns the assignment and fills
/// `elapsed_ms` with the wall-clock running time of the algorithm itself.
/// `one_minus_xi` is the selfish fraction (only used by LCF).
core::Assignment run_algorithm(const core::Instance& inst, Algorithm alg,
                               double one_minus_xi, double* elapsed_ms);

struct TestbedConfig {
  std::size_t provider_count = 100;
  double one_minus_xi = 0.3;  ///< paper's test-bed default
  core::InstanceParams instance;  ///< use_as1755 is forced on
  WorkloadParams workload;
  EmuParams emu;
};

/// Result of one algorithm inside a test-bed run.
struct TestbedAlgorithmResult {
  Algorithm algorithm = Algorithm::Lcf;
  double analytic_social_cost = 0.0;  ///< model cost of the placement
  double measured_social_cost = 0.0;  ///< emulator-metered cost
  double algorithm_ms = 0.0;          ///< placement running time
  util::Summary request_latency_s;
  std::size_t cached_services = 0;    ///< providers placed in cloudlets
};

struct TestbedRun {
  std::vector<TestbedAlgorithmResult> results;  ///< one per algorithm
};

/// Builds the AS1755 scenario, replays the same workload under each
/// algorithm's placement, and collects the measurements. Deterministic
/// given `rng`'s state.
TestbedRun run_testbed(const TestbedConfig& config, util::Rng& rng);

}  // namespace mecsc::sim
