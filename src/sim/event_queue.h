// Discrete-event simulation core: a time-ordered queue of callbacks.
// Substrate of the test-bed emulator (DESIGN.md / Substitutions).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace mecsc::sim {

/// Simulation clock in seconds.
using SimTime = double;

/// A minimal deterministic event loop. Events scheduled for the same time
/// fire in insertion order (a monotone sequence number breaks ties), which
/// keeps replays bit-for-bit reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time (0 before the first event fires).
  SimTime now() const { return now_; }

  /// Schedules `cb` to fire at absolute time `at` (>= now()).
  void schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` to fire `delay` seconds from now (delay >= 0).
  void schedule_in(SimTime delay, Callback cb);

  /// Number of pending events.
  std::size_t pending() const { return heap_.size(); }

  /// Runs until the queue drains or `until` is passed (infinity = drain).
  /// Returns the number of events fired.
  std::size_t run(SimTime until = std::numeric_limits<double>::infinity());

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
};

}  // namespace mecsc::sim
