#include "sim/testbed.h"

#include <cassert>

#include "core/baselines.h"
#include "core/lcf.h"
#include "util/timer.h"

namespace mecsc::sim {

std::string algorithm_name(Algorithm alg) {
  switch (alg) {
    case Algorithm::Lcf:
      return "LCF";
    case Algorithm::JoOffloadCache:
      return "JoOffloadCache";
    case Algorithm::OffloadCache:
      return "OffloadCache";
  }
  return "?";
}

core::Assignment run_algorithm(const core::Instance& inst, Algorithm alg,
                               double one_minus_xi, double* elapsed_ms) {
  util::Timer timer;
  core::Assignment result(inst);
  switch (alg) {
    case Algorithm::Lcf: {
      core::LcfOptions options;
      options.coordinated_fraction = 1.0 - one_minus_xi;
      result = run_lcf(inst, options).assignment;
      break;
    }
    case Algorithm::JoOffloadCache:
      result = core::run_jo_offload_cache(inst);
      break;
    case Algorithm::OffloadCache:
      result = core::run_offload_cache(inst);
      break;
  }
  if (elapsed_ms != nullptr) *elapsed_ms = timer.elapsed_ms();
  return result;
}

TestbedRun run_testbed(const TestbedConfig& config, util::Rng& rng) {
  core::InstanceParams params = config.instance;
  params.use_as1755 = true;
  params.provider_count = config.provider_count;
  const core::Instance inst = core::generate_instance(params, rng);
  const std::vector<Request> trace =
      generate_workload(inst, config.workload, rng);

  TestbedRun run;
  for (const Algorithm alg : {Algorithm::Lcf, Algorithm::JoOffloadCache,
                              Algorithm::OffloadCache}) {
    TestbedAlgorithmResult r;
    r.algorithm = alg;
    const core::Assignment a =
        run_algorithm(inst, alg, config.one_minus_xi, &r.algorithm_ms);
    assert(a.feasible());
    r.analytic_social_cost = a.social_cost();
    const EmulationResult emu = replay(a, trace, config.emu);
    r.measured_social_cost = emu.measured_social_cost;
    r.request_latency_s = emu.request_latency_s;
    for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
      if (a.choice(l) != core::kRemote) ++r.cached_services;
    }
    run.results.push_back(r);
  }
  return run;
}

}  // namespace mecsc::sim
