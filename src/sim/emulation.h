// Test-bed emulator: a software stand-in for the paper's physical test-bed
// (5 hardware switches + 5 servers, OVS/VXLAN overlay on AS1755, Ryu
// controller — §IV-C). See DESIGN.md / Substitutions.
//
// Given a placement (Assignment), the emulator replays a request trace
// through a discrete-event model of the overlay: requests travel hop by hop
// from the user region to the serving instance (edge cloudlet or remote
// DC), share link bandwidth with concurrent flows, queue at the serving
// node, and — for cached services — ship consistency updates back to the
// original instance. It reports *measured* quantities: per-request latency,
// bytes moved, per-cloudlet concurrency, and the measured social cost
// (the same Eq. (3) price components, but charged on observed traffic and
// observed congestion instead of the analytic model).
#pragma once

#include <span>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "sim/workload.h"
#include "util/stats.h"

namespace mecsc::sim {

struct EmuParams {
  /// Overlay link rate (the test-bed switches' 10G SFP+ uplinks), shared
  /// per concurrent flow toward the same serving node.
  double link_rate_mbps = 10000.0;
  /// Serving rate of a cloudlet/DC server in GB/s (i7-8700-class box
  /// streaming-processing its request payloads).
  double server_rate_gbps = 2.0;
  /// Per-hop forwarding + propagation latency in seconds.
  double per_hop_latency_s = 0.0005;
  /// VXLAN encapsulation overhead on transferred bytes.
  double vxlan_overhead = 1.05;
  /// Remote data centers are provisioned with this many times the edge
  /// server rate (they are uncapacitated in the model).
  double dc_speedup = 8.0;
};

/// A cloudlet outage window [at_s, recover_s). Requests that would be served
/// by a cached instance on the failed cloudlet *fail over* to the original
/// instance in the provider's home data center — exactly the recovery story
/// that motivates keeping originals alive (§II-B: "their original services
/// are still kept in remote data centers for later use when the cached
/// service is destroyed").
struct FailureEvent {
  core::CloudletId cloudlet = 0;
  double at_s = 0.0;
  double recover_s = 0.0;
};

struct EmulationResult {
  /// Measured social cost in the same units as Assignment::social_cost():
  /// transfer dollars on observed bytes*hops + processing/congestion dollars
  /// on observed load + instantiation of every cached service.
  double measured_social_cost = 0.0;
  /// Per-provider measured cost (size = provider count).
  std::vector<double> provider_cost;
  util::Summary request_latency_s;
  double total_transfer_gb = 0.0;  ///< bytes*hops actually moved (incl. updates)
  /// Time-weighted average number of simultaneously active services per
  /// cloudlet (the measured congestion level |σ_i| of Eq. (1)).
  std::vector<double> avg_concurrency;
  std::size_t requests_served = 0;
  /// Requests redirected to the remote original because their serving
  /// cloudlet was inside an outage window.
  std::size_t failovers = 0;
};

/// Replays `trace` against the placement `a`, honoring any cloudlet outage
/// windows in `failures`. Deterministic.
EmulationResult replay(const core::Assignment& a,
                       std::span<const Request> trace,
                       const EmuParams& params = {},
                       std::span<const FailureEvent> failures = {});

}  // namespace mecsc::sim
