// Request-trace generation for the test-bed emulator. Each provider's r_l
// user requests become timestamped arrivals (Poisson process) carrying the
// per-request traffic volume of §IV-A (10-200 MB).
#pragma once

#include <vector>

#include "core/instance.h"
#include "util/rng.h"

namespace mecsc::sim {

/// One user request to be replayed.
struct Request {
  core::ProviderId provider = 0;
  double arrival_s = 0.0;  ///< simulated arrival time
  double size_gb = 0.0;    ///< payload carried to the serving instance
};

struct WorkloadParams {
  /// Length of the replayed interval; each provider's requests arrive as a
  /// Poisson process with rate r_l / horizon.
  double horizon_s = 60.0;
  /// Per-request payload range (paper: 10-200 MB).
  double request_mb_lo = 10.0;
  double request_mb_hi = 200.0;
};

/// Generates the full trace (all providers interleaved, sorted by arrival).
std::vector<Request> generate_workload(const core::Instance& inst,
                                       const WorkloadParams& params,
                                       util::Rng& rng);

}  // namespace mecsc::sim
