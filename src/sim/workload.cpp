#include "sim/workload.h"

#include <algorithm>
#include <cassert>

namespace mecsc::sim {

std::vector<Request> generate_workload(const core::Instance& inst,
                                       const WorkloadParams& params,
                                       util::Rng& rng) {
  assert(params.horizon_s > 0.0);
  std::vector<Request> trace;
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    const auto r = inst.providers[l].requests;
    if (r == 0) continue;
    const double rate = static_cast<double>(r) / params.horizon_s;
    double t = 0.0;
    for (std::size_t k = 0; k < r; ++k) {
      t += rng.exponential(rate);
      if (t > params.horizon_s) t = params.horizon_s;  // clamp the tail
      trace.push_back(Request{
          l, t,
          rng.uniform_real(params.request_mb_lo, params.request_mb_hi) /
              1024.0});
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
              return a.provider < b.provider;
            });
  return trace;
}

}  // namespace mecsc::sim
