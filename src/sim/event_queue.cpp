#include "sim/event_queue.h"

#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace mecsc::sim {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  heap_.push(Item{at, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(SimTime delay, Callback cb) {
  assert(delay >= 0.0);
  schedule_at(now_ + delay, std::move(cb));
}

std::size_t EventQueue::run(SimTime until) {
  MECSC_PROFILE_SCOPE("sim.event_queue.run");
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    // Copy out before pop so the callback may schedule further events.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.at;
    item.cb();
    ++fired;
  }
  if (fired > 0) {
    obs::MetricsRegistry::global().counter_add(
        "sim.events_fired", static_cast<std::int64_t>(fired));
  }
  return fired;
}

}  // namespace mecsc::sim
