#include "svc/admin.h"

#include <cstddef>
#include <optional>
#include <utility>

namespace mecsc::svc {

namespace {

/// Request lines are "GET /path HTTP/1.x"; anything longer than this is
/// not a scraper talking to us.
constexpr std::size_t kMaxHttpLine = 8192;

std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\n"
                    "Content-Type: " +
                    content_type +
                    "\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n"
                    "\r\n";
  out += body;
  return out;
}

}  // namespace

AdminServer::AdminServer(Options options)
    : options_(std::move(options)),
      listener_(Listener::listen_tcp(options_.tcp_port)) {
  thread_ = std::thread([this] { serve_loop(); });
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::stop() {
  listener_.shutdown();
  if (thread_.joinable()) thread_.join();
}

void AdminServer::serve_loop() {
  while (true) {
    ConnectionPtr conn = listener_.accept();
    if (!conn) return;  // stop() or fatal accept error
    handle(conn);
    // conn closes when the last reference drops; Connection: close told
    // the client not to reuse it.
  }
}

void AdminServer::handle(const ConnectionPtr& conn) {
  std::optional<std::string> request_line = conn->read_line(kMaxHttpLine);
  if (!request_line) {
    // A line-limit overflow is a malformed client, not a vanished one:
    // answer 400 before closing (the stream is desynchronized, so close
    // we must regardless).
    if (conn->line_overflow()) {
      conn->write_all(http_response(400, "Bad Request", "text/plain",
                                    "request line too long\n"));
    }
    return;
  }
  // Drain the header block so the peer's send completes cleanly; contents
  // are irrelevant to a read-only GET.
  while (true) {
    std::optional<std::string> header = conn->read_line(kMaxHttpLine);
    if (!header) break;
    if (!header->empty() && header->back() == '\r') header->pop_back();
    if (header->empty()) break;
  }
  if (!request_line->empty() && request_line->back() == '\r')
    request_line->pop_back();

  const std::size_t method_end = request_line->find(' ');
  if (method_end == std::string::npos) {
    conn->write_all(http_response(400, "Bad Request", "text/plain",
                                  "malformed request line\n"));
    return;
  }
  const std::string method = request_line->substr(0, method_end);
  std::string path = request_line->substr(method_end + 1);
  const std::size_t path_end = path.find(' ');
  if (path_end != std::string::npos) path = path.substr(0, path_end);

  if (method != "GET") {
    conn->write_all(http_response(405, "Method Not Allowed", "text/plain",
                                  "only GET is served here\n"));
    return;
  }

  std::function<std::string()>* handler = nullptr;
  std::string content_type;
  if (path == "/metrics") {
    handler = &options_.metrics_handler;
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/stats") {
    handler = &options_.stats_handler;
    content_type = "application/json";
  } else if (path == "/debug/flight") {
    handler = &options_.flight_handler;
    content_type = "application/json";
  } else {
    conn->write_all(http_response(
        404, "Not Found", "text/plain",
        "unknown path " + path +
            " (try /metrics, /stats, or /debug/flight)\n"));
    return;
  }
  if (!*handler) {
    conn->write_all(http_response(500, "Internal Server Error", "text/plain",
                                  "no handler configured\n"));
    return;
  }
  std::string body;
  try {
    body = (*handler)();
  } catch (const std::exception& e) {
    conn->write_all(http_response(500, "Internal Server Error", "text/plain",
                                  std::string("handler failed: ") + e.what() +
                                      "\n"));
    return;
  }
  conn->write_all(http_response(200, "OK", content_type, body));
}

}  // namespace mecsc::svc
