// Client side of the solver service: connects to a mecsc_serve endpoint,
// sends one NDJSON request per call, and blocks for the matching response
// line. One SvcClient per connection; calls are serialized by the caller
// (mecsc_loadgen runs one client per closed-loop connection thread).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "svc/socket.h"
#include "util/json.h"

namespace mecsc::svc {

/// Longest accepted response line (mirrors the server's request cap).
inline constexpr std::size_t kMaxResponseBytes = 64u << 20;

/// One decoded response line.
struct SvcResponse {
  util::JsonValue id;      ///< echoed request id (null for admission errors)
  bool ok = false;
  std::string error_code;  ///< empty when ok
  std::string error_message;
  /// Echoed wide-event request_id: the client-supplied value, or the
  /// server-generated "s-<n>" when none was sent. Empty only when talking
  /// to a pre-telemetry server.
  std::string request_id;
  /// Server backoff hint on "overloaded" errors (the error object's
  /// wall_retry_after_ms); < 0 when the response carried none.
  double retry_after_ms = -1.0;
  util::JsonValue body;    ///< the full response document
  std::string raw;         ///< exact bytes received (minus the newline)
};

/// Recovery policy for dropped connections (ECONNRESET/EPIPE show up
/// here as a failed send or an EOF before the response). Requests are
/// idempotent — solves are pure computation behind a single-flight
/// cache — so a retransmit after reconnecting is always safe.
/// (Namespace-scope rather than nested in SvcClient: its defaults are
/// used as a default argument inside the class, which GCC rejects for a
/// nested type whose member initializers are still pending.)
struct ReconnectOptions {
  /// Reconnect attempts per call() before giving up (0 = the old hard
  /// error on any drop).
  std::size_t attempts = 5;
  double backoff_initial_ms = 10.0;  ///< doubles per attempt
  double backoff_max_ms = 500.0;
};

class SvcClient {
 public:
  using ReconnectOptions = svc::ReconnectOptions;

  /// Connects to "unix:<path>", "tcp:<host>:<port>", or a bare filesystem
  /// path (treated as a Unix socket). Throws std::runtime_error on failure.
  static SvcClient connect(const std::string& endpoint,
                           ReconnectOptions reconnect = ReconnectOptions());

  /// Sends `request` (one line) and reads one response line. When the
  /// connection drops mid-call, reconnects to the original endpoint with
  /// exponential backoff and retransmits, up to ReconnectOptions::attempts
  /// times. Throws std::runtime_error once retries are exhausted, when the
  /// response overflows the size cap, or when it is not valid JSON — a
  /// malformed response is a server bug, never swallowed.
  SvcResponse call(const util::JsonValue& request);

  /// Connection drops recovered across the client's lifetime.
  std::uint64_t reconnects() const { return reconnects_; }

  /// Convenience wrappers over call(). `instance` is a core/io.h document.
  /// A non-empty `request_id` rides along in the request and must come
  /// back verbatim in SvcResponse::request_id (wide-event correlation).
  /// A non-empty `traceparent` (W3C trace-context form, see
  /// obs::TraceContext) joins the request to the caller's causal trace:
  /// the server continues that trace id and parents its root span on the
  /// client span.
  SvcResponse solve(const util::JsonValue& instance,
                    const std::string& algorithm, std::uint64_t id,
                    double one_minus_xi = 0.3, bool cache = true,
                    double deadline_ms = -1.0,
                    const std::string& request_id = std::string(),
                    const std::string& traceparent = std::string());
  SvcResponse health();
  SvcResponse server_stats();
  /// The "metrics" request: full telemetry snapshot (RED + histograms +
  /// gauges) under body["telemetry"].
  SvcResponse metrics();
  SvcResponse shutdown();

 private:
  SvcClient(ConnectionPtr conn, std::string endpoint,
            ReconnectOptions reconnect);

  /// One send + receive over the current connection. Returns nullopt on a
  /// connection drop (retryable); throws on overflow (not retryable).
  std::optional<std::string> try_call_raw(const std::string& line);

  ConnectionPtr conn_;
  std::string endpoint_;  ///< for reconnects, as given to connect()
  ReconnectOptions reconnect_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t next_id_ = 1;  ///< for the no-argument wrappers
};

/// Parses "unix:<path>" / "tcp:<host>:<port>" / bare path endpoints.
/// Exposed for mecsc_serve's argument validation.
struct Endpoint {
  bool is_unix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host
  int port = 0;
};
Endpoint parse_endpoint(const std::string& text);

}  // namespace mecsc::svc
