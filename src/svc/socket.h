// Thin POSIX socket layer for the solver service: a listener (Unix-domain
// or loopback TCP), a buffered line-oriented connection, and client-side
// connect helpers. Everything blocking; concurrency is the server's job.
//
// Scope is deliberately narrow — newline-delimited JSON between trusted
// hosts (the daemon binds a filesystem socket or 127.0.0.1, never a public
// interface). No TLS, no partial-write juggling surfaced to callers.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

namespace mecsc::svc {

/// One accepted or connected stream socket. Reads are buffered per
/// connection; writes are atomic under an internal mutex so multiple
/// worker threads can respond on the same connection without interleaving
/// bytes (see Connection::write_line).
class Connection {
 public:
  explicit Connection(int fd);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Reads up to and including the next '\n'; returns the line without the
  /// terminator. nullopt on EOF or error. Lines longer than `max_len`
  /// abort the read (nullopt) — the stream is then desynchronized, so the
  /// caller must close the connection.
  std::optional<std::string> read_line(std::size_t max_len);

  /// True when the last read_line failed because the line limit was hit
  /// (as opposed to normal EOF).
  bool line_overflow() const { return line_overflow_; }

  /// Writes `line` plus '\n' fully, under the write lock. Returns false on
  /// error (peer gone); EPIPE is suppressed (MSG_NOSIGNAL), never a signal.
  bool write_line(const std::string& line);

  /// Writes `bytes` fully and verbatim (no framing), under the same write
  /// lock as write_line. Used by the admin HTTP endpoint, whose responses
  /// are not newline-delimited. Same error semantics as write_line.
  bool write_all(const std::string& bytes);

  /// Shuts down the read side, waking any blocked read_line with EOF.
  /// Safe to call from another thread while a read is in flight.
  void shutdown_read();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool line_overflow_ = false;
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Bound, listening server socket.
class Listener {
 public:
  /// Binds a Unix-domain socket at `path` (unlinking a stale file first).
  static Listener listen_unix(const std::string& path);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()).
  static Listener listen_tcp(int port);

  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks for the next connection; nullptr once shutdown() was called
  /// (or on a fatal accept error).
  ConnectionPtr accept();

  /// Wakes a blocked accept() and makes all future accepts return nullptr.
  /// Safe to call from another thread; idempotent.
  void shutdown();

  /// The actually bound TCP port (ephemeral binds resolve here); 0 for
  /// Unix-domain listeners.
  int port() const { return port_; }

  /// "unix:<path>" or "tcp:127.0.0.1:<port>", for logs.
  const std::string& endpoint() const { return endpoint_; }

 private:
  Listener(int fd, int port, std::string endpoint, std::string unlink_path);

  int fd_;
  int port_;
  std::string endpoint_;
  std::string unlink_path_;  ///< Unix socket file removed on destruction
};

/// Client-side connects; throw std::runtime_error with errno context.
ConnectionPtr connect_unix(const std::string& path);
ConnectionPtr connect_tcp(const std::string& host, int port);

}  // namespace mecsc::svc
