// Read-only admin HTTP endpoint for the solver service: GET /metrics
// (Prometheus text exposition), GET /stats (the telemetry JSON document),
// and GET /debug/flight (the flight-recorder dump — the last N completed
// requests with their span trees), served on a second loopback TCP
// listener so scrapers never compete with solver traffic for the NDJSON
// socket or the worker pool.
//
// Security posture: binds 127.0.0.1 only (svc/socket's Listener never
// binds a public interface), speaks a deliberately tiny slice of
// HTTP/1.0 — GET, two fixed paths, Connection: close — and exposes no
// mutating operation whatsoever; shutdown/cache control stay on the
// authenticated-by-locality NDJSON protocol. Requests are size-capped and
// served sequentially by one thread: an admin scraper that misbehaves can
// only slow other scrapers, never the service.
#pragma once

#include <functional>
#include <string>
#include <thread>

#include "svc/socket.h"

namespace mecsc::svc {

/// One-thread HTTP server over svc/socket. Handlers are called per
/// request (fresh snapshot each scrape) and must be thread-safe against
/// the service's own threads.
class AdminServer {
 public:
  struct Options {
    int tcp_port = 0;  ///< loopback port; 0 = ephemeral, see port()
    /// Body for GET /metrics (Content-Type text/plain; version=0.0.4).
    std::function<std::string()> metrics_handler;
    /// Body for GET /stats (Content-Type application/json).
    std::function<std::string()> stats_handler;
    /// Body for GET /debug/flight (Content-Type application/json): the
    /// flight-recorder dump, for incident debugging mid-flight.
    std::function<std::string()> flight_handler;
  };

  /// Binds and serves immediately. Throws std::runtime_error when the
  /// port cannot be bound.
  explicit AdminServer(Options options);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// The actually bound port (ephemeral binds resolve here).
  int port() const { return listener_.port(); }

  /// Stops accepting and joins the serving thread; idempotent from the
  /// owning thread. Also run by the destructor.
  void stop();

 private:
  void serve_loop();
  void handle(const ConnectionPtr& conn);

  Options options_;
  Listener listener_;
  std::thread thread_;  ///< owning thread only (constructor / stop)
};

}  // namespace mecsc::svc
