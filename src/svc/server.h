// Long-running solver daemon core: acceptor, bounded worker pool,
// digest-keyed single-flight result cache, per-request deadlines, and
// graceful drain.
//
// Wire protocol (newline-delimited JSON, one request per line, one
// response line per request — full reference in DESIGN.md "Serving"):
//
//   {"id": 7, "type": "solve", "algorithm": "lcf", "one_minus_xi": 0.3,
//    "instance": { ...core/io.h instance document... },
//    "deadline_ms": 5000, "cache": true}
//   -> {"id": 7, "ok": true, "type": "solve", "cached": false,
//       "result": { ...assignment document..., "algorithm": "lcf"},
//       "wall_queue_ms": 0.1, "wall_service_ms": 12.9}
//
//   {"type": "poa" | "stats" | "health" | "shutdown", ...}
//
// Errors are structured, never a dropped connection:
//   {"id": null, "ok": false,
//    "error": {"code": "overloaded", "message": "..."}}
// with codes: parse_error, bad_request, overloaded, deadline_exceeded,
// shutting_down, internal.
//
// Threading model: the acceptor thread spawns one session thread per
// connection; sessions read request lines and enqueue {line, connection}
// into a bounded queue (admission control — a full queue answers
// "overloaded" immediately instead of stalling the socket); `threads`
// workers pop, parse, solve, and write the response under the
// connection's write lock. Responses therefore may interleave across a
// pipelining connection — the echoed "id" is the correlator. Graceful
// drain (SIGTERM or a "shutdown" request): stop accepting, wake idle
// readers, answer everything already admitted, then join every thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "obs/tracing.h"
#include "svc/admin.h"
#include "svc/bounded_queue.h"
#include "svc/result_cache.h"
#include "svc/socket.h"
#include "util/json.h"
#include "util/sync.h"
#include "util/timer.h"

namespace mecsc::svc {

/// Protocol version echoed by "health" and "stats"; bump on incompatible
/// wire changes.
inline constexpr int kSvcProtocolVersion = 1;

/// Longest accepted request line (instances are a few hundred KB at
/// paper scale; 64 MB is generous headroom, not an invitation).
inline constexpr std::size_t kMaxRequestBytes = 64u << 20;

struct ServerOptions {
  /// Exactly one of the two endpoints: a Unix-domain socket path, or a
  /// loopback TCP port (0 = ephemeral, see SolverServer::port()).
  std::string unix_socket_path;
  int tcp_port = -1;

  std::size_t threads = 4;          ///< worker pool size (min 1)
  std::size_t queue_capacity = 64;  ///< admitted-but-unserved requests
  std::size_t cache_capacity = 128; ///< resident solve results (0 = off)

  /// Applied when a request carries no deadline_ms; <= 0 means none.
  double default_deadline_ms = 0.0;

  /// Request parse path: true (default) decodes through the arena parser
  /// (util/json_arena.h, the zero-DOM hot path); false uses the DOM
  /// reference parser. Responses are byte-identical either way — the
  /// parity contract in json_arena.h — so the switch exists for
  /// differential testing and as an operational escape hatch
  /// (mecsc_serve --parser dom).
  bool use_arena_parser = true;

  /// Wide-event request log: one JSON-lines record per request (schema in
  /// obs/telemetry.h RequestEvent). Empty disables logging.
  std::string request_log_path;

  /// Requests with total latency >= this mirror their wide event to
  /// stderr as they complete, and their causal trace is tail-kept even
  /// when head sampling did not select it; < 0 disables both.
  double slow_request_ms = -1.0;

  /// Request-log growth cap in MiB: when the current log file would
  /// exceed it, the file rotates once to "<path>.1" (replacing any
  /// previous rollover) and a fresh file begins. <= 0 disables rotation.
  double request_log_max_mb = 0.0;

  /// Head-sampling rate for causal traces in [0, 1]: the fraction of
  /// trace ids kept independent of outcome (error and slow requests are
  /// always kept — tail-based sampling). Deterministic per trace id.
  double trace_sample_rate = 0.0;

  /// Kept traces are appended to this file as Chrome trace-event JSON
  /// (Perfetto-loadable; see obs/tracing.h). Empty disables the writer —
  /// span trees are still built for the flight recorder.
  std::string trace_out;

  /// Flight-recorder ring size: the last N completed requests (wide
  /// event + span tree) held in memory for GET /debug/flight / SIGQUIT
  /// dumps. Always on; values < 1 are clamped to 1.
  std::size_t flight_recorder_capacity = 256;

  /// Read-only admin HTTP endpoint (loopback): GET /metrics (Prometheus
  /// text) and GET /stats (telemetry JSON). -1 disables; 0 binds an
  /// ephemeral port resolved by admin_port().
  int admin_port = -1;

  /// Sliding RED window span for telemetry rates (ms).
  double telemetry_window_ms = 60000.0;

  /// Test-only hook, run by a worker after dequeue and before processing;
  /// lets tests hold a worker deterministically (backpressure, drain).
  std::function<void()> test_hook_before_request;
};

/// Point-in-time server counters for the "stats" response and tests.
struct ServerStats {
  std::uint64_t accepted_connections = 0;
  std::uint64_t requests_total = 0;   ///< lines read (incl. rejected)
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;  ///< structured errors of any code
  std::uint64_t overloaded = 0;       ///< subset of responses_error
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t solves_executed = 0;  ///< actual solver runs (cache misses)
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  ResultCache::Stats cache;
};

class SolverServer {
 public:
  explicit SolverServer(ServerOptions options);
  ~SolverServer();
  SolverServer(const SolverServer&) = delete;
  SolverServer& operator=(const SolverServer&) = delete;

  /// Binds the endpoint and spawns acceptor + workers. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void start();

  /// Begins graceful drain: stop accepting, reject new reads, answer
  /// everything admitted. Safe from any thread (a worker handling a
  /// "shutdown" request, a signal-watcher thread); idempotent.
  void request_shutdown();

  /// Blocks until the drain completes and every thread is joined. Call
  /// from the owning thread exactly once after start().
  void wait();

  /// True once request_shutdown() has been called.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Bound TCP port (after start(); 0 for Unix endpoints).
  int port() const;

  /// Bound admin HTTP port (after start(); -1 when the endpoint is off).
  int admin_port() const;

  /// "unix:<path>" or "tcp:127.0.0.1:<port>" (after start()).
  const std::string& endpoint() const;

  ServerStats stats() const;

  /// Telemetry snapshot + live gauges rendered as the "metrics" response
  /// body / admin /stats document (obs::telemetry_to_json shape).
  util::JsonValue metrics_json();

  /// The same data as Prometheus text exposition (admin /metrics body).
  std::string metrics_prometheus();

  /// Flight-recorder dump: the last N completed requests (wide event +
  /// span tree), oldest first (admin GET /debug/flight body, SIGQUIT).
  util::JsonValue flight_json() const;

 private:
  struct Job {
    std::string line;
    ConnectionPtr conn;
    util::Timer admitted;  ///< queue wait + service time base
    /// Admission stamp on the telemetry clock: the server-timeline base
    /// for this request's trace events.
    double admitted_at_ms = 0.0;
  };

  void acceptor_loop();
  void session_loop(ConnectionPtr conn);
  void worker_loop(std::uint32_t ordinal);
  void process(Job job, std::uint32_t worker_ordinal);
  /// Records one finished request into telemetry and the request log.
  void record_event(obs::RequestEvent event);
  obs::ServiceGauges gauges() const;
  /// Next server-generated request_id ("s-<n>").
  std::string next_request_id();

  ServerOptions options_;
  std::unique_ptr<Listener> listener_;
  BoundedQueue<Job> queue_;
  ResultCache cache_;
  obs::ServiceTelemetry telemetry_;
  std::unique_ptr<obs::RequestLog> request_log_;  ///< null when disabled
  std::unique_ptr<obs::TraceWriter> trace_writer_;  ///< null when disabled
  obs::FlightRecorder flight_;                    ///< always on
  std::unique_ptr<AdminServer> admin_;            ///< null when disabled

  std::atomic<std::uint64_t> traces_sampled_{0};  ///< head-sample hits
  std::atomic<std::uint64_t> traces_kept_{0};     ///< written candidates

  /// Server-generated request_id sequence ("s-<n>") for requests whose
  /// clients did not supply one.
  std::atomic<std::uint64_t> request_id_seq_{0};
  std::atomic<std::size_t> workers_busy_{0};
  std::atomic<std::size_t> connections_in_flight_{0};

  std::atomic<bool> draining_{false};
  /// Connection/session lifecycle lock. Ordering: may be held while taking
  /// a Connection's internal write lock (write_line on drain notices);
  /// never held while touching queue_, cache_, or stats_mutex_.
  util::Mutex lifecycle_mutex_;
  bool drain_ready_ MECSC_GUARDED_BY(lifecycle_mutex_) = false;
  std::vector<std::weak_ptr<Connection>> conns_
      MECSC_GUARDED_BY(lifecycle_mutex_);
  std::vector<std::thread> session_threads_
      MECSC_GUARDED_BY(lifecycle_mutex_);
  std::thread acceptor_thread_;   ///< start()/wait() only (owning thread)
  std::vector<std::thread> workers_;  ///< start()/wait() only (owning thread)
  util::CondVar drain_cv_;

  /// Leaf lock for the counters; never held across a call that blocks or
  /// takes another lock.
  mutable util::Mutex stats_mutex_;
  ServerStats counters_ MECSC_GUARDED_BY(stats_mutex_);
};

}  // namespace mecsc::svc
