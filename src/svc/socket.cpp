#include "svc/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/sync.h"

namespace mecsc::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int checked_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

struct Connection::Impl {
  int fd;
  /// Serializes whole-line writes so worker responses never interleave
  /// bytes on a pipelining connection. Innermost lock of the hierarchy:
  /// SolverServer may hold lifecycle_mutex_ while writing a drain notice.
  util::Mutex write_mutex;
  std::string read_buf;
  std::size_t read_pos = 0;  ///< consumed prefix of read_buf
};

Connection::Connection(int fd) : impl_(std::make_unique<Impl>()) {
  impl_->fd = fd;
}

Connection::~Connection() {
  if (impl_->fd >= 0) ::close(impl_->fd);
}

std::optional<std::string> Connection::read_line(std::size_t max_len) {
  line_overflow_ = false;
  std::string& buf = impl_->read_buf;
  while (true) {
    const std::size_t nl = buf.find('\n', impl_->read_pos);
    if (nl != std::string::npos) {
      std::string line = buf.substr(impl_->read_pos, nl - impl_->read_pos);
      impl_->read_pos = nl + 1;
      // Compact once the consumed prefix dominates.
      if (impl_->read_pos > 4096 && impl_->read_pos * 2 > buf.size()) {
        buf.erase(0, impl_->read_pos);
        impl_->read_pos = 0;
      }
      if (line.size() > max_len) {
        line_overflow_ = true;
        return std::nullopt;
      }
      return line;
    }
    if (buf.size() - impl_->read_pos > max_len) {
      // No newline within the limit: the peer is streaming an overlong
      // line. Stop before buffering unbounded garbage.
      line_overflow_ = true;
      return std::nullopt;
    }
    char chunk[4096];
    const ssize_t n = ::recv(impl_->fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;  // EOF, shutdown_read(), or error
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Connection::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  return write_all(framed);
}

bool Connection::write_all(const std::string& bytes) {
  const util::MutexLock lock(impl_->write_mutex);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(impl_->fd, bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void Connection::shutdown_read() { ::shutdown(impl_->fd, SHUT_RD); }

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(int fd, int port, std::string endpoint,
                   std::string unlink_path)
    : fd_(fd),
      port_(port),
      endpoint_(std::move(endpoint)),
      unlink_path_(std::move(unlink_path)) {}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      endpoint_(std::move(other.endpoint_)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.fd_ = -1;
  other.unlink_path_.clear();
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

Listener Listener::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = checked_socket(AF_UNIX);
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  return Listener(fd, 0, "unix:" + path, path);
}

Listener Listener::listen_tcp(int port) {
  const int fd = checked_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(127.0.0.1:" + std::to_string(port) + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname()");
  }
  const int actual = ntohs(bound.sin_port);
  return Listener(fd, actual, "tcp:127.0.0.1:" + std::to_string(actual), "");
}

ConnectionPtr Listener::accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_shared<Connection>(fd);
    if (errno == EINTR) continue;
    // EINVAL: shutdown() was called on the listening socket. Anything
    // else is fatal for the acceptor either way.
    return nullptr;
  }
}

void Listener::shutdown() { ::shutdown(fd_, SHUT_RDWR); }

// ---------------------------------------------------------------------------
// Client connects
// ---------------------------------------------------------------------------

ConnectionPtr connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = checked_socket(AF_UNIX);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("connect(" + path + ")");
  }
  return std::make_shared<Connection>(fd);
}

ConnectionPtr connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("connect: not an IPv4 address: " + host);
  }
  const int fd = checked_socket(AF_INET);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return std::make_shared<Connection>(fd);
}

}  // namespace mecsc::svc
