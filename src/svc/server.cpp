#include "svc/server.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "core/io.h"
#include "core/poa.h"
#include "core/solver_api.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_info.h"
#include "util/json.h"
#include "util/json_arena.h"
#include "util/rng.h"
#include "util/timer.h"

namespace mecsc::svc {
namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

std::string error_line(const JsonValue& id, const std::string& code,
                       const std::string& message,
                       const std::string& request_id = std::string(),
                       double retry_after_ms = -1.0) {
  JsonObject error;
  error["code"] = JsonValue(code);
  error["message"] = JsonValue(message);
  if (retry_after_ms >= 0.0)
    error["wall_retry_after_ms"] = JsonValue(retry_after_ms);
  JsonObject response;
  response["id"] = id;
  response["ok"] = JsonValue(false);
  if (!request_id.empty()) response["request_id"] = JsonValue(request_id);
  response["error"] = JsonValue(std::move(error));
  return JsonValue(std::move(response)).dump();
}

/// Decrements an in-flight gauge on scope exit, whichever way the scope
/// unwinds.
class GaugeGuard {
 public:
  explicit GaugeGuard(std::atomic<std::size_t>& gauge) : gauge_(gauge) {
    gauge_.fetch_add(1, std::memory_order_relaxed);
  }
  ~GaugeGuard() { gauge_.fetch_sub(1, std::memory_order_relaxed); }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  std::atomic<std::size_t>& gauge_;
};

/// Shared fields of every successful response: {"id":…, "ok":true,
/// "type":…, "request_id":…} plus wall_* timing (stripped before
/// determinism diffs). The request_id echoes the client's value, or the
/// server-generated one when the client sent none.
JsonObject ok_envelope(const JsonValue& id, const std::string& type,
                       const std::string& request_id) {
  JsonObject response;
  response["id"] = id;
  response["ok"] = JsonValue(true);
  response["type"] = JsonValue(type);
  response["request_id"] = JsonValue(request_id);
  return response;
}

/// Optional typed fields with defaults, shared by both parse paths (one
/// template over the document type, so the error strings cannot drift).
template <class Doc>
double require_number(const Doc& request, const std::string& key,
                      double fallback) {
  if (!request.contains(key)) return fallback;
  const auto& v = request.at(key);
  if (!v.is_number())
    throw std::invalid_argument("field \"" + key + "\" must be a number");
  return v.as_number();
}

template <class Doc>
bool require_bool(const Doc& request, const std::string& key, bool fallback) {
  if (!request.contains(key)) return fallback;
  const auto& v = request.at(key);
  if (!v.is_bool())
    throw std::invalid_argument("field \"" + key + "\" must be a boolean");
  return v.as_bool();
}

template <class Doc>
std::string require_string(const Doc& request, const std::string& key) {
  const auto& v = request.at(key);
  if (!v.is_string())
    throw std::invalid_argument("field \"" + key + "\" must be a string");
  return std::string(v.as_string());
}

/// One parsed request line through either parse path. Protocol handling in
/// process() is written once against this adapter; only these leaf
/// accessors dispatch on the mode. Arena mode is the hot path — the line
/// lands in two contiguous buffers, strings decode in situ, and the
/// instance subtree decodes straight to core::Instance with no DOM. DOM
/// mode is the reference implementation the parity gate compares against
/// (tests/test_svc_parser_parity.cpp, mecsc_serve --parser dom).
class RequestDoc {
 public:
  RequestDoc() = default;

  static RequestDoc parse(const std::string& line, bool use_arena) {
    RequestDoc doc;
    if (use_arena) {
      doc.arena_ = util::parse_json_arena(line);
    } else {
      doc.dom_ = util::parse_json(line);
    }
    return doc;
  }

  bool is_object() const {
    return arena() ? arena_.root().is_object() : dom_.is_object();
  }
  bool contains(const std::string& key) const {
    return arena() ? arena_.root().contains(key) : dom_.contains(key);
  }
  /// Request id as a DOM value for the response envelope (ids are tiny).
  JsonValue id() const {
    return arena() ? arena_.root().at("id").to_json_value() : dom_.at("id");
  }
  std::string type() const {
    return arena() ? std::string(arena_.root().at("type").as_string())
                   : dom_.at("type").as_string();
  }
  double number_field(const std::string& key, double fallback) const {
    return arena() ? require_number(arena_.root(), key, fallback)
                   : require_number(dom_, key, fallback);
  }
  bool bool_field(const std::string& key, bool fallback) const {
    return arena() ? require_bool(arena_.root(), key, fallback)
                   : require_bool(dom_, key, fallback);
  }
  /// Only call when contains(key); the field must be a string.
  std::string string_field(const std::string& key) const {
    return arena() ? require_string(arena_.root(), key)
                   : require_string(dom_, key);
  }
  /// Only call when contains(key). Lets lenient fields (traceparent, which
  /// W3C says to ignore when malformed) avoid the require_string throw.
  bool field_is_string(const std::string& key) const {
    return arena() ? arena_.root().at(key).is_string()
                   : dom_.at(key).is_string();
  }
  /// Only call when contains("instance").
  bool instance_is_object() const {
    return arena() ? arena_.root().at("instance").is_object()
                   : dom_.at("instance").is_object();
  }
  /// Canonical dump of the "instance" subtree — the cache-digest input.
  /// Byte-identical across modes (the parity contract in json_arena.h),
  /// so a cache populated under one parser serves hits under the other.
  std::string instance_canonical() const {
    return arena() ? arena_.root().at("instance").dump()
                   : dom_.at("instance").dump();
  }
  core::Instance decode_instance() const {
    return arena() ? core::instance_from_arena(arena_.root().at("instance"))
                   : core::instance_from_json(dom_.at("instance"));
  }
  core::SolveSpec solve_spec() const {
    return arena() ? core::solve_spec_from_arena(arena_.root())
                   : core::solve_spec_from_json(dom_);
  }

 private:
  bool arena() const { return !arena_.empty(); }

  JsonValue dom_;
  util::JsonArena arena_;
};

/// Deadline carried by one request. A request-supplied deadline_ms of 0 is
/// already expired on arrival — the deterministic way to exercise the
/// deadline path in tests.
struct Deadline {
  bool enabled = false;
  double budget_ms = 0.0;

  bool exceeded(const util::Timer& since_admission) const {
    return enabled && since_admission.elapsed_ms() >= budget_ms;
  }
};

Deadline deadline_of(const RequestDoc& request, double default_deadline_ms) {
  Deadline d;
  if (request.contains("deadline_ms")) {
    const double ms = request.number_field("deadline_ms", 0.0);
    if (ms < 0.0)
      throw std::invalid_argument("field \"deadline_ms\" must be >= 0");
    d.enabled = true;
    d.budget_ms = ms;
  } else if (default_deadline_ms > 0.0) {
    d.enabled = true;
    d.budget_ms = default_deadline_ms;
  }
  return d;
}

}  // namespace

namespace {

obs::ServiceTelemetry::Options telemetry_options(const ServerOptions& o) {
  obs::ServiceTelemetry::Options t;
  if (o.telemetry_window_ms > 0.0) t.window_ms = o.telemetry_window_ms;
  return t;
}

}  // namespace

SolverServer::SolverServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      cache_(options_.cache_capacity),
      telemetry_(telemetry_options(options_)),
      flight_(options_.flight_recorder_capacity) {
  if (options_.threads == 0) options_.threads = 1;
}

SolverServer::~SolverServer() {
  // Safety net for error paths; the normal sequence is
  // request_shutdown() + wait() before destruction.
  request_shutdown();
  wait();
}

void SolverServer::start() {
  if (!options_.unix_socket_path.empty()) {
    listener_ = std::make_unique<Listener>(
        Listener::listen_unix(options_.unix_socket_path));
  } else if (options_.tcp_port >= 0) {
    listener_ = std::make_unique<Listener>(Listener::listen_tcp(options_.tcp_port));
  } else {
    throw std::runtime_error(
        "svc: ServerOptions needs unix_socket_path or tcp_port");
  }
  {
    const util::MutexLock lock(stats_mutex_);
    counters_.queue_capacity = options_.queue_capacity;
  }
  if (!options_.request_log_path.empty()) {
    obs::RequestLog::Options log_options;
    log_options.path = options_.request_log_path;
    log_options.slow_request_ms = options_.slow_request_ms;
    if (options_.request_log_max_mb > 0.0) {
      log_options.max_bytes = static_cast<std::size_t>(
          options_.request_log_max_mb * 1024.0 * 1024.0);
    }
    request_log_ = std::make_unique<obs::RequestLog>(log_options);
  }
  if (!options_.trace_out.empty()) {
    obs::TraceWriter::Options trace_options;
    trace_options.path = options_.trace_out;
    trace_writer_ = std::make_unique<obs::TraceWriter>(trace_options);
  }
  if (options_.admin_port >= 0) {
    AdminServer::Options admin_options;
    admin_options.tcp_port = options_.admin_port;
    admin_options.metrics_handler = [this] { return metrics_prometheus(); };
    // Trailing newline: /stats is consumed by line-oriented tooling
    // (curl | jq, the tests' line reader) as well as browsers.
    admin_options.stats_handler = [this] {
      return metrics_json().dump() + "\n";
    };
    admin_options.flight_handler = [this] {
      return flight_json().dump() + "\n";
    };
    admin_ = std::make_unique<AdminServer>(admin_options);
  }
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::uint32_t>(i)); });
  acceptor_thread_ = std::thread([this] { acceptor_loop(); });
}

int SolverServer::port() const { return listener_ ? listener_->port() : 0; }

int SolverServer::admin_port() const { return admin_ ? admin_->port() : -1; }

const std::string& SolverServer::endpoint() const {
  static const std::string kUnbound = "(unbound)";
  return listener_ ? listener_->endpoint() : kUnbound;
}

void SolverServer::acceptor_loop() {
  while (true) {
    ConnectionPtr conn = listener_->accept();
    if (!conn) return;  // listener shut down (drain) or fatal error
    {
      const util::MutexLock lock(lifecycle_mutex_);
      if (draining_.load(std::memory_order_acquire)) {
        conn->write_line(error_line(JsonValue(nullptr), "shutting_down",
                                    "server is draining"));
        continue;  // connection closes when conn goes out of scope
      }
      conns_.push_back(conn);
      session_threads_.emplace_back(
          [this, conn = std::move(conn)]() mutable {
            session_loop(std::move(conn));
          });
    }
    {
      const util::MutexLock lock(stats_mutex_);
      ++counters_.accepted_connections;
    }
  }
}

void SolverServer::session_loop(ConnectionPtr conn) {
  const GaugeGuard in_flight(connections_in_flight_);
  while (true) {
    std::optional<std::string> line = conn->read_line(kMaxRequestBytes);
    if (!line) {
      if (conn->line_overflow()) {
        conn->write_line(error_line(JsonValue(nullptr), "bad_request",
                                    "request line exceeds the size limit"));
        // The stream is desynchronized past an overlong line; close it.
      }
      return;
    }
    if (line->empty()) continue;  // blank keep-alive lines are harmless
    {
      const util::MutexLock lock(stats_mutex_);
      ++counters_.requests_total;
    }
    if (draining_.load(std::memory_order_acquire)) {
      {
        const util::MutexLock lock(stats_mutex_);
        ++counters_.responses_error;
      }
      const std::string rid = next_request_id();
      const std::string response = error_line(
          JsonValue(nullptr), "shutting_down", "server is draining", rid);
      conn->write_line(response);
      obs::RequestEvent event;
      event.request_id = rid;
      event.outcome = "shutting_down";
      event.ok = false;
      event.bytes_in = line->size();
      event.bytes_out = response.size() + 1;
      flight_.record(event, nullptr);  // no trace: never admitted
      record_event(std::move(event));
      continue;
    }
    Job job;
    job.line = std::move(*line);
    job.conn = conn;
    job.admitted_at_ms = telemetry_.now_ms();
    const std::size_t line_bytes = job.line.size();
    if (!queue_.try_push(std::move(job))) {
      // Admission control: a full queue answers immediately instead of
      // stalling the socket. The id is null because the line was never
      // parsed — closed-loop clients correlate by ordering — but the
      // rejection still carries a server request_id and a backoff hint
      // derived from the windowed service rate.
      {
        const util::MutexLock lock(stats_mutex_);
        ++counters_.responses_error;
        ++counters_.overloaded;
      }
      const std::string rid = next_request_id();
      const double retry_after_ms =
          telemetry_.retry_after_ms_hint(queue_.size(), options_.threads);
      const std::string response =
          error_line(JsonValue(nullptr), "overloaded",
                     "request queue is full", rid, retry_after_ms);
      conn->write_line(response);
      obs::MetricsRegistry::global().counter_add("svc.overloaded");
      obs::RequestEvent event;
      event.request_id = rid;
      event.outcome = "overloaded";
      event.ok = false;
      event.bytes_in = line_bytes;
      event.bytes_out = response.size() + 1;
      // Overload storms are exactly what the flight ring is for; record
      // the rejection even though it never got a trace.
      flight_.record(event, nullptr);
      record_event(std::move(event));
    }
  }
}

void SolverServer::worker_loop(std::uint32_t ordinal) {
  while (true) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;  // closed and drained
    if (options_.test_hook_before_request) options_.test_hook_before_request();
    const GaugeGuard busy(workers_busy_);
    process(std::move(*job), ordinal);
  }
}

std::string SolverServer::next_request_id() {
  return "s-" + std::to_string(
                    request_id_seq_.fetch_add(1, std::memory_order_relaxed) +
                    1);
}

void SolverServer::process(Job job, std::uint32_t worker_ordinal) {
  MECSC_PROFILE_SCOPE("svc.request");
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("svc.requests");
  const double queue_wait_ms = job.admitted.elapsed_ms();

  obs::RequestEvent event;
  event.bytes_in = job.line.size();
  event.queue_ms = queue_wait_ms;

  // Causal trace state. The trace is built for *every* request (the
  // flight ring needs it); whether it is written out is decided at the
  // end (tail-based sampling). The bridge installs the trace as this
  // thread's profiler span tap, so every MECSC_PROFILE_SCOPE below —
  // server phases and solver internals — lands in the span tree. Declared
  // after the svc.request scope above so the bridge detaches first.
  std::optional<obs::RequestTrace> trace;
  std::optional<obs::ProfilerListenerScope> bridge;
  double parse_start_ms = queue_wait_ms;

  JsonValue id;  // null until the request parses
  std::string request_id;  // resolved after parse (generated if absent)
  std::string response;
  bool ok = false;
  bool was_deadline = false;
  try {
    RequestDoc request;
    {
      MECSC_PROFILE_SCOPE("svc.parse");
      parse_start_ms = job.admitted.elapsed_ms();
      const util::Timer parse_timer;
      try {
        request = RequestDoc::parse(job.line, options_.use_arena_parser);
      } catch (const util::JsonError& e) {
        throw std::runtime_error(std::string("parse_error: ") + e.what());
      }
      event.parse_ms = parse_timer.elapsed_ms();
      metrics.wall_duration_record("wall_svc_parse_ms", event.parse_ms);
      metrics.counter_add("svc.parse_bytes",
                          static_cast<std::int64_t>(job.line.size()));
    }
    if (!request.is_object())
      throw std::invalid_argument("request must be a JSON object");
    if (request.contains("id")) id = request.id();
    if (request.contains("request_id"))
      request_id = request.string_field("request_id");
    if (request_id.empty()) request_id = next_request_id();
    if (!request.contains("type"))
      throw std::invalid_argument("request needs a \"type\" field");
    const std::string type = request.type();
    event.type = type;

    // Resolve the trace context: adopt the client's traceparent when
    // present and well-formed (anything else is ignored, per W3C
    // trace-context), else mint a deterministic context from the
    // request_id. Head sampling ORs onto the client's flag and is a pure
    // function of the trace id — never an RNG.
    {
      obs::TraceContext tctx;
      if (request.contains("traceparent") &&
          request.field_is_string("traceparent")) {
        if (auto parsed =
                obs::TraceContext::parse(request.string_field("traceparent")))
          tctx = *parsed;
      }
      if (!tctx.valid()) {
        tctx = obs::TraceContext::derive(request_id, false);
        tctx.span_id.clear();  // server-minted: no upstream parent span
      }
      tctx.sampled = tctx.sampled ||
                     obs::trace_head_sample(tctx.trace_id,
                                            options_.trace_sample_rate);
      trace.emplace(std::move(tctx), job.admitted);
      // Queue and parse completed before the context was known; add them
      // retroactively so the tree covers the request from admission.
      trace->add_complete("svc.queue", 0.0, queue_wait_ms);
      trace->add_complete("svc.parse", parse_start_ms, event.parse_ms);
      bridge.emplace(&*trace);
    }

    const Deadline deadline =
        deadline_of(request, options_.default_deadline_ms);

    if (type == "health") {
      JsonObject body = ok_envelope(id, type, request_id);
      body["protocol_version"] = JsonValue(kSvcProtocolVersion);
      body["draining"] = JsonValue(draining());
      JsonArray algorithms;
      for (const std::string& name : core::solver_algorithm_names())
        algorithms.emplace_back(name);
      body["algorithms"] = JsonValue(std::move(algorithms));
      // Load signals for the routing tier's spill decisions (and for
      // mecsc_top). Capacity figures are configuration (deterministic,
      // bare keys); the instantaneous depth/inflight/service-time values
      // depend on request interleaving, so they live under wall_ keys per
      // the determinism contract.
      body["queue_capacity"] = JsonValue(options_.queue_capacity);
      body["workers"] = JsonValue(options_.threads);
      body["wall_queue_depth"] = JsonValue(queue_.size());
      body["wall_inflight"] = JsonValue(static_cast<std::size_t>(
          workers_busy_.load(std::memory_order_relaxed)));
      body["wall_service_time_ms"] =
          JsonValue(telemetry_.windowed_service_ms());
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "stats") {
      const ServerStats s = stats();
      JsonObject body = ok_envelope(id, type, request_id);
      body["protocol_version"] = JsonValue(kSvcProtocolVersion);
      JsonObject server;
      server["accepted_connections"] = JsonValue(s.accepted_connections);
      server["requests_total"] = JsonValue(s.requests_total);
      server["responses_ok"] = JsonValue(s.responses_ok);
      server["responses_error"] = JsonValue(s.responses_error);
      server["overloaded"] = JsonValue(s.overloaded);
      server["deadline_exceeded"] = JsonValue(s.deadline_exceeded);
      server["solves_executed"] = JsonValue(s.solves_executed);
      server["queue_depth"] = JsonValue(s.queue_depth);
      server["queue_capacity"] = JsonValue(s.queue_capacity);
      body["server"] = JsonValue(std::move(server));
      JsonObject cache;
      cache["hits"] = JsonValue(s.cache.hits);
      cache["misses"] = JsonValue(s.cache.misses);
      cache["coalesced"] = JsonValue(s.cache.coalesced);
      cache["evictions"] = JsonValue(s.cache.evictions);
      cache["size"] = JsonValue(s.cache.size);
      cache["capacity"] = JsonValue(s.cache.capacity);
      body["cache"] = JsonValue(std::move(cache));
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "metrics") {
      // Full telemetry snapshot over the NDJSON protocol — same document
      // the admin /stats endpoint serves, for clients (mecsc_top, loadgen
      // --scrape-interval-ms) already speaking the protocol.
      JsonObject body = ok_envelope(id, type, request_id);
      body["telemetry"] = metrics_json();
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "shutdown") {
      JsonObject body = ok_envelope(id, type, request_id);
      body["draining"] = JsonValue(true);
      response = JsonValue(std::move(body)).dump();
      job.conn->write_line(response);
      {
        const util::MutexLock lock(stats_mutex_);
        ++counters_.responses_ok;
      }
      event.request_id = request_id;
      event.bytes_out = response.size() + 1;
      event.total_ms = job.admitted.elapsed_ms();
      record_event(std::move(event));
      // The response is on the wire before the drain starts, so a
      // synchronous client always sees its shutdown acknowledged. The
      // drain tears the trace writer down concurrently, so this request
      // — the last one — skips the trace epilogue.
      request_shutdown();
      return;
    } else if (type == "solve" || type == "poa") {
      if (deadline.exceeded(job.admitted)) {
        was_deadline = true;
        throw std::runtime_error("deadline expired while queued");
      }
      if (!request.contains("instance") || !request.instance_is_object())
        throw std::invalid_argument(
            "request needs an \"instance\" object (core/io.h document)");
      const std::string instance_bytes = [&] {
        // Canonical dump + digest are a real slice of large-instance
        // latency; giving them a span keeps the trace gap-free.
        MECSC_PROFILE_SCOPE("svc.digest");
        return request.instance_canonical();
      }();
      const bool use_cache = request.bool_field("cache", true);

      std::string task_key;
      core::SolveSpec spec;
      core::PoaOptions poa_options;
      std::uint64_t poa_seed = 0;
      if (type == "solve") {
        spec = request.solve_spec();
        task_key = spec.cache_key();
        event.algorithm = spec.algorithm;
      } else {
        poa_options.coordinated_fraction =
            request.number_field("coordinated_fraction", 0.0);
        const double restarts = request.number_field("restarts", 30.0);
        if (restarts < 1.0 || restarts != static_cast<double>(
                                              static_cast<std::size_t>(restarts)))
          throw std::invalid_argument(
              "field \"restarts\" must be a positive integer");
        poa_options.restarts = static_cast<std::size_t>(restarts);
        const double seed = request.number_field("seed", 1.0);
        if (seed < 0.0)
          throw std::invalid_argument("field \"seed\" must be >= 0");
        poa_seed = static_cast<std::uint64_t>(seed);
        task_key = "poa|cf=" +
                   JsonValue(poa_options.coordinated_fraction).dump() +
                   "|restarts=" + JsonValue(poa_options.restarts).dump() +
                   "|seed=" + JsonValue(poa_seed).dump();
      }
      // Cache-key contract (see solver_api.h): instance digest ⊕ canonical
      // option string. The digest is over the *canonical dump* (sorted
      // keys), so key ordering in the client's document does not fragment
      // the cache.
      const std::string digest = [&] {
        MECSC_PROFILE_SCOPE("svc.digest");
        return obs::fnv1a64_hex(instance_bytes);
      }();
      const std::string cache_key = digest + "|" + task_key;
      event.instance_digest = digest;

      std::optional<std::string> payload;
      bool cached = false;
      if (use_cache) {
        bool coalesced = false;
        {
          // Coalesced followers block here until the leader publishes —
          // exactly the wait a per-request trace needs to make visible.
          MECSC_PROFILE_SCOPE("svc.cache_wait");
          payload = cache_.get_or_lead(cache_key, &coalesced);
        }
        cached = payload.has_value();
        event.cache_outcome = cached ? (coalesced ? "coalesced" : "hit")
                                     : "miss";
      }
      if (!payload) {
        bool published = false;
        try {
          const core::Instance inst = [&] {
            // Arena mode decodes the request subtree straight to an
            // Instance; DOM mode decodes the already-parsed subtree. No
            // re-parse of instance_bytes on either path.
            MECSC_PROFILE_SCOPE("svc.decode_instance");
            const util::Timer decode_timer;
            core::Instance decoded = request.decode_instance();
            event.decode_ms = decode_timer.elapsed_ms();
            metrics.wall_duration_record("wall_svc_decode_instance_ms",
                                         event.decode_ms);
            return decoded;
          }();
          JsonObject result;
          if (type == "solve") {
            const core::SolveOutcome outcome = [&] {
              MECSC_PROFILE_SCOPE("svc.solve");
              // The listener is already installed (bridge above);
              // passing it again is harmless and keeps the CLI path —
              // which has no bridge — and this one identical.
              core::SolveContext solve_ctx;
              solve_ctx.span_listener = trace ? &*trace : nullptr;
              return core::run_solver(inst, spec, solve_ctx);
            }();
            event.solve_ms = outcome.wall_solve_ms;
            MECSC_PROFILE_SCOPE("svc.serialize");
            result = core::assignment_to_json(outcome.assignment).as_object();
            result["algorithm"] = JsonValue(spec.algorithm);
            result["proven_optimal"] = JsonValue(outcome.proven_optimal);
          } else {
            MECSC_PROFILE_SCOPE("svc.solve");
            const util::Timer poa_timer;
            util::Rng rng(poa_seed);
            const core::PoaResult r =
                core::estimate_poa(inst, poa_options, rng);
            result["worst_equilibrium_cost"] =
                JsonValue(r.worst_equilibrium_cost);
            result["best_equilibrium_cost"] =
                JsonValue(r.best_equilibrium_cost);
            result["optimum_cost"] = JsonValue(r.optimum_cost);
            result["optimum_exact"] = JsonValue(r.optimum_exact);
            result["empirical_poa"] = JsonValue(r.empirical_poa);
            result["theoretical_bound"] = JsonValue(r.theoretical_bound);
            result["equilibria_found"] = JsonValue(r.equilibria_found);
            event.solve_ms = poa_timer.elapsed_ms();
          }
          payload = JsonValue(std::move(result)).dump();
          {
            const util::MutexLock lock(stats_mutex_);
            ++counters_.solves_executed;
          }
          metrics.counter_add("svc.solves");
          if (use_cache) {
            cache_.publish(cache_key, *payload);
            published = true;
          }
        } catch (...) {
          if (use_cache && !published) cache_.abandon(cache_key);
          throw;
        }
      }
      if (deadline.exceeded(job.admitted)) {
        // The work still went into the cache above; only *this* response
        // degrades to an error, so a cached retry is instant.
        was_deadline = true;
        throw std::runtime_error("deadline expired during solve");
      }
      // Result payloads are deterministic bytes (the cache stores them),
      // so this counter is too; the envelope is not counted because its
      // wall_* values vary in digit length run to run.
      metrics.counter_add("svc.serialize_bytes",
                          static_cast<std::int64_t>(payload->size()));
      {
        // Covers envelope assembly including the result re-parse, which
        // is milliseconds for large assignments — without it the trace
        // would show an unexplained gap before serialize.
        MECSC_PROFILE_SCOPE("svc.respond");
        JsonObject body = ok_envelope(id, type, request_id);
        body["cached"] = JsonValue(cached);
        body["result"] = util::parse_json(*payload);
        body["wall_queue_ms"] = JsonValue(queue_wait_ms);
        body["wall_service_ms"] = JsonValue(job.admitted.elapsed_ms());
        {
          MECSC_PROFILE_SCOPE("svc.serialize_response");
          const util::Timer serialize_timer;
          response = JsonValue(std::move(body)).dump();
          event.serialize_ms = serialize_timer.elapsed_ms();
          metrics.wall_duration_record("wall_svc_serialize_ms",
                                       event.serialize_ms);
        }
      }
      ok = true;
    } else {
      throw std::invalid_argument("unknown request type \"" + type + "\"");
    }
  } catch (const std::exception& e) {
    const std::string what = e.what();
    std::string code = "bad_request";
    std::string message = what;
    if (was_deadline) {
      code = "deadline_exceeded";
    } else if (what.rfind("parse_error: ", 0) == 0) {
      code = "parse_error";
      message = what.substr(13);
    } else if (what.rfind("io: ", 0) == 0 ||
               dynamic_cast<const std::invalid_argument*>(&e) != nullptr ||
               dynamic_cast<const util::JsonError*>(&e) != nullptr) {
      code = "bad_request";
    } else {
      code = "internal";
    }
    if (request_id.empty()) request_id = next_request_id();
    event.outcome = code;
    response = error_line(id, code, message, request_id);
  }

  // Counters are bumped *before* the response leaves: a client that has read
  // its response and immediately asks for stats must see its own request
  // reflected in them.
  {
    const util::MutexLock lock(stats_mutex_);
    if (ok) {
      ++counters_.responses_ok;
    } else {
      ++counters_.responses_error;
      if (was_deadline) ++counters_.deadline_exceeded;
    }
  }
  job.conn->write_line(response);
  metrics.wall_duration_record("wall_svc_service_ms",
                               job.admitted.elapsed_ms());
  if (ok) {
    metrics.counter_add("svc.responses_ok");
  } else {
    metrics.counter_add("svc.responses_error");
  }
  event.request_id = request_id;
  event.ok = ok;
  event.bytes_out = response.size() + 1;  // +1: the '\n' framing byte
  event.total_ms = job.admitted.elapsed_ms();

  // Trace epilogue: detach the profiler bridge, decide keep-or-drop
  // (tail-based: errors and slow requests survive a 0 sample rate), feed
  // the flight ring, and hand kept traces to the async writer.
  bridge.reset();
  if (!trace) {
    // The request failed before a context could be resolved (parse
    // error, missing type): mint one from the request_id so error traces
    // are still kept and explain themselves.
    obs::TraceContext minted = obs::TraceContext::derive(request_id, false);
    minted.span_id.clear();
    minted.sampled =
        obs::trace_head_sample(minted.trace_id, options_.trace_sample_rate);
    trace.emplace(std::move(minted), job.admitted);
    trace->add_complete("svc.queue", 0.0, queue_wait_ms);
  }
  const bool sampled = trace->context().sampled;
  std::string keep_reason;  // priority: error > sampled > slow
  if (!ok) {
    keep_reason = "error";
  } else if (sampled) {
    keep_reason = "sampled";
  } else if (options_.slow_request_ms >= 0.0 &&
             event.total_ms >= options_.slow_request_ms) {
    keep_reason = "slow";
  }
  if (sampled) {
    traces_sampled_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter_add("svc.traces_sampled");
  }
  obs::FinishedTrace finished =
      trace->finish(request_id, event.type, keep_reason, worker_ordinal,
                    job.admitted_at_ms);
  if (!keep_reason.empty()) {
    traces_kept_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter_add("svc.traces_kept");
  }
  flight_.record(event, &finished);
  if (trace_writer_ && !keep_reason.empty()) {
    trace_writer_->write(std::move(finished));
  }

  record_event(std::move(event));
}

void SolverServer::request_shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel))
    return;  // already draining
  if (listener_) listener_->shutdown();
  {
    // Wake blocked session readers so they observe the drain and exit.
    // drain_ready_ gates wait() so it never tries to join a session that
    // this sweep has not woken yet.
    const util::MutexLock lock(lifecycle_mutex_);
    for (const std::weak_ptr<Connection>& weak : conns_)
      if (ConnectionPtr conn = weak.lock()) conn->shutdown_read();
    drain_ready_ = true;
  }
  cache_.shutdown_wakeup();
  drain_cv_.notify_all();
}

void SolverServer::wait() {
  {
    const util::MutexLock lock(lifecycle_mutex_);
    while (!drain_ready_) drain_cv_.wait(lifecycle_mutex_);
  }
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  {
    // The acceptor is gone, so session_threads_ is stable now. Sessions
    // exit on EOF/shutdown_read; every request they admitted is drained by
    // the workers below before the pool exits.
    const util::MutexLock lock(lifecycle_mutex_);
    for (std::thread& t : session_threads_)
      if (t.joinable()) t.join();
    session_threads_.clear();
    conns_.clear();
  }
  queue_.close();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  // Telemetry surfaces go last: the admin endpoint stays scrapeable while
  // the drain is in progress, and every worker-recorded wide event is in
  // the log (and every kept trace in the writer queue) before the files
  // are flushed and closed.
  if (admin_) admin_->stop();
  if (request_log_) request_log_->close();
  if (trace_writer_) trace_writer_->close();
}

ServerStats SolverServer::stats() const {
  ServerStats s;
  {
    const util::MutexLock lock(stats_mutex_);
    s = counters_;
  }
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.cache = cache_.stats();
  return s;
}

void SolverServer::record_event(obs::RequestEvent event) {
  telemetry_.record(event);
  if (request_log_) request_log_->write(event);
}

obs::ServiceGauges SolverServer::gauges() const {
  obs::ServiceGauges g;
  g.queue_depth = queue_.size();
  g.queue_capacity = queue_.capacity();
  g.workers = options_.threads;
  g.workers_busy = workers_busy_.load(std::memory_order_relaxed);
  g.connections_in_flight =
      connections_in_flight_.load(std::memory_order_relaxed);
  {
    const util::MutexLock lock(stats_mutex_);
    g.accepted_connections = counters_.accepted_connections;
  }
  const ResultCache::Stats c = cache_.stats();
  g.cache_size = c.size;
  g.cache_capacity = c.capacity;
  g.cache_hits = c.hits;
  g.cache_misses = c.misses;
  g.cache_coalesced = c.coalesced;
  g.cache_evictions = c.evictions;
  if (request_log_) {
    g.request_log_dropped = request_log_->dropped();
    g.request_log_rotations = request_log_->rotations();
  }
  g.traces_sampled = traces_sampled_.load(std::memory_order_relaxed);
  g.traces_kept = traces_kept_.load(std::memory_order_relaxed);
  if (trace_writer_) g.trace_writer_dropped = trace_writer_->dropped();
  g.flight_capacity = flight_.capacity();
  g.flight_size = flight_.size();
  g.flight_recorded_total = flight_.recorded_total();
  return g;
}

util::JsonValue SolverServer::flight_json() const { return flight_.to_json(); }

util::JsonValue SolverServer::metrics_json() {
  return obs::telemetry_to_json(telemetry_.snapshot(), gauges());
}

std::string SolverServer::metrics_prometheus() {
  return obs::telemetry_to_prometheus(telemetry_.snapshot(), gauges());
}

}  // namespace mecsc::svc
