#include "svc/client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace mecsc::svc {

using util::JsonObject;
using util::JsonValue;

Endpoint parse_endpoint(const std::string& text) {
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = text.substr(5);
  } else if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos)
      throw std::runtime_error("svc: tcp endpoint needs \"tcp:<host>:<port>\"");
    ep.host = rest.substr(0, colon);
    try {
      ep.port = std::stoi(rest.substr(colon + 1));
    } catch (const std::exception&) {
      ep.port = -1;
    }
    if (ep.host.empty() || ep.port <= 0 || ep.port > 65535)
      throw std::runtime_error("svc: bad tcp endpoint \"" + text + "\"");
  } else {
    ep.is_unix = true;  // bare filesystem path
    ep.path = text;
  }
  if (ep.is_unix && ep.path.empty())
    throw std::runtime_error("svc: empty unix socket path in \"" + text + "\"");
  return ep;
}

SvcClient::SvcClient(ConnectionPtr conn, std::string endpoint,
                     ReconnectOptions reconnect)
    : conn_(std::move(conn)),
      endpoint_(std::move(endpoint)),
      reconnect_(reconnect) {}

SvcClient SvcClient::connect(const std::string& endpoint,
                             ReconnectOptions reconnect) {
  const Endpoint ep = parse_endpoint(endpoint);
  return SvcClient(ep.is_unix ? connect_unix(ep.path)
                              : connect_tcp(ep.host, ep.port),
                   endpoint, reconnect);
}

std::optional<std::string> SvcClient::try_call_raw(const std::string& line) {
  if (!conn_->write_line(line)) return std::nullopt;
  std::optional<std::string> reply = conn_->read_line(kMaxResponseBytes);
  if (!reply && conn_->line_overflow())
    throw std::runtime_error("svc: response line exceeds the size limit");
  return reply;
}

SvcResponse SvcClient::call(const JsonValue& request) {
  const std::string wire = request.dump();
  std::optional<std::string> line = try_call_raw(wire);
  for (std::size_t attempt = 0; !line; ++attempt) {
    if (attempt >= reconnect_.attempts)
      throw std::runtime_error(
          "svc: connection to " + endpoint_ + " dropped (" +
          std::to_string(attempt) + " reconnect attempts exhausted)");
    const double backoff_ms =
        std::min(reconnect_.backoff_initial_ms *
                     static_cast<double>(std::uint64_t{1}
                                         << std::min<std::size_t>(attempt, 32)),
                 reconnect_.backoff_max_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    try {
      const Endpoint ep = parse_endpoint(endpoint_);
      conn_ = ep.is_unix ? connect_unix(ep.path)
                         : connect_tcp(ep.host, ep.port);
    } catch (const std::exception&) {
      continue;  // endpoint still down; next attempt backs off longer
    }
    ++reconnects_;
    line = try_call_raw(wire);
  }

  SvcResponse response;
  response.raw = std::move(*line);
  response.body = util::parse_json(response.raw);  // JsonError = server bug
  const JsonValue& body = response.body;
  if (!body.is_object() || !body.contains("ok") || !body.at("ok").is_bool())
    throw std::runtime_error("svc: malformed response (no \"ok\" field): " +
                             response.raw);
  response.ok = body.at("ok").as_bool();
  if (body.contains("id")) response.id = body.at("id");
  if (body.contains("request_id") && body.at("request_id").is_string())
    response.request_id = body.at("request_id").as_string();
  if (!response.ok) {
    const JsonValue& error = body.at("error");
    response.error_code = error.string_at("code");
    response.error_message = error.string_at("message");
    if (error.contains("wall_retry_after_ms") &&
        error.at("wall_retry_after_ms").is_number())
      response.retry_after_ms = error.at("wall_retry_after_ms").as_number();
  }
  return response;
}

SvcResponse SvcClient::solve(const JsonValue& instance,
                             const std::string& algorithm, std::uint64_t id,
                             double one_minus_xi, bool cache,
                             double deadline_ms,
                             const std::string& request_id,
                             const std::string& traceparent) {
  JsonObject request;
  request["id"] = JsonValue(id);
  request["type"] = JsonValue("solve");
  request["algorithm"] = JsonValue(algorithm);
  request["one_minus_xi"] = JsonValue(one_minus_xi);
  request["instance"] = instance;
  request["cache"] = JsonValue(cache);
  if (!request_id.empty()) request["request_id"] = JsonValue(request_id);
  if (!traceparent.empty()) request["traceparent"] = JsonValue(traceparent);
  // A deadline is a caller-chosen budget, not a clock reading.
  if (deadline_ms >= 0.0)
    request["deadline_ms"] =  // determinism-lint: allow(wall-key)
        JsonValue(deadline_ms);
  return call(JsonValue(std::move(request)));
}

SvcResponse SvcClient::health() {
  JsonObject request;
  request["id"] = JsonValue(next_id_++);
  request["type"] = JsonValue("health");
  return call(JsonValue(std::move(request)));
}

SvcResponse SvcClient::server_stats() {
  JsonObject request;
  request["id"] = JsonValue(next_id_++);
  request["type"] = JsonValue("stats");
  return call(JsonValue(std::move(request)));
}

SvcResponse SvcClient::metrics() {
  JsonObject request;
  request["id"] = JsonValue(next_id_++);
  request["type"] = JsonValue("metrics");
  return call(JsonValue(std::move(request)));
}

SvcResponse SvcClient::shutdown() {
  JsonObject request;
  request["id"] = JsonValue(next_id_++);
  request["type"] = JsonValue("shutdown");
  return call(JsonValue(std::move(request)));
}

}  // namespace mecsc::svc
