#include "svc/result_cache.h"

namespace mecsc::svc {

ResultCache::ResultCache(std::size_t capacity) : lru_(capacity) {}

std::optional<std::string> ResultCache::get_or_lead(const std::string& key,
                                                    bool* coalesced) {
  if (coalesced) *coalesced = false;
  const util::MutexLock lock(mutex_);
  while (true) {
    if (const std::string* resident = lru_.find(key)) {
      ++hits_;
      return *resident;
    }
    const auto it = in_flight_.find(key);
    if (it == in_flight_.end()) {
      // No resident entry, no leader: the caller leads. After
      // shutdown_wakeup() leaders are no longer registered (concurrent
      // duplicate solves during drain beat leaving a waiter blocked).
      if (!shutdown_) in_flight_[key] = std::make_shared<InFlight>();
      ++misses_;
      return std::nullopt;
    }
    // A leader is computing this key right now: coalesce onto it.
    const std::shared_ptr<InFlight> flight = it->second;
    ++coalesced_;
    if (coalesced) *coalesced = true;
    while (!flight->done && !shutdown_) flight->cv.wait(mutex_);
    if (flight->done && flight->payload) {
      ++hits_;
      return *flight->payload;
    }
    if (shutdown_ && !flight->done) {
      ++misses_;
      return std::nullopt;
    }
    // Leader abandoned (solve threw): loop — the LRU still misses and the
    // in-flight entry is gone, so the first waiter through becomes the new
    // leader and the rest coalesce onto it.
  }
}

void ResultCache::publish(const std::string& key, const std::string& payload) {
  const util::MutexLock lock(mutex_);
  lru_.put(key, payload);
  const auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return;  // led after shutdown_wakeup()
  it->second->done = true;
  it->second->payload = payload;
  it->second->cv.notify_all();
  in_flight_.erase(it);
}

void ResultCache::abandon(const std::string& key) {
  const util::MutexLock lock(mutex_);
  const auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return;
  it->second->done = true;
  it->second->cv.notify_all();
  in_flight_.erase(it);
}

void ResultCache::shutdown_wakeup() {
  const util::MutexLock lock(mutex_);
  shutdown_ = true;
  for (auto& [key, flight] : in_flight_) flight->cv.notify_all();
}

ResultCache::Stats ResultCache::stats() const {
  const util::MutexLock lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.coalesced = coalesced_;
  s.evictions = lru_.evictions();
  s.size = lru_.size();
  s.capacity = lru_.capacity();
  return s;
}

}  // namespace mecsc::svc
