// Digest-keyed, single-flight LRU result cache for the solver service.
//
// Key contract: fnv1a64_hex(instance bytes) ⊕ SolveSpec::cache_key() — see
// src/core/solver_api.h. The cached value is the fully serialized result
// payload, so repeated identical requests return *byte-identical* JSON
// (the served-response determinism guarantee that check_determinism.sh
// diffs).
//
// Single-flight: when several requests for the same key arrive
// concurrently, exactly one (the leader) computes; the rest block until
// the leader publishes and then reuse its payload. The solver therefore
// runs at most once per key while an entry is resident — the invariant
// tests/test_svc.cpp pins down with N concurrent identical requests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "util/lru.h"
#include "util/sync.h"

namespace mecsc::svc {

class ResultCache {
 public:
  /// Monotonic counters; snapshot under the cache lock.
  struct Stats {
    std::uint64_t hits = 0;       ///< served from a resident entry
    std::uint64_t misses = 0;     ///< caller became the computing leader
    std::uint64_t coalesced = 0;  ///< waited on a concurrent leader
    std::uint64_t evictions = 0;  ///< LRU displacements
    std::size_t size = 0;         ///< resident entries right now
    std::size_t capacity = 0;
  };

  /// capacity 0 disables residency but keeps single-flight coalescing.
  explicit ResultCache(std::size_t capacity);

  /// The single-flight entry point. Exactly one of three things happens:
  ///  - hit:       returns the cached payload immediately;
  ///  - coalesced: a leader for `key` is in flight — blocks until it
  ///               publishes, then returns its payload;
  ///  - miss:      returns nullopt and makes the caller the leader. The
  ///               caller MUST then call publish() or abandon() exactly
  ///               once, or waiters block until shutdown_wakeup().
  /// When `coalesced` is non-null it is set to true only in the coalesced
  /// case — a payload obtained by waiting on a concurrent leader rather
  /// than from a resident entry (telemetry distinguishes the two).
  std::optional<std::string> get_or_lead(const std::string& key,
                                         bool* coalesced = nullptr);

  /// Leader publishes its payload: inserted into the LRU (unless capacity
  /// is 0) and handed to every coalesced waiter.
  void publish(const std::string& key, const std::string& payload);

  /// Leader failed (solve threw, deadline exceeded): waiters are woken and
  /// the first of them is promoted to the new leader (its get_or_lead call
  /// returns nullopt); nothing is cached.
  void abandon(const std::string& key);

  /// Wakes every waiter with "no payload" (they see a miss and re-lead or
  /// bail). Used on server drain so no thread is left blocked.
  void shutdown_wakeup();

  Stats stats() const;

 private:
  /// One in-flight computation. `done` and `payload` are guarded by the
  /// owning cache's mutex_ (the analysis cannot express a capability held
  /// by an enclosing object, so they stay unannotated); `cv` waits on that
  /// same mutex_.
  struct InFlight {
    bool done = false;
    std::optional<std::string> payload;  ///< set by publish, not abandon
    util::CondVar cv;
  };

  mutable util::Mutex mutex_;
  util::LruCache<std::string, std::string> lru_ MECSC_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_
      MECSC_GUARDED_BY(mutex_);
  std::uint64_t hits_ MECSC_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ MECSC_GUARDED_BY(mutex_) = 0;
  std::uint64_t coalesced_ MECSC_GUARDED_BY(mutex_) = 0;
  bool shutdown_ MECSC_GUARDED_BY(mutex_) = false;
};

}  // namespace mecsc::svc
