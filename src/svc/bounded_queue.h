// Bounded multi-producer multi-consumer queue with explicit backpressure:
// try_push never blocks and reports overload to the caller instead of
// stalling the producer — the admission-control primitive behind the
// solver service's structured {"error": "overloaded"} response.
//
// Close semantics support graceful drain: close() stops admissions but
// consumers keep pop()-ing until the queue is empty, so every request that
// was accepted gets an answer before the workers exit.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/sync.h"

namespace mecsc::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues unless the queue is full or closed; never blocks. Returns
  /// whether the item was accepted.
  bool try_push(T item) {
    {
      const util::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt only in the latter case.
  std::optional<T> pop() {
    const util::MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) cv_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admissions and wakes every blocked consumer. Items already
  /// queued remain poppable (drain). Idempotent.
  void close() {
    {
      const util::MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    const util::MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    const util::MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<T> items_ MECSC_GUARDED_BY(mutex_);
  bool closed_ MECSC_GUARDED_BY(mutex_) = false;
};

}  // namespace mecsc::svc
