// Bounded multi-producer multi-consumer queue with explicit backpressure:
// try_push never blocks and reports overload to the caller instead of
// stalling the producer — the admission-control primitive behind the
// solver service's structured {"error": "overloaded"} response.
//
// Close semantics support graceful drain: close() stops admissions but
// consumers keep pop()-ing until the queue is empty, so every request that
// was accepted gets an answer before the workers exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mecsc::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues unless the queue is full or closed; never blocks. Returns
  /// whether the item was accepted.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admissions and wakes every blocked consumer. Items already
  /// queued remain poppable (drain). Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mecsc::svc
