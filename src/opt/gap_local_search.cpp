#include "opt/gap_local_search.h"

#include <cassert>
#include <vector>

namespace mecsc::opt {

GapSolution improve_gap_local_search(const GapInstance& instance,
                                     GapSolution start,
                                     LocalSearchStats* stats,
                                     std::size_t max_passes) {
  LocalSearchStats local;
  local.cost_before = start.cost;
  local.cost_after = start.cost;
  if (!start.feasible || !start.within_capacity) {
    if (stats != nullptr) *stats = local;
    return start;
  }
  const std::size_t n = instance.num_items;
  const std::size_t m = instance.num_knapsacks;
  std::vector<std::size_t>& assign = start.assignment;
  std::vector<double> slack(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) slack[i] = instance.capacity[i];
  for (std::size_t j = 0; j < n; ++j) {
    slack[assign[j]] -= instance.weight_at(assign[j], j);
  }
  constexpr double kEps = 1e-9;

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    ++local.passes;
    bool improved = false;

    // Shift: move one item to a different knapsack with room.
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t from = assign[j];
      for (std::size_t to = 0; to < m; ++to) {
        if (to == from) continue;
        if (instance.weight_at(to, j) > slack[to] + kEps) continue;
        const double delta =
            instance.cost_at(to, j) - instance.cost_at(from, j);
        if (delta < -kEps) {
          slack[from] += instance.weight_at(from, j);
          slack[to] -= instance.weight_at(to, j);
          assign[j] = to;
          start.cost += delta;
          ++local.shift_moves;
          improved = true;
          break;
        }
      }
    }

    // Swap: exchange the knapsacks of two items.
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        const std::size_t ka = assign[a], kb = assign[b];
        if (ka == kb) continue;
        // Feasibility after the swap: each side's slack gains its leaving
        // item's weight and loses the entering item's weight.
        const double slack_a =
            slack[ka] + instance.weight_at(ka, a) - instance.weight_at(ka, b);
        const double slack_b =
            slack[kb] + instance.weight_at(kb, b) - instance.weight_at(kb, a);
        if (slack_a < -kEps || slack_b < -kEps) continue;
        const double delta = instance.cost_at(ka, b) +
                             instance.cost_at(kb, a) -
                             instance.cost_at(ka, a) -
                             instance.cost_at(kb, b);
        if (delta < -kEps) {
          slack[ka] = slack_a;
          slack[kb] = slack_b;
          assign[a] = kb;
          assign[b] = ka;
          start.cost += delta;
          ++local.swap_moves;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  // Re-validate from scratch (also recomputes the exact cost, shedding any
  // accumulated floating-point drift).
  GapSolution result = evaluate_gap_assignment(instance, assign);
  assert(result.feasible && result.within_capacity);
  local.cost_after = result.cost;
  result.lp_bound = start.lp_bound;
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace mecsc::opt
