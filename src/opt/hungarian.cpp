#include "opt/hungarian.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mecsc::opt {

AssignmentResult solve_assignment(const std::vector<double>& cost,
                                  std::size_t rows, std::size_t cols) {
  assert(cost.size() == rows * cols);
  const std::size_t n = std::max(rows, cols);  // padded square size
  constexpr double kInf = std::numeric_limits<double>::infinity();

  auto cell = [&](std::size_t r, std::size_t c) -> double {
    if (r < rows && c < cols) return cost[r * cols + c];
    return 0.0;  // dummy row/column
  };

  // Classic O(n^3) formulation with 1-based potentials (e-maxx style).
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0);    // p[j] = row matched to column j
  std::vector<std::size_t> way(n + 1, 0);  // alternating-path bookkeeping

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cell(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.row_to_col.assign(rows, static_cast<std::size_t>(-1));
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = p[j] - 1;
    const std::size_t c = j - 1;
    if (r < rows && c < cols) {
      result.row_to_col[r] = c;
      result.cost += cost[r * cols + c];
      if (cost[r * cols + c] >= kForbidden / 2) result.feasible = false;
    }
  }
  return result;
}

}  // namespace mecsc::opt
