// Slotted transportation solver: the exact inner problem of Algorithm 1.
//
// Algorithm 1 splits each cloudlet CL_i into n_i virtual cloudlets, each
// restricted to hold a single cached service instance. With one item per
// knapsack and knapsack-independent item weights, the GAP instance collapses
// to a transportation problem: assign each item (service) to a group
// (cloudlet) with at most `slots[g]` items per group, minimizing the sum of
// item-group costs. Its LP is integral, so min-cost flow solves it exactly —
// the "2-approximation" requirement of [34] is met with ratio 1.
#pragma once

#include <cstddef>
#include <vector>

namespace mecsc::opt {

/// Instance: cost[g * num_items + j] = cost of putting item j in group g;
/// slots[g] = number of single-item virtual cloudlets of group g. A cost of
/// kInadmissible (or any value >= kInadmissibleThreshold) marks a forbidden
/// pair.
struct TransportationInstance {
  std::size_t num_groups = 0;
  std::size_t num_items = 0;
  std::vector<std::size_t> slots;  ///< size num_groups
  std::vector<double> cost;        ///< size num_groups * num_items

  double cost_at(std::size_t group, std::size_t item) const {
    return cost[group * num_items + item];
  }
};

inline constexpr double kInadmissible = 1e17;
inline constexpr double kInadmissibleThreshold = 1e16;

struct TransportationSolution {
  bool feasible = false;
  /// assignment[item] = group (valid when feasible).
  std::vector<std::size_t> assignment;
  double cost = 0.0;
};

/// Solves the instance optimally via min-cost max-flow. Infeasible when the
/// items outnumber the admissible slots.
TransportationSolution solve_transportation(
    const TransportationInstance& instance);

/// Transportation with *convex group costs*: the k-th item placed in group g
/// (1-based) additionally pays slot_costs[g][k-1] on top of its item-group
/// cost. slot_costs[g] must be non-decreasing (convexity), and its length is
/// the group's slot capacity. Solved exactly by min-cost flow: convex slot
/// arcs saturate cheapest-first, so an integral optimum over
///   Σ_j cost(g_j, j) + Σ_g Σ_{k<=load_g} slot_costs[g][k-1]
/// is returned. Used by Appro's congestion-aware mode, where
/// slot_costs[i][k-1] = (α_i+β_i)·u·(2k-1) telescopes to the exact quadratic
/// congestion term of the social cost.
struct ConvexTransportationInstance {
  std::size_t num_groups = 0;
  std::size_t num_items = 0;
  std::vector<std::vector<double>> slot_costs;  ///< per group, non-decreasing
  std::vector<double> cost;  ///< row-major [group * num_items + item]

  double cost_at(std::size_t group, std::size_t item) const {
    return cost[group * num_items + item];
  }
};

TransportationSolution solve_convex_transportation(
    const ConvexTransportationInstance& instance);

}  // namespace mecsc::opt
