// Generalized Assignment Problem solvers.
//
// The paper's Appro algorithm (Algorithm 1) reduces congestion-free service
// caching to GAP and invokes the Shmoys-Tardos approximation [34]. This
// module provides three solvers:
//
//  * solve_gap_shmoys_tardos — the [34] framework: solve the LP relaxation
//    (own simplex), then round via the slot-bipartite-graph construction
//    with a min-cost matching. Cost is <= LP optimum <= integral optimum;
//    each knapsack's load exceeds its capacity by at most the largest item
//    placed in it (the classic bicriteria (1, 2) guarantee behind the
//    2-approximation).
//  * solve_gap_exact — branch-and-bound, for small instances (ground truth
//    in tests and the Lemma-2 ratio study).
//  * solve_gap_greedy — regret-based greedy, the cheap fallback used by the
//    OffloadCache baseline.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace mecsc::opt {

/// A GAP instance: assign each of n items to one of m knapsacks.
/// cost/weight are row-major [knapsack * num_items + item].
/// weight(i, j) > capacity[i] marks the pair as inadmissible.
struct GapInstance {
  std::size_t num_knapsacks = 0;
  std::size_t num_items = 0;
  std::vector<double> capacity;  ///< size num_knapsacks
  std::vector<double> cost;      ///< size num_knapsacks * num_items
  std::vector<double> weight;    ///< size num_knapsacks * num_items

  double cost_at(std::size_t knapsack, std::size_t item) const {
    return cost[knapsack * num_items + item];
  }
  double weight_at(std::size_t knapsack, std::size_t item) const {
    return weight[knapsack * num_items + item];
  }
  bool admissible(std::size_t knapsack, std::size_t item) const {
    return weight_at(knapsack, item) <= capacity[knapsack];
  }
};

struct GapSolution {
  bool feasible = false;  ///< every item assigned to an admissible knapsack
  /// assignment[item] = knapsack index (valid when feasible).
  std::vector<std::size_t> assignment;
  double cost = 0.0;
  /// True if every knapsack's load is within its stated capacity. The
  /// Shmoys-Tardos rounding may legitimately return false here (loads can
  /// exceed capacity by at most one item) — callers that need hard
  /// capacities handle the relaxation (Appro sizes virtual cloudlets so the
  /// relaxed load still fits the physical cloudlet).
  bool within_capacity = false;
  /// Objective of the LP relaxation (lower bound on the integral optimum);
  /// set by the Shmoys-Tardos solver.
  std::optional<double> lp_bound;
  /// Simplex pivots spent on the LP relaxation (Shmoys-Tardos solver only).
  std::size_t lp_pivots = 0;
  /// Branch-and-bound nodes expanded (exact solver only).
  std::size_t nodes_expanded = 0;
};

/// Validates an assignment against the instance; recomputes cost and
/// capacity slack.
GapSolution evaluate_gap_assignment(const GapInstance& instance,
                                    const std::vector<std::size_t>& assignment);

/// Shmoys-Tardos LP rounding. Returns feasible = false when even the LP
/// relaxation is infeasible (some item admits no knapsack, or total weight
/// cannot fit fractionally).
GapSolution solve_gap_shmoys_tardos(const GapInstance& instance);

/// Exact branch-and-bound; practical up to ~20 items x ~10 knapsacks.
/// `node_limit` bounds the search (returns best found so far when hit).
GapSolution solve_gap_exact(const GapInstance& instance,
                            std::size_t node_limit = 50'000'000);

/// Greedy: repeatedly commits the (item, knapsack) pair with the largest
/// regret (difference between the item's best and second-best remaining
/// option). Feasible w.r.t. capacities whenever it succeeds.
GapSolution solve_gap_greedy(const GapInstance& instance);

}  // namespace mecsc::opt
