#include "opt/gap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "opt/mcmf.h"
#include "opt/simplex.h"

namespace mecsc::opt {

namespace {
constexpr double kEps = 1e-7;
}

GapSolution evaluate_gap_assignment(
    const GapInstance& instance, const std::vector<std::size_t>& assignment) {
  GapSolution sol;
  sol.assignment = assignment;
  if (assignment.size() != instance.num_items) return sol;
  std::vector<double> load(instance.num_knapsacks, 0.0);
  double cost = 0.0;
  for (std::size_t j = 0; j < instance.num_items; ++j) {
    const std::size_t i = assignment[j];
    if (i >= instance.num_knapsacks) return sol;
    if (!instance.admissible(i, j)) return sol;
    load[i] += instance.weight_at(i, j);
    cost += instance.cost_at(i, j);
  }
  sol.feasible = true;
  sol.cost = cost;
  sol.within_capacity = true;
  for (std::size_t i = 0; i < instance.num_knapsacks; ++i) {
    if (load[i] > instance.capacity[i] + kEps) sol.within_capacity = false;
  }
  return sol;
}

// ---------------------------------------------------------------------------
// Shmoys-Tardos LP rounding
// ---------------------------------------------------------------------------

GapSolution solve_gap_shmoys_tardos(const GapInstance& instance) {
  MECSC_PROFILE_SCOPE("gap.shmoys_tardos");
  GapSolution sol;
  const std::size_t m = instance.num_knapsacks;
  const std::size_t n = instance.num_items;
  if (n == 0) {
    sol.feasible = true;
    sol.within_capacity = true;
    sol.lp_bound = 0.0;
    return sol;
  }
  if (m == 0) return sol;

  // Variable index per admissible (knapsack, item) pair.
  std::vector<std::ptrdiff_t> var(m * n, -1);
  LpProblem lp;
  {
    MECSC_PROFILE_SCOPE("gap.lp_build");
    std::size_t num_vars = 0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (instance.admissible(i, j)) var[i * n + j] = static_cast<std::ptrdiff_t>(num_vars++);
      }
    }

    lp.num_vars = num_vars;
    lp.objective.assign(num_vars, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const auto v = var[i * n + j];
        if (v >= 0) lp.objective[static_cast<std::size_t>(v)] = instance.cost_at(i, j);
      }
    }
    // Each item fully assigned.
    for (std::size_t j = 0; j < n; ++j) {
      LpConstraint con;
      con.rel = Relation::Equal;
      con.rhs = 1.0;
      for (std::size_t i = 0; i < m; ++i) {
        const auto v = var[i * n + j];
        if (v >= 0) con.terms.emplace_back(static_cast<std::size_t>(v), 1.0);
      }
      if (con.terms.empty()) return sol;  // item admits no knapsack
      lp.constraints.push_back(std::move(con));
    }
    // Knapsack capacities.
    for (std::size_t i = 0; i < m; ++i) {
      LpConstraint con;
      con.rel = Relation::LessEq;
      con.rhs = instance.capacity[i];
      for (std::size_t j = 0; j < n; ++j) {
        const auto v = var[i * n + j];
        if (v >= 0) {
          con.terms.emplace_back(static_cast<std::size_t>(v),
                                 instance.weight_at(i, j));
        }
      }
      lp.constraints.push_back(std::move(con));
    }
  }

  const LpSolution lp_sol = [&] {
    MECSC_PROFILE_SCOPE("gap.lp_solve");
    return solve_lp(lp);
  }();
  sol.lp_pivots = lp_sol.pivots;
  obs::MetricsRegistry::global().counter_add(
      "gap.lp_pivots", static_cast<std::int64_t>(lp_sol.pivots));
  if (lp_sol.status != LpStatus::Optimal) return sol;
  sol.lp_bound = lp_sol.objective;

  MECSC_PROFILE_SCOPE("gap.rounding");
  // --- Rounding: build slots per knapsack --------------------------------
  // For knapsack i with fractional items sorted by weight (descending),
  // create ceil(sum of fractions) slots and pour the fractions into slots of
  // unit fractional capacity. An item whose fraction straddles a slot
  // boundary appears in both slots. The fractional solution is then a
  // fractional perfect matching between items and slots, so an integral
  // matching of cost <= LP cost exists; we extract it with min-cost flow.
  struct SlotEdge {
    std::size_t item;
    std::size_t slot;  // global slot id
    double cost;
  };
  std::vector<SlotEdge> edges;
  std::vector<std::size_t> slot_knapsack;  // global slot id -> knapsack

  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::pair<std::size_t, double>> frac;  // (item, x)
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto v = var[i * n + j];
      if (v < 0) continue;
      const double x = lp_sol.x[static_cast<std::size_t>(v)];
      if (x > kEps) {
        frac.emplace_back(j, std::min(x, 1.0));
        total += x;
      }
    }
    if (frac.empty()) continue;
    std::sort(frac.begin(), frac.end(),
              [&](const auto& a, const auto& b) {
                return instance.weight_at(i, a.first) >
                       instance.weight_at(i, b.first);
              });
    const auto slot_count = static_cast<std::size_t>(std::ceil(total - kEps));
    const std::size_t slot_base = slot_knapsack.size();
    for (std::size_t s = 0; s < slot_count; ++s) slot_knapsack.push_back(i);

    double slot_room = 1.0;
    std::size_t slot = 0;
    for (auto& [item, x] : frac) {
      double remaining = x;
      while (remaining > kEps) {
        assert(slot < slot_count);
        const double put = std::min(remaining, slot_room);
        edges.push_back(SlotEdge{item, slot_base + slot,
                                 instance.cost_at(i, item)});
        remaining -= put;
        slot_room -= put;
        if (slot_room <= kEps) {
          ++slot;
          slot_room = 1.0;
        }
      }
    }
  }

  // --- Integral matching via min-cost flow --------------------------------
  const std::size_t num_slots = slot_knapsack.size();
  // Nodes: 0 = source, 1..n = items, n+1..n+num_slots = slots, last = sink.
  MinCostFlow flow(2 + n + num_slots);
  const std::size_t source = 0;
  const std::size_t sink = 1 + n + num_slots;
  for (std::size_t j = 0; j < n; ++j) flow.add_arc(source, 1 + j, 1, 0.0);
  std::vector<std::size_t> edge_arc(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    edge_arc[e] =
        flow.add_arc(1 + edges[e].item, 1 + n + edges[e].slot, 1, edges[e].cost);
  }
  for (std::size_t s = 0; s < num_slots; ++s) {
    flow.add_arc(1 + n + s, sink, 1, 0.0);
  }
  const auto fr = flow.solve(source, sink);
  if (fr.flow != static_cast<std::int64_t>(n)) {
    // Should not happen when the LP was feasible; treat defensively.
    return sol;
  }

  sol.assignment.assign(n, 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (flow.flow_on(edge_arc[e]) > 0) {
      sol.assignment[edges[e].item] = slot_knapsack[edges[e].slot];
    }
  }
  const GapSolution checked = evaluate_gap_assignment(instance, sol.assignment);
  sol.feasible = checked.feasible;
  sol.cost = checked.cost;
  sol.within_capacity = checked.within_capacity;
  obs::MetricsRegistry::global().counter_add(
      "gap.rounding_slots", static_cast<std::int64_t>(num_slots));
  return sol;
}

// ---------------------------------------------------------------------------
// Exact branch-and-bound
// ---------------------------------------------------------------------------

namespace {
struct BnbState {
  const GapInstance* instance;
  std::size_t node_limit;
  std::size_t nodes = 0;
  std::vector<double> remaining;            // capacity left per knapsack
  std::vector<std::size_t> current;         // partial assignment
  std::vector<std::size_t> best_assignment;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> item_order;      // most-constrained first
  std::vector<double> suffix_lb;            // optimistic bound for items k..n-1
};

void bnb_dfs(BnbState& st, std::size_t depth, double cost_so_far) {
  if (++st.nodes > st.node_limit) return;
  const GapInstance& inst = *st.instance;
  if (cost_so_far + st.suffix_lb[depth] >= st.best_cost - 1e-12) return;
  if (depth == st.item_order.size()) {
    st.best_cost = cost_so_far;
    st.best_assignment = st.current;
    return;
  }
  const std::size_t item = st.item_order[depth];
  // Try knapsacks cheapest-first so good incumbents appear early.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < inst.num_knapsacks; ++i) {
    if (inst.weight_at(i, item) <= st.remaining[i] + 1e-12) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inst.cost_at(a, item) < inst.cost_at(b, item);
  });
  for (const std::size_t i : order) {
    st.remaining[i] -= inst.weight_at(i, item);
    st.current[item] = i;
    bnb_dfs(st, depth + 1, cost_so_far + inst.cost_at(i, item));
    st.remaining[i] += inst.weight_at(i, item);
  }
}
}  // namespace

GapSolution solve_gap_exact(const GapInstance& instance,
                            std::size_t node_limit) {
  MECSC_PROFILE_SCOPE("gap.bnb");
  GapSolution sol;
  const std::size_t n = instance.num_items;
  if (n == 0) {
    sol.feasible = true;
    sol.within_capacity = true;
    return sol;
  }
  BnbState st;
  st.instance = &instance;
  st.node_limit = node_limit;
  st.remaining = instance.capacity;
  st.current.assign(n, 0);

  // Order items by fewest admissible knapsacks, then by heaviest minimum
  // weight (fail-first).
  st.item_order.resize(n);
  std::iota(st.item_order.begin(), st.item_order.end(), 0u);
  auto options_of = [&](std::size_t j) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < instance.num_knapsacks; ++i) {
      if (instance.admissible(i, j)) ++k;
    }
    return k;
  };
  std::stable_sort(st.item_order.begin(), st.item_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return options_of(a) < options_of(b);
                   });

  // Optimistic suffix bound: sum of each remaining item's cheapest
  // admissible cost (capacities ignored).
  st.suffix_lb.assign(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    const std::size_t j = st.item_order[k];
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < instance.num_knapsacks; ++i) {
      if (instance.admissible(i, j)) best = std::min(best, instance.cost_at(i, j));
    }
    if (best == std::numeric_limits<double>::infinity()) return sol;  // stuck
    st.suffix_lb[k] = st.suffix_lb[k + 1] + best;
  }

  bnb_dfs(st, 0, 0.0);
  obs::MetricsRegistry::global().counter_add(
      "gap.bnb_nodes", static_cast<std::int64_t>(st.nodes));
  if (st.best_assignment.empty()) return sol;  // infeasible or limit w/o incumbent
  GapSolution best = evaluate_gap_assignment(instance, st.best_assignment);
  best.nodes_expanded = st.nodes;
  return best;
}

// ---------------------------------------------------------------------------
// Regret greedy
// ---------------------------------------------------------------------------

GapSolution solve_gap_greedy(const GapInstance& instance) {
  GapSolution sol;
  const std::size_t n = instance.num_items;
  const std::size_t m = instance.num_knapsacks;
  std::vector<double> remaining = instance.capacity;
  std::vector<std::size_t> assignment(n, m);
  std::vector<bool> done(n, false);

  for (std::size_t round = 0; round < n; ++round) {
    double best_regret = -1.0;
    std::size_t pick_item = n, pick_knapsack = m;
    for (std::size_t j = 0; j < n; ++j) {
      if (done[j]) continue;
      double c1 = std::numeric_limits<double>::infinity();
      double c2 = std::numeric_limits<double>::infinity();
      std::size_t k1 = m;
      for (std::size_t i = 0; i < m; ++i) {
        if (instance.weight_at(i, j) > remaining[i] + 1e-12) continue;
        const double c = instance.cost_at(i, j);
        if (c < c1) {
          c2 = c1;
          c1 = c;
          k1 = i;
        } else if (c < c2) {
          c2 = c;
        }
      }
      if (k1 == m) return sol;  // item j cannot be placed anymore
      const double regret =
          c2 == std::numeric_limits<double>::infinity() ? 1e18 : c2 - c1;
      if (regret > best_regret) {
        best_regret = regret;
        pick_item = j;
        pick_knapsack = k1;
      }
    }
    done[pick_item] = true;
    assignment[pick_item] = pick_knapsack;
    remaining[pick_knapsack] -= instance.weight_at(pick_knapsack, pick_item);
  }
  return evaluate_gap_assignment(instance, assignment);
}

}  // namespace mecsc::opt
