// Min-cost max-flow via successive shortest paths with Johnson potentials.
//
// Substrate for: (a) the integral transportation formulation of Appro's
// virtual-cloudlet assignment (Algorithm 1), (b) the matching step of the
// Shmoys-Tardos GAP rounding, and (c) assignment baselines.
// Capacities are integral; costs are real-valued (may be negative on
// initial arcs — handled by a Bellman-Ford bootstrap of the potentials).
#pragma once

#include <cstdint>
#include <vector>

namespace mecsc::opt {

/// Directed flow network with residual arcs managed internally.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t node_count);

  std::size_t node_count() const { return head_.size(); }

  /// Adds arc u -> v with the given capacity and per-unit cost; returns an
  /// arc handle usable with flow_on(). Precondition: capacity >= 0.
  std::size_t add_arc(std::size_t u, std::size_t v, std::int64_t capacity,
                      double cost);

  /// Result of a flow computation.
  struct Result {
    std::int64_t flow = 0;  ///< units actually shipped
    double cost = 0.0;      ///< total cost of the shipped flow
  };

  /// Sends at most `max_flow` units from s to t along successive cheapest
  /// augmenting paths (all of them if max_flow is negative). Can be called
  /// once per instance.
  Result solve(std::size_t s, std::size_t t, std::int64_t max_flow = -1);

  /// Flow routed on the arc returned by add_arc (valid after solve()).
  std::int64_t flow_on(std::size_t arc) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t rev;  ///< index of the reverse arc in arcs_[to]
    std::int64_t capacity;
    double cost;
  };

  bool has_negative_cost_ = false;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::size_t> head_;  // sized node_count; values unused (kept
                                   // for node_count())
  std::vector<std::pair<std::size_t, std::size_t>> handles_;  // (node, idx)
};

}  // namespace mecsc::opt
