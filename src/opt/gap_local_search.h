// Local-search post-improvement for GAP solutions.
//
// Takes any feasible assignment (e.g. from the greedy or the Shmoys-Tardos
// rounding) and applies shift moves (reassign one item) and swap moves
// (exchange the knapsacks of two items) until no move improves the cost.
// Each accepted move strictly lowers the objective and preserves capacity
// feasibility, so the search terminates. Used by tests to measure how far
// the constructive solvers are from local optimality, and exposed for
// callers that can afford the extra polish.
#pragma once

#include <cstddef>

#include "opt/gap.h"

namespace mecsc::opt {

struct LocalSearchStats {
  std::size_t shift_moves = 0;
  std::size_t swap_moves = 0;
  std::size_t passes = 0;
  double cost_before = 0.0;
  double cost_after = 0.0;
};

/// Improves `start` in place. Precondition: start.feasible &&
/// start.within_capacity (returns start unchanged otherwise). `stats` is
/// optional.
GapSolution improve_gap_local_search(const GapInstance& instance,
                                     GapSolution start,
                                     LocalSearchStats* stats = nullptr,
                                     std::size_t max_passes = 100);

}  // namespace mecsc::opt
