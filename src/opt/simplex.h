// Dense two-phase primal simplex LP solver.
//
// Substrate for the Shmoys-Tardos GAP approximation (the LP relaxation of
// the generalized assignment problem). Problems are stated as
//     minimize    c^T x
//     subject to  a_k^T x (<= | = | >=) b_k   for each constraint k
//                 x >= 0.
// The solver builds a dense tableau with slack/artificial columns, runs
// phase 1 (drive artificials to zero) then phase 2, and uses Dantzig pricing
// with a Bland's-rule fallback to guarantee termination.
#pragma once

#include <cstddef>
#include <vector>

namespace mecsc::opt {

enum class Relation { LessEq, Equal, GreaterEq };

/// One linear constraint: sum of coefficient*variable terms `rel` rhs.
struct LpConstraint {
  /// Sparse terms as (variable index, coefficient). A variable may appear at
  /// most once.
  std::vector<std::pair<std::size_t, double>> terms;
  Relation rel = Relation::LessEq;
  double rhs = 0.0;
};

/// A linear program in minimization form over nonnegative variables.
struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  ///< size num_vars
  std::vector<LpConstraint> constraints;
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal values, size num_vars (valid if Optimal)
  std::size_t pivots = 0;  ///< simplex iterations across both phases
};

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  /// Feasibility/optimality tolerance.
  double eps = 1e-9;
};

/// Solves the LP. Constraints with negative rhs are normalized internally.
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace mecsc::opt
