#include "opt/transportation.h"

#include <cassert>

#include "opt/mcmf.h"

namespace mecsc::opt {

TransportationSolution solve_transportation(
    const TransportationInstance& instance) {
  TransportationSolution sol;
  const std::size_t n = instance.num_items;
  const std::size_t m = instance.num_groups;
  assert(instance.slots.size() == m);
  assert(instance.cost.size() == m * n);
  if (n == 0) {
    sol.feasible = true;
    return sol;
  }

  // Nodes: 0 = source, 1..n = items, n+1..n+m = groups, last = sink.
  MinCostFlow flow(2 + n + m);
  const std::size_t source = 0;
  const std::size_t sink = 1 + n + m;
  for (std::size_t j = 0; j < n; ++j) flow.add_arc(source, 1 + j, 1, 0.0);
  std::vector<std::vector<std::size_t>> arc(m,
                                            std::vector<std::size_t>(n, 0));
  std::vector<std::vector<bool>> present(m, std::vector<bool>(n, false));
  for (std::size_t g = 0; g < m; ++g) {
    for (std::size_t j = 0; j < n; ++j) {
      const double c = instance.cost_at(g, j);
      if (c >= kInadmissibleThreshold) continue;
      arc[g][j] = flow.add_arc(1 + j, 1 + n + g, 1, c);
      present[g][j] = true;
    }
    if (instance.slots[g] > 0) {
      flow.add_arc(1 + n + g, sink,
                   static_cast<std::int64_t>(instance.slots[g]), 0.0);
    }
  }
  const auto res = flow.solve(source, sink);
  if (res.flow != static_cast<std::int64_t>(n)) return sol;  // infeasible

  sol.feasible = true;
  sol.cost = res.cost;
  sol.assignment.assign(n, m);
  for (std::size_t g = 0; g < m; ++g) {
    for (std::size_t j = 0; j < n; ++j) {
      if (present[g][j] && flow.flow_on(arc[g][j]) > 0) sol.assignment[j] = g;
    }
  }
  return sol;
}

TransportationSolution solve_convex_transportation(
    const ConvexTransportationInstance& instance) {
  TransportationSolution sol;
  const std::size_t n = instance.num_items;
  const std::size_t m = instance.num_groups;
  assert(instance.slot_costs.size() == m);
  assert(instance.cost.size() == m * n);
  if (n == 0) {
    sol.feasible = true;
    return sol;
  }

  // Nodes: 0 = source, 1..n = items, n+1..n+m = groups, last = sink.
  MinCostFlow flow(2 + n + m);
  const std::size_t source = 0;
  const std::size_t sink = 1 + n + m;
  for (std::size_t j = 0; j < n; ++j) flow.add_arc(source, 1 + j, 1, 0.0);
  std::vector<std::vector<std::size_t>> arc(m,
                                            std::vector<std::size_t>(n, 0));
  std::vector<std::vector<bool>> present(m, std::vector<bool>(n, false));
  for (std::size_t g = 0; g < m; ++g) {
    for (std::size_t j = 0; j < n; ++j) {
      const double c = instance.cost_at(g, j);
      if (c >= kInadmissibleThreshold) continue;
      arc[g][j] = flow.add_arc(1 + j, 1 + n + g, 1, c);
      present[g][j] = true;
    }
    // One unit arc per slot with its marginal cost. Min-cost flow fills
    // cheaper slots first, which is exactly the convex objective.
    const auto& slots = instance.slot_costs[g];
    for (std::size_t k = 0; k < slots.size(); ++k) {
      assert(k == 0 || slots[k] >= slots[k - 1]);
      flow.add_arc(1 + n + g, sink, 1, slots[k]);
    }
  }
  const auto res = flow.solve(source, sink);
  if (res.flow != static_cast<std::int64_t>(n)) return sol;

  sol.feasible = true;
  sol.cost = res.cost;
  sol.assignment.assign(n, m);
  for (std::size_t g = 0; g < m; ++g) {
    for (std::size_t j = 0; j < n; ++j) {
      if (present[g][j] && flow.flow_on(arc[g][j]) > 0) sol.assignment[j] = g;
    }
  }
  return sol;
}

}  // namespace mecsc::opt
