// Hungarian (Kuhn-Munkres) algorithm, O(n^3), for min-cost assignment.
//
// Used as a reference solver in tests (cross-checked against MinCostFlow)
// and inside the Shmoys-Tardos rounding when the slot graph is square.
// Rectangular instances (rows != cols) are padded with zero-cost dummies.
#pragma once

#include <cstddef>
#include <vector>

namespace mecsc::opt {

/// Cost of a forbidden pairing; rows assigned only to forbidden columns make
/// the instance effectively infeasible and the result's `feasible` is false.
inline constexpr double kForbidden = 1e18;

struct AssignmentResult {
  /// For each row r, the chosen column (or SIZE_MAX when the instance has
  /// fewer columns than rows and r is left unmatched).
  std::vector<std::size_t> row_to_col;
  double cost = 0.0;
  bool feasible = true;  ///< false if a real row had to take a kForbidden cell
};

/// Solves min-sum assignment on a rows x cols cost matrix (row-major).
/// Every row is matched when rows <= cols; otherwise exactly `cols` rows are
/// matched (the cheapest set).
AssignmentResult solve_assignment(const std::vector<double>& cost,
                                  std::size_t rows, std::size_t cols);

}  // namespace mecsc::opt
