#include "opt/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace mecsc::opt {

namespace {

/// Dense tableau simplex working state.
///
/// Layout: rows 0..m-1 are constraints, row m is the phase objective.
/// Columns 0..total_cols-1 are variables (structural, then slack/surplus,
/// then artificial), column total_cols is the rhs.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_val = at(pr, pc);
    assert(std::abs(pivot_val) > 0.0);
    const double inv = 1.0 / pivot_val;
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
      at(r, pc) = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

struct RunResult {
  LpStatus status = LpStatus::Optimal;
  std::size_t iterations_used = 0;
};

/// Runs simplex iterations on the last row's objective until optimal,
/// unbounded, or the iteration budget is exhausted. `allowed_cols` marks
/// columns eligible to enter the basis.
RunResult run_simplex(Tableau& t, std::vector<std::size_t>& basis,
                      const std::vector<bool>& allowed_cols,
                      std::size_t max_iterations, double eps) {
  MECSC_PROFILE_SCOPE("simplex.pivot_loop");
  const std::size_t m = t.rows() - 1;         // constraint rows
  const std::size_t rhs_col = t.cols() - 1;   // rhs column
  const std::size_t obj_row = m;

  RunResult res;
  bool use_bland = false;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Dantzig pricing switches to Bland's rule after a long stall-prone run
    // to guarantee termination on degenerate problems.
    if (iter > 4 * (m + t.cols())) use_bland = true;

    // Entering column: negative reduced cost.
    std::size_t enter = rhs_col;
    double best = -eps;
    for (std::size_t c = 0; c + 1 < t.cols(); ++c) {
      if (!allowed_cols[c]) continue;
      const double rc = t.at(obj_row, c);
      if (use_bland) {
        if (rc < -eps) {
          enter = c;
          break;
        }
      } else if (rc < best) {
        best = rc;
        enter = c;
      }
    }
    if (enter == rhs_col) {
      res.iterations_used = iter;
      return res;  // optimal
    }

    // Leaving row: minimum ratio test; Bland tie-break on basis variable id.
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = t.at(r, enter);
      if (a > eps) {
        const double ratio = t.at(r, rhs_col) / a;
        if (ratio < best_ratio - eps ||
            (ratio < best_ratio + eps && leave != m &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) {
      res.status = LpStatus::Unbounded;
      res.iterations_used = iter;
      return res;
    }

    t.pivot(leave, enter);
    basis[leave] = enter;
  }
  res.status = LpStatus::IterationLimit;
  res.iterations_used = max_iterations;
  return res;
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  MECSC_PROFILE_SCOPE("simplex.solve");
  assert(problem.objective.size() == problem.num_vars);
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();
  const double eps = options.eps;

  // Column plan: structural | slack/surplus | artificial | rhs.
  std::size_t slack_count = 0;
  for (const auto& c : problem.constraints) {
    if (c.rel != Relation::Equal) ++slack_count;
  }
  const std::size_t slack_base = n;
  const std::size_t art_base = n + slack_count;
  const std::size_t art_count = m;  // one artificial per row (simple & safe)
  const std::size_t total_cols = art_base + art_count + 1;
  const std::size_t rhs_col = total_cols - 1;

  Tableau t(m + 1, total_cols);
  std::vector<std::size_t> basis(m);

  std::size_t next_slack = slack_base;
  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& con = problem.constraints[r];
    double sign = 1.0;
    if (con.rhs < 0.0) sign = -1.0;  // normalize to rhs >= 0
    for (const auto& [var, coef] : con.terms) {
      assert(var < n);
      t.at(r, var) += sign * coef;
    }
    t.at(r, rhs_col) = sign * con.rhs;
    Relation rel = con.rel;
    if (sign < 0.0) {
      if (rel == Relation::LessEq) {
        rel = Relation::GreaterEq;
      } else if (rel == Relation::GreaterEq) {
        rel = Relation::LessEq;
      }
    }
    if (rel == Relation::LessEq) {
      t.at(r, next_slack++) = 1.0;  // slack
    } else if (rel == Relation::GreaterEq) {
      t.at(r, next_slack++) = -1.0;  // surplus
    }
    // Artificial variable for every row starts in the basis.
    t.at(r, art_base + r) = 1.0;
    basis[r] = art_base + r;
  }

  // ---- Phase 1: minimize sum of artificials. ----
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < total_cols; ++c) {
      // objective row = -(sum of artificial rows) so reduced costs of the
      // basic artificials are zero.
      if (c < art_base || c == rhs_col) {
        t.at(m, c) -= t.at(r, c);
      }
    }
  }
  std::vector<bool> allowed(total_cols - 1, true);
  RunResult p1 = run_simplex(t, basis, allowed, options.max_iterations, eps);
  if (p1.status == LpStatus::IterationLimit || t.at(m, rhs_col) < -1e-6) {
    obs::MetricsRegistry::global().counter_add("simplex.solves");
    obs::MetricsRegistry::global().counter_add(
        "simplex.pivots", static_cast<std::int64_t>(p1.iterations_used));
    // Phase-1 hit the budget, or its objective -t(m, rhs) is nonzero
    // (infeasible).
    const LpStatus status = p1.status == LpStatus::IterationLimit
                                ? LpStatus::IterationLimit
                                : LpStatus::Infeasible;
    return LpSolution{status, 0.0, {}, p1.iterations_used};
  }

  // Drive any artificial still in the basis out (or confirm its row is
  // redundant / zero).
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < art_base) continue;
    std::size_t enter = rhs_col;
    for (std::size_t c = 0; c < art_base; ++c) {
      if (std::abs(t.at(r, c)) > eps) {
        enter = c;
        break;
      }
    }
    if (enter != rhs_col) {
      t.pivot(r, enter);
      basis[r] = enter;
    }
    // else: redundant row; the artificial stays basic at value 0.
  }

  // ---- Phase 2: original objective; artificial columns barred. ----
  for (std::size_t c = 0; c < total_cols; ++c) t.at(m, c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) t.at(m, c) = problem.objective[c];
  // Express objective in terms of nonbasic variables.
  for (std::size_t r = 0; r < m; ++r) {
    const double coef = t.at(m, basis[r]);
    if (coef == 0.0) continue;
    for (std::size_t c = 0; c < total_cols; ++c) {
      t.at(m, c) -= coef * t.at(r, c);
    }
  }
  for (std::size_t c = art_base; c + 1 < total_cols; ++c) allowed[c] = false;

  const std::size_t remaining =
      options.max_iterations > p1.iterations_used
          ? options.max_iterations - p1.iterations_used
          : 0;
  RunResult p2 = run_simplex(t, basis, allowed, remaining, eps);
  const std::size_t pivots = p1.iterations_used + p2.iterations_used;
  obs::MetricsRegistry::global().counter_add("simplex.solves");
  obs::MetricsRegistry::global().counter_add(
      "simplex.pivots", static_cast<std::int64_t>(pivots));
  if (p2.status != LpStatus::Optimal) {
    return LpSolution{p2.status, 0.0, {}, pivots};
  }

  LpSolution sol;
  sol.status = LpStatus::Optimal;
  sol.pivots = pivots;
  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.x[basis[r]] = t.at(r, rhs_col);
  }
  double obj = 0.0;
  for (std::size_t c = 0; c < n; ++c) obj += problem.objective[c] * sol.x[c];
  sol.objective = obj;
  return sol;
}

}  // namespace mecsc::opt
