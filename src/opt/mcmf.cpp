#include "opt/mcmf.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace mecsc::opt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(std::size_t node_count)
    : arcs_(node_count), head_(node_count, 0) {}

std::size_t MinCostFlow::add_arc(std::size_t u, std::size_t v,
                                 std::int64_t capacity, double cost) {
  assert(u < arcs_.size() && v < arcs_.size());
  assert(capacity >= 0);
  if (cost < 0.0) has_negative_cost_ = true;
  const std::size_t iu = arcs_[u].size();
  const std::size_t iv = arcs_[v].size();
  arcs_[u].push_back(Arc{v, iv, capacity, cost});
  arcs_[v].push_back(Arc{u, iu, 0, -cost});
  handles_.emplace_back(u, iu);
  return handles_.size() - 1;
}

std::int64_t MinCostFlow::flow_on(std::size_t arc) const {
  const auto [u, idx] = handles_[arc];
  const Arc& a = arcs_[u][idx];
  // Flow shipped equals residual capacity of the reverse arc.
  return arcs_[a.to][a.rev].capacity;
}

MinCostFlow::Result MinCostFlow::solve(std::size_t s, std::size_t t,
                                       std::int64_t max_flow) {
  assert(s < arcs_.size() && t < arcs_.size() && s != t);
  const std::size_t n = arcs_.size();
  std::vector<double> potential(n, 0.0);

  if (has_negative_cost_) {
    // Bellman-Ford from s over residual arcs to initialize potentials.
    std::vector<double> dist(n, kInf);
    dist[s] = 0.0;
    for (std::size_t round = 0; round + 1 < n; ++round) {
      bool changed = false;
      for (std::size_t u = 0; u < n; ++u) {
        if (dist[u] == kInf) continue;
        for (const Arc& a : arcs_[u]) {
          if (a.capacity > 0 && dist[u] + a.cost < dist[a.to] - 1e-12) {
            dist[a.to] = dist[u] + a.cost;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    for (std::size_t u = 0; u < n; ++u) {
      potential[u] = dist[u] == kInf ? 0.0 : dist[u];
    }
  }

  Result res;
  std::vector<double> dist(n);
  std::vector<std::size_t> prev_node(n), prev_arc(n);
  std::vector<bool> reached(n);

  while (max_flow < 0 || res.flow < max_flow) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(reached.begin(), reached.end(), false);
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0.0;
    pq.emplace(0.0, s);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (reached[u]) continue;
      reached[u] = true;
      for (std::size_t i = 0; i < arcs_[u].size(); ++i) {
        const Arc& a = arcs_[u][i];
        if (a.capacity <= 0 || reached[a.to]) continue;
        const double reduced = a.cost + potential[u] - potential[a.to];
        // Reduced costs are >= 0 up to numeric noise; clamp tiny negatives.
        const double nd = d + std::max(reduced, 0.0);
        if (nd < dist[a.to]) {
          dist[a.to] = nd;
          prev_node[a.to] = u;
          prev_arc[a.to] = i;
          pq.emplace(nd, a.to);
        }
      }
    }
    if (!reached[t]) break;  // no augmenting path

    for (std::size_t u = 0; u < n; ++u) {
      if (reached[u]) potential[u] += dist[u];
    }

    // Bottleneck along the path.
    std::int64_t push = max_flow < 0 ? std::numeric_limits<std::int64_t>::max()
                                     : max_flow - res.flow;
    for (std::size_t v = t; v != s; v = prev_node[v]) {
      push = std::min(push, arcs_[prev_node[v]][prev_arc[v]].capacity);
    }
    for (std::size_t v = t; v != s; v = prev_node[v]) {
      Arc& a = arcs_[prev_node[v]][prev_arc[v]];
      a.capacity -= push;
      arcs_[a.to][a.rev].capacity += push;
      res.cost += a.cost * static_cast<double>(push);
    }
    res.flow += push;
  }
  return res;
}

}  // namespace mecsc::opt
