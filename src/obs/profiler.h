// Hierarchical scoped-span profiler: where does a solve spend its time?
//
// Call sites mark phases with an RAII scope —
//
//   void run_appro(...) {
//     MECSC_PROFILE_SCOPE("appro");
//     ...
//     { MECSC_PROFILE_SCOPE("appro.lp_solve"); solve_lp(lp); }
//     ...
//   }
//
// — and the profiler assembles two views of the run:
//
//   (a) a deterministic *aggregate tree*: per-phase call counts and the
//       parent/child structure implied by scope nesting, with every
//       duration field segregated under the "wall_" key contract
//       (wall_total_ms / wall_self_ms / wall_min_ms / wall_max_ms), so
//       tools/strip_wallclock.py reduces the report to pure structure that
//       must be byte-identical across same-seed runs; and
//   (b) a Chrome trace-event / Perfetto timeline: every completed span as
//       a ph:"X" complete event (ts/dur in microseconds, tid = worker
//       index) under the standard "traceEvents" key, loadable directly in
//       chrome://tracing or ui.perfetto.dev.
//
// Concurrency model — the same shard discipline as metrics.cpp: each
// thread owns a private span stack and a private aggregate tree, merged
// (under a mutex) when the thread exits; parallel_for joins its workers,
// so a report() taken afterwards observes every worker shard plus the
// calling thread's live shard. Recording never touches a shared lock on
// the hot path, so profiling adds no contention under parallel_for.
//
// Determinism contract: *which worker* runs a given index is racy, but the
// aggregate tree merges per-path counts by integer addition and keys
// children by name (std::map), so the stripped report is a pure function
// of the work performed. A span opened inside a parallel_for worker roots
// at that worker's (empty) stack — by design: the nesting a thread
// observes is exactly the nesting it executed.
//
// Cost model: MECSC_PROFILE_SCOPE compiles to one relaxed atomic load when
// no profiler is attached — no clock read, no allocation, no span storage
// (mirrors the MECSC_TRACE null-sink guarantee).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/sync.h"

namespace mecsc::obs {

/// One node of the merged aggregate tree. Children are keyed by span name,
/// so serialization order — and the stripped structure — is deterministic.
struct ProfileNode {
  std::uint64_t count = 0;      ///< completed spans at this path
  double total_ms = 0.0;        ///< wall time inside the span (incl. children)
  double self_ms = 0.0;         ///< total minus time inside child spans
  double min_ms = 0.0;          ///< fastest single span (valid when count > 0)
  double max_ms = 0.0;          ///< slowest single span (valid when count > 0)
  std::map<std::string, ProfileNode> children;
};

/// One completed span, kept for the Perfetto timeline.
struct ProfileSpanEvent {
  const char* name;    ///< call-site string literal
  std::uint32_t tid;   ///< worker index (thread arrival order; main = 0)
  double start_us;     ///< microseconds since the profiler was enabled
  double dur_us;
};

/// Merged, immutable view of the profiler at one point in time.
struct ProfileReport {
  /// Root phases by name; nesting follows scope nesting.
  std::map<std::string, ProfileNode> roots;
  /// Completed spans sorted by (tid, start) for the timeline export.
  std::vector<ProfileSpanEvent> events;
  /// Spans completed overall (deterministic: a pure count of scope exits).
  std::uint64_t spans_total = 0;
  /// Spans dropped because a shard hit its event-buffer cap. The timeline
  /// loses these; the aggregate tree still counts them.
  std::uint64_t events_dropped = 0;

  /// Aggregate tree only: {name: {count, wall_total_ms, wall_self_ms,
  /// wall_min_ms, wall_max_ms, children: {...}}}.
  util::JsonValue aggregate_to_json() const;
  /// Full export: {"traceEvents": [...], "aggregate": {...},
  /// "spans_total", "wall_events_dropped", "obs_format_version",
  /// "displayTimeUnit"}. The "traceEvents" array is wall-clock by nature;
  /// tools/strip_wallclock.py removes it (and every "wall_" key) before
  /// determinism diffs.
  util::JsonValue to_json() const;
};

/// Process-wide profiler. Disabled (null) until enable() attaches it.
class Profiler {
 public:
  /// Per-thread tap on the span stream: every MECSC_PROFILE_SCOPE on a
  /// thread with a listener installed reports its begin/end to the
  /// listener, whether or not the aggregate profiler is enabled. This is
  /// how src/obs/tracing.h hangs solver-internal spans (appro / simplex /
  /// game dynamics) off a per-request trace without the solvers knowing
  /// about traces. Callbacks run on the instrumented thread, inline with
  /// the scope — implementations must not block or re-enter the profiler.
  class SpanListener {
   public:
    virtual ~SpanListener() = default;
    virtual void on_span_begin(const char* name) = 0;
    virtual void on_span_end(const char* name) = 0;
  };

  static Profiler& global();

  /// True when profiling is active. Relaxed atomic read — the only cost a
  /// disabled MECSC_PROFILE_SCOPE pays.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// True when this thread must record spans: the global profiler is
  /// enabled or a listener is installed on this thread. The extra
  /// thread-local load keeps the disabled-scope cost at two predictable
  /// reads — still no clock, no allocation.
  bool should_record() const {
    return enabled() || tls_listener_ != nullptr;
  }

  /// Installs `listener` as this thread's span tap (nullptr detaches).
  /// Returns the previously installed listener so callers can save and
  /// restore around a nested scope.
  static SpanListener* set_thread_listener(SpanListener* listener) {
    SpanListener* previous = tls_listener_;
    tls_listener_ = listener;
    return previous;
  }

  /// This thread's currently installed span tap (nullptr when none).
  static SpanListener* thread_listener() { return tls_listener_; }

  /// Drops previous data and starts capturing. The moment of enable() is
  /// the timeline's t = 0.
  void enable();

  /// Stops capturing. Already-recorded shards stay available to report().
  void disable();

  /// Stops capturing and drops everything (retired shards, the calling
  /// thread's live shard). Other threads' live shards are invalidated by
  /// epoch, exactly like MetricsRegistry::reset().
  void reset();

  /// Merges retired shards + the calling thread's live shard. Call after
  /// the instrumented work completed (parallel_for has joined its
  /// workers); spans still open on the calling thread are not reported.
  ProfileReport report();

  /// Opens a span. Called by ProfileScope only, and only when
  /// should_record(); `name` must outlive the profiler session (string
  /// literals do). Forwards to this thread's listener first, then feeds
  /// the aggregate shard when enabled().
  void begin_span(const char* name);

  /// Closes the innermost span on this thread. A span that straddles an
  /// enable()/reset() boundary is discarded, never mismatched.
  void end_span(const char* name);

 private:
  friend struct ProfilerShardHandle;

  struct OpenSpan {
    const char* name;
    double start_ms;      ///< since the profiler epoch clock
    double child_ms = 0;  ///< accumulated duration of direct children
  };

  /// One thread's private buffer (see file comment).
  struct Shard {
    std::uint64_t epoch = 0;
    std::uint32_t tid = 0;
    std::vector<OpenSpan> stack;
    std::map<std::string, ProfileNode> roots;
    /// Pointers into `roots` mirroring `stack` (std::map nodes are
    /// pointer-stable, so growth never invalidates them).
    std::vector<ProfileNode*> node_stack;
    std::vector<ProfileSpanEvent> events;
    std::uint64_t spans_total = 0;
    std::uint64_t events_dropped = 0;
    bool empty() const { return spans_total == 0 && stack.empty(); }
  };

  Shard& local_shard();
  void retire(Shard&& shard);

  std::atomic<bool> enabled_{false};
  /// This thread's span tap (see SpanListener). Plain thread-local: only
  /// the owning thread reads or writes it, so no synchronization applies.
  inline static thread_local SpanListener* tls_listener_ = nullptr;
  /// Leaf lock: session transitions and shard merges only; the recording
  /// hot path (begin_span/end_span) never takes it.
  util::Mutex mutex_;
  std::vector<Shard> retired_ MECSC_GUARDED_BY(mutex_);
};

/// RAII phase marker. Does nothing — not even a clock read — when no
/// profiler is attached and no listener taps this thread; begin/end
/// otherwise.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (Profiler::global().should_record()) {
      name_ = name;
      Profiler::global().begin_span(name);
    }
  }
  ~ProfileScope() {
    if (name_ != nullptr) Profiler::global().end_span(name_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  const char* name_ = nullptr;
};

/// Installs a span listener on the current thread for the lifetime of the
/// scope, restoring whatever was installed before. A null listener makes
/// the scope a no-op, so call sites can pass an optional tap through
/// unconditionally.
class ProfilerListenerScope {
 public:
  explicit ProfilerListenerScope(Profiler::SpanListener* listener)
      : active_(listener != nullptr) {
    if (active_) previous_ = Profiler::set_thread_listener(listener);
  }
  ~ProfilerListenerScope() {
    if (active_) Profiler::set_thread_listener(previous_);
  }
  ProfilerListenerScope(const ProfilerListenerScope&) = delete;
  ProfilerListenerScope& operator=(const ProfilerListenerScope&) = delete;

 private:
  bool active_;
  Profiler::SpanListener* previous_ = nullptr;
};

#define MECSC_PROFILE_CONCAT_IMPL(a, b) a##b
#define MECSC_PROFILE_CONCAT(a, b) MECSC_PROFILE_CONCAT_IMPL(a, b)

/// Marks the enclosing scope as one profiled phase. `name` must be a
/// string literal (dotted hierarchy by convention: "appro.lp_solve").
#define MECSC_PROFILE_SCOPE(name)                  \
  ::mecsc::obs::ProfileScope MECSC_PROFILE_CONCAT( \
      mecsc_profile_scope_, __LINE__)(name)

}  // namespace mecsc::obs
