// Log-linear latency histogram (HDR-histogram style): quantiles without
// storing samples.
//
// Values are bucketed by powers of two, each octave split into
// kSubBuckets linear sub-buckets, so the relative width of every regular
// bucket is 1/kSubBuckets (6.25%) — the worst-case quantile error. Bucket
// *counts* are plain integers, which makes two properties exact rather
// than approximate:
//
//   - merging shards is integer addition, so the merged histogram is a
//     pure function of the recorded value multiset, independent of which
//     thread (or shard) recorded what — the same determinism argument as
//     obs/metrics.h, but in O(buckets) memory instead of O(samples);
//   - identical value streams produce identical bucket vectors, so a
//     serialized histogram diffs clean across same-seed runs *when the
//     values themselves are deterministic*. Latency values are wall-clock,
//     so the service serializes these under "wall_" keys.
//
// The range [2^kMinExponent, 2^kMaxExponent) ms spans ~1 µs to ~4.7 h;
// values below land in a dedicated underflow bucket, values at or above
// in an overflow bucket (min()/max()/sum() stay exact regardless).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mecsc::obs {

class LogLinearHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave; bounds the relative
  /// quantile error at 1/kSubBuckets.
  static constexpr std::size_t kSubBuckets = 16;
  /// Smallest tracked value is 2^kMinExponent (milliseconds: ~0.98 µs).
  static constexpr int kMinExponent = -10;
  /// Largest tracked value is 2^kMaxExponent (milliseconds: ~4.7 hours).
  static constexpr int kMaxExponent = 24;

  LogLinearHistogram();

  /// Records one observation. Negative values count as underflow.
  void record(double value);

  /// Adds another histogram's counts into this one. Deterministic: the
  /// result depends only on the union multiset, not the merge order.
  void merge(const LogLinearHistogram& other);

  /// Drops every recorded value.
  void clear();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact smallest / largest recorded value; 0 when empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Estimated q-quantile, q in [0, 1]: walks the cumulative bucket
  /// counts to the bucket containing rank q*(count-1) and interpolates
  /// linearly inside it. Within 1/kSubBuckets relative error of the exact
  /// sorted-sample quantile for in-range values; clamped to min()/max()
  /// at the extremes. Returns 0 when empty.
  double quantile(double q) const;

  /// One nonempty bucket, for exports (Prometheus `le` edges, bar
  /// charts). `upper` is the bucket's exclusive upper value edge.
  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
  };

  /// The nonempty buckets in ascending value order.
  std::vector<Bucket> nonzero_buckets() const;

  /// Total bucket count (underflow + octaves * sub-buckets + overflow).
  static constexpr std::size_t bucket_count() {
    return 2 + static_cast<std::size_t>(kMaxExponent - kMinExponent) *
                   kSubBuckets;
  }

 private:
  std::size_t bucket_index(double value) const;
  /// [lower, upper) value range of bucket `index`.
  void bucket_bounds(std::size_t index, double* lower, double* upper) const;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mecsc::obs
