// Live service telemetry: per-request wide events, windowed RED metrics
// (rate / errors / duration), and the export renderers behind the solver
// service's "metrics" request, Prometheus /metrics endpoint, and
// mecsc_top dashboard.
//
// Three pieces:
//
//   - RequestEvent / RequestLog — one structured JSON-lines record per
//     request (the "wide event"): request id, type, cache outcome, phase
//     timings, bytes, outcome code. RequestLog is a bounded *async*
//     writer: the serving hot path enqueues and returns; a dedicated
//     writer thread does the file I/O; a full queue drops (counted) rather
//     than ever blocking a worker. Requests slower than a threshold are
//     mirrored to stderr synchronously, so an operator tailing the daemon
//     sees tail latency as it happens.
//
//   - ServiceTelemetry — lock-sharded RED accounting per request type:
//     cumulative counters (requests, errors by code, bytes) plus a
//     log-linear latency histogram (obs/histogram.h) and a sliding window
//     of slot counters for rates. Threads record into their own shard
//     (thread-ordinal modulo shard count), so concurrent workers never
//     contend on one lock; snapshot() merges shards — integer addition
//     and histogram bucket sums, both order-independent.
//
//   - telemetry_to_json / telemetry_to_prometheus — the two export
//     encodings of one snapshot + live gauges.
//
// Determinism contract (same as the rest of src/obs/): counts and
// structure are deterministic; every wall-clock-derived value — durations,
// rates, windowed counts, point-in-time gauges, and response byte counts
// (response envelopes carry wall_* timings whose digit count varies) —
// serializes under a "wall_" key, which tools/strip_wallclock.py removes
// before check_determinism.sh diffs the artifacts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "util/json.h"
#include "util/sync.h"
#include "util/timer.h"

namespace mecsc::obs {

/// One request's wide event. Filled in as the request moves through the
/// service pipeline; recorded (telemetry + request log) exactly once, when
/// the response has been written.
struct RequestEvent {
  std::string request_id;
  /// Request "type" field; "unparsed" for lines rejected before parsing
  /// (overload, drain).
  std::string type = "unparsed";
  std::string algorithm;        ///< empty when the type carries none
  std::string instance_digest;  ///< empty when the type carries none
  /// "hit" | "miss" | "coalesced" | "none" (cache off or non-solve type).
  std::string cache_outcome = "none";
  /// "ok" or the structured error code ("bad_request", "overloaded", ...).
  std::string outcome = "ok";
  bool ok = true;
  std::uint64_t bytes_in = 0;   ///< request line bytes (deterministic)
  std::uint64_t bytes_out = 0;  ///< response line bytes (wall_: see above)
  double queue_ms = 0.0;
  double parse_ms = 0.0;
  double decode_ms = 0.0;
  double solve_ms = 0.0;
  double serialize_ms = 0.0;
  double total_ms = 0.0;  ///< admission to response-on-the-wire

  /// The JSON-lines record: deterministic fields bare, every duration and
  /// bytes_out under "wall_" keys; algorithm/digest omitted when empty.
  util::JsonValue to_json() const;
};

/// Bounded async JSON-lines writer for wide events. write() never blocks
/// the caller: a full queue drops the event and bumps dropped(). close()
/// (or destruction) drains the queue, flushes, and joins the writer.
class RequestLog {
 public:
  struct Options {
    std::string path;
    std::size_t queue_capacity = 4096;
    /// Requests with total_ms >= this are also mirrored to stderr
    /// (synchronously, from the recording thread); < 0 disables.
    double slow_request_ms = -1.0;
    /// Size-based rotation: when appending a line would push the file
    /// past this many bytes, the file rotates to "<path>.1" (replacing
    /// any previous rollover — a single-level cap, so disk usage is
    /// bounded by ~2x max_bytes) and a fresh file begins. 0 disables.
    std::size_t max_bytes = 0;
  };

  /// Opens the file for truncating write; throws std::runtime_error when
  /// the path cannot be opened.
  explicit RequestLog(Options options);
  ~RequestLog();
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  void write(const RequestEvent& event);

  /// Drains pending lines, flushes the file, and joins the writer thread.
  /// Call from the owning thread; idempotent there. Writes after close
  /// are counted as dropped.
  void close();

  std::uint64_t dropped() const;
  std::uint64_t slow_mirrored() const;
  /// Times the file rolled over to "<path>.1" (see Options::max_bytes).
  std::uint64_t rotations() const;

 private:
  void writer_loop();
  /// Rolls the current file to "<path>.1" and reopens fresh. Writer
  /// thread only.
  void rotate();

  Options options_;
  std::ofstream out_;  ///< writer thread only (constructor opens it)
  std::size_t bytes_written_ = 0;  ///< current file; writer thread only
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::string> pending_ MECSC_GUARDED_BY(mutex_);
  bool closed_ MECSC_GUARDED_BY(mutex_) = false;
  std::uint64_t dropped_ MECSC_GUARDED_BY(mutex_) = 0;
  std::uint64_t slow_mirrored_ MECSC_GUARDED_BY(mutex_) = 0;
  std::uint64_t rotations_ MECSC_GUARDED_BY(mutex_) = 0;
  std::thread writer_;  ///< owning thread only (constructor / close)
};

/// Merged per-type RED statistics at one point in time.
struct RedTypeStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::map<std::string, std::uint64_t> errors_by_code;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;          ///< wall_ in serialized form
  LogLinearHistogram latency;           ///< cumulative; values are wall
  std::uint64_t window_requests = 0;    ///< within the sliding window
  std::uint64_t window_errors = 0;
  double window_duration_sum_ms = 0.0;
};

struct TelemetrySnapshot {
  std::map<std::string, RedTypeStats> types;
  double window_ms = 0.0;
  double uptime_ms = 0.0;  ///< telemetry clock at snapshot time
};

/// Live operational gauges sampled by the server at export time (they are
/// point-in-time readings, not telemetry state).
struct ServiceGauges {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  std::size_t workers_busy = 0;
  std::size_t connections_in_flight = 0;
  std::uint64_t accepted_connections = 0;
  std::size_t cache_size = 0;
  std::size_t cache_capacity = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t request_log_dropped = 0;
  std::uint64_t request_log_rotations = 0;
  /// Causal-trace counters (obs/tracing.h): head-sample hits, traces the
  /// tail-sampling decision kept, and writer-queue drops.
  std::uint64_t traces_sampled = 0;
  std::uint64_t traces_kept = 0;
  std::uint64_t trace_writer_dropped = 0;
  /// Flight-recorder ring occupancy.
  std::size_t flight_size = 0;
  std::size_t flight_capacity = 0;
  std::uint64_t flight_recorded_total = 0;
};

/// Lock-sharded windowed RED accounting. All public entry points are
/// thread-safe; the *_at variants take an explicit clock value (ms on the
/// telemetry's own monotonic axis) and are the deterministic entry points
/// the window-rotation tests drive.
class ServiceTelemetry {
 public:
  struct Options {
    double window_ms = 60000.0;  ///< sliding-window span
    std::size_t slots = 12;      ///< ring granularity (5 s at defaults)
    std::size_t shards = 8;
  };

  ServiceTelemetry() : ServiceTelemetry(Options()) {}
  explicit ServiceTelemetry(Options options);

  /// Milliseconds since construction (the clock record()/snapshot() use).
  double now_ms() const { return timer_.elapsed_ms(); }

  void record(const RequestEvent& event) { record_at(event, now_ms()); }
  void record_at(const RequestEvent& event, double at_ms);

  TelemetrySnapshot snapshot() { return snapshot_at(now_ms()); }
  TelemetrySnapshot snapshot_at(double at_ms);

  /// Backoff hint for "overloaded" rejections: the estimated time until
  /// the current queue has drained, from the windowed mean service time
  /// and the worker count. Clamped to [1, 10000] ms; a cold window falls
  /// back to a nominal 25 ms per queued request.
  double retry_after_ms_hint(std::size_t queue_depth, std::size_t workers) {
    return retry_after_ms_hint_at(queue_depth, workers, now_ms());
  }
  double retry_after_ms_hint_at(std::size_t queue_depth, std::size_t workers,
                                double at_ms);

  /// Mean service time (ms) over the sliding window across all request
  /// types; 0.0 on a cold window. The load signal the `health` response
  /// exports (as wall_service_time_ms) for the router's spill decisions.
  double windowed_service_ms();
  double windowed_service_ms_at(double at_ms);

 private:
  /// One sliding-window slot: counters for the absolute slot index
  /// `index` (slot k covers [k*slot_ms, (k+1)*slot_ms)). A ring position
  /// holding a stale index is reset on first touch after rotation.
  struct Slot {
    std::uint64_t index = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    double duration_sum_ms = 0.0;
  };

  struct TypeState {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::map<std::string, std::uint64_t> errors_by_code;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    LogLinearHistogram latency;
    std::vector<Slot> slots;
  };

  struct Shard {
    util::Mutex mutex;
    std::map<std::string, TypeState> types MECSC_GUARDED_BY(mutex);
  };

  Shard& local_shard();
  /// True when a slot with absolute index `index` is inside the window
  /// ending at `at_ms`.
  bool slot_in_window(std::uint64_t index, double at_ms) const;

  Options options_;
  double slot_ms_;
  util::Timer timer_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// JSON encoding of one snapshot + gauges: the body of the service's
/// "metrics" response and the admin /stats document. Deterministic fields
/// bare; wall-derived fields under "wall_" keys.
util::JsonValue telemetry_to_json(const TelemetrySnapshot& snapshot,
                                  const ServiceGauges& gauges);

/// Prometheus text exposition (version 0.0.4) of the same data, served at
/// the admin /metrics endpoint. Entirely wall-clock territory — never part
/// of the determinism diff.
std::string telemetry_to_prometheus(const TelemetrySnapshot& snapshot,
                                    const ServiceGauges& gauges);

}  // namespace mecsc::obs
