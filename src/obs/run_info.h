// Run manifests: a machine-readable record of *how* an artifact was
// produced — tool, subcommand, configuration, seed, instance digest, and
// build provenance — written next to every trace/metrics artifact so a
// number in a figure can always be traced back to the exact run.
//
// All manifest fields are deterministic except those with the "wall_"
// key prefix (the write timestamp), which tools/strip_wallclock.py
// removes before determinism diffs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"

namespace mecsc::obs {

/// Version stamp written into manifests, metrics files, and bench records.
inline constexpr int kObsFormatVersion = 1;

/// Everything the caller knows about the run; build info and the
/// timestamp are filled in by manifest_to_json().
struct RunManifest {
  std::string tool;     ///< e.g. "mecsc"
  std::string command;  ///< e.g. "solve"
  /// Flag/value pairs exactly as given on the command line (or any other
  /// configuration the producer wants replayable).
  util::JsonObject config;
  /// Digest of the primary input (fnv1a64_hex of the instance file), empty
  /// when the run had no instance input.
  std::string instance_digest;
};

/// 64-bit FNV-1a of `bytes`. Stable across platforms and standard
/// libraries (unlike std::hash); the raw value is what the routing tier's
/// consistent-hash ring sorts on.
std::uint64_t fnv1a64(std::string_view bytes);

/// fnv1a64(bytes) as 16 lowercase hex digits — the digest form used in
/// manifests, cache keys, and bench records.
std::string fnv1a64_hex(const std::string& bytes);

/// Build provenance baked into the binary at configure time, so scrapes
/// and dashboards can correlate a regression to the exact build.
struct BuildInfo {
  std::string version;       ///< MECSC_VERSION (CMake project version)
  std::string git_describe;  ///< `git describe` at configure, or "unknown"
  std::string compiler;      ///< e.g. "gcc 12.2.0"
  std::string build_type;    ///< "optimized" | "debug"
  int obs_format_version = kObsFormatVersion;
};

/// The binary's build info (constant per process).
const BuildInfo& build_info();

/// {"version", "git_describe", "compiler", "build_type",
/// "obs_format_version"} — all deterministic for a given binary.
util::JsonValue build_info_to_json();

/// Serializes the manifest, adding obs_format_version, build provenance
/// (compiler, build type), and the wall_written_unix_ms timestamp.
util::JsonValue manifest_to_json(const RunManifest& manifest);

/// Writes manifest_to_json(manifest).dump(2) to `path`. Throws
/// std::runtime_error on I/O failure.
void write_manifest(const std::string& path, const RunManifest& manifest);

}  // namespace mecsc::obs
