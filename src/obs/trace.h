// Structured algorithm tracing: JSON-lines event records behind a
// near-zero-cost null sink.
//
// Each emitted event becomes one line of JSON — an object holding the
// event name, a monotonically increasing sequence number, and the fields
// the call site attached:
//
//   {"event":"game.best_response_round","moves":4,"potential":81.2,"seq":7}
//
// Event taxonomy (see DESIGN.md "Observability" for the full field lists):
//   appro.inner_solve          one inner GAP/transportation solve
//   appro.lp_solve             the Shmoys-Tardos LP relaxation
//   appro.rounding             step 4: virtual -> physical placement
//   lcf.coordination_set       the leader's ⌊ξ|N|⌋ pinned providers
//   game.best_response_round   one full pass of best-response dynamics
//   log                        a LOG_* line routed through the bridge
//
// Cost model: tracing is off by default and Trace::enabled() is a relaxed
// atomic load. Call sites go through MECSC_TRACE(...), which evaluates its
// argument — the TraceEvent construction and every field expression —
// only when a sink is attached, so a disabled trace does zero work and
// zero allocations on the hot path.
//
// Determinism contract: events carry deterministic algorithm state; any
// wall-clock field must use the "wall_" key prefix (the only fields
// tools/strip_wallclock.py removes before determinism diffs). Single-
// threaded runs produce byte-identical traces for identical seeds;
// concurrent emitters are serialized by a mutex but their interleaving is
// scheduler-dependent.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "util/json.h"
#include "util/sync.h"

namespace mecsc::obs {

/// One event under construction: a name plus typed fields. Field setters
/// return *this so call sites can chain inside MECSC_TRACE(...).
class TraceEvent {
 public:
  explicit TraceEvent(const char* name) : name_(name) {}

  TraceEvent& f(const char* key, double v) {
    fields_[key] = util::JsonValue(v);
    return *this;
  }
  TraceEvent& f(const char* key, std::size_t v) {
    fields_[key] = util::JsonValue(v);
    return *this;
  }
  TraceEvent& f(const char* key, long long v) {
    fields_[key] = util::JsonValue(v);
    return *this;
  }
  TraceEvent& f(const char* key, int v) {
    fields_[key] = util::JsonValue(v);
    return *this;
  }
  TraceEvent& f(const char* key, bool v) {
    fields_[key] = util::JsonValue(v);
    return *this;
  }
  TraceEvent& f(const char* key, const char* v) {
    fields_[key] = util::JsonValue(v);
    return *this;
  }
  TraceEvent& f(const char* key, std::string v) {
    fields_[key] = util::JsonValue(std::move(v));
    return *this;
  }

 private:
  friend class Trace;
  const char* name_;
  util::JsonObject fields_;
};

/// Process-wide trace sink. Disabled (null sink) until open_file() or
/// open_stream() attaches a destination.
class Trace {
 public:
  static Trace& global();

  /// True when a sink is attached. Relaxed atomic read — safe and cheap
  /// to call from any thread on any hot path.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts writing JSON lines to `path` (truncates). Throws
  /// std::runtime_error when the file cannot be opened.
  void open_file(const std::string& path);

  /// Starts writing to a caller-owned stream (tests). The stream must
  /// outlive the trace session.
  void open_stream(std::ostream* out);

  /// Flushes and detaches the sink; the trace becomes a null sink again.
  void close();

  /// Serializes and writes one event line. Thread-safe. A no-op when
  /// disabled — but prefer MECSC_TRACE so the event is never even built.
  void emit(const TraceEvent& event);

  /// Events written since the sink was attached.
  std::uint64_t events_emitted() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> events_{0};
  /// Leaf lock serializing sink attach/detach and event writes.
  util::Mutex mutex_;
  std::ofstream file_ MECSC_GUARDED_BY(mutex_);
  /// Points at file_ or a caller's stream.
  std::ostream* out_ MECSC_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t seq_ MECSC_GUARDED_BY(mutex_) = 0;
};

/// Emits an event iff tracing is enabled. The argument (typically
/// `TraceEvent("name").f(...)...`) is NOT evaluated when the trace is
/// disabled, so instrumentation may compute expensive fields (potential
/// values, cost sums) inline without a guard at the call site.
#define MECSC_TRACE(...)                                \
  do {                                                  \
    if (::mecsc::obs::Trace::global().enabled()) {      \
      ::mecsc::obs::Trace::global().emit(__VA_ARGS__);  \
    }                                                   \
  } while (0)

/// Routes util::log lines through the trace as "log" events (in addition
/// to the normal stderr sink) and counts them per level in the metrics
/// registry, giving the CLI one configuration point for --log-level and
/// --trace-out. Idempotent.
void install_log_bridge();

}  // namespace mecsc::obs
