#include "obs/run_info.h"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mecsc::obs {

namespace {

const char* build_type() {
#ifdef NDEBUG
  return "optimized";
#else
  return "debug";
#endif
}

const char* compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
#ifdef MECSC_VERSION
    b.version = MECSC_VERSION;
#else
    b.version = "0.0.0";
#endif
#ifdef MECSC_GIT_DESCRIBE
    b.git_describe = MECSC_GIT_DESCRIBE;
#else
    b.git_describe = "unknown";
#endif
    b.compiler = compiler();
    b.build_type = build_type();
    return b;
  }();
  return info;
}

util::JsonValue build_info_to_json() {
  const BuildInfo& info = build_info();
  util::JsonObject o;
  o["version"] = util::JsonValue(info.version);
  o["git_describe"] = util::JsonValue(info.git_describe);
  o["compiler"] = util::JsonValue(info.compiler);
  o["build_type"] = util::JsonValue(info.build_type);
  o["obs_format_version"] = util::JsonValue(info.obs_format_version);
  return util::JsonValue(std::move(o));
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string fnv1a64_hex(const std::string& bytes) {
  std::uint64_t h = fnv1a64(bytes);
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = "0123456789abcdef"[h & 0xf];
    h >>= 4;
  }
  return hex;
}

util::JsonValue manifest_to_json(const RunManifest& manifest) {
  util::JsonObject doc;
  doc["obs_format_version"] = util::JsonValue(kObsFormatVersion);
  doc["tool"] = util::JsonValue(manifest.tool);
  doc["command"] = util::JsonValue(manifest.command);
  doc["config"] = util::JsonValue(manifest.config);
  if (!manifest.instance_digest.empty()) {
    doc["instance_digest"] = util::JsonValue(manifest.instance_digest);
  }
  util::JsonObject build;
  build["compiler"] = util::JsonValue(compiler());
  build["build_type"] = util::JsonValue(build_type());
  build["version"] = util::JsonValue(build_info().version);
  build["git_describe"] = util::JsonValue(build_info().git_describe);
  doc["build"] = util::JsonValue(std::move(build));
  // The only wall-clock field: when the manifest was written. Manifests
  // describe runs, so "when" is provenance, not an algorithm result.
  const auto now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  doc["wall_written_unix_ms"] =
      util::JsonValue(static_cast<long long>(now_ms));
  return util::JsonValue(std::move(doc));
}

void write_manifest(const std::string& path, const RunManifest& manifest) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open manifest output '" + path + "'");
  }
  out << manifest_to_json(manifest).dump(2) << "\n";
  if (!out) {
    throw std::runtime_error("failed writing manifest '" + path + "'");
  }
}

}  // namespace mecsc::obs
