#include "obs/trace.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "util/log.h"

namespace mecsc::obs {

Trace& Trace::global() {
  static Trace trace;
  return trace;
}

void Trace::open_file(const std::string& path) {
  const util::MutexLock lock(mutex_);
  file_.open(path, std::ios::out | std::ios::trunc);
  if (!file_) {
    throw std::runtime_error("cannot open trace output '" + path + "'");
  }
  out_ = &file_;
  seq_ = 0;
  events_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Trace::open_stream(std::ostream* out) {
  const util::MutexLock lock(mutex_);
  file_.close();
  out_ = out;
  seq_ = 0;
  events_.store(0, std::memory_order_relaxed);
  enabled_.store(out != nullptr, std::memory_order_release);
}

void Trace::close() {
  const util::MutexLock lock(mutex_);
  enabled_.store(false, std::memory_order_release);
  if (out_ != nullptr) out_->flush();
  if (file_.is_open()) file_.close();
  out_ = nullptr;
}

void Trace::emit(const TraceEvent& event) {
  // JsonObject is a sorted map, so the serialized field order — and with
  // it the whole line — is deterministic.
  util::JsonObject line = event.fields_;
  line["event"] = util::JsonValue(event.name_);
  const util::MutexLock lock(mutex_);
  if (out_ == nullptr) return;
  line["seq"] = util::JsonValue(seq_++);
  *out_ << util::JsonValue(std::move(line)).dump() << "\n";
  events_.fetch_add(1, std::memory_order_relaxed);
}

void install_log_bridge() {
  util::set_log_observer([](util::LogLevel level, const std::string& msg) {
    const char* name = "debug";
    switch (level) {
      case util::LogLevel::Debug:
        name = "debug";
        break;
      case util::LogLevel::Info:
        name = "info";
        break;
      case util::LogLevel::Warn:
        name = "warn";
        break;
      case util::LogLevel::Error:
        name = "error";
        break;
      case util::LogLevel::Off:
        return;
    }
    MetricsRegistry::global().counter_add(std::string("log.lines.") + name);
    MECSC_TRACE(TraceEvent("log").f("level", name).f("message", msg));
  });
}

}  // namespace mecsc::obs
