#include "obs/metrics.h"

#include <algorithm>
#include <atomic>

namespace mecsc::obs {

namespace {

/// Registry-wide generation counter. Shards stamped with an older epoch
/// belong to a measurement that reset() already discarded, so they are
/// dropped instead of merged.
std::atomic<std::uint64_t> g_epoch{0};

/// Folds a sorted value stream into order-independent stats. Summing in
/// ascending order makes the floating-point sum a pure function of the
/// value multiset, independent of which thread recorded what.
ValueStats fold_sorted(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  ValueStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.back();
  for (const double v : values) s.sum += v;
  return s;
}

util::JsonValue stats_to_json(const ValueStats& s) {
  util::JsonObject o;
  o["count"] = util::JsonValue(static_cast<std::size_t>(s.count));
  o["sum"] = util::JsonValue(s.sum);
  if (s.count > 0) {
    o["min"] = util::JsonValue(s.min);
    o["max"] = util::JsonValue(s.max);
    o["mean"] = util::JsonValue(s.sum / static_cast<double>(s.count));
  }
  return util::JsonValue(std::move(o));
}

}  // namespace

util::JsonValue MetricsSnapshot::to_json() const {
  util::JsonObject doc;
  util::JsonObject c;
  for (const auto& [name, v] : counters) {
    c[name] = util::JsonValue(static_cast<long long>(v));
  }
  doc["counters"] = util::JsonValue(std::move(c));
  util::JsonObject g;
  for (const auto& [name, v] : gauges) g[name] = util::JsonValue(v);
  doc["gauges"] = util::JsonValue(std::move(g));
  util::JsonObject h;
  for (const auto& [name, s] : histograms) h[name] = stats_to_json(s);
  doc["histograms"] = util::JsonValue(std::move(h));
  util::JsonObject w;
  for (const auto& [name, s] : wall_timers_ms) w[name] = stats_to_json(s);
  doc["wall_timers_ms"] = util::JsonValue(std::move(w));
  return util::JsonValue(std::move(doc));
}

/// Thread-local owner of one shard; hands the shard back to the registry
/// when the thread exits (parallel_for joins its workers, so by the time
/// it returns every worker shard has been retired).
struct ShardHandle {
  MetricsRegistry::Shard shard;
  ~ShardHandle() { MetricsRegistry::global().retire(std::move(shard)); }
};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local ShardHandle handle;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (handle.shard.epoch != epoch) {
    handle.shard = Shard{};
    handle.shard.epoch = epoch;
  }
  return handle.shard;
}

void MetricsRegistry::retire(Shard&& shard) {
  if (shard.empty()) return;
  const util::MutexLock lock(mutex_);
  if (shard.epoch != g_epoch.load(std::memory_order_relaxed)) return;
  retired_.push_back(std::move(shard));
}

void MetricsRegistry::counter_add(const std::string& name,
                                  std::int64_t delta) {
  local_shard().counters[name] += delta;
}

void MetricsRegistry::value_record(const std::string& name, double value) {
  local_shard().values[name].push_back(value);
}

void MetricsRegistry::wall_duration_record(const std::string& name,
                                           double ms) {
  local_shard().wall_ms[name].push_back(ms);
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  const util::MutexLock lock(mutex_);
  gauges_[name] = value;
}

MetricsSnapshot MetricsRegistry::snapshot() {
  MetricsSnapshot snap;
  std::map<std::string, std::vector<double>> values;
  std::map<std::string, std::vector<double>> wall_ms;
  {
    const util::MutexLock lock(mutex_);
    snap.gauges = gauges_;
    auto merge_shard = [&](const Shard& s) {
      for (const auto& [name, v] : s.counters) snap.counters[name] += v;
      for (const auto& [name, vs] : s.values) {
        auto& dst = values[name];
        dst.insert(dst.end(), vs.begin(), vs.end());
      }
      for (const auto& [name, vs] : s.wall_ms) {
        auto& dst = wall_ms[name];
        dst.insert(dst.end(), vs.begin(), vs.end());
      }
    };
    for (const Shard& s : retired_) merge_shard(s);
    const Shard& live = local_shard();
    if (live.epoch == g_epoch.load(std::memory_order_relaxed)) {
      merge_shard(live);
    }
  }
  for (auto& [name, vs] : values) snap.histograms[name] = fold_sorted(vs);
  for (auto& [name, vs] : wall_ms) {
    snap.wall_timers_ms[name] = fold_sorted(vs);
  }
  return snap;
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mutex_);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  retired_.clear();
  gauges_.clear();
}

}  // namespace mecsc::obs
