// Deterministic metrics registry: named counters, gauges, and value
// histograms with thread-local shards, so parallel_for workers record
// without touching a shared lock on the hot path.
//
// Determinism contract (the reason this file exists instead of a plain
// map-plus-mutex): parallel_for hands out indices with an atomic counter,
// so *which worker* records a given value is racy. Counters are exact
// integer sums (partition-independent), and histogram shards keep the raw
// values so snapshot() can sort the merged stream before folding it into
// count/sum/min/max — identical runs therefore serialize to identical
// bytes no matter how the work was split across threads.
//
// Wall-clock durations are first-class but segregated: every key in the
// serialized form that starts with "wall_" is timing metadata, never an
// algorithm result. tools/strip_wallclock.py removes exactly those keys
// before check_determinism.sh diffs artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/sync.h"

namespace mecsc::obs {

/// Order-independent summary of a value stream, computed from the sorted
/// merged stream at snapshot time.
struct ValueStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< valid when count > 0
  double max = 0.0;  ///< valid when count > 0
};

/// Merged, immutable view of the registry at one point in time.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, ValueStats> histograms;
  /// Wall-clock duration histograms (milliseconds); excluded from the
  /// determinism guarantee.
  std::map<std::string, ValueStats> wall_timers_ms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max}}, "wall_timers_ms": {...}}. Keys sort deterministically
  /// (JsonObject is std::map); every wall-clock value lives under a key
  /// with the "wall_" prefix.
  util::JsonValue to_json() const;
};

/// Process-wide registry. Recording routes through a thread-local shard
/// that is merged back (under a mutex) when its thread exits; snapshot()
/// additionally folds in the calling thread's live shard, so the usual
/// record-in-parallel_for-then-snapshot pattern observes everything.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Adds `delta` to the named monotonic counter.
  void counter_add(const std::string& name, std::int64_t delta = 1);

  /// Records one observation of a deterministic value stream.
  void value_record(const std::string& name, double value);

  /// Records one wall-clock duration (milliseconds). Kept apart from
  /// value_record so timing can never masquerade as an algorithm result.
  void wall_duration_record(const std::string& name, double ms);

  /// Last-writer-wins scalar. Only meaningful from sequential phases;
  /// concurrent writers would race on the final value.
  void gauge_set(const std::string& name, double value);

  /// Merges retired shards + the calling thread's live shard. Thread-safe;
  /// shards owned by other still-running threads are not visible.
  MetricsSnapshot snapshot();

  /// Drops everything recorded so far (retired shards, the calling
  /// thread's shard, and gauges). Tests and the CLI call this to scope a
  /// measurement; other threads' live shards are unaffected.
  void reset();

 private:
  friend struct ShardHandle;

  /// One thread's private buffer. Histograms keep raw values so the merge
  /// can sort before summing (see file comment).
  struct Shard {
    std::uint64_t epoch = 0;  ///< registry generation this shard belongs to
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, std::vector<double>> values;
    std::map<std::string, std::vector<double>> wall_ms;
    bool empty() const {
      return counters.empty() && values.empty() && wall_ms.empty();
    }
  };

  Shard& local_shard();
  void retire(Shard&& shard);

  /// Leaf lock: taken only to merge retired shards / touch gauges, never
  /// while calling out of this class.
  util::Mutex mutex_;
  std::vector<Shard> retired_ MECSC_GUARDED_BY(mutex_);
  std::map<std::string, double> gauges_ MECSC_GUARDED_BY(mutex_);
};

}  // namespace mecsc::obs
