// End-to-end causal tracing: per-request trace ids and span trees.
//
// The aggregate profiler (obs/profiler.h) answers "where does the
// *process* spend its time"; this module answers "where did *this
// request* go". A client mints a W3C-style traceparent —
//
//   00-<32 hex trace id>-<16 hex parent span id>-<01|00>
//
// — carried as a top-level "traceparent" field of the NDJSON request.
// The server opens one root span per request ("svc.request"), hangs the
// pipeline phases (queue / parse / decode / solve / serialize) off it,
// and bridges solver-internal MECSC_PROFILE_SCOPE spans (appro, simplex
// pivots, game dynamics) into the same tree via Profiler::SpanListener,
// so one trace goes wire -> pivot loop.
//
// Sampling is tail-based: every request builds its (cheap, in-memory)
// span tree; at completion it is *kept* when it was head-sampled, errored,
// or exceeded the slow threshold. Kept traces go to a TraceWriter — the
// same bounded async-writer discipline as RequestLog: enqueue on the hot
// path, dedicated writer thread does I/O, full queue drops (counted),
// never blocks a worker. The output file is Chrome trace-event JSON
// loadable in Perfetto, plus a "traces" section of per-request span-tree
// summaries.
//
// Determinism contract: trace ids, span ids, tree structure, and span
// counts are exact functions of the request stream (span ids are
// fnv1a64_hex(trace_id + "/" + seq) with seq = span creation order;
// server-minted trace ids derive from the deterministic request_id).
// Every wall-clock-derived field serializes under a "wall_" key, and the
// "traceEvents" array is wall-clock by nature; tools/strip_wallclock.py
// removes both, so check_determinism.sh diffs the stripped artifact
// clean across same-seed single-worker runs.
//
// The FlightRecorder reuses the same span trees for incident debugging:
// a fixed-size ring of the last N completed requests (wide event + span
// tree), always on, dumped on SIGQUIT or via admin GET /debug/flight —
// so a misbehaving daemon can be explained post-hoc without having had
// trace export enabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "util/json.h"
#include "util/sync.h"
#include "util/timer.h"

namespace mecsc::obs {

/// Parsed (or minted) trace context: who this request belongs to.
struct TraceContext {
  std::string trace_id;  ///< 32 lowercase hex digits, not all zero
  /// Parent span id (16 lowercase hex): the *caller's* span. Empty when
  /// the server minted the context itself (no upstream parent).
  std::string span_id;
  bool sampled = false;  ///< head-sample flag (traceparent 01 flag bit)

  bool valid() const { return !trace_id.empty(); }

  /// "00-<trace_id>-<span_id>-<01|00>". Requires a non-empty span_id.
  std::string to_traceparent() const;

  /// Parses a traceparent header value. Returns nullopt on any deviation
  /// (wrong length/version, non-hex digits, all-zero ids) — per W3C
  /// trace-context, an invalid header is ignored, never an error.
  static std::optional<TraceContext> parse(const std::string& header);

  /// Deterministically derives a context from seed text (salted FNV-1a
  /// variants). Used by clients to mint ids reproducible from the request
  /// stream, and by the server (with span_id cleared) when a request
  /// carries no traceparent.
  static TraceContext derive(const std::string& seed, bool sampled);
};

/// Deterministic head-sample decision: hashes the trace id onto [0,1) and
/// compares against `rate`. Never consults an RNG, so the set of sampled
/// requests is a pure function of the trace ids.
bool trace_head_sample(const std::string& trace_id, double rate);

/// Span id rule: fnv1a64_hex(ns + "/" + seq), seq = creation order within
/// the trace (root = 0). RequestTrace namespaces with
/// trace_id + "/" + parent_span_id so two processes on the same trace
/// (router and backend, each numbering from 0) can never collide.
/// Deterministic given a deterministic request stream and single-worker
/// FIFO processing.
std::string trace_span_id(const std::string& ns, std::uint64_t seq);

/// One node of a request's span tree. `name` points at a string literal
/// (profiler scope names), so nodes are cheap to copy into the writer
/// queue and the flight ring.
struct TraceSpan {
  const char* name = "";
  std::string span_id;
  double start_ms = 0.0;  ///< offset from request admission (wall)
  double dur_ms = 0.0;
  std::vector<TraceSpan> children;

  /// {"name", "span_id", "wall_start_ms", "wall_dur_ms", "children"}
  /// (children omitted when empty) — structure bare, timings wall_.
  util::JsonValue to_json() const;

  /// Nodes in this subtree (including this one).
  std::uint64_t span_count() const;
};

/// A completed request trace, ready for the writer / flight ring.
struct FinishedTrace {
  TraceContext ctx;        ///< ctx.span_id = upstream parent ("" if none)
  std::string request_id;
  std::string type;
  /// Why the trace was kept: "sampled" | "slow" | "error"; empty when it
  /// was not kept (flight ring still holds it).
  std::string keep_reason;
  std::uint32_t tid = 0;   ///< worker ordinal for the Perfetto timeline
  double base_ms = 0.0;    ///< admission stamp on the server clock (wall)
  TraceSpan root;

  /// Deterministic per-trace record for the artifact's "traces" section
  /// and the flight ring: ids, type, keep_reason, span count, and the
  /// span tree (wall_ segregated).
  util::JsonValue summary_json() const;
};

/// Builds one request's span tree on the worker thread. Installed as the
/// thread's Profiler::SpanListener for the request's lifetime (see
/// ProfilerListenerScope), so MECSC_PROFILE_SCOPE sites anywhere below —
/// server phases and solver internals alike — land in the tree.
///
/// Single-threaded by design: only the owning worker may call into it
/// (solvers do not spawn threads; util/parallel.h is bench-only), which
/// keeps span seq numbers — and therefore span ids — deterministic.
class RequestTrace final : public Profiler::SpanListener {
 public:
  /// `clock` is the request's admission timer (span offsets are measured
  /// on it) and must outlive the trace. `root_name` is the root span's
  /// label — "svc.request" for the solver server, "route.request" for the
  /// front router (a string literal; TraceSpan::name never owns).
  RequestTrace(TraceContext ctx, const util::Timer& clock,
               const char* root_name = "svc.request");

  /// Opens a child span under the innermost open span, timed from now.
  void begin(const char* name);
  /// Closes the innermost open span (root excluded; unmatched ends are
  /// ignored).
  void end();
  /// Adds an already-timed child (retroactive phases: queue, parse) under
  /// the innermost open span.
  void add_complete(const char* name, double start_ms, double dur_ms);

  // Profiler::SpanListener — the solver bridge.
  void on_span_begin(const char* name) override { begin(name); }
  void on_span_end(const char*) override { end(); }

  const TraceContext& context() const { return ctx_; }
  std::uint64_t spans() const { return next_seq_; }

  /// Span id of the innermost open span (the root before any begin()).
  /// This is the id a cross-process hop propagates: the router opens its
  /// forward span, reads this, and sends it as the traceparent's parent
  /// span id so the downstream server's root parents on the hop.
  const std::string& current_span_id() const;

  /// Closes any still-open spans and the root at the current clock, and
  /// returns the finished trace. The RequestTrace must not be used after.
  FinishedTrace finish(std::string request_id, std::string type,
                       std::string keep_reason, std::uint32_t tid,
                       double base_ms);

 private:
  TraceContext ctx_;
  const util::Timer& clock_;
  /// Span-id hash namespace: trace_id + "/" + inbound parent span id —
  /// see trace_span_id for why the parent is folded in.
  std::string span_namespace_;
  TraceSpan root_;
  /// Innermost-first path of open spans. stack_[i] points into
  /// stack_[i-1]->children; safe because only the deepest open span's
  /// children vector can grow while deeper pointers exist.
  std::vector<TraceSpan*> stack_;
  std::vector<double> start_stack_;  ///< clock offsets of open spans
  std::uint64_t next_seq_ = 0;
};

/// Bounded async writer for kept traces (the RequestLog pattern): write()
/// enqueues and returns; a dedicated thread streams Chrome trace events
/// incrementally (so a crashed daemon still leaves a loadable prefix —
/// Perfetto tolerates an unterminated traceEvents array); close() drains,
/// appends the deterministic "traces" summary section, and joins.
class TraceWriter {
 public:
  struct Options {
    std::string path;
    std::size_t queue_capacity = 1024;
    /// Per-file cap on retained summaries (they are buffered in memory
    /// until close); traces beyond it still get their timeline events,
    /// and the overflow is counted in the artifact.
    std::size_t max_summaries = 8192;
  };

  /// Opens the file for truncating write; throws std::runtime_error when
  /// the path cannot be opened.
  explicit TraceWriter(Options options);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(FinishedTrace trace);

  /// Drains the queue, writes the artifact footer ("traces" summaries +
  /// counts), flushes, and joins the writer. Call from the owning thread;
  /// idempotent there. Writes after close are counted as dropped.
  void close();

  std::uint64_t written() const;
  std::uint64_t dropped() const;

 private:
  void writer_loop();
  /// Streams one trace's Chrome events; buffers its summary. Writer
  /// thread only.
  void emit(const FinishedTrace& trace);

  Options options_;
  // Writer-thread-only state (owning thread touches it after join only).
  std::ofstream out_;
  bool first_event_ = true;
  std::vector<std::string> summaries_;
  std::uint64_t summaries_dropped_ = 0;

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<FinishedTrace> pending_ MECSC_GUARDED_BY(mutex_);
  bool closed_ MECSC_GUARDED_BY(mutex_) = false;
  std::uint64_t written_ MECSC_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ MECSC_GUARDED_BY(mutex_) = 0;
  std::thread writer_;  ///< owning thread only (constructor / close)
};

/// Always-on ring of the last `capacity` completed requests: the wide
/// event plus (when tracing ran) the span-tree summary, pre-serialized at
/// record time so dumping never touches request internals. Thread-safe;
/// recording is one small JSON build plus a short critical section.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  /// `trace` may be null (requests rejected before admission, or tracing
  /// disabled): the entry then carries the wide event only.
  void record(const RequestEvent& event, const FinishedTrace* trace);

  /// {"obs_format_version", "capacity", "recorded_total", "entries":
  /// [{"event": {...}, "trace": {...}}, ...]} — oldest first. Entry
  /// fields follow the wide-event / trace-summary wall_ contracts, so the
  /// stripped dump is deterministic under single-worker FIFO capture.
  util::JsonValue to_json() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t recorded_total() const;

 private:
  std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::deque<util::JsonValue> entries_ MECSC_GUARDED_BY(mutex_);
  std::uint64_t recorded_ MECSC_GUARDED_BY(mutex_) = 0;
};

}  // namespace mecsc::obs
