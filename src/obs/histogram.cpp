#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace mecsc::obs {

namespace {

constexpr double kMinTracked = 0.0009765625;  // 2^-10

double pow2(int e) { return std::ldexp(1.0, e); }

}  // namespace

LogLinearHistogram::LogLinearHistogram() : buckets_(bucket_count(), 0) {}

std::size_t LogLinearHistogram::bucket_index(double value) const {
  if (!(value >= kMinTracked)) return 0;  // underflow (and NaN) bucket
  if (value >= pow2(kMaxExponent)) return buckets_.size() - 1;
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // in [0.5, 1)
  const int octave = exponent - 1;                       // value in [2^o, 2^{o+1})
  // Position within the octave, scaled to [0, kSubBuckets).
  const double within = (mantissa - 0.5) * 2.0;  // in [0, 1)
  std::size_t sub = static_cast<std::size_t>(
      within * static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 +
         static_cast<std::size_t>(octave - kMinExponent) * kSubBuckets + sub;
}

void LogLinearHistogram::bucket_bounds(std::size_t index, double* lower,
                                       double* upper) const {
  if (index == 0) {
    *lower = 0.0;
    *upper = kMinTracked;
    return;
  }
  if (index == buckets_.size() - 1) {
    *lower = pow2(kMaxExponent);
    *upper = pow2(kMaxExponent);  // open-ended; exports print "+Inf"
    return;
  }
  const std::size_t j = index - 1;
  const int octave = kMinExponent + static_cast<int>(j / kSubBuckets);
  const double sub = static_cast<double>(j % kSubBuckets);
  const double base = pow2(octave);
  const double step = base / static_cast<double>(kSubBuckets);
  *lower = base + sub * step;
  *upper = base + (sub + 1.0) * step;
}

void LogLinearHistogram::record(double value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void LogLinearHistogram::merge(const LogLinearHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogLinearHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double LogLinearHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Continuous rank in [0, count-1], same convention as
  // util::percentile_sorted's linear interpolation.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double first = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (rank >= static_cast<double>(cumulative)) continue;
    double lower = 0.0;
    double upper = 0.0;
    bucket_bounds(i, &lower, &upper);
    // Interpolate by the rank's position inside this bucket's count.
    const double position =
        (rank - first + 0.5) / static_cast<double>(buckets_[i]);
    const double value = lower + position * (upper - lower);
    // The exact extremes are tracked, so never report outside them (the
    // overflow bucket in particular has no meaningful upper edge).
    return std::clamp(value, min_, max_);
  }
  return max_;
}

std::vector<LogLinearHistogram::Bucket> LogLinearHistogram::nonzero_buckets()
    const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    Bucket b;
    bucket_bounds(i, &b.lower, &b.upper);
    b.count = buckets_[i];
    out.push_back(b);
  }
  return out;
}

}  // namespace mecsc::obs
