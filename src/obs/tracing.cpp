#include "obs/tracing.h"

#include <stdexcept>
#include <utility>

#include "obs/run_info.h"

namespace mecsc::obs {

namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

bool is_lower_hex(const std::string& s) {
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool all_zero(const std::string& s) {
  return s.find_first_not_of('0') == std::string::npos;
}

}  // namespace

std::string TraceContext::to_traceparent() const {
  return "00-" + trace_id + "-" + span_id + "-" + (sampled ? "01" : "00");
}

std::optional<TraceContext> TraceContext::parse(const std::string& header) {
  // 00-{32 hex}-{16 hex}-{2 hex}, all lowercase, ids not all zero.
  if (header.size() != 55) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return std::nullopt;
  }
  if (header.compare(0, 2, "00") != 0) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id = header.substr(3, 32);
  ctx.span_id = header.substr(36, 16);
  const std::string flags = header.substr(53, 2);
  if (!is_lower_hex(ctx.trace_id) || !is_lower_hex(ctx.span_id) ||
      !is_lower_hex(flags)) {
    return std::nullopt;
  }
  if (all_zero(ctx.trace_id) || all_zero(ctx.span_id)) return std::nullopt;
  const int low = flags[1] >= 'a' ? flags[1] - 'a' + 10 : flags[1] - '0';
  ctx.sampled = (low & 1) != 0;
  return ctx;
}

TraceContext TraceContext::derive(const std::string& seed, bool sampled) {
  TraceContext ctx;
  ctx.trace_id = fnv1a64_hex(seed + "\x01") + fnv1a64_hex(seed + "\x02");
  ctx.span_id = fnv1a64_hex(seed + "\x03");
  // An all-zero id is invalid per W3C; FNV-1a of a non-empty seed never
  // realistically produces one, but guard anyway so derive() always
  // yields a valid context.
  if (all_zero(ctx.trace_id)) ctx.trace_id.back() = '1';
  if (all_zero(ctx.span_id)) ctx.span_id.back() = '1';
  ctx.sampled = sampled;
  return ctx;
}

bool trace_head_sample(const std::string& trace_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Top 53 bits of the hash map exactly onto a double in [0, 1).
  const std::uint64_t hash = fnv1a64(trace_id + "#sample");
  const double unit = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return unit < rate;
}

std::string trace_span_id(const std::string& trace_id, std::uint64_t seq) {
  return fnv1a64_hex(trace_id + "/" + std::to_string(seq));
}

util::JsonValue TraceSpan::to_json() const {
  util::JsonObject o;
  o["name"] = util::JsonValue(name);
  o["span_id"] = util::JsonValue(span_id);
  o["wall_start_ms"] = util::JsonValue(start_ms);
  o["wall_dur_ms"] = util::JsonValue(dur_ms);
  if (!children.empty()) {
    util::JsonArray kids;
    kids.reserve(children.size());
    for (const TraceSpan& child : children) kids.push_back(child.to_json());
    o["children"] = util::JsonValue(std::move(kids));
  }
  return util::JsonValue(std::move(o));
}

std::uint64_t TraceSpan::span_count() const {
  std::uint64_t count = 1;
  for (const TraceSpan& child : children) count += child.span_count();
  return count;
}

util::JsonValue FinishedTrace::summary_json() const {
  util::JsonObject o;
  o["trace_id"] = util::JsonValue(ctx.trace_id);
  o["parent_span_id"] = util::JsonValue(ctx.span_id);
  o["request_id"] = util::JsonValue(request_id);
  o["type"] = util::JsonValue(type);
  o["keep_reason"] = util::JsonValue(keep_reason);
  o["spans"] = util::JsonValue(static_cast<std::size_t>(root.span_count()));
  o["root"] = root.to_json();
  return util::JsonValue(std::move(o));
}

RequestTrace::RequestTrace(TraceContext ctx, const util::Timer& clock,
                           const char* root_name)
    : ctx_(std::move(ctx)), clock_(clock) {
  // Span ids must be unique across *processes* sharing one trace: the
  // router and the backend each open a RequestTrace on the same trace id
  // and both number spans from 0, so hashing (trace_id, seq) alone would
  // collide the two roots. Folding the inbound parent span id into the
  // namespace keeps ids distinct along the whole request chain — each
  // hop's parent differs — while staying a pure function of the context
  // (the determinism contract for trace artifacts).
  span_namespace_ = ctx_.trace_id + "/" + ctx_.span_id;
  root_.name = root_name;
  root_.span_id = trace_span_id(span_namespace_, next_seq_++);
  stack_.push_back(&root_);
}

const std::string& RequestTrace::current_span_id() const {
  return stack_.back()->span_id;
}

void RequestTrace::begin(const char* name) {
  TraceSpan* parent = stack_.back();
  parent->children.push_back(TraceSpan{});
  TraceSpan& span = parent->children.back();
  span.name = name;
  span.span_id = trace_span_id(span_namespace_, next_seq_++);
  span.start_ms = clock_.elapsed_ms();
  stack_.push_back(&span);
}

void RequestTrace::end() {
  if (stack_.size() <= 1) return;  // root closes in finish()
  TraceSpan* span = stack_.back();
  span->dur_ms = clock_.elapsed_ms() - span->start_ms;
  stack_.pop_back();
}

void RequestTrace::add_complete(const char* name, double start_ms,
                                double dur_ms) {
  TraceSpan* parent = stack_.back();
  parent->children.push_back(TraceSpan{});
  TraceSpan& span = parent->children.back();
  span.name = name;
  span.span_id = trace_span_id(span_namespace_, next_seq_++);
  span.start_ms = start_ms;
  span.dur_ms = dur_ms;
}

FinishedTrace RequestTrace::finish(std::string request_id, std::string type,
                                   std::string keep_reason, std::uint32_t tid,
                                   double base_ms) {
  const double now = clock_.elapsed_ms();
  while (stack_.size() > 1) {
    stack_.back()->dur_ms = now - stack_.back()->start_ms;
    stack_.pop_back();
  }
  root_.dur_ms = now;
  FinishedTrace finished;
  finished.ctx = std::move(ctx_);
  finished.request_id = std::move(request_id);
  finished.type = std::move(type);
  finished.keep_reason = std::move(keep_reason);
  finished.tid = tid;
  finished.base_ms = base_ms;
  finished.root = std::move(root_);
  return finished;
}

TraceWriter::TraceWriter(Options options) : options_(std::move(options)) {
  out_.open(options_.path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open trace file: " + options_.path);
  }
  out_ << "{\n\"obs_format_version\": " << kObsFormatVersion
       << ",\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  out_.flush();
  writer_ = std::thread([this] { writer_loop(); });
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::write(FinishedTrace trace) {
  {
    const util::MutexLock lock(mutex_);
    if (closed_ || pending_.size() >= options_.queue_capacity) {
      ++dropped_;
      return;
    }
    pending_.push_back(std::move(trace));
  }
  cv_.notify_one();
}

void TraceWriter::writer_loop() {
  for (;;) {
    std::deque<FinishedTrace> batch;
    {
      util::MutexLock lock(mutex_);
      while (!closed_ && pending_.empty()) cv_.wait(mutex_);
      if (pending_.empty()) return;  // closed_ and drained
      batch.swap(pending_);
    }
    for (const FinishedTrace& trace : batch) emit(trace);
    out_.flush();
    {
      const util::MutexLock lock(mutex_);
      written_ += batch.size();
    }
  }
}

void TraceWriter::emit(const FinishedTrace& trace) {
  // Pre-order walk: each span becomes one ph:"X" complete event carrying
  // its ids in args, so Perfetto renders the nesting and the ids survive
  // for referential-integrity checks.
  struct Item {
    const TraceSpan* span;
    const std::string* parent_span_id;
  };
  std::vector<Item> work;
  work.push_back(Item{&trace.root, &trace.ctx.span_id});
  while (!work.empty()) {
    const Item item = work.back();
    work.pop_back();
    const TraceSpan& span = *item.span;
    util::JsonObject ev;
    ev["name"] = util::JsonValue(span.name);
    ev["cat"] = util::JsonValue("svc");
    ev["ph"] = util::JsonValue("X");
    ev["ts"] = util::JsonValue((trace.base_ms + span.start_ms) * 1e3);
    ev["dur"] = util::JsonValue(span.dur_ms * 1e3);
    ev["pid"] = util::JsonValue(1);
    ev["tid"] = util::JsonValue(static_cast<std::size_t>(trace.tid));
    util::JsonObject args;
    args["trace_id"] = util::JsonValue(trace.ctx.trace_id);
    args["span_id"] = util::JsonValue(span.span_id);
    args["parent_span_id"] = util::JsonValue(*item.parent_span_id);
    args["request_id"] = util::JsonValue(trace.request_id);
    ev["args"] = util::JsonValue(std::move(args));
    out_ << (first_event_ ? "\n" : ",\n")
         << util::JsonValue(std::move(ev)).dump();
    first_event_ = false;
    for (auto it = span.children.rbegin(); it != span.children.rend(); ++it) {
      work.push_back(Item{&*it, &span.span_id});
    }
  }
  if (summaries_.size() < options_.max_summaries) {
    summaries_.push_back(trace.summary_json().dump());
  } else {
    ++summaries_dropped_;
  }
}

void TraceWriter::close() {
  {
    const util::MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (!out_.is_open()) return;  // close() already ran
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
  {
    const util::MutexLock lock(mutex_);
    written = written_;
    dropped = dropped_;
  }
  out_ << "\n],\n\"traces\": [";
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    out_ << (i == 0 ? "\n" : ",\n") << summaries_[i];
  }
  out_ << "\n],\n\"kept_traces\": " << written
       << ",\n\"summaries_dropped\": " << summaries_dropped_
       << ",\n\"wall_dropped_traces\": " << dropped << "\n}\n";
  out_.flush();
  out_.close();
}

std::uint64_t TraceWriter::written() const {
  const util::MutexLock lock(mutex_);
  return written_;
}

std::uint64_t TraceWriter::dropped() const {
  const util::MutexLock lock(mutex_);
  return dropped_;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(const RequestEvent& event,
                            const FinishedTrace* trace) {
  util::JsonObject entry;
  entry["event"] = event.to_json();
  if (trace != nullptr) entry["trace"] = trace->summary_json();
  util::JsonValue value{std::move(entry)};
  const util::MutexLock lock(mutex_);
  entries_.push_back(std::move(value));
  if (entries_.size() > capacity_) entries_.pop_front();
  ++recorded_;
}

util::JsonValue FlightRecorder::to_json() const {
  util::JsonObject doc;
  doc["obs_format_version"] = util::JsonValue(kObsFormatVersion);
  doc["capacity"] = util::JsonValue(capacity_);
  util::JsonArray items;
  {
    const util::MutexLock lock(mutex_);
    doc["recorded_total"] =
        util::JsonValue(static_cast<std::size_t>(recorded_));
    items.reserve(entries_.size());
    for (const util::JsonValue& entry : entries_) items.push_back(entry);
  }
  doc["entries"] = util::JsonValue(std::move(items));
  return util::JsonValue(std::move(doc));
}

std::size_t FlightRecorder::size() const {
  const util::MutexLock lock(mutex_);
  return entries_.size();
}

std::uint64_t FlightRecorder::recorded_total() const {
  const util::MutexLock lock(mutex_);
  return recorded_;
}

}  // namespace mecsc::obs
