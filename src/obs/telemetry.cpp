#include "obs/telemetry.h"

#include "obs/run_info.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace mecsc::obs {

namespace {

/// Stable small ordinal for the calling thread, assigned on first use.
/// Used to pin a thread to one telemetry shard without any registration
/// handshake; ordinals are process-global, shard choice is ordinal modulo
/// the instance's shard count.
std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Prometheus label values: escape backslash, double-quote, and newline
/// per the text exposition format.
std::string prom_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Numbers in the exposition format: shortest round-trip double, matching
/// the JSON serializer's behavior closely enough for scrapers.
void prom_number(std::string* out, double value) {
  if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  *out += buf;
}

void prom_line(std::string* out, const std::string& name,
               const std::string& labels, double value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  prom_number(out, value);
  *out += '\n';
}

void prom_header(std::string* out, const std::string& name,
                 const std::string& help, const std::string& type) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

util::JsonValue histogram_json(const LogLinearHistogram& h) {
  util::JsonObject out;
  out["count"] = h.count();
  out["sum"] = h.sum();
  out["mean"] = h.mean();
  out["min"] = h.min();
  out["max"] = h.max();
  out["p50"] = h.quantile(0.50);
  out["p95"] = h.quantile(0.95);
  out["p99"] = h.quantile(0.99);
  out["p999"] = h.quantile(0.999);
  util::JsonArray buckets;
  for (const auto& b : h.nonzero_buckets()) {
    util::JsonArray row;
    row.push_back(b.lower);
    row.push_back(b.upper);
    row.push_back(b.count);
    buckets.push_back(std::move(row));
  }
  out["buckets"] = std::move(buckets);
  return util::JsonValue(std::move(out));
}

}  // namespace

// ---------------------------------------------------------------------------
// RequestEvent

util::JsonValue RequestEvent::to_json() const {
  util::JsonObject out;
  out["event"] = "request";
  out["request_id"] = request_id;
  out["type"] = type;
  if (!algorithm.empty()) out["algorithm"] = algorithm;
  if (!instance_digest.empty()) out["digest"] = instance_digest;
  out["cache"] = cache_outcome;
  out["outcome"] = outcome;
  out["ok"] = ok;
  out["bytes_in"] = bytes_in;
  out["wall_bytes_out"] = bytes_out;
  out["wall_queue_ms"] = queue_ms;
  out["wall_parse_ms"] = parse_ms;
  out["wall_decode_ms"] = decode_ms;
  out["wall_solve_ms"] = solve_ms;
  out["wall_serialize_ms"] = serialize_ms;
  out["wall_total_ms"] = total_ms;
  return util::JsonValue(std::move(out));
}

// ---------------------------------------------------------------------------
// RequestLog

RequestLog::RequestLog(Options options) : options_(std::move(options)) {
  out_.open(options_.path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    throw std::runtime_error("request log: cannot open '" + options_.path +
                             "' for writing");
  }
  writer_ = std::thread([this] { writer_loop(); });
}

RequestLog::~RequestLog() { close(); }

void RequestLog::write(const RequestEvent& event) {
  if (options_.slow_request_ms >= 0.0 &&
      event.total_ms >= options_.slow_request_ms) {
    // Mirror synchronously so the operator sees the slow request even if
    // the async queue is saturated; one line, same schema as the log.
    std::string line = event.to_json().dump();
    std::fprintf(stderr, "mecsc_serve: slow request %s\n", line.c_str());
    util::MutexLock lock(mutex_);
    ++slow_mirrored_;
    if (closed_ || pending_.size() >= options_.queue_capacity) {
      ++dropped_;
      return;
    }
    pending_.push_back(std::move(line));
    cv_.notify_one();
    return;
  }
  std::string line = event.to_json().dump();
  util::MutexLock lock(mutex_);
  if (closed_ || pending_.size() >= options_.queue_capacity) {
    ++dropped_;
    return;
  }
  pending_.push_back(std::move(line));
  cv_.notify_one();
}

void RequestLog::close() {
  {
    util::MutexLock lock(mutex_);
    if (closed_ && !writer_.joinable()) return;
    closed_ = true;
    cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

std::uint64_t RequestLog::dropped() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

std::uint64_t RequestLog::slow_mirrored() const {
  util::MutexLock lock(mutex_);
  return slow_mirrored_;
}

std::uint64_t RequestLog::rotations() const {
  util::MutexLock lock(mutex_);
  return rotations_;
}

void RequestLog::rotate() {
  out_.close();
  // Single-level rollover: the previous ".1" (if any) is replaced, so the
  // log never occupies more than ~2x max_bytes on disk. rename() failures
  // (exotic filesystems) degrade to truncate-in-place, never to a crash.
  std::rename(options_.path.c_str(), (options_.path + ".1").c_str());
  out_.open(options_.path, std::ios::out | std::ios::trunc);
  bytes_written_ = 0;
  util::MutexLock lock(mutex_);
  ++rotations_;
}

void RequestLog::writer_loop() {
  while (true) {
    std::deque<std::string> batch;
    bool closed = false;
    {
      util::MutexLock lock(mutex_);
      while (!closed_ && pending_.empty()) cv_.wait(mutex_);
      batch.swap(pending_);
      closed = closed_;
    }
    for (const std::string& line : batch) {
      if (options_.max_bytes > 0 &&
          bytes_written_ + line.size() + 1 > options_.max_bytes &&
          bytes_written_ > 0) {
        rotate();
      }
      out_ << line << '\n';
      bytes_written_ += line.size() + 1;
    }
    // One flush per drained batch (not per line) keeps the on-disk log
    // current for tail -f / mid-run scrapes without a syscall per event.
    if (!batch.empty()) out_.flush();
    if (closed) {
      // Writes racing close() land before closed_ is set, so one more
      // empty check under the lock drains everything deterministically.
      util::MutexLock lock(mutex_);
      if (pending_.empty()) break;
    }
  }
  out_.flush();
}

// ---------------------------------------------------------------------------
// ServiceTelemetry

ServiceTelemetry::ServiceTelemetry(Options options)
    : options_(options),
      slot_ms_(options.window_ms / static_cast<double>(
                                       options.slots == 0 ? 1 : options.slots)) {
  if (options_.slots == 0) options_.slots = 1;
  if (options_.shards == 0) options_.shards = 1;
  if (!(slot_ms_ > 0.0)) slot_ms_ = 1.0;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ServiceTelemetry::Shard& ServiceTelemetry::local_shard() {
  return *shards_[thread_ordinal() % shards_.size()];
}

bool ServiceTelemetry::slot_in_window(std::uint64_t index,
                                      double at_ms) const {
  const std::uint64_t current =
      static_cast<std::uint64_t>(std::max(0.0, at_ms) / slot_ms_);
  if (index > current) return false;  // future slot (test clock rewound)
  return current - index < options_.slots;
}

void ServiceTelemetry::record_at(const RequestEvent& event, double at_ms) {
  const std::uint64_t slot_index =
      static_cast<std::uint64_t>(std::max(0.0, at_ms) / slot_ms_);
  Shard& shard = local_shard();
  util::MutexLock lock(shard.mutex);
  TypeState& state = shard.types[event.type];
  if (state.slots.empty()) state.slots.resize(options_.slots);
  ++state.requests;
  state.bytes_in += event.bytes_in;
  state.bytes_out += event.bytes_out;
  if (!event.ok) {
    ++state.errors;
    ++state.errors_by_code[event.outcome];
  }
  state.latency.record(event.total_ms);
  Slot& slot = state.slots[slot_index % state.slots.size()];
  if (slot.index != slot_index) {
    // The ring position last held a slot that has since rotated out of
    // the window; reclaim it for the current slot.
    slot = Slot{};
    slot.index = slot_index;
  }
  ++slot.requests;
  if (!event.ok) ++slot.errors;
  slot.duration_sum_ms += event.total_ms;
}

TelemetrySnapshot ServiceTelemetry::snapshot_at(double at_ms) {
  TelemetrySnapshot out;
  out.window_ms = options_.window_ms;
  out.uptime_ms = at_ms;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mutex);
    for (const auto& [type, state] : shard.types) {
      RedTypeStats& merged = out.types[type];
      merged.requests += state.requests;
      merged.errors += state.errors;
      for (const auto& [code, n] : state.errors_by_code)
        merged.errors_by_code[code] += n;
      merged.bytes_in += state.bytes_in;
      merged.bytes_out += state.bytes_out;
      merged.latency.merge(state.latency);
      for (const Slot& slot : state.slots) {
        if (slot.requests == 0 || !slot_in_window(slot.index, at_ms)) continue;
        merged.window_requests += slot.requests;
        merged.window_errors += slot.errors;
        merged.window_duration_sum_ms += slot.duration_sum_ms;
      }
    }
  }
  return out;
}

double ServiceTelemetry::windowed_service_ms_at(double at_ms) {
  std::uint64_t window_requests = 0;
  double window_duration_sum_ms = 0.0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mutex);
    for (const auto& [type, state] : shard.types) {
      (void)type;
      for (const Slot& slot : state.slots) {
        if (slot.requests == 0 || !slot_in_window(slot.index, at_ms)) continue;
        window_requests += slot.requests;
        window_duration_sum_ms += slot.duration_sum_ms;
      }
    }
  }
  return window_requests > 0
             ? window_duration_sum_ms / static_cast<double>(window_requests)
             : 0.0;
}

double ServiceTelemetry::windowed_service_ms() {
  return windowed_service_ms_at(now_ms());
}

double ServiceTelemetry::retry_after_ms_hint_at(std::size_t queue_depth,
                                                std::size_t workers,
                                                double at_ms) {
  // Mean service time over the window; nominal 25 ms before any data.
  const double windowed_ms = windowed_service_ms_at(at_ms);
  const double mean_ms = windowed_ms > 0.0 ? windowed_ms : 25.0;
  const double effective_workers =
      static_cast<double>(workers == 0 ? 1 : workers);
  // Time until the queue (plus the slot this request would have taken)
  // drains through the worker pool.
  const double hint =
      mean_ms * (static_cast<double>(queue_depth) + 1.0) / effective_workers;
  return std::clamp(hint, 1.0, 10000.0);
}

// ---------------------------------------------------------------------------
// Exports

util::JsonValue telemetry_to_json(const TelemetrySnapshot& snapshot,
                                  const ServiceGauges& gauges) {
  util::JsonObject red;
  for (const auto& [type, stats] : snapshot.types) {
    util::JsonObject t;
    t["requests"] = stats.requests;
    t["errors"] = stats.errors;
    util::JsonObject by_code;
    for (const auto& [code, n] : stats.errors_by_code) by_code[code] = n;
    t["errors_by_code"] = std::move(by_code);
    t["bytes_in"] = stats.bytes_in;
    t["wall_bytes_out"] = stats.bytes_out;
    t["wall_latency_ms"] = histogram_json(stats.latency);
    util::JsonObject window;
    window["requests"] = stats.window_requests;
    window["errors"] = stats.window_errors;
    window["mean_ms"] =
        stats.window_requests > 0
            ? stats.window_duration_sum_ms /
                  static_cast<double>(stats.window_requests)
            : 0.0;
    const double window_s =
        std::max(1e-9, std::min(snapshot.window_ms, snapshot.uptime_ms)) /
        1000.0;
    window["rate_per_s"] =
        static_cast<double>(stats.window_requests) / window_s;
    window["error_rate_per_s"] =
        static_cast<double>(stats.window_errors) / window_s;
    t["wall_window"] = std::move(window);
    red[type] = std::move(t);
  }

  util::JsonObject fixed;
  fixed["queue_capacity"] = gauges.queue_capacity;
  fixed["workers"] = gauges.workers;
  fixed["cache_capacity"] = gauges.cache_capacity;
  fixed["window_ms"] = snapshot.window_ms;

  // Deterministic under a FIFO (--threads 1) capture: the cache counters
  // advance only inside worker-side request processing.
  util::JsonObject cache;
  cache["hits"] = gauges.cache_hits;
  cache["misses"] = gauges.cache_misses;
  cache["coalesced"] = gauges.cache_coalesced;
  cache["evictions"] = gauges.cache_evictions;
  cache["size"] = gauges.cache_size;

  // Causal-trace accounting (obs/tracing.h). Like the cache counters,
  // these advance only inside worker-side request processing, so they are
  // deterministic under a FIFO (--threads 1) capture.
  util::JsonObject trace;
  trace["sampled"] = gauges.traces_sampled;
  trace["kept"] = gauges.traces_kept;
  trace["flight_size"] = gauges.flight_size;
  trace["flight_capacity"] = gauges.flight_capacity;
  trace["flight_recorded_total"] = gauges.flight_recorded_total;

  // Point-in-time operational readings; racy by nature (session threads
  // and the acceptor advance them), so wall-segregated.
  util::JsonObject live;
  live["queue_depth"] = gauges.queue_depth;
  live["workers_busy"] = gauges.workers_busy;
  live["connections_in_flight"] = gauges.connections_in_flight;
  live["accepted_connections"] = gauges.accepted_connections;
  live["request_log_dropped"] = gauges.request_log_dropped;
  // Rotation trips on byte counts, and the log lines carry wall_ fields
  // whose digit counts vary run to run — wall territory.
  live["request_log_rotations"] = gauges.request_log_rotations;
  live["trace_writer_dropped"] = gauges.trace_writer_dropped;
  const std::uint64_t classified = gauges.cache_hits + gauges.cache_misses;
  live["cache_hit_ratio"] =
      classified > 0
          ? static_cast<double>(gauges.cache_hits) /
                static_cast<double>(classified)
          : 0.0;
  live["uptime_ms"] = snapshot.uptime_ms;

  util::JsonObject out;
  out["red"] = std::move(red);
  out["gauges"] = std::move(fixed);
  out["cache"] = std::move(cache);
  out["trace"] = std::move(trace);
  out["build"] = build_info_to_json();
  out["wall_gauges"] = std::move(live);
  return util::JsonValue(std::move(out));
}

std::string telemetry_to_prometheus(const TelemetrySnapshot& snapshot,
                                    const ServiceGauges& gauges) {
  std::string out;
  out.reserve(4096);

  prom_header(&out, "mecsc_requests_total",
              "Requests processed, by request type.", "counter");
  for (const auto& [type, stats] : snapshot.types) {
    prom_line(&out, "mecsc_requests_total",
              "type=\"" + prom_escape(type) + "\"",
              static_cast<double>(stats.requests));
  }

  prom_header(&out, "mecsc_errors_total",
              "Error responses, by request type and error code.", "counter");
  for (const auto& [type, stats] : snapshot.types) {
    for (const auto& [code, n] : stats.errors_by_code) {
      prom_line(&out, "mecsc_errors_total",
                "type=\"" + prom_escape(type) + "\",code=\"" +
                    prom_escape(code) + "\"",
                static_cast<double>(n));
    }
  }

  prom_header(&out, "mecsc_request_bytes_in_total",
              "Request payload bytes received, by request type.", "counter");
  for (const auto& [type, stats] : snapshot.types) {
    prom_line(&out, "mecsc_request_bytes_in_total",
              "type=\"" + prom_escape(type) + "\"",
              static_cast<double>(stats.bytes_in));
  }
  prom_header(&out, "mecsc_request_bytes_out_total",
              "Response bytes written, by request type.", "counter");
  for (const auto& [type, stats] : snapshot.types) {
    prom_line(&out, "mecsc_request_bytes_out_total",
              "type=\"" + prom_escape(type) + "\"",
              static_cast<double>(stats.bytes_out));
  }

  prom_header(&out, "mecsc_request_duration_ms",
              "End-to-end request latency (admission to response).",
              "histogram");
  for (const auto& [type, stats] : snapshot.types) {
    const std::string type_label = "type=\"" + prom_escape(type) + "\"";
    std::uint64_t cumulative = 0;
    for (const auto& bucket : stats.latency.nonzero_buckets()) {
      cumulative += bucket.count;
      // The overflow bucket is open-ended; its count still reaches the
      // mandatory +Inf edge below via the total.
      if (bucket.upper <= bucket.lower) continue;
      std::string le = type_label + ",le=\"";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", bucket.upper);
      le += buf;
      le += '"';
      prom_line(&out, "mecsc_request_duration_ms_bucket", le,
                static_cast<double>(cumulative));
    }
    prom_line(&out, "mecsc_request_duration_ms_bucket",
              type_label + ",le=\"+Inf\"",
              static_cast<double>(stats.latency.count()));
    prom_line(&out, "mecsc_request_duration_ms_sum", type_label,
              stats.latency.sum());
    prom_line(&out, "mecsc_request_duration_ms_count", type_label,
              static_cast<double>(stats.latency.count()));
  }

  prom_header(&out, "mecsc_window_requests",
              "Requests inside the sliding RED window, by request type.",
              "gauge");
  for (const auto& [type, stats] : snapshot.types) {
    prom_line(&out, "mecsc_window_requests",
              "type=\"" + prom_escape(type) + "\"",
              static_cast<double>(stats.window_requests));
  }
  prom_header(&out, "mecsc_window_errors",
              "Errors inside the sliding RED window, by request type.",
              "gauge");
  for (const auto& [type, stats] : snapshot.types) {
    prom_line(&out, "mecsc_window_errors",
              "type=\"" + prom_escape(type) + "\"",
              static_cast<double>(stats.window_errors));
  }

  const struct {
    const char* name;
    const char* help;
    const char* type;
    double value;
  } singles[] = {
      {"mecsc_queue_depth", "Bounded work queue depth.", "gauge",
       static_cast<double>(gauges.queue_depth)},
      {"mecsc_queue_capacity", "Bounded work queue capacity.", "gauge",
       static_cast<double>(gauges.queue_capacity)},
      {"mecsc_workers", "Worker pool size.", "gauge",
       static_cast<double>(gauges.workers)},
      {"mecsc_workers_busy", "Workers currently processing a request.",
       "gauge", static_cast<double>(gauges.workers_busy)},
      {"mecsc_connections_in_flight", "Open client connections.", "gauge",
       static_cast<double>(gauges.connections_in_flight)},
      {"mecsc_connections_accepted_total", "Connections accepted.", "counter",
       static_cast<double>(gauges.accepted_connections)},
      {"mecsc_cache_size", "Result cache entries.", "gauge",
       static_cast<double>(gauges.cache_size)},
      {"mecsc_cache_capacity", "Result cache capacity.", "gauge",
       static_cast<double>(gauges.cache_capacity)},
      {"mecsc_cache_hits_total", "Result cache hits.", "counter",
       static_cast<double>(gauges.cache_hits)},
      {"mecsc_cache_misses_total", "Result cache misses.", "counter",
       static_cast<double>(gauges.cache_misses)},
      {"mecsc_cache_coalesced_total",
       "Requests coalesced onto an in-flight solve.", "counter",
       static_cast<double>(gauges.cache_coalesced)},
      {"mecsc_cache_evictions_total", "Result cache evictions.", "counter",
       static_cast<double>(gauges.cache_evictions)},
      {"mecsc_request_log_dropped_total",
       "Wide events dropped by the bounded request-log writer.", "counter",
       static_cast<double>(gauges.request_log_dropped)},
      {"mecsc_request_log_rotations_total",
       "Times the request log rolled over to its .1 sibling.", "counter",
       static_cast<double>(gauges.request_log_rotations)},
      {"mecsc_traces_sampled_total",
       "Requests whose trace id hit the head-sampling rate.", "counter",
       static_cast<double>(gauges.traces_sampled)},
      {"mecsc_traces_kept_total",
       "Traces kept after tail sampling (sampled, slow, or error).",
       "counter", static_cast<double>(gauges.traces_kept)},
      {"mecsc_trace_writer_dropped_total",
       "Kept traces dropped by the bounded trace writer.", "counter",
       static_cast<double>(gauges.trace_writer_dropped)},
      {"mecsc_flight_recorder_size",
       "Completed requests currently held in the flight-recorder ring.",
       "gauge", static_cast<double>(gauges.flight_size)},
      {"mecsc_flight_recorder_capacity", "Flight-recorder ring capacity.",
       "gauge", static_cast<double>(gauges.flight_capacity)},
      {"mecsc_flight_recorder_recorded_total",
       "Requests ever recorded into the flight recorder.", "counter",
       static_cast<double>(gauges.flight_recorded_total)},
      {"mecsc_uptime_ms", "Milliseconds since telemetry start.", "gauge",
       snapshot.uptime_ms},
  };
  for (const auto& s : singles) {
    prom_header(&out, s.name, s.help, s.type);
    prom_line(&out, s.name, "", s.value);
  }

  const std::uint64_t classified = gauges.cache_hits + gauges.cache_misses;
  prom_header(&out, "mecsc_cache_hit_ratio",
              "Hits / (hits + misses); 0 before any classified lookup.",
              "gauge");
  prom_line(&out, "mecsc_cache_hit_ratio", "",
            classified > 0 ? static_cast<double>(gauges.cache_hits) /
                                 static_cast<double>(classified)
                           : 0.0);

  // Build provenance as a constant-1 info gauge (the idiomatic Prometheus
  // pattern: the data lives in the labels, joins key other series to the
  // exact binary that produced them).
  const BuildInfo& build = build_info();
  prom_header(&out, "mecsc_build_info",
              "Build provenance; constant 1, data in the labels.", "gauge");
  prom_line(&out, "mecsc_build_info",
            "version=\"" + prom_escape(build.version) + "\",git_describe=\"" +
                prom_escape(build.git_describe) + "\",obs_format_version=\"" +
                std::to_string(build.obs_format_version) + "\"",
            1.0);
  return out;
}

}  // namespace mecsc::obs
