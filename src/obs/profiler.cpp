#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/run_info.h"

namespace mecsc::obs {

namespace {

/// Session generation counter; shards stamped with an older epoch belong
/// to a session that enable()/reset() already discarded.
std::atomic<std::uint64_t> g_epoch{0};

/// Worker-index source. Reset to 0 each session so the main thread (which
/// enables the profiler and usually opens the first span) gets tid 0 and
/// parallel_for workers number from 1 in arrival order.
std::atomic<std::uint32_t> g_next_tid{0};

/// Timeline origin. Written by enable() before the epoch bump publishes
/// it; read by recording threads after they observe the new epoch.
std::chrono::steady_clock::time_point g_start;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - g_start)
      .count();
}

/// Per-shard timeline buffer cap. Spans beyond it still feed the
/// aggregate tree; only the Perfetto event is dropped (and counted).
constexpr std::size_t kMaxShardEvents = std::size_t{1} << 20;

void merge_nodes(std::map<std::string, ProfileNode>& dst,
                 const std::map<std::string, ProfileNode>& src) {
  for (const auto& [name, node] : src) {
    ProfileNode& d = dst[name];
    if (d.count == 0) {
      d.min_ms = node.min_ms;
      d.max_ms = node.max_ms;
    } else if (node.count > 0) {
      d.min_ms = std::min(d.min_ms, node.min_ms);
      d.max_ms = std::max(d.max_ms, node.max_ms);
    }
    d.count += node.count;
    d.total_ms += node.total_ms;
    d.self_ms += node.self_ms;
    merge_nodes(d.children, node.children);
  }
}

util::JsonValue node_to_json(const ProfileNode& node) {
  util::JsonObject o;
  o["count"] = util::JsonValue(static_cast<std::size_t>(node.count));
  o["wall_total_ms"] = util::JsonValue(node.total_ms);
  o["wall_self_ms"] = util::JsonValue(node.self_ms);
  if (node.count > 0) {
    o["wall_min_ms"] = util::JsonValue(node.min_ms);
    o["wall_max_ms"] = util::JsonValue(node.max_ms);
  }
  if (!node.children.empty()) {
    util::JsonObject children;
    for (const auto& [name, child] : node.children) {
      children[name] = node_to_json(child);
    }
    o["children"] = util::JsonValue(std::move(children));
  }
  return util::JsonValue(std::move(o));
}

}  // namespace

util::JsonValue ProfileReport::aggregate_to_json() const {
  util::JsonObject agg;
  for (const auto& [name, node] : roots) agg[name] = node_to_json(node);
  return util::JsonValue(std::move(agg));
}

util::JsonValue ProfileReport::to_json() const {
  util::JsonObject doc;
  doc["obs_format_version"] = util::JsonValue(kObsFormatVersion);
  doc["displayTimeUnit"] = util::JsonValue("ms");
  doc["aggregate"] = aggregate_to_json();
  doc["spans_total"] = util::JsonValue(static_cast<std::size_t>(spans_total));
  doc["wall_events_dropped"] =
      util::JsonValue(static_cast<std::size_t>(events_dropped));
  util::JsonArray trace;
  trace.reserve(events.size());
  for (const ProfileSpanEvent& e : events) {
    util::JsonObject ev;
    ev["name"] = util::JsonValue(e.name);
    ev["cat"] = util::JsonValue("mecsc");
    ev["ph"] = util::JsonValue("X");
    ev["ts"] = util::JsonValue(e.start_us);
    ev["dur"] = util::JsonValue(e.dur_us);
    ev["pid"] = util::JsonValue(1);
    ev["tid"] = util::JsonValue(static_cast<std::size_t>(e.tid));
    trace.emplace_back(std::move(ev));
  }
  doc["traceEvents"] = util::JsonValue(std::move(trace));
  return util::JsonValue(std::move(doc));
}

/// Thread-local owner of one shard; hands it back to the profiler when
/// the thread exits (parallel_for joins its workers, so by the time it
/// returns every worker shard has been retired).
struct ProfilerShardHandle {
  Profiler::Shard shard;
  ~ProfilerShardHandle() { Profiler::global().retire(std::move(shard)); }
};

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

Profiler::Shard& Profiler::local_shard() {
  thread_local ProfilerShardHandle handle;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (handle.shard.epoch != epoch) {
    handle.shard = Shard{};
    handle.shard.epoch = epoch;
    handle.shard.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return handle.shard;
}

void Profiler::retire(Shard&& shard) {
  if (shard.empty()) return;
  const util::MutexLock lock(mutex_);
  if (shard.epoch != g_epoch.load(std::memory_order_relaxed)) return;
  retired_.push_back(std::move(shard));
}

void Profiler::enable() {
  const util::MutexLock lock(mutex_);
  retired_.clear();
  g_start = std::chrono::steady_clock::now();
  g_next_tid.store(0, std::memory_order_relaxed);
  // Release-publish g_start/tid before recorders can observe the epoch.
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  enabled_.store(true, std::memory_order_release);
}

void Profiler::disable() {
  enabled_.store(false, std::memory_order_release);
}

void Profiler::reset() {
  const util::MutexLock lock(mutex_);
  enabled_.store(false, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  retired_.clear();
}

void Profiler::begin_span(const char* name) {
  if (tls_listener_ != nullptr) tls_listener_->on_span_begin(name);
  if (!enabled()) return;  // listener-only session: no shard traffic
  Shard& shard = local_shard();
  ProfileNode* node = shard.node_stack.empty()
                          ? &shard.roots[name]
                          : &shard.node_stack.back()->children[name];
  shard.stack.push_back(OpenSpan{name, now_ms(), 0.0});
  shard.node_stack.push_back(node);
}

void Profiler::end_span(const char* name) {
  if (tls_listener_ != nullptr) tls_listener_->on_span_end(name);
  Shard& shard = local_shard();
  // An empty stack means the span began before an enable()/reset()
  // boundary invalidated this shard (or fed only a listener); a name
  // mismatch means the profiler was disabled between this span's begin
  // and a still-open parent's. Discard rather than mismatch either way.
  if (shard.stack.empty()) return;
  if (std::strcmp(shard.stack.back().name, name) != 0) return;
  const OpenSpan span = shard.stack.back();
  shard.stack.pop_back();
  ProfileNode* node = shard.node_stack.back();
  shard.node_stack.pop_back();

  const double end = now_ms();
  const double dur = end - span.start_ms;
  if (node->count == 0) {
    node->min_ms = dur;
    node->max_ms = dur;
  } else {
    node->min_ms = std::min(node->min_ms, dur);
    node->max_ms = std::max(node->max_ms, dur);
  }
  ++node->count;
  node->total_ms += dur;
  node->self_ms += dur - span.child_ms;
  if (!shard.stack.empty()) shard.stack.back().child_ms += dur;

  ++shard.spans_total;
  if (shard.events.size() < kMaxShardEvents) {
    shard.events.push_back(ProfileSpanEvent{
        span.name, shard.tid, span.start_ms * 1e3, dur * 1e3});
  } else {
    ++shard.events_dropped;
  }
}

ProfileReport Profiler::report() {
  ProfileReport out;
  {
    const util::MutexLock lock(mutex_);
    auto merge_shard = [&](const Shard& s) {
      merge_nodes(out.roots, s.roots);
      out.events.insert(out.events.end(), s.events.begin(), s.events.end());
      out.spans_total += s.spans_total;
      out.events_dropped += s.events_dropped;
    };
    for (const Shard& s : retired_) merge_shard(s);
    const Shard& live = local_shard();
    if (live.epoch == g_epoch.load(std::memory_order_relaxed)) {
      merge_shard(live);
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const ProfileSpanEvent& a, const ProfileSpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return out;
}

}  // namespace mecsc::obs
