#include "core/cost_model.h"

#include <cassert>

namespace mecsc::core {

double congestion_cost(const Instance& inst, CloudletId i,
                       std::size_t occupancy) {
  assert(i < inst.cloudlet_count());
  return (inst.cost.alpha[i] + inst.cost.beta[i]) *
         congestion_shape(inst.cost.congestion, occupancy) * kCongestionUnit;
}

double fixed_cache_cost(const Instance& inst, ProviderId l, CloudletId i) {
  assert(l < inst.provider_count());
  assert(i < inst.cloudlet_count());
  const ServiceProvider& p = inst.providers[l];
  const double update_hops = inst.network.cloudlet_to_dc_hops(i, p.home_dc);
  // Request traffic travels from the user region to the serving cloudlet
  // (+1 for the access link); consistency updates travel hops(CL_i, home DC)
  // through the core.
  const double access_hops =
      inst.network.cloudlet_to_cloudlet_hops(p.user_region, i) + 1.0;
  const double bdw =
      inst.cost.transfer_price_per_gb *
      (p.traffic_gb * access_hops + p.update_volume_gb() * update_hops);
  return p.instantiation_cost + bdw;
}

double cache_cost(const Instance& inst, ProviderId l, CloudletId i,
                  std::size_t occupancy) {
  assert(occupancy >= 1 && "occupancy includes the provider itself");
  return congestion_cost(inst, i, occupancy) + fixed_cache_cost(inst, l, i);
}

double remote_cost(const Instance& inst, ProviderId l) {
  assert(l < inst.provider_count());
  const ServiceProvider& p = inst.providers[l];
  // Requests originate in the user region and traverse the WAN to the home
  // DC (+1 for the access link); processing at the DC is billed per GB.
  const double depth =
      inst.network.cloudlet_to_dc_hops(p.user_region, p.home_dc) + 1.0;
  return inst.cost.processing_price_per_gb * p.traffic_gb +
         inst.cost.transfer_price_per_gb * p.traffic_gb *
             inst.cost.remote_hop_penalty * depth;
}

double flat_cache_cost(const Instance& inst, ProviderId l, CloudletId i) {
  return congestion_cost(inst, i, 1) + fixed_cache_cost(inst, l, i);
}

bool demand_fits(const Instance& inst, ProviderId l, CloudletId i) {
  const ServiceProvider& p = inst.providers[l];
  const net::Cloudlet& cl = inst.network.cloudlets()[i];
  return p.compute_demand() <= cl.compute_capacity &&
         p.bandwidth_demand() <= cl.bandwidth_capacity;
}

}  // namespace mecsc::core
