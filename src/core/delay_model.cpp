#include "core/delay_model.h"

#include <algorithm>
#include <cassert>

namespace mecsc::core {

DelayReport evaluate_delay(const Assignment& a, const DelayParams& params) {
  const Instance& inst = a.instance();
  assert(params.horizon_s > 0.0);
  assert(params.per_vm_service_rate > 0.0);

  DelayReport report;
  report.cloudlet_utilization.assign(inst.cloudlet_count(), 0.0);

  // Aggregate arrival rate per cloudlet.
  std::vector<double> lambda(inst.cloudlet_count(), 0.0);
  double max_mu = 0.0;
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    max_mu = std::max(max_mu, params.per_vm_service_rate *
                                  inst.network.cloudlets()[i].compute_capacity);
  }
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t c = a.choice(l);
    if (c == kRemote) continue;
    lambda[c] += static_cast<double>(inst.providers[l].requests) /
                 params.horizon_s;
  }
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    const double mu = params.per_vm_service_rate *
                      inst.network.cloudlets()[i].compute_capacity;
    report.cloudlet_utilization[i] = mu > 0.0 ? lambda[i] / mu : 0.0;
  }
  const double dc_mu = params.dc_speedup * max_mu;

  double weighted_delay = 0.0;
  double weight = 0.0;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const ServiceProvider& p = inst.providers[l];
    ProviderDelay d;
    d.provider = l;
    const std::size_t c = a.choice(l);
    if (c == kRemote) {
      const double hops =
          inst.network.cloudlet_to_dc_hops(p.user_region, p.home_dc) + 1.0;
      d.network_delay_s = hops * params.per_hop_delay_s;
      // DC tier: effectively uncongested M/M/1 with a huge service rate.
      d.processing_delay_s = 1.0 / dc_mu;
    } else {
      const double hops =
          inst.network.cloudlet_to_cloudlet_hops(p.user_region, c) + 1.0;
      d.network_delay_s = hops * params.per_hop_delay_s;
      const double mu = params.per_vm_service_rate *
                        inst.network.cloudlets()[c].compute_capacity;
      if (lambda[c] >= mu) {
        d.stable = false;
        ++report.overloaded_providers;
      } else {
        d.processing_delay_s = 1.0 / (mu - lambda[c]);
      }
    }
    if (d.stable) {
      const auto w = static_cast<double>(p.requests);
      weighted_delay += w * d.total_s();
      weight += w;
      report.max_delay_s = std::max(report.max_delay_s, d.total_s());
    }
    report.providers.push_back(d);
  }
  if (weight > 0.0) report.mean_delay_s = weighted_delay / weight;
  return report;
}

}  // namespace mecsc::core
