#include "core/assignment.h"

#include <cassert>

namespace mecsc::core {

Assignment::Assignment(const Instance& inst)
    : inst_(&inst),
      choice_(inst.provider_count(), kRemote),
      occupancy_(inst.cloudlet_count(), 0),
      compute_load_(inst.cloudlet_count(), 0.0),
      bandwidth_load_(inst.cloudlet_count(), 0.0) {}

double Assignment::compute_left(CloudletId i) const {
  return inst_->network.cloudlets()[i].compute_capacity - compute_load_[i];
}

double Assignment::bandwidth_left(CloudletId i) const {
  return inst_->network.cloudlets()[i].bandwidth_capacity -
         bandwidth_load_[i];
}

bool Assignment::can_move(ProviderId l, std::size_t target) const {
  assert(l < choice_.size());
  if (target == kRemote || target == choice_[l]) return true;
  assert(target < inst_->cloudlet_count());
  const ServiceProvider& p = inst_->providers[l];
  constexpr double kSlack = 1e-9;
  return p.compute_demand() <= compute_left(target) + kSlack &&
         p.bandwidth_demand() <= bandwidth_left(target) + kSlack;
}

void Assignment::move(ProviderId l, std::size_t target) {
  assert(can_move(l, target));
  const std::size_t from = choice_[l];
  if (from == target) return;
  const ServiceProvider& p = inst_->providers[l];
  if (from != kRemote) {
    --occupancy_[from];
    compute_load_[from] -= p.compute_demand();
    bandwidth_load_[from] -= p.bandwidth_demand();
  }
  if (target != kRemote) {
    ++occupancy_[target];
    compute_load_[target] += p.compute_demand();
    bandwidth_load_[target] += p.bandwidth_demand();
  }
  choice_[l] = target;
}

double Assignment::provider_cost(ProviderId l) const {
  const std::size_t c = choice_[l];
  if (c == kRemote) return remote_cost(*inst_, l);
  return cache_cost(*inst_, l, c, occupancy_[c]);
}

double Assignment::provider_cost_if(ProviderId l, std::size_t target) const {
  if (target == choice_[l]) return provider_cost(l);
  if (target == kRemote) return remote_cost(*inst_, l);
  // Joining: occupancy seen by l is current tenants + itself.
  return cache_cost(*inst_, l, target, occupancy_[target] + 1);
}

double Assignment::social_cost() const {
  double total = 0.0;
  for (ProviderId l = 0; l < choice_.size(); ++l) total += provider_cost(l);
  return total;
}

double Assignment::potential() const {
  double phi = 0.0;
  for (CloudletId i = 0; i < occupancy_.size(); ++i) {
    phi += (inst_->cost.alpha[i] + inst_->cost.beta[i]) * kCongestionUnit *
           congestion_shape_prefix_sum(inst_->cost.congestion, occupancy_[i]);
  }
  for (ProviderId l = 0; l < choice_.size(); ++l) {
    phi += choice_[l] == kRemote ? remote_cost(*inst_, l)
                                 : fixed_cache_cost(*inst_, l, choice_[l]);
  }
  return phi;
}

bool Assignment::feasible() const {
  constexpr double kSlack = 1e-9;
  for (CloudletId i = 0; i < occupancy_.size(); ++i) {
    if (compute_load_[i] >
            inst_->network.cloudlets()[i].compute_capacity + kSlack ||
        bandwidth_load_[i] >
            inst_->network.cloudlets()[i].bandwidth_capacity + kSlack) {
      return false;
    }
  }
  return true;
}

std::vector<ProviderId> Assignment::tenants(CloudletId i) const {
  std::vector<ProviderId> out;
  for (ProviderId l = 0; l < choice_.size(); ++l) {
    if (choice_[l] == i) out.push_back(l);
  }
  return out;
}

}  // namespace mecsc::core
