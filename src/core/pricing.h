// Posted-price decentralization of the coordinated solution (extension).
//
// LCF stabilizes the market by *contract*: coordinated providers are pinned
// to their Appro seats. An alternative lever the infrastructure provider
// owns is *pricing*: post a price π_i on each cloudlet, let everyone act
// selfishly, and choose the prices so the resulting equilibrium reproduces
// the coordinated placement's congestion profile. Prices enter each
// provider's cost as a fixed per-cloudlet surcharge, which preserves the
// exact-potential structure (Lemma 3 still applies at any fixed π), so
// best-response dynamics converge at every pricing iterate.
//
// The price search is a tâtonnement: after reaching equilibrium under the
// current prices, raise π on over-subscribed cloudlets (occupancy above the
// Appro target) and lower it on under-subscribed ones, with a decaying step
// size. Prices are transfers from providers to the leader — they steer
// behaviour but are excluded from the social cost.
#pragma once

#include <cstddef>
#include <vector>

#include "core/appro.h"
#include "core/assignment.h"
#include "core/instance.h"

namespace mecsc::core {

struct PricingOptions {
  std::size_t max_iterations = 120;
  /// Initial price step per unit of occupancy error.
  double step = 0.2;
  /// Multiplicative step decay per iteration (simulated-annealing-style
  /// cooling toward a fixed point).
  double step_decay = 0.97;
  ApproOptions appro;
};

struct PricingResult {
  /// Final posted price per cloudlet (>= 0).
  std::vector<double> prices;
  /// Equilibrium of the priced game under `prices`.
  Assignment assignment;
  /// Appro's target occupancy per cloudlet.
  std::vector<std::size_t> target_occupancy;
  std::size_t iterations = 0;
  /// Σ_i |occupancy_i - target_i| at the end.
  std::size_t occupancy_gap = 0;
  /// Social cost of the final placement (price transfers excluded).
  double social_cost = 0.0;
  /// Total price revenue collected by the leader at the final equilibrium.
  double revenue = 0.0;
};

/// Runs the tâtonnement. The result's assignment is feasible and a pure NE
/// of the priced game.
PricingResult decentralize_by_pricing(const Instance& inst,
                                      const PricingOptions& options = {});

}  // namespace mecsc::core
