#include "core/poa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/appro.h"
#include "core/congestion_game.h"
#include "core/social_optimum.h"
#include "core/virtual_cloudlet.h"

namespace mecsc::core {

double theorem1_bound_at(double delta, double kappa, double xi, double v) {
  assert(v > 0.0 && v < 1.0);
  assert(xi >= 0.0 && xi <= 1.0);
  assert(delta > 0.0 && kappa > 0.0);
  return 2.0 * delta * kappa / (1.0 - v) * (1.0 / (4.0 * v) + 1.0 - xi);
}

double theorem1_bound(double delta, double kappa, double xi) {
  double best = std::numeric_limits<double>::infinity();
  // The bound is smooth in v; a fine grid over (0,1) is plenty.
  for (int k = 1; k < 1000; ++k) {
    const double v = static_cast<double>(k) / 1000.0;
    best = std::min(best, theorem1_bound_at(delta, kappa, xi, v));
  }
  return best;
}

PoaResult estimate_poa(const Instance& inst, const PoaOptions& options,
                       util::Rng& rng) {
  PoaResult result;
  const std::size_t n = inst.provider_count();

  // --- Denominator: exact OPT when affordable. ---------------------------
  const SocialOptimumResult opt = solve_social_optimum(
      inst, SocialOptimumOptions{.node_limit = 5'000'000});
  if (opt.proven_optimal) {
    result.optimum_cost = opt.cost;
    result.optimum_exact = true;
  } else {
    result.optimum_cost = social_cost_lower_bound(inst);
    result.optimum_exact = false;
  }

  // --- Coordinated players (ξ > 0: the LCF rule). -------------------------
  std::vector<bool> coordinated(n, false);
  Assignment pinned(inst);
  if (options.coordinated_fraction > 0.0) {
    LcfOptions lcf_opts = options.lcf;
    lcf_opts.coordinated_fraction = options.coordinated_fraction;
    const LcfResult lcf = run_lcf(inst, lcf_opts);
    coordinated = lcf.coordinated;
    for (ProviderId l = 0; l < n; ++l) {
      if (coordinated[l]) {
        const std::size_t seat = lcf.appro.assignment.choice(l);
        if (seat != kRemote && pinned.can_move(l, seat)) pinned.move(l, seat);
      }
    }
  }
  std::vector<bool> movable(n);
  for (ProviderId l = 0; l < n; ++l) movable[l] = !coordinated[l];

  // --- Worst/best NE over randomized restarts. ----------------------------
  result.worst_equilibrium_cost = 0.0;
  result.best_equilibrium_cost = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    Assignment start = pinned;
    // Random initial strategies for the selfish players (feasible by
    // construction: each move is admission-checked).
    for (ProviderId l = 0; l < n; ++l) {
      if (!movable[l]) continue;
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(inst.cloudlet_count())));
      if (pick < inst.cloudlet_count() && start.can_move(l, pick)) {
        start.move(l, pick);
      }
    }
    util::Rng order_rng = rng.split();
    BestResponseOptions bro;
    bro.shuffle_rng = &order_rng;
    const GameResult game =
        best_response_dynamics(std::move(start), movable, bro);
    if (!game.converged) continue;
    assert(is_nash_equilibrium(game.assignment, movable));
    const double c = game.assignment.social_cost();
    result.worst_equilibrium_cost = std::max(result.worst_equilibrium_cost, c);
    result.best_equilibrium_cost = std::min(result.best_equilibrium_cost, c);
    ++result.equilibria_found;
  }
  if (result.equilibria_found == 0) {
    result.best_equilibrium_cost = 0.0;
  }
  if (result.optimum_cost > 0.0) {
    result.empirical_poa = result.worst_equilibrium_cost / result.optimum_cost;
  }

  // --- Theorem-1 bound with the instance's δ, κ. ---------------------------
  const VirtualCloudletSplit split = split_cloudlets(inst);
  if (split.a_max > 0.0 && split.b_max > 0.0) {
    result.theoretical_bound =
        theorem1_bound(split.delta_max(inst), split.kappa_max(inst),
                       options.coordinated_fraction);
  }
  return result;
}

}  // namespace mecsc::core
