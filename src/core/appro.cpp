#include "core/appro.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "opt/gap.h"
#include "opt/transportation.h"
#include "util/timer.h"

namespace mecsc::core {

namespace {

/// Builds the slotted transportation reduction: one group per cloudlet with
/// n_i slots plus a "remote" group that can hold everyone.
opt::TransportationInstance build_transportation(
    const Instance& inst, const VirtualCloudletSplit& split) {
  const std::size_t m = inst.cloudlet_count();
  const std::size_t n = inst.provider_count();
  opt::TransportationInstance t;
  t.num_groups = m + 1;  // last group = remote
  t.num_items = n;
  t.slots.assign(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i) t.slots[i] = split.slots[i];
  t.slots[m] = n;
  t.cost.assign((m + 1) * n, opt::kInadmissible);
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t i = 0; i < m; ++i) {
      if (split.slots[i] == 0 || !demand_fits(inst, l, i)) continue;
      t.cost[i * n + l] = flat_cache_cost(inst, l, i);
    }
    t.cost[m * n + l] = remote_cost(inst, l);
  }
  return t;
}

/// Eq. (8): how many services fit one virtual cloudlet, via demands
/// normalized to the largest demand (a unit-capacity virtual cloudlet holds
/// up to 1/min-weight services).
std::size_t slot_multiplicity(const Instance& inst,
                              const VirtualCloudletSplit& split) {
  if (split.a_max <= 0.0 || split.b_max <= 0.0) return 1;
  double min_w = 1.0;
  for (const auto& p : inst.providers) {
    const double w = std::max(p.compute_demand() / split.a_max,
                              p.bandwidth_demand() / split.b_max);
    if (w > 0.0) min_w = std::min(min_w, w);
  }
  const auto n_max = static_cast<std::size_t>(1.0 / std::max(min_w, 1e-6));
  return std::clamp<std::size_t>(n_max, 1, 64);
}

/// Builds the congestion-aware slotted reduction: group i offers
/// n_i * n'_max slots, the k-th priced at the marginal congestion cost
/// (α_i+β_i)·u·(2k-1); item costs are the congestion-free fixed parts.
opt::ConvexTransportationInstance build_convex_transportation(
    const Instance& inst, const VirtualCloudletSplit& split) {
  const std::size_t m = inst.cloudlet_count();
  const std::size_t n = inst.provider_count();
  const std::size_t multiplicity = slot_multiplicity(inst, split);
  opt::ConvexTransportationInstance t;
  t.num_groups = m + 1;  // last group = remote
  t.num_items = n;
  t.slot_costs.resize(m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t slots = split.slots[i] * multiplicity;
    t.slot_costs[i].reserve(slots);
    const double unit =
        (inst.cost.alpha[i] + inst.cost.beta[i]) * kCongestionUnit;
    for (std::size_t k = 1; k <= slots; ++k) {
      // Marginal social congestion of the k-th tenant: k·f(k) − (k−1)·f(k−1)
      // (2k−1 for the paper's linear shape). Non-decreasing in k for every
      // shape, so the flow formulation stays exact.
      t.slot_costs[i].push_back(
          unit * congestion_shape_marginal(inst.cost.congestion, k));
    }
  }
  t.slot_costs[m].assign(n, 0.0);  // remote: uncongested, unlimited
  t.cost.assign((m + 1) * n, opt::kInadmissible);
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t i = 0; i < m; ++i) {
      if (split.slots[i] == 0 || !demand_fits(inst, l, i)) continue;
      t.cost[i * n + l] = fixed_cache_cost(inst, l, i);
    }
    t.cost[m * n + l] = remote_cost(inst, l);
  }
  return t;
}

/// Builds the aggregated Shmoys-Tardos GAP reduction: knapsack i gathers
/// CL_i's n_i unit virtual cloudlets (capacity n_i, item weights normalized
/// to the largest demand so every service weighs <= 1), plus the remote
/// knapsack.
opt::GapInstance build_gap(const Instance& inst,
                           const VirtualCloudletSplit& split) {
  const std::size_t m = inst.cloudlet_count();
  const std::size_t n = inst.provider_count();
  opt::GapInstance g;
  g.num_knapsacks = m + 1;
  g.num_items = n;
  g.capacity.assign(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    g.capacity[i] = static_cast<double>(split.slots[i]);
  }
  g.capacity[m] = static_cast<double>(n);
  g.cost.assign((m + 1) * n, 0.0);
  g.weight.assign((m + 1) * n, 0.0);
  for (std::size_t l = 0; l < n; ++l) {
    const double w = std::max(
        split.a_max > 0.0
            ? inst.providers[l].compute_demand() / split.a_max
            : 0.0,
        split.b_max > 0.0
            ? inst.providers[l].bandwidth_demand() / split.b_max
            : 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      if (split.slots[i] == 0 || !demand_fits(inst, l, i)) {
        // Inadmissible: weight above capacity.
        g.weight[i * n + l] = g.capacity[i] + 1.0;
        g.cost[i * n + l] = 0.0;
        continue;
      }
      g.weight[i * n + l] = std::min(w, 1.0);
      g.cost[i * n + l] = flat_cache_cost(inst, l, i);
    }
    g.weight[m * n + l] = 1.0;
    g.cost[m * n + l] = remote_cost(inst, l);
  }
  return g;
}

}  // namespace

ApproResult run_appro(const Instance& inst, const ApproOptions& options) {
  MECSC_PROFILE_SCOPE("appro");
  VirtualCloudletSplit split;
  {
    MECSC_PROFILE_SCOPE("appro.split");
    split = split_cloudlets(inst, options.a_max_override,
                            options.b_max_override);
  }
  ApproResult result{Assignment(inst), std::move(split), 0.0, {}, 0};
  const std::size_t m = inst.cloudlet_count();
  const std::size_t n = inst.provider_count();
  if (n == 0) return result;

  std::vector<std::size_t> group_of(n, m);  // default: remote group index m

  const util::Timer inner_timer;
  if (options.solver == ApproOptions::InnerSolver::Transportation) {
    if (options.congestion_aware) {
      opt::ConvexTransportationInstance t;
      {
        MECSC_PROFILE_SCOPE("appro.build");
        t = build_convex_transportation(inst, result.split);
      }
      opt::TransportationSolution sol;
      {
        MECSC_PROFILE_SCOPE("appro.inner_solve");
        sol = opt::solve_convex_transportation(t);
      }
      assert(sol.feasible);  // remote group absorbs everyone
      group_of = std::move(sol.assignment);
    } else {
      opt::TransportationInstance t;
      {
        MECSC_PROFILE_SCOPE("appro.build");
        t = build_transportation(inst, result.split);
      }
      opt::TransportationSolution sol;
      {
        MECSC_PROFILE_SCOPE("appro.inner_solve");
        sol = opt::solve_transportation(t);
      }
      assert(sol.feasible);
      group_of = std::move(sol.assignment);
    }
    MECSC_TRACE(obs::TraceEvent("appro.inner_solve")
                    .f("solver", "transportation")
                    .f("congestion_aware", options.congestion_aware)
                    .f("groups", m + 1)
                    .f("items", n)
                    .f("wall_ms", inner_timer.elapsed_ms()));
  } else {
    opt::GapInstance g;
    {
      MECSC_PROFILE_SCOPE("appro.build");
      g = build_gap(inst, result.split);
    }
    opt::GapSolution sol;
    {
      MECSC_PROFILE_SCOPE("appro.lp_solve");
      sol = opt::solve_gap_shmoys_tardos(g);
    }
    result.lp_bound = sol.lp_bound;
    if (sol.feasible) {
      group_of = std::move(sol.assignment);
    }
    // else: keep everyone remote (cannot happen: remote admits all items).
    MECSC_TRACE(obs::TraceEvent("appro.lp_solve")
                    .f("solver", "shmoys_tardos")
                    .f("groups", m + 1)
                    .f("items", n)
                    .f("lp_bound", sol.lp_bound.value_or(0.0))
                    .f("lp_pivots", sol.lp_pivots)
                    .f("rounded_feasible", sol.feasible)
                    .f("wall_ms", inner_timer.elapsed_ms()));
  }

  MECSC_PROFILE_SCOPE("appro.rounding");
  // Step 4: move virtual-cloudlet assignments onto physical cloudlets.
  // Process cache placements in decreasing flat-cost order so that, if the
  // Shmoys-Tardos load relaxation overfills a cloudlet, the cheapest-gain
  // services are the ones diverted to the remote tier.
  std::vector<ProviderId> order(n);
  for (ProviderId l = 0; l < n; ++l) order[l] = l;
  std::sort(order.begin(), order.end(), [&](ProviderId a, ProviderId b) {
    const double ra = group_of[a] < m
                          ? remote_cost(inst, a) -
                                flat_cache_cost(inst, a, group_of[a])
                          : 0.0;
    const double rb = group_of[b] < m
                          ? remote_cost(inst, b) -
                                flat_cache_cost(inst, b, group_of[b])
                          : 0.0;
    return ra > rb;  // biggest caching gain claims its seat first
  });
  for (const ProviderId l : order) {
    const std::size_t g = group_of[l];
    if (g >= m) continue;  // remote
    if (result.assignment.can_move(l, g)) {
      result.assignment.move(l, g);
    } else {
      ++result.evicted_to_remote;
    }
  }

  // C' under the congestion-free cost function (Eq. (9)).
  double flat = 0.0;
  for (ProviderId l = 0; l < n; ++l) {
    const std::size_t c = result.assignment.choice(l);
    flat += c == kRemote ? remote_cost(inst, l) : flat_cache_cost(inst, l, c);
  }
  result.flat_cost = flat;

  std::size_t cached = 0;
  for (ProviderId l = 0; l < n; ++l) {
    if (result.assignment.choice(l) != kRemote) ++cached;
  }
  MECSC_TRACE(obs::TraceEvent("appro.rounding")
                  .f("cached", cached)
                  .f("remote", n - cached)
                  .f("evicted_to_remote", result.evicted_to_remote)
                  .f("flat_cost", result.flat_cost));
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("appro.runs");
  metrics.counter_add("appro.evicted_to_remote",
                      static_cast<std::int64_t>(result.evicted_to_remote));
  metrics.value_record("appro.flat_cost", result.flat_cost);

  assert(result.assignment.feasible());
  return result;
}

}  // namespace mecsc::core
