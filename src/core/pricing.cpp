#include "core/pricing.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "core/congestion_game.h"

namespace mecsc::core {

PricingResult decentralize_by_pricing(const Instance& inst,
                                      const PricingOptions& options) {
  const std::size_t m = inst.cloudlet_count();
  const ApproResult appro = run_appro(inst, options.appro);

  PricingResult result{std::vector<double>(m, 0.0), Assignment(inst),
                       std::vector<std::size_t>(m, 0), 0, 0, 0.0, 0.0};
  for (CloudletId i = 0; i < m; ++i) {
    result.target_occupancy[i] = appro.assignment.occupancy(i);
  }

  const std::vector<bool> movable(inst.provider_count(), true);
  double step = options.step;
  std::size_t best_gap = static_cast<std::size_t>(-1);
  std::vector<double> best_prices = result.prices;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    BestResponseOptions bro;
    bro.cloudlet_surcharge = &result.prices;
    const GameResult game =
        best_response_dynamics(Assignment(inst), movable, bro);
    assert(game.converged);

    std::size_t gap = 0;
    for (CloudletId i = 0; i < m; ++i) {
      const auto occ = static_cast<std::ptrdiff_t>(game.assignment.occupancy(i));
      const auto target =
          static_cast<std::ptrdiff_t>(result.target_occupancy[i]);
      gap += static_cast<std::size_t>(std::abs(occ - target));
    }
    if (gap < best_gap) {
      best_gap = gap;
      best_prices = result.prices;
    }
    if (gap == 0) break;

    // Tâtonnement step: price pressure proportional to the occupancy error.
    for (CloudletId i = 0; i < m; ++i) {
      const auto occ = static_cast<double>(game.assignment.occupancy(i));
      const auto target = static_cast<double>(result.target_occupancy[i]);
      result.prices[i] =
          std::max(0.0, result.prices[i] + step * (occ - target));
    }
    step *= options.step_decay;
  }

  // Final equilibrium under the best prices found.
  result.prices = std::move(best_prices);
  BestResponseOptions bro;
  bro.cloudlet_surcharge = &result.prices;
  GameResult final_game =
      best_response_dynamics(Assignment(inst), movable, bro);
  assert(final_game.converged);
  result.assignment = std::move(final_game.assignment);

  result.occupancy_gap = 0;
  for (CloudletId i = 0; i < m; ++i) {
    const auto occ =
        static_cast<std::ptrdiff_t>(result.assignment.occupancy(i));
    const auto target =
        static_cast<std::ptrdiff_t>(result.target_occupancy[i]);
    result.occupancy_gap += static_cast<std::size_t>(std::abs(occ - target));
    result.revenue +=
        result.prices[i] * static_cast<double>(result.assignment.occupancy(i));
  }
  result.social_cost = result.assignment.social_cost();
  return result;
}

}  // namespace mecsc::core
