#include "core/virtual_cloudlet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mecsc::core {

std::size_t VirtualCloudletSplit::total_slots() const {
  std::size_t total = 0;
  for (std::size_t s : slots) total += s;
  return total;
}

double VirtualCloudletSplit::delta(const Instance& inst, std::size_t i) const {
  assert(a_max > 0.0);
  return inst.network.cloudlets()[i].compute_capacity / a_max;
}

double VirtualCloudletSplit::kappa(const Instance& inst, std::size_t i) const {
  assert(b_max > 0.0);
  return inst.network.cloudlets()[i].bandwidth_capacity / b_max;
}

double VirtualCloudletSplit::delta_max(const Instance& inst) const {
  double best = 0.0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    best = std::max(best, delta(inst, i));
  }
  return best;
}

double VirtualCloudletSplit::kappa_max(const Instance& inst) const {
  double best = 0.0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    best = std::max(best, kappa(inst, i));
  }
  return best;
}

VirtualCloudletSplit split_cloudlets(const Instance& inst,
                                     double a_max_override,
                                     double b_max_override) {
  VirtualCloudletSplit split;
  split.a_max =
      a_max_override > 0.0 ? a_max_override : inst.max_compute_demand();
  split.b_max =
      b_max_override > 0.0 ? b_max_override : inst.max_bandwidth_demand();
  split.slots.resize(inst.cloudlet_count(), 0);
  if (split.a_max <= 0.0 || split.b_max <= 0.0) return split;  // no demand
  for (std::size_t i = 0; i < inst.cloudlet_count(); ++i) {
    const net::Cloudlet& cl = inst.network.cloudlets()[i];
    const auto by_compute =
        static_cast<std::size_t>(std::floor(cl.compute_capacity / split.a_max));
    const auto by_bandwidth = static_cast<std::size_t>(
        std::floor(cl.bandwidth_capacity / split.b_max));
    split.slots[i] = std::min(by_compute, by_bandwidth);
  }
  return split;
}

}  // namespace mecsc::core
