// Market-stability analysis of the Stackelberg mechanism.
//
// The paper requires the market to be *stable*: "no players have incentives
// to deviate from their current strategies". LCF guarantees this for the
// selfish players (they sit at a Nash equilibrium) but the *coordinated*
// players are pinned to their Appro seats by contract ("bulk-lease
// contracts", §II-D) — the mechanism does not make obedience a best
// response. This module quantifies exactly how binding those contracts are:
//
//  * deviation incentive of a coordinated provider = its current cost minus
//    the cost of its best feasible unilateral deviation (>0 means the
//    contract is doing real work);
//  * side-payment budget = Σ of positive incentives — what the leader would
//    have to rebate to make obedience voluntary (a VCG-style subsidy);
//  * participation (individual-rationality) check: a provider pinned to a
//    seat costlier than its remote option would rather leave the market
//    entirely.
#pragma once

#include <cstddef>
#include <vector>

#include "core/lcf.h"

namespace mecsc::core {

/// Per-provider stability verdict.
struct ProviderIncentive {
  ProviderId provider = 0;
  bool coordinated = false;
  double current_cost = 0.0;
  /// Cost of the best feasible unilateral deviation ({remote} ∪ cloudlets
  /// with room), holding everyone else fixed.
  double best_deviation_cost = 0.0;
  /// current_cost - best_deviation_cost; positive means the provider wants
  /// to deviate (only possible for coordinated providers at an LCF outcome).
  double deviation_incentive = 0.0;
  /// True when current_cost <= remote cost + eps: participating in the
  /// market is individually rational.
  bool individually_rational = true;
};

/// Market-level stability summary of an LCF outcome.
struct StabilityReport {
  std::vector<ProviderIncentive> providers;
  /// Coordinated providers with a strictly positive deviation incentive.
  std::size_t binding_contracts = 0;
  /// Σ of positive deviation incentives over coordinated providers — the
  /// leader's side-payment budget for voluntary obedience.
  double side_payment_budget = 0.0;
  /// Providers (of any kind) paying more than their remote option.
  std::size_t ir_violations = 0;
  /// Σ of (cost - remote) over IR-violating providers.
  double ir_subsidy = 0.0;
  /// Largest single deviation incentive.
  double max_incentive = 0.0;
};

/// Analyzes the stability of `result` on `inst` (the instance it was
/// computed on).
StabilityReport analyze_stability(const Instance& inst,
                                  const LcfResult& result,
                                  double eps = 1e-9);

}  // namespace mecsc::core
