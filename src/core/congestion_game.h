// Singleton congestion game among selfish network service providers
// (§II-E). Strategies are {remote} ∪ {feasible cloudlets}; the per-provider
// cost is Eq. (3), affine in the cloudlet occupancy, so the game is an exact
// potential game (Rosenthal): best-response dynamics strictly decrease
// Assignment::potential() and terminate at a pure Nash equilibrium
// (Lemma 3). Capacity constraints restrict deviations to moves that fit.
#pragma once

#include <cstddef>
#include <vector>

#include "core/assignment.h"
#include "core/types.h"
#include "util/rng.h"

namespace mecsc::core {

/// Best strategy for provider l against the rest of `a` (everything else
/// fixed): the feasible choice of minimum cost, the current strategy winning
/// ties. Considers kRemote and every cloudlet with room.
/// `cloudlet_surcharge`, when non-null, adds a posted price per cloudlet to
/// the provider's cost (the leader's pricing lever, core/pricing.h); prices
/// are an additive per-cloudlet term, so the game remains an exact
/// potential game and all convergence guarantees carry over.
std::size_t best_response(const Assignment& a, ProviderId l,
                          double improvement_eps = 1e-9,
                          const std::vector<double>* cloudlet_surcharge =
                              nullptr);

struct BestResponseOptions {
  /// Maximum full passes over the players before giving up (a safety net:
  /// the potential argument guarantees finite convergence).
  std::size_t max_rounds = 100000;
  /// A deviation must improve the mover's cost by more than this.
  double improvement_eps = 1e-9;
  /// When set, player order is reshuffled each round (used by the worst-NE
  /// search); otherwise players move in index order.
  util::Rng* shuffle_rng = nullptr;
  /// Optional posted price per cloudlet added to every tenant's cost
  /// (size = cloudlet count when non-null).
  const std::vector<double>* cloudlet_surcharge = nullptr;
};

struct GameResult {
  Assignment assignment;
  std::size_t rounds = 0;  ///< full passes executed
  std::size_t moves = 0;   ///< improving deviations performed
  bool converged = false;  ///< true iff a pure NE was reached
};

/// Runs best-response dynamics from `start`, letting only providers with
/// movable[l] == true deviate (the Stackelberg leader pins the others).
/// Pass an all-true mask for the fully selfish game.
GameResult best_response_dynamics(Assignment start,
                                  const std::vector<bool>& movable,
                                  const BestResponseOptions& options = {});

/// True when no movable provider has a feasible deviation improving its cost
/// by more than eps — i.e. `a` is a pure Nash equilibrium of the
/// (restricted, optionally priced) game.
bool is_nash_equilibrium(const Assignment& a, const std::vector<bool>& movable,
                         double eps = 1e-9,
                         const std::vector<double>* cloudlet_surcharge =
                             nullptr);

}  // namespace mecsc::core
