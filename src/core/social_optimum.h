// Exact congestion-aware social optimum (OPT of Lemma 2 / Theorem 1).
//
// The service caching problem is NP-hard, so the exact solver is a
// branch-and-bound over the full strategy space {remote} ∪ CL per provider,
// with an admissible lower bound (each unassigned provider pays at least its
// cheapest congestion-free option). Practical to ~15 providers x ~8
// cloudlets — enough for the Lemma-2 ratio study and the PoA study, where it
// is the denominator of the empirical ratios. A fast LP-free lower bound for
// large instances is also provided.
#pragma once

#include <cstddef>
#include <optional>

#include "core/assignment.h"
#include "core/instance.h"

namespace mecsc::core {

struct SocialOptimumOptions {
  /// Search-node budget; when exceeded the incumbent is returned with
  /// proven_optimal = false.
  std::size_t node_limit = 20'000'000;
};

struct SocialOptimumResult {
  Assignment assignment;
  double cost = 0.0;
  bool proven_optimal = false;
  std::size_t nodes_explored = 0;
};

/// Exact minimizer of Eq. (6) subject to both capacity constraints.
SocialOptimumResult solve_social_optimum(
    const Instance& inst, const SocialOptimumOptions& options = {});

/// Cheap lower bound on the social optimum, valid for any instance size:
/// Σ_l min(remote_l, min_i flat cost of l at i) — every provider pays at
/// least its best congestion-free price.
double social_cost_lower_bound(const Instance& inst);

}  // namespace mecsc::core
