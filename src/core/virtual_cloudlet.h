// Virtual-cloudlet splitting (§III-B, Eq. (7)-(8)).
//
// Appro ignores congestion first: each cloudlet CL_i is split into
//     n_i = min{ ⌊C(CL_i)/a_max⌋, ⌊B(CL_i)/b_max⌋ }
// virtual cloudlets, each able to cache one service instance of any
// provider (its capacity is the maximum demand, so admission never fails).
// δ = C/a_max and κ = B/b_max also define the approximation ratio 2δκ of
// Lemma 2 and enter the PoA bound of Theorem 1.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"

namespace mecsc::core {

/// The split of one instance's cloudlets into virtual cloudlets.
struct VirtualCloudletSplit {
  double a_max = 0.0;  ///< max_l a_l·r_l
  double b_max = 0.0;  ///< max_l b_l·r_l
  /// n_i per cloudlet (Eq. (7)); 0 when the cloudlet cannot hold even the
  /// largest service.
  std::vector<std::size_t> slots;

  /// Total number of virtual cloudlets.
  std::size_t total_slots() const;

  /// δ_i = C(CL_i)/a_max for cloudlet i (∞-safe: requires a_max > 0).
  double delta(const Instance& inst, std::size_t i) const;
  /// κ_i = B(CL_i)/b_max for cloudlet i.
  double kappa(const Instance& inst, std::size_t i) const;

  /// Network-wide δ and κ (the paper treats them as uniform constants; we
  /// take the maximum over cloudlets, the value for which Lemma 2's bound
  /// holds for every cloudlet).
  double delta_max(const Instance& inst) const;
  double kappa_max(const Instance& inst) const;
};

/// Computes Eq. (7) for every cloudlet. When `a_max_override`/`b_max_override`
/// are positive they replace the instance-derived maxima (the paper's Fig. 7
/// sweeps a_max and b_max as free parameters).
VirtualCloudletSplit split_cloudlets(const Instance& inst,
                                     double a_max_override = 0.0,
                                     double b_max_override = 0.0);

}  // namespace mecsc::core
