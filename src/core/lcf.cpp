#include "core/lcf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace mecsc::core {

LcfResult run_lcf(const Instance& inst, const LcfOptions& options) {
  MECSC_PROFILE_SCOPE("lcf");
  assert(options.coordinated_fraction >= 0.0 &&
         options.coordinated_fraction <= 1.0);
  const std::size_t n = inst.provider_count();

  // Step 1: approximate solution for the non-selfish problem.
  ApproResult appro = [&] {
    MECSC_PROFILE_SCOPE("lcf.appro_phase");
    return run_appro(inst, options.appro);
  }();

  // Step 2: Largest Cost First — coordinate the ⌊ξ|N|⌋ providers whose
  // caching cost under ζ is highest (their strategies have the largest
  // influence on the social cost).
  const auto coordinated_count = static_cast<std::size_t>(
      std::floor(options.coordinated_fraction * static_cast<double>(n)));
  std::vector<ProviderId> by_cost(n);
  std::iota(by_cost.begin(), by_cost.end(), ProviderId{0});
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [&](ProviderId a, ProviderId b) {
                     return appro.assignment.provider_cost(a) >
                            appro.assignment.provider_cost(b);
                   });
  std::vector<bool> coordinated(n, false);
  for (std::size_t k = 0; k < coordinated_count; ++k) {
    coordinated[by_cost[k]] = true;
  }
  MECSC_TRACE([&] {
    double pinned_cost = 0.0;
    std::size_t pinned_cached = 0;
    for (std::size_t k = 0; k < coordinated_count; ++k) {
      pinned_cost += appro.assignment.provider_cost(by_cost[k]);
      if (appro.assignment.choice(by_cost[k]) != kRemote) ++pinned_cached;
    }
    return obs::TraceEvent("lcf.coordination_set")
        .f("coordinated", coordinated_count)
        .f("selfish", n - coordinated_count)
        .f("coordinated_fraction", options.coordinated_fraction)
        .f("pinned_cost_under_appro", pinned_cost)
        .f("pinned_cached", pinned_cached);
  }());

  // Build the starting profile: coordinated players sit at their ζ seats;
  // selfish players start remote (or warm-start at ζ).
  Assignment start(inst);
  for (ProviderId l = 0; l < n; ++l) {
    const bool place = coordinated[l] || options.selfish_start_at_appro;
    if (!place) continue;
    const std::size_t seat = appro.assignment.choice(l);
    if (seat != kRemote) {
      // Seats come from a feasible assignment, so they always fit.
      assert(start.can_move(l, seat));
      start.move(l, seat);
    }
  }

  // Step 3: the rest best-respond to a pure NE.
  std::vector<bool> movable(n);
  for (ProviderId l = 0; l < n; ++l) movable[l] = !coordinated[l];
  GameResult game = [&] {
    MECSC_PROFILE_SCOPE("lcf.game_phase");
    return best_response_dynamics(std::move(start), movable,
                                  options.dynamics);
  }();

  LcfResult result{std::move(game.assignment),
                   std::move(appro),
                   std::move(coordinated),
                   0.0,
                   0.0,
                   game.rounds,
                   game.moves,
                   game.converged};
  for (ProviderId l = 0; l < n; ++l) {
    const double c = result.assignment.provider_cost(l);
    if (result.coordinated[l]) {
      result.coordinated_cost += c;
    } else {
      result.selfish_cost += c;
    }
  }
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("lcf.runs");
  metrics.value_record("lcf.social_cost", result.social_cost());
  metrics.value_record("lcf.game_rounds",
                       static_cast<double>(result.game_rounds));
  return result;
}

}  // namespace mecsc::core
