// JSON interchange for instances and solutions.
//
// Lets experiments be split across processes and tools: generate an
// instance once (`mecsc generate`), solve it under different algorithm
// configurations (`mecsc solve`), and evaluate/compare placements
// (`mecsc evaluate`) — with the exact same bits each time. The format is
// versioned and round-trips everything the algorithms consume: topology,
// cloudlet/DC placement, capacities, providers, and cost constants.
#pragma once

#include <string>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/json.h"

namespace mecsc::core {

/// Format version written into every document.
inline constexpr int kIoFormatVersion = 1;

/// Serializes a full instance (topology + placements + providers + cost
/// constants).
util::JsonValue instance_to_json(const Instance& inst);

/// Rebuilds an instance. Throws util::JsonError on malformed documents and
/// std::invalid_argument on semantically invalid ones (bad ids, negative
/// capacities, unknown congestion kind, version mismatch).
Instance instance_from_json(const util::JsonValue& doc);

/// Serializes a strategy profile together with its cost summary.
util::JsonValue assignment_to_json(const Assignment& a);

/// Rebinds a serialized profile to `inst`. Throws std::invalid_argument if
/// the profile does not fit the instance (size mismatch, invalid cloudlet
/// ids, capacity violations).
Assignment assignment_from_json(const Instance& inst,
                                const util::JsonValue& doc);

/// Convenience text-file helpers (throw std::runtime_error on I/O errors).
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

}  // namespace mecsc::core
