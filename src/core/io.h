// JSON interchange for instances and solutions.
//
// Lets experiments be split across processes and tools: generate an
// instance once (`mecsc generate`), solve it under different algorithm
// configurations (`mecsc solve`), and evaluate/compare placements
// (`mecsc evaluate`) — with the exact same bits each time. The format is
// versioned and round-trips everything the algorithms consume: topology,
// cloudlet/DC placement, capacities, providers, and cost constants.
#pragma once

#include <string>
#include <string_view>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/json.h"
#include "util/json_arena.h"

namespace mecsc::core {

/// Format version written into every document.
inline constexpr int kIoFormatVersion = 1;

/// Serializes a full instance (topology + placements + providers + cost
/// constants).
util::JsonValue instance_to_json(const Instance& inst);

/// Rebuilds an instance. Throws util::JsonError on malformed documents and
/// std::invalid_argument on semantically invalid ones (bad ids, negative
/// capacities, unknown congestion kind, version mismatch).
Instance instance_from_json(const util::JsonValue& doc);

/// Arena-path equivalent of instance_from_json. Both decoders are one
/// template instantiated for the two document types, so validation rules
/// and error messages are identical by construction.
Instance instance_from_arena(const util::JsonArena::View& doc);

/// Bytes → Instance through the arena hot path: no DOM is materialized.
/// Throws util::JsonError on malformed JSON (same offsets/messages as
/// parse_json) and std::invalid_argument on semantically invalid documents
/// (same messages as instance_from_json).
Instance instance_from_json_text(std::string_view text);

/// Serializes a strategy profile together with its cost summary.
util::JsonValue assignment_to_json(const Assignment& a);

/// Rebinds a serialized profile to `inst`. Throws std::invalid_argument if
/// the profile does not fit the instance (size mismatch, invalid cloudlet
/// ids, capacity violations).
Assignment assignment_from_json(const Instance& inst,
                                const util::JsonValue& doc);

/// Convenience text-file helpers (throw std::runtime_error on I/O errors).
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

}  // namespace mecsc::core
