#include "core/congestion_game.h"

#include <cassert>
#include <numeric>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace mecsc::core {

namespace {
double priced(double base, const std::vector<double>* surcharge,
              std::size_t target) {
  if (surcharge == nullptr || target == kRemote) return base;
  return base + (*surcharge)[target];
}
}  // namespace

std::size_t best_response(const Assignment& a, ProviderId l,
                          double improvement_eps,
                          const std::vector<double>* cloudlet_surcharge) {
  const Instance& inst = a.instance();
  assert(cloudlet_surcharge == nullptr ||
         cloudlet_surcharge->size() == inst.cloudlet_count());
  std::size_t best = a.choice(l);
  double best_cost = priced(a.provider_cost(l), cloudlet_surcharge, best);
  // Remote is always feasible.
  if (remote_cost(inst, l) < best_cost - improvement_eps) {
    best = kRemote;
    best_cost = remote_cost(inst, l);
  }
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    if (i == a.choice(l)) continue;
    if (!a.can_move(l, i)) continue;
    const double c = priced(a.provider_cost_if(l, i), cloudlet_surcharge, i);
    if (c < best_cost - improvement_eps) {
      best = i;
      best_cost = c;
    }
  }
  return best;
}

GameResult best_response_dynamics(Assignment start,
                                  const std::vector<bool>& movable,
                                  const BestResponseOptions& options) {
  assert(movable.size() == start.provider_count());
  MECSC_PROFILE_SCOPE("game.dynamics");
  GameResult result{std::move(start), 0, 0, false};
  std::vector<ProviderId> order(result.assignment.provider_count());
  std::iota(order.begin(), order.end(), ProviderId{0});

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    MECSC_PROFILE_SCOPE("game.best_response_round");
    if (options.shuffle_rng != nullptr) {
      options.shuffle_rng->shuffle(order);
    }
    std::size_t round_moves = 0;
    for (const ProviderId l : order) {
      if (!movable[l]) continue;
      const std::size_t target =
          best_response(result.assignment, l, options.improvement_eps,
                        options.cloudlet_surcharge);
      if (target != result.assignment.choice(l)) {
        result.assignment.move(l, target);
        ++result.moves;
        ++round_moves;
      }
    }
    ++result.rounds;
    // The potential/social-cost evaluations are O(|N|+|M|); MECSC_TRACE
    // evaluates them only when a trace sink is attached.
    MECSC_TRACE(obs::TraceEvent("game.best_response_round")
                    .f("round", result.rounds)
                    .f("moves", round_moves)
                    .f("potential", result.assignment.potential())
                    .f("social_cost", result.assignment.social_cost()));
    if (round_moves == 0) {
      result.converged = true;
      break;
    }
  }
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("game.dynamics_runs");
  metrics.counter_add("game.rounds",
                      static_cast<std::int64_t>(result.rounds));
  metrics.counter_add("game.moves", static_cast<std::int64_t>(result.moves));
  if (result.converged) metrics.counter_add("game.converged");
  return result;
}

bool is_nash_equilibrium(const Assignment& a, const std::vector<bool>& movable,
                         double eps,
                         const std::vector<double>* cloudlet_surcharge) {
  assert(movable.size() == a.provider_count());
  for (ProviderId l = 0; l < a.provider_count(); ++l) {
    if (!movable[l]) continue;
    if (best_response(a, l, eps, cloudlet_surcharge) != a.choice(l)) {
      return false;
    }
  }
  return true;
}

}  // namespace mecsc::core
