#include "core/social_optimum.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

namespace mecsc::core {

namespace {

struct SearchState {
  const Instance* inst;
  std::size_t node_limit;
  std::size_t nodes = 0;
  bool budget_hit = false;
  Assignment current;
  std::vector<ProviderId> order;
  std::vector<double> suffix_lb;  // optimistic cost of providers order[k..]
  double best_cost = std::numeric_limits<double>::infinity();
  std::optional<Assignment> best;

  explicit SearchState(const Instance& instance)
      : inst(&instance), node_limit(0), current(instance) {}
};

/// Social-cost increase caused by provider l joining target given the
/// current partial profile: own cost plus the congestion bump imposed on
/// the target's existing tenants.
double marginal_cost(const Assignment& a, ProviderId l, std::size_t target) {
  if (target == kRemote) return remote_cost(a.instance(), l);
  const std::size_t k = a.occupancy(target);  // tenants before joining
  const Instance& inst = a.instance();
  // Own cost at occupancy k+1, plus the congestion bump imposed on the k
  // existing tenants: k·(g(k+1) − g(k)) with g the per-tenant congestion.
  const double bump =
      k == 0 ? 0.0
             : static_cast<double>(k) * (congestion_cost(inst, target, k + 1) -
                                         congestion_cost(inst, target, k));
  return cache_cost(inst, l, target, k + 1) + bump;
}

void dfs(SearchState& st, std::size_t depth, double cost_so_far) {
  if (st.nodes >= st.node_limit) {
    st.budget_hit = true;
    return;
  }
  ++st.nodes;
  if (cost_so_far + st.suffix_lb[depth] >= st.best_cost - 1e-12) return;
  if (depth == st.order.size()) {
    st.best_cost = cost_so_far;
    st.best = st.current;
    return;
  }
  const ProviderId l = st.order[depth];
  const Instance& inst = *st.inst;

  // Candidate targets sorted by marginal cost (cheap first finds strong
  // incumbents early).
  std::vector<std::size_t> targets;
  targets.push_back(kRemote);
  for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    if (st.current.can_move(l, i)) targets.push_back(i);
  }
  std::sort(targets.begin(), targets.end(),
            [&](std::size_t x, std::size_t y) {
              return marginal_cost(st.current, l, x) <
                     marginal_cost(st.current, l, y);
            });
  for (const std::size_t t : targets) {
    const double inc = marginal_cost(st.current, l, t);
    st.current.move(l, t);
    dfs(st, depth + 1, cost_so_far + inc);
    st.current.move(l, kRemote);
    if (st.budget_hit) return;
  }
}

}  // namespace

double social_cost_lower_bound(const Instance& inst) {
  double total = 0.0;
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    double best = remote_cost(inst, l);
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      if (!demand_fits(inst, l, i)) continue;
      best = std::min(best, flat_cache_cost(inst, l, i));
    }
    total += best;
  }
  return total;
}

SocialOptimumResult solve_social_optimum(const Instance& inst,
                                         const SocialOptimumOptions& options) {
  SearchState st(inst);
  st.node_limit = options.node_limit;
  const std::size_t n = inst.provider_count();
  st.order.resize(n);
  std::iota(st.order.begin(), st.order.end(), ProviderId{0});
  // Biggest consumers first: their placement constrains the rest the most.
  std::stable_sort(st.order.begin(), st.order.end(),
                   [&](ProviderId a, ProviderId b) {
                     return inst.providers[a].compute_demand() >
                            inst.providers[b].compute_demand();
                   });

  // Admissible per-provider bound: cheapest congestion-free option.
  st.suffix_lb.assign(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    const ProviderId l = st.order[k];
    double best = remote_cost(inst, l);
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      if (!demand_fits(inst, l, i)) continue;
      best = std::min(best, flat_cache_cost(inst, l, i));
    }
    st.suffix_lb[k] = st.suffix_lb[k + 1] + best;
  }

  dfs(st, 0, 0.0);
  assert(st.best.has_value() && "remote-for-all is always feasible");
  SocialOptimumResult result{std::move(*st.best), st.best_cost,
                             !st.budget_hit, st.nodes};
  return result;
}

}  // namespace mecsc::core
