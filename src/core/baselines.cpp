#include "core/baselines.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace mecsc::core {

double jo_objective(const Instance& inst, ProviderId l, CloudletId i) {
  // Congestion-free own cost as [23] would see it: VM + request transport,
  // no consistency-update term (that traffic is not modeled in [23]) and
  // occupancy 1 (no market awareness).
  const ServiceProvider& p = inst.providers[l];
  const double access_hops =
      inst.network.cloudlet_to_cloudlet_hops(p.user_region, i) + 1.0;
  return congestion_cost(inst, i, 1) + p.instantiation_cost +
         inst.cost.transfer_price_per_gb * p.traffic_gb * access_hops;
}

Assignment run_jo_offload_cache(const Instance& inst) {
  Assignment a(inst);
  const std::size_t m = inst.cloudlet_count();
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    // Rank this provider's options by its solo objective.
    std::vector<CloudletId> pref;
    for (CloudletId i = 0; i < m; ++i) {
      if (demand_fits(inst, l, i)) pref.push_back(i);
    }
    std::sort(pref.begin(), pref.end(), [&](CloudletId x, CloudletId y) {
      return jo_objective(inst, l, x) < jo_objective(inst, l, y);
    });
    // [23] offloads whenever the edge beats the remote path *under its own
    // objective*; admission control walks down the preference list.
    bool placed = false;
    for (const CloudletId i : pref) {
      if (jo_objective(inst, l, i) >= remote_cost(inst, l)) break;
      if (a.can_move(l, i)) {
        a.move(l, i);
        placed = true;
        break;
      }
    }
    (void)placed;  // not placed => stays remote
  }
  assert(a.feasible());
  return a;
}

Assignment run_offload_cache(const Instance& inst) {
  Assignment a(inst);
  const std::size_t m = inst.cloudlet_count();
  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    const CloudletId region = inst.providers[l].user_region;
    // Offloading step: requests go to the closest cloudlet; caching step:
    // instantiate there, else at the nearest cloudlet with room.
    std::vector<CloudletId> pref;
    for (CloudletId i = 0; i < m; ++i) {
      if (demand_fits(inst, l, i)) pref.push_back(i);
    }
    std::stable_sort(pref.begin(), pref.end(),
                     [&](CloudletId x, CloudletId y) {
                       return inst.network.cloudlet_to_cloudlet_hops(region, x) <
                              inst.network.cloudlet_to_cloudlet_hops(region, y);
                     });
    for (const CloudletId i : pref) {
      if (a.can_move(l, i)) {
        a.move(l, i);
        break;
      }
    }
  }
  assert(a.feasible());
  return a;
}

}  // namespace mecsc::core
