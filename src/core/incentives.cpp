#include "core/incentives.h"

#include <algorithm>
#include <cassert>

#include "core/congestion_game.h"

namespace mecsc::core {

StabilityReport analyze_stability(const Instance& inst,
                                  const LcfResult& result, double eps) {
  assert(result.assignment.provider_count() == inst.provider_count());
  const Assignment& a = result.assignment;
  StabilityReport report;
  report.providers.reserve(inst.provider_count());

  for (ProviderId l = 0; l < inst.provider_count(); ++l) {
    ProviderIncentive pi;
    pi.provider = l;
    pi.coordinated = result.coordinated[l];
    pi.current_cost = a.provider_cost(l);

    // Best feasible unilateral deviation (including staying put).
    double best = pi.current_cost;
    if (remote_cost(inst, l) < best) best = remote_cost(inst, l);
    for (CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
      if (i == a.choice(l) || !a.can_move(l, i)) continue;
      best = std::min(best, a.provider_cost_if(l, i));
    }
    pi.best_deviation_cost = best;
    pi.deviation_incentive = pi.current_cost - best;
    pi.individually_rational =
        pi.current_cost <= remote_cost(inst, l) + eps;

    if (pi.coordinated && pi.deviation_incentive > eps) {
      ++report.binding_contracts;
      report.side_payment_budget += pi.deviation_incentive;
    }
    if (!pi.individually_rational) {
      ++report.ir_violations;
      report.ir_subsidy += pi.current_cost - remote_cost(inst, l);
    }
    report.max_incentive =
        std::max(report.max_incentive, pi.deviation_incentive);
    report.providers.push_back(pi);
  }
  return report;
}

}  // namespace mecsc::core
