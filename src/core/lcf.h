// Algorithm 2 ("LCF", Largest-Cost-First): the approximation-restricted
// Stackelberg strategy (§III-C).
//
// The infrastructure provider (leader):
//  1. computes the Appro solution ζ for the fully coordinated problem;
//  2. selects the ⌊ξ|N|⌋ providers whose caching cost under ζ is largest
//     and pins them to their ζ strategies (coordinated players);
//  3. lets the remaining (1-ξ)|N| selfish providers best-respond until the
//     restricted congestion game reaches a pure Nash equilibrium.
//
// Theorem 1 bounds the Price of Anarchy of this mechanism by
// 2δκ/(1-v) · (1/(4v) + 1 - ξ).
#pragma once

#include <cstddef>
#include <vector>

#include "core/appro.h"
#include "core/assignment.h"
#include "core/congestion_game.h"
#include "core/instance.h"
#include "util/rng.h"

namespace mecsc::core {

struct LcfOptions {
  /// ξ: fraction of providers coordinated by the leader (paper default:
  /// 1-ξ = 0.3).
  double coordinated_fraction = 0.7;
  ApproOptions appro;
  BestResponseOptions dynamics;
  /// Where the selfish players start before best-responding: true = at
  /// their Appro seats (warm start), false = at the remote cloud (services
  /// begin uncached, §II-B). The reached equilibrium may differ; the paper's
  /// narrative (services start in remote clouds) matches the default.
  bool selfish_start_at_appro = false;
};

struct LcfResult {
  Assignment assignment;
  /// Appro's full solution ζ (also the coordinated players' strategies).
  ApproResult appro;
  /// coordinated[l] == true iff the leader pinned provider l.
  std::vector<bool> coordinated;
  /// Σ cost over coordinated / selfish providers in the final profile.
  double coordinated_cost = 0.0;
  double selfish_cost = 0.0;
  /// Stats of the selfish best-response phase.
  std::size_t game_rounds = 0;
  std::size_t game_moves = 0;
  bool converged = false;

  double social_cost() const { return coordinated_cost + selfish_cost; }
};

/// Runs the LCF mechanism. The result's assignment is feasible and — when
/// `converged` — a Nash equilibrium of the selfish sub-game.
LcfResult run_lcf(const Instance& inst, const LcfOptions& options = {});

}  // namespace mecsc::core
