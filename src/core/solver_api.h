// Uniform front door to the solver family: one algorithm-by-name
// dispatcher shared by the mecsc CLI (`mecsc solve`) and the solver
// service (src/svc/), so the two surfaces cannot drift apart on algorithm
// spellings, defaults, or option handling.
//
// A SolveSpec also defines the *cache-key contract* of the service: the
// digest of the instance bytes ⊕ cache_key() identifies a solve uniquely,
// because every input that influences the result is either in the instance
// document or in the spec (all solvers here are deterministic functions of
// those two).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "obs/profiler.h"
#include "util/json.h"
#include "util/json_arena.h"

namespace mecsc::core {

/// One solve request: which algorithm, with which knobs.
struct SolveSpec {
  /// One of solver_algorithm_names(): "lcf", "appro", "appro-literal",
  /// "jo", "offload", "selfish", "optimal".
  std::string algorithm = "lcf";
  /// 1-ξ, the selfish-provider share (LCF only; paper default 0.3).
  double one_minus_xi = 0.3;

  /// Canonical text encoding of every result-influencing option. Two specs
  /// with equal cache_key() (and equal instance bytes) must produce
  /// byte-identical serialized results. Extend this string whenever a new
  /// option is added — forgetting to would silently serve stale cache hits.
  std::string cache_key() const;
};

/// Result of run_solver: the placement plus provenance the CLI surfaces.
struct SolveOutcome {
  Assignment assignment;
  /// False only for algorithm "optimal" when the branch-and-bound node
  /// budget was hit and the incumbent is not proven optimal.
  bool proven_optimal = true;
  /// Wall-clock duration of the solver dispatch itself (excluding parse /
  /// decode around it), measured inside run_solver so every caller — CLI,
  /// service, benches — reports the same phase boundary. Callers must
  /// serialize it under a "wall_"-prefixed key; it never influences the
  /// assignment.
  double wall_solve_ms = 0.0;
};

/// The algorithm names run_solver accepts, sorted.
const std::vector<std::string>& solver_algorithm_names();

/// True when `name` is a valid SolveSpec::algorithm.
bool solver_algorithm_known(const std::string& name);

/// Decodes the solve-spec fields of a request document: "algorithm" (must
/// name a known solver) and "one_minus_xi" (must be a number); absent
/// fields keep the SolveSpec defaults, extra fields are ignored. Both
/// overloads are one template instantiated for the two document types, so
/// the DOM and arena request paths of the service validate identically by
/// construction. Throws std::invalid_argument / util::JsonError with the
/// messages the service maps to "bad_request".
SolveSpec solve_spec_from_json(const util::JsonValue& doc);
SolveSpec solve_spec_from_arena(const util::JsonArena::View& doc);

/// Pull-style decoder for the serving hot path: raw request bytes →
/// SolveSpec through the arena parser, no DOM materialized. Accepts
/// exactly what solve_spec_from_json(parse_json(...)) accepts.
SolveSpec decode_solve_spec(const char* data, std::size_t size);

/// Per-call observability plumbing for run_solver. Carried separately
/// from SolveSpec on purpose: nothing here may influence the result (or
/// the cache key).
struct SolveContext {
  /// When non-null, installed as the calling thread's profiler span tap
  /// for the duration of the solve, so solver-internal
  /// MECSC_PROFILE_SCOPE phases (appro, simplex pivots, game dynamics)
  /// land in the caller's per-request trace (obs/tracing.h).
  obs::Profiler::SpanListener* span_listener = nullptr;
};

/// Dispatches to the named algorithm. Throws std::invalid_argument (with
/// the list of valid names) when spec.algorithm is unknown. Deterministic:
/// equal (instance, spec) pairs produce equal assignments.
SolveOutcome run_solver(const Instance& inst, const SolveSpec& spec);

/// As above, with observability context: the span listener (when set) taps
/// every profiler scope the solve opens, wrapped in one "solver.run" span.
SolveOutcome run_solver(const Instance& inst, const SolveSpec& spec,
                        const SolveContext& ctx);

}  // namespace mecsc::core
