// Shared identifiers for the service-caching core.
#pragma once

#include <cstddef>
#include <limits>

namespace mecsc::core {

/// Index of a network service provider in Instance::providers.
using ProviderId = std::size_t;

/// Index of a cloudlet in MecNetwork::cloudlets().
using CloudletId = std::size_t;

/// Index of a data center in MecNetwork::data_centers().
using DataCenterId = std::size_t;

/// Strategy value meaning "do not cache": the service keeps being served by
/// its original instance in the remote data center ("to cache or not to
/// cache").
inline constexpr std::size_t kRemote = std::numeric_limits<std::size_t>::max();

}  // namespace mecsc::core
