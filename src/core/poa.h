// Price-of-Anarchy analysis (§II-E, Theorem 1).
//
// PoA = (worst social cost over pure Nash equilibria) / OPT. Theorem 1
// bounds the PoA of the approximation-restricted LCF mechanism by
//     2δκ/(1-v) · (1/(4v) + 1 - ξ),   v ∈ (0, 1).
// This module evaluates that bound (optimizing v numerically) and estimates
// the empirical PoA by driving best-response dynamics to equilibrium from
// many randomized starting profiles and player orders, keeping the worst
// equilibrium found.
#pragma once

#include <cstddef>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::core {

/// Theorem-1 bound for fixed v. Preconditions: v in (0,1), xi in [0,1],
/// delta, kappa > 0.
double theorem1_bound_at(double delta, double kappa, double xi, double v);

/// Theorem-1 bound minimized over v on a fine grid (the bound holds for
/// every v, so the tightest one is the meaningful figure).
double theorem1_bound(double delta, double kappa, double xi);

struct PoaOptions {
  /// Fraction of providers the leader coordinates (ξ); 0 = fully selfish
  /// game.
  double coordinated_fraction = 0.0;
  /// Number of randomized restarts of best-response dynamics.
  std::size_t restarts = 30;
  LcfOptions lcf;
};

struct PoaResult {
  /// Social cost of the worst / best equilibrium found.
  double worst_equilibrium_cost = 0.0;
  double best_equilibrium_cost = 0.0;
  /// Denominator used for the ratios (exact OPT when provably solved).
  double optimum_cost = 0.0;
  bool optimum_exact = false;
  /// worst_equilibrium_cost / optimum_cost.
  double empirical_poa = 0.0;
  /// Theorem-1 bound evaluated with the instance's δ, κ and ξ.
  double theoretical_bound = 0.0;
  std::size_t equilibria_found = 0;
};

/// Estimates the empirical PoA of the (ξ-coordinated) game on `inst`.
/// Uses the exact social optimum when the instance is small enough to solve
/// within the node budget; otherwise falls back to the congestion-free
/// lower bound (making the reported PoA an upper estimate).
PoaResult estimate_poa(const Instance& inst, const PoaOptions& options,
                       util::Rng& rng);

}  // namespace mecsc::core
