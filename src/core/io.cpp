#include "core/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mecsc::core {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

namespace {

JsonValue graph_to_json(const net::Graph& g) {
  JsonArray edges;
  edges.reserve(g.edge_count());
  for (const net::Edge& e : g.edges()) {
    edges.push_back(JsonValue(JsonArray{
        JsonValue(e.u), JsonValue(e.v), JsonValue(e.length),
        JsonValue(e.bandwidth_mbps)}));
  }
  return JsonValue(JsonObject{{"nodes", JsonValue(g.node_count())},
                              {"edges", JsonValue(std::move(edges))}});
}

net::Graph graph_from_json(const JsonValue& doc) {
  const auto nodes = static_cast<std::size_t>(doc.number_at("nodes"));
  net::Graph g(nodes);
  for (const JsonValue& e : doc.at("edges").as_array()) {
    const JsonArray& t = e.as_array();
    if (t.size() != 4) throw std::invalid_argument("io: edge tuple size");
    const auto u = static_cast<std::size_t>(t[0].as_number());
    const auto v = static_cast<std::size_t>(t[1].as_number());
    const double length = t[2].as_number();
    const double bw = t[3].as_number();
    if (u >= nodes || v >= nodes || u == v || length < 0.0) {
      throw std::invalid_argument("io: invalid edge");
    }
    g.add_edge(u, v, length, bw);
  }
  return g;
}

CongestionKind congestion_kind_from_name(const std::string& name) {
  for (const auto kind :
       {CongestionKind::Linear, CongestionKind::Quadratic,
        CongestionKind::Exponential, CongestionKind::Harmonic}) {
    if (name == congestion_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("io: unknown congestion kind '" + name + "'");
}

}  // namespace

JsonValue instance_to_json(const Instance& inst) {
  JsonObject root;
  root["format_version"] = JsonValue(kIoFormatVersion);
  root["topology"] = graph_to_json(inst.network.topology());

  JsonArray cloudlets;
  for (const net::Cloudlet& cl : inst.network.cloudlets()) {
    cloudlets.push_back(JsonValue(JsonObject{
        {"node", JsonValue(cl.node)},
        {"compute", JsonValue(cl.compute_capacity)},
        {"bandwidth", JsonValue(cl.bandwidth_capacity)}}));
  }
  root["cloudlets"] = JsonValue(std::move(cloudlets));

  JsonArray dcs;
  for (const net::DataCenter& dc : inst.network.data_centers()) {
    dcs.push_back(JsonValue(dc.node));
  }
  root["data_centers"] = JsonValue(std::move(dcs));

  JsonArray providers;
  for (const ServiceProvider& p : inst.providers) {
    providers.push_back(JsonValue(JsonObject{
        {"compute_per_request", JsonValue(p.compute_per_request)},
        {"bandwidth_per_request", JsonValue(p.bandwidth_per_request)},
        {"requests", JsonValue(p.requests)},
        {"instantiation_cost", JsonValue(p.instantiation_cost)},
        {"service_data_gb", JsonValue(p.service_data_gb)},
        {"update_fraction", JsonValue(p.update_fraction)},
        {"traffic_gb", JsonValue(p.traffic_gb)},
        {"home_dc", JsonValue(p.home_dc)},
        {"user_region", JsonValue(p.user_region)}}));
  }
  root["providers"] = JsonValue(std::move(providers));

  JsonObject cost;
  cost["alpha"] = JsonValue(JsonArray(inst.cost.alpha.begin(),
                                      inst.cost.alpha.end()));
  cost["beta"] =
      JsonValue(JsonArray(inst.cost.beta.begin(), inst.cost.beta.end()));
  cost["transfer_price_per_gb"] = JsonValue(inst.cost.transfer_price_per_gb);
  cost["processing_price_per_gb"] =
      JsonValue(inst.cost.processing_price_per_gb);
  cost["vm_boot_cost"] = JsonValue(inst.cost.vm_boot_cost);
  cost["remote_hop_penalty"] = JsonValue(inst.cost.remote_hop_penalty);
  cost["congestion"] =
      JsonValue(std::string(congestion_kind_name(inst.cost.congestion)));
  root["cost"] = JsonValue(std::move(cost));
  return JsonValue(std::move(root));
}

Instance instance_from_json(const JsonValue& doc) {
  if (static_cast<int>(doc.number_at("format_version")) != kIoFormatVersion) {
    throw std::invalid_argument("io: unsupported format version");
  }
  net::Graph topology = graph_from_json(doc.at("topology"));
  const std::size_t nodes = topology.node_count();

  std::vector<net::Cloudlet> cloudlets;
  for (const JsonValue& c : doc.at("cloudlets").as_array()) {
    net::Cloudlet cl;
    cl.node = static_cast<net::NodeId>(c.number_at("node"));
    cl.compute_capacity = c.number_at("compute");
    cl.bandwidth_capacity = c.number_at("bandwidth");
    if (cl.node >= nodes || cl.compute_capacity < 0.0 ||
        cl.bandwidth_capacity < 0.0) {
      throw std::invalid_argument("io: invalid cloudlet");
    }
    cloudlets.push_back(cl);
  }
  std::vector<net::DataCenter> dcs;
  for (const JsonValue& d : doc.at("data_centers").as_array()) {
    const auto node = static_cast<net::NodeId>(d.as_number());
    if (node >= nodes) throw std::invalid_argument("io: invalid data center");
    dcs.push_back(net::DataCenter{node});
  }
  if (cloudlets.empty() || dcs.empty()) {
    throw std::invalid_argument("io: need at least one cloudlet and DC");
  }

  Instance inst{net::MecNetwork(std::move(topology), std::move(cloudlets),
                                std::move(dcs)),
                {},
                {}};

  for (const JsonValue& p : doc.at("providers").as_array()) {
    ServiceProvider sp;
    sp.compute_per_request = p.number_at("compute_per_request");
    sp.bandwidth_per_request = p.number_at("bandwidth_per_request");
    sp.requests = static_cast<std::size_t>(p.number_at("requests"));
    sp.instantiation_cost = p.number_at("instantiation_cost");
    sp.service_data_gb = p.number_at("service_data_gb");
    sp.update_fraction = p.number_at("update_fraction");
    sp.traffic_gb = p.number_at("traffic_gb");
    sp.home_dc = static_cast<DataCenterId>(p.number_at("home_dc"));
    sp.user_region = static_cast<CloudletId>(p.number_at("user_region"));
    if (sp.home_dc >= inst.network.data_center_count() ||
        sp.user_region >= inst.network.cloudlet_count() ||
        sp.compute_per_request < 0.0 || sp.bandwidth_per_request < 0.0) {
      throw std::invalid_argument("io: invalid provider");
    }
    inst.providers.push_back(sp);
  }

  const JsonValue& cost = doc.at("cost");
  for (const JsonValue& a : cost.at("alpha").as_array()) {
    inst.cost.alpha.push_back(a.as_number());
  }
  for (const JsonValue& b : cost.at("beta").as_array()) {
    inst.cost.beta.push_back(b.as_number());
  }
  if (inst.cost.alpha.size() != inst.network.cloudlet_count() ||
      inst.cost.beta.size() != inst.network.cloudlet_count()) {
    throw std::invalid_argument("io: alpha/beta size mismatch");
  }
  inst.cost.transfer_price_per_gb = cost.number_at("transfer_price_per_gb");
  inst.cost.processing_price_per_gb =
      cost.number_at("processing_price_per_gb");
  inst.cost.vm_boot_cost = cost.number_at("vm_boot_cost");
  inst.cost.remote_hop_penalty = cost.number_at("remote_hop_penalty");
  inst.cost.congestion =
      congestion_kind_from_name(cost.string_at("congestion"));
  return inst;
}

JsonValue assignment_to_json(const Assignment& a) {
  JsonArray choices;
  choices.reserve(a.provider_count());
  for (ProviderId l = 0; l < a.provider_count(); ++l) {
    const std::size_t c = a.choice(l);
    choices.push_back(c == kRemote ? JsonValue(nullptr) : JsonValue(c));
  }
  return JsonValue(JsonObject{
      {"format_version", JsonValue(kIoFormatVersion)},
      {"choices", JsonValue(std::move(choices))},
      {"social_cost", JsonValue(a.social_cost())},
      {"potential", JsonValue(a.potential())}});
}

Assignment assignment_from_json(const Instance& inst, const JsonValue& doc) {
  const JsonArray& choices = doc.at("choices").as_array();
  if (choices.size() != inst.provider_count()) {
    throw std::invalid_argument("io: profile size mismatch");
  }
  Assignment a(inst);
  for (ProviderId l = 0; l < choices.size(); ++l) {
    if (choices[l].is_null()) continue;  // remote
    const auto c = static_cast<std::size_t>(choices[l].as_number());
    if (c >= inst.cloudlet_count()) {
      throw std::invalid_argument("io: invalid cloudlet id in profile");
    }
    if (!a.can_move(l, c)) {
      throw std::invalid_argument("io: profile violates capacities");
    }
    a.move(l, c);
  }
  return a;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "' for reading");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << content;
  if (!out) throw std::runtime_error("failed writing '" + path + "'");
}

}  // namespace mecsc::core
